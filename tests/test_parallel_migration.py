"""Long-horizon parallel MD: migration, rebuilds, and sustained exactness."""

import numpy as np
import pytest

from repro.md import Cell, System
from repro.models import LennardJones
from repro.parallel import ParallelForceEvaluator, ProcessGrid


@pytest.fixture
def rng():
    return np.random.default_rng(113)


def _hot_gas(rng, n=120, L=12.0):
    s = System(rng.uniform(0, L, (n, 3)), np.zeros(n, int), Cell.cubic(L))
    s.seed_velocities(800.0, rng)
    return s, LennardJones(epsilon=0.02, sigma=1.8, cutoff=3.0)


class TestMigration:
    def test_exactness_maintained_after_many_rebuilds(self, rng):
        """Atoms cross domain boundaries; every rebuild must stay exact."""
        system, lj = _hot_gas(rng)
        grid = ProcessGrid.create(4, system.cell)
        ev = ParallelForceEvaluator(lj, grid, skin=0.3)
        move_rng = np.random.default_rng(5)
        for step in range(6):
            # Scramble positions substantially (forces migration + rebuild).
            system.positions += move_rng.normal(scale=0.5, size=system.positions.shape)
            e_s, f_s = lj.energy_and_forces(system)
            e_p, f_p, _ = ev.compute(system)
            assert e_p == pytest.approx(e_s, rel=1e-9), step
            # Relative tolerance: scrambled gas can have huge close-contact
            # forces where absolute FP differences scale with magnitude.
            scale = max(1.0, np.abs(f_s).max())
            assert np.abs(f_p - f_s).max() < 1e-10 * scale, step

    def test_owner_changes_counted(self, rng):
        system, lj = _hot_gas(rng)
        grid = ProcessGrid.create(8, system.cell)
        ev = ParallelForceEvaluator(lj, grid, skin=0.0)  # rebuild every call
        ev.compute(system)
        system.positions += 2.0  # shift everything a subdomain over
        ev.compute(system)
        assert ev.cluster.stats.messages["migrate"] > 0

    def test_skin_avoids_rebuilds(self, rng):
        system, lj = _hot_gas(rng)
        grid = ProcessGrid.create(4, system.cell)
        ev = ParallelForceEvaluator(lj, grid, skin=0.8)
        ev.compute(system)
        builds_before = ev.decomp.cluster.stats.messages.get("halo_build", 0)
        system.positions += 0.01  # tiny motion: within skin
        ev.compute(system)
        builds_after = ev.decomp.cluster.stats.messages.get("halo_build", 0)
        assert builds_after == builds_before  # ghosts updated, not rebuilt
        assert ev.cluster.stats.messages.get("halo_forward", 0) > 0

    def test_all_atoms_always_owned_exactly_once(self, rng):
        system, lj = _hot_gas(rng)
        grid = ProcessGrid.create(8, system.cell)
        ev = ParallelForceEvaluator(lj, grid, skin=0.3)
        for _ in range(3):
            system.positions += np.random.default_rng(1).normal(
                scale=0.6, size=system.positions.shape
            )
            ev.compute(system)
            owned = np.concatenate([s.owned_ids for s in ev._shards])
            assert len(owned) == system.n_atoms
            assert len(np.unique(owned)) == system.n_atoms
