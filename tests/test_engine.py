"""Compiled-engine equivalence: replay must be *bitwise* eager in float64.

The engine's contract (DESIGN.md, paper §V-C) is stronger than allclose:
eager op sites and compiled replay execute the same forward kernels, and the
matmul/einsum kernels are invariant to trailing row padding, so a replayed
plan — padded buffers, rebound neighbor lists and all — reproduces the eager
tape bit for bit.  These tests pin that down for every potential family,
plus the capacity-overflow/recapture machinery and the engine modes of the
serial and parallel MD drivers.
"""

import threading

import numpy as np
import pytest

import repro.autodiff as ad
from repro.engine import BufferArena, CompiledPotential, capture
from repro.md import Cell, System, neighbor_list
from repro.md.simulation import Simulation
from repro.models import (
    AllegroConfig,
    AllegroModel,
    ClassicalConfig,
    ClassicalForceField,
    DeepMDConfig,
    DeepMDModel,
    LennardJones,
    MorsePotential,
    NequIPConfig,
    NequIPModel,
    ZBLRepulsion,
)
from repro.models.electrostatics import WolfCoulomb
from repro.parallel.driver import ParallelForceEvaluator, ParallelSimulation
from repro.parallel.topology import ProcessGrid


def make_potential(name, n_species=2):
    if name == "allegro":
        return AllegroModel(
            AllegroConfig(
                n_species=n_species,
                n_tensor=4,
                latent_dim=16,
                two_body_hidden=(16,),
                latent_hidden=(16,),
                edge_energy_hidden=(8,),
                r_cut=3.5,
                avg_num_neighbors=10.0,
            )
        )
    if name == "nequip":
        return NequIPModel(NequIPConfig(n_species=n_species, n_features=4, n_layers=2))
    if name == "deepmd":
        return DeepMDModel(DeepMDConfig(n_species=n_species))
    if name == "classical":
        return ClassicalForceField(ClassicalConfig(n_species=n_species))
    if name == "lj":
        return LennardJones(epsilon=0.8, sigma=1.1, cutoff=3.0, n_species=n_species)
    if name == "morse":
        D = np.full((n_species, n_species), 0.4)
        a = np.full((n_species, n_species), 1.6)
        r0 = np.full((n_species, n_species), 1.4)
        return MorsePotential(D, a, r0, cutoff=3.5)
    if name == "wolf":
        return WolfCoulomb(np.array([0.4, -0.4]), alpha=0.3, cutoff=3.5)
    if name == "zbl":
        return ZBLRepulsion(np.array([8.0, 1.0]), cutoff=2.0)
    raise ValueError(name)


ALL_MODELS = ["allegro", "nequip", "deepmd", "classical", "lj", "morse", "wolf", "zbl"]


def make_system(rng, n=14, box=9.0):
    pos = rng.uniform(0, box, size=(n, 3))
    spec = rng.integers(0, 2, size=n)
    return System(pos, spec, Cell.cubic(box))


def build_nl(pot, system):
    """Model-prepared list when available (per-pair pruning), plain otherwise."""
    prepare = getattr(pot, "prepare_neighbors", None)
    if prepare is not None:
        return prepare(system)
    return neighbor_list(system, pot.cutoff)


@pytest.fixture
def rng():
    return np.random.default_rng(711)


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_compiled_replay_is_bitwise_eager(self, name, rng):
        """Replay (including rebinds on new geometries) == eager, bitwise."""
        pot = make_potential(name)
        cm = pot.compile()
        system = make_system(rng)
        for trial in range(4):
            if trial:
                system.positions += rng.normal(scale=0.08, size=system.positions.shape)
            nl = build_nl(pot, system)
            e_eager, f_eager = pot.energy_and_forces(system, nl)
            e_c, f_c = cm.energy_and_forces(system, nl)
            assert e_c == e_eager, f"{name}: energy drift on trial {trial}"
            np.testing.assert_array_equal(
                f_c, f_eager, err_msg=f"{name}: force drift on trial {trial}"
            )
        stats = cm.stats()
        assert stats["n_captures"] >= 1
        assert stats["n_replays"] == 4  # every call replays (capture included)

    def test_replay_follows_rebuilt_neighbor_list(self, rng):
        """Edge-count changes within capacity rebind, never recapture."""
        pot = make_potential("lj")
        cm = pot.compile()
        system = make_system(rng, n=20, box=8.0)
        edge_counts = set()
        for _ in range(6):
            system.positions += rng.normal(scale=0.15, size=system.positions.shape)
            nl = build_nl(pot, system)
            edge_counts.add(nl.n_edges)
            e_eager, f_eager = pot.energy_and_forces(system, nl)
            e_c, f_c = cm.energy_and_forces(system, nl)
            assert e_c == e_eager
            np.testing.assert_array_equal(f_c, f_eager)
        assert len(edge_counts) > 1  # the test actually exercised fluctuation
        assert cm.stats()["n_captures"] <= 2

    def test_compiled_does_not_mutate_eager_results(self, rng):
        """Arrays returned by evaluate() stay valid across later replays."""
        pot = make_potential("morse")
        cm = pot.compile()
        system = make_system(rng)
        nl = build_nl(pot, system)
        e1, f1 = cm.energy_and_forces(system, nl)
        f1_copy = f1.copy()
        system.positions += 0.05
        nl2 = build_nl(pot, system)
        cm.energy_and_forces(system, nl2)
        np.testing.assert_array_equal(f1, f1_copy)


class TestCapacityOverflow:
    def test_growth_triggers_recapture_and_stays_exact(self, rng):
        pot = make_potential("lj")
        cm = pot.compile()
        captures = []
        for n in (10, 24, 40):
            system = make_system(rng, n=n, box=9.0)
            nl = build_nl(pot, system)
            e_eager, f_eager = pot.energy_and_forces(system, nl)
            e_c, f_c = cm.energy_and_forces(system, nl)
            assert e_c == e_eager
            np.testing.assert_array_equal(f_c, f_eager)
            captures.append(cm.stats()["n_captures"])
        assert captures == [1, 2, 3]
        assert cm.stats()["recaptures"] == 2

    def test_shrink_replays_within_padding(self, rng):
        """Smaller systems fit the captured capacity: replay, no recapture."""
        pot = make_potential("lj")
        cm = pot.compile()
        for n in (40, 24, 10):
            system = make_system(rng, n=n, box=9.0)
            nl = build_nl(pot, system)
            e_eager, f_eager = pot.energy_and_forces(system, nl)
            e_c, f_c = cm.energy_and_forces(system, nl)
            assert e_c == e_eager
            np.testing.assert_array_equal(f_c, f_eager)
        assert cm.stats()["n_captures"] == 1

    def test_exact_fit_recaptures_on_any_size_change(self, rng):
        """padding=None (Fig. 5 unpadded baseline): every new shape recaptures,
        results stay bitwise eager."""
        pot = make_potential("lj")
        cm = pot.compile(padding=None)
        assert cm.exact_fit
        counts = []
        for n in (24, 10, 24):  # shrink AND regrow both count as new shapes
            system = make_system(rng, n=n, box=9.0)
            nl = build_nl(pot, system)
            e_eager, f_eager = pot.energy_and_forces(system, nl)
            e_c, f_c = cm.energy_and_forces(system, nl)
            assert e_c == e_eager
            np.testing.assert_array_equal(f_c, f_eager)
            counts.append(cm.stats()["n_captures"])
        assert counts == [1, 2, 3]

    def test_explicit_capacity_skips_warmup_recapture(self, rng):
        pot = make_potential("lj")
        cm = pot.compile(capacity=64, pair_capacity=2048)
        for n in (10, 24, 40):
            system = make_system(rng, n=n, box=9.0)
            nl = build_nl(pot, system)
            cm.energy_and_forces(system, nl)
        assert cm.stats()["n_captures"] == 1


class TestWarmMDZeroRecaptures:
    def test_fluctuating_pair_md_never_recaptures_after_warmup(self, rng):
        """The §V-C acceptance property: warm compiled MD does 0 recaptures.

        Uses a jittered lattice (an equilibrated-condensed-phase stand-in):
        pair counts fluctuate step to step but stay within the 5% headroom,
        exactly the regime Fig. 5's padded allocator targets.
        """
        pot = make_potential("lj")
        grid = np.stack(
            np.meshgrid(*[np.arange(4) * 1.8 + 0.4] * 3, indexing="ij"), axis=-1
        ).reshape(-1, 3)
        n = len(grid)
        pos = grid + rng.normal(scale=0.05, size=(n, 3))
        system = System(pos, rng.integers(0, 2, n), Cell.cubic(7.2))
        system.velocities = rng.normal(scale=0.015, size=(n, 3))
        sim = Simulation(system, pot, dt=0.5, skin=0.3, engine="compiled")
        sim.run(5)  # warmup: capture + capacity discovery
        warm_captures = sim.engine_stats()["n_captures"]
        result = sim.run(40)
        assert len(set(result.pair_counts.tolist())) > 1  # pairs fluctuated
        assert sim.engine_stats()["n_captures"] == warm_captures


class TestSimulationEngineMode:
    def test_compiled_trajectory_bitwise_matches_eager(self, rng):
        pot = make_potential("morse")

        def mk():
            r = np.random.default_rng(5)
            s = make_system(r, n=24, box=8.5)
            s.velocities = r.normal(scale=0.02, size=(24, 3))
            return s

        s_e, s_c = mk(), mk()
        r_e = Simulation(s_e, pot, dt=0.5, engine="eager").run(25)
        sim_c = Simulation(s_c, pot, dt=0.5, engine="compiled")
        r_c = sim_c.run(25)
        np.testing.assert_array_equal(r_c.potential_energies, r_e.potential_energies)
        np.testing.assert_array_equal(s_c.positions, s_e.positions)
        assert sim_c.engine_stats()["n_replays"] >= 25

    def test_precompiled_potential_is_accepted(self, rng):
        pot = make_potential("lj")
        system = make_system(rng, n=16, box=8.0)
        sim = Simulation(system, pot.compile(capacity=32))
        assert sim.engine == "compiled"
        sim.run(3)
        assert sim.engine_stats()["n_replays"] >= 3

    def test_unknown_engine_rejected(self, rng):
        with pytest.raises(ValueError, match="engine"):
            Simulation(make_system(rng), make_potential("lj"), engine="jit")


class TestParallelEngineMode:
    def test_compiled_parallel_forces_match_serial_eager(self, rng):
        pot = make_potential("lj")
        system = make_system(rng, n=48, box=9.0)
        e_serial, f_serial = pot.energy_and_forces(system)

        grid = ProcessGrid.create(4, system.cell)
        ev = ParallelForceEvaluator(pot, grid, engine="compiled")
        e_par, f_par, _ = ev.compute(system.copy())
        assert e_par == pytest.approx(e_serial, abs=1e-10)
        np.testing.assert_allclose(f_par, f_serial, atol=1e-10)

        stats = ev.engine_stats()
        assert stats["n_captures"] >= 1
        assert set(stats["per_rank"]) <= set(range(4))

    def test_compiled_parallel_is_bitwise_eager_parallel(self, rng):
        """Per-shard replay == per-shard tape ⇒ identical assembled forces."""
        pot = make_potential("morse")
        system = make_system(rng, n=40, box=8.0)
        grid = ProcessGrid.create(4, system.cell)
        e_e, f_e, _ = ParallelForceEvaluator(pot, grid, engine="eager").compute(
            system.copy()
        )
        e_c, f_c, _ = ParallelForceEvaluator(pot, grid, engine="compiled").compute(
            system.copy()
        )
        assert e_c == e_e
        np.testing.assert_array_equal(f_c, f_e)

    def test_parallel_simulation_engine_passthrough(self, rng):
        pot = make_potential("lj")

        def mk():
            r = np.random.default_rng(9)
            s = make_system(r, n=32, box=8.5)
            s.velocities = r.normal(scale=0.02, size=(32, 3))
            return s

        r_e = ParallelSimulation(mk(), pot, n_ranks=2, engine="eager").run(10)
        ps = ParallelSimulation(mk(), pot, n_ranks=2, engine="compiled")
        r_c = ps.run(10)
        np.testing.assert_array_equal(r_c.potential_energies, r_e.potential_energies)
        assert ps.evaluator.engine_stats()["n_replays"] > 0


class TestConcurrentCapture:
    """Recapture-on-overflow under concurrent callers (the serving regime).

    The contract: capture (allocate + record) is guarded by a lock with a
    double-checked capacity test, so a burst of concurrent cold-start or
    overflow callers performs *exactly one* capture; replays never take the
    lock — each caller checks a private evaluation state out of an atomic
    pool (pool misses clone the captured template), so concurrent replays
    share no buffers and every caller's result is bitwise eager.
    """

    N_THREADS = 8

    def _burst(self, cm, system, nl):
        barrier = threading.Barrier(self.N_THREADS)
        results, errors = [], []

        def work():
            try:
                barrier.wait()
                results.append(cm.energy_and_forces(system, nl))
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        return results

    def test_concurrent_cold_start_captures_once(self, rng):
        pot = make_potential("lj")
        cm = pot.compile()
        system = make_system(rng, n=20, box=8.0)
        nl = build_nl(pot, system)
        e0, f0 = pot.energy_and_forces(system, nl)
        results = self._burst(cm, system, nl)
        # One capture total — not one per thread racing into the cold start.
        assert cm.n_captures == 1
        assert cm.n_replays == self.N_THREADS
        # Identical inputs ⇒ every thread saw the eager answer.
        for e, f in results:
            assert e == e0
            np.testing.assert_array_equal(f, f0)

    def test_concurrent_overflow_recaptures_once(self, rng):
        pot = make_potential("lj")
        cm = pot.compile()
        small = make_system(rng, n=8, box=8.0)
        cm.energy_and_forces(small, build_nl(pot, small))
        assert cm.n_captures == 1
        big = make_system(rng, n=40, box=9.0)
        nl_big = build_nl(pot, big)
        e0, f0 = pot.energy_and_forces(big, nl_big)
        results = self._burst(cm, big, nl_big)
        # The overflow burst recaptured exactly once, and every caller in
        # the burst (winner, cloners, pool reusers) got the eager answer.
        assert cm.n_captures == 2
        for e, f in results:
            assert e == e0
            np.testing.assert_array_equal(f, f0)
        # Post-burst state is consistent: a serial call is bitwise eager.
        e, f = cm.energy_and_forces(big, nl_big)
        assert e == e0
        np.testing.assert_array_equal(f, f0)
        assert cm.n_captures == 2

    def test_concurrent_distinct_inputs_bitwise(self, rng):
        """Interleaved callers with different structures never cross-talk."""
        pot = make_potential("lj")
        cm = pot.compile()
        systems = [make_system(rng, n=12 + 2 * k, box=8.0) for k in range(4)]
        cases = [(s, build_nl(pot, s)) for s in systems]
        expected = [pot.energy_and_forces(s, nl) for s, nl in cases]
        for s, nl in cases:  # warm: capacity then covers every size
            cm.energy_and_forces(s, nl)
        warm_captures = cm.n_captures
        warm_replays = cm.n_replays
        barrier = threading.Barrier(len(cases))
        failures = []

        def work(k):
            system, nl = cases[k]
            e0, f0 = expected[k]
            try:
                barrier.wait()
                for _ in range(10):
                    e, f = cm.energy_and_forces(system, nl)
                    assert e == e0
                    np.testing.assert_array_equal(f, f0)
            except Exception as exc:  # pragma: no cover - failure reporting
                failures.append(exc)

        threads = [
            threading.Thread(target=work, args=(k,)) for k in range(len(cases))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        # The warm capacity served every thread; extra concurrency showed
        # up as cloned evaluation states, not recaptures.
        assert cm.n_captures == warm_captures
        assert cm.n_replays == warm_replays + 10 * len(cases)


class TestInferenceModeDiscovery:
    def test_freezable_modules_found_recursively(self):
        """Nested MLPs inside layer lists must be frozen by inference_mode."""
        pot = make_potential("allegro")
        frozen = pot.freezable_modules()
        tps = [m for m in frozen if hasattr(m, "frozen_weights")]
        # The tensor products live inside a per-layer list — only a recursive
        # Module-tree walk discovers them (one per interaction layer).
        assert len(tps) >= 2
        with pot.inference_mode():
            assert all(tp.frozen_weights is not None for tp in tps)
        assert all(tp.frozen_weights is None for tp in tps)


class TestPlanAndArena:
    def test_capture_replays_simple_graph(self):
        a = np.arange(6.0).reshape(3, 2)
        b = np.ones((3, 2))

        def build():
            ta = ad.Tensor(a.copy())
            tb = ad.Tensor(b)
            return (ta * tb + ta).sum()

        outputs, plan = capture(build)
        (total,) = plan.execute()
        assert float(total) == float((a * b + a).sum())

    def test_plan_clone_is_independent(self):
        """clone() remaps leaf value buffers AND static index arrays."""
        x_buf = np.arange(6.0)
        idx_buf = np.array([0, 2, 2, 5], dtype=np.int64)

        def build():
            picked = ad.gather(ad.Tensor(x_buf), idx_buf)
            return ad.scatter_add(picked * 2.0, idx_buf, 6).sum()

        _, plan = capture(build)
        (r0,) = plan.execute()
        expected0 = float(2.0 * x_buf[idx_buf].sum())
        assert float(r0) == expected0

        x2 = np.empty_like(x_buf)
        i2 = np.empty_like(idx_buf)
        clone = plan.clone({id(x_buf): x2, id(idx_buf): i2})
        x2[:] = np.arange(6.0)[::-1]
        i2[:] = [1, 1, 3, 4]
        (rc,) = clone.execute()
        assert float(rc) == float(2.0 * x2[i2].sum())
        # The original plan still reads its own buffers, untouched.
        (r1,) = plan.execute()
        assert float(r1) == expected0

    def test_arena_reuses_buffers_across_shapes(self):
        arena = BufferArena()
        x = arena.acquire((8, 4), np.dtype(np.float64))
        arena.release(x)
        y = arena.acquire((8, 4), np.dtype(np.float64))
        assert y is x
        assert arena.n_reused == 1
        z = arena.acquire((8, 4), np.dtype(np.float64))
        assert z is not y
        assert arena.n_buffers == 2

    def test_plan_arena_is_bounded_across_replays(self, rng):
        """Replaying does not allocate: buffer count is fixed after capture."""
        pot = make_potential("lj")
        cm = pot.compile()
        system = make_system(rng)
        nl = build_nl(pot, system)
        cm.energy_and_forces(system, nl)
        n_buffers = cm.stats()["arena_buffers"]
        for _ in range(5):
            system.positions += rng.normal(scale=0.03, size=system.positions.shape)
            nl = build_nl(pot, system)
            cm.energy_and_forces(system, nl)
        assert cm.stats()["arena_buffers"] == n_buffers

    def test_compile_requires_traced_energies(self):
        class Opaque:
            cutoff = 3.0

            def atomic_energies(self, positions, species, nl):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(TypeError, match="traced_energies"):
            CompiledPotential(Opaque())
