"""Tests for SHAKE/RATTLE constraints and the Nosé–Hoover thermostat."""

import numpy as np
import pytest

from repro.data import water_unit_cell
from repro.data.reference import SPECIES_INDEX, ReferencePotential
from repro.md import (
    BondConstraints,
    Cell,
    NoseHooverThermostat,
    Simulation,
    System,
)
from repro.models import LennardJones


@pytest.fixture
def rng():
    return np.random.default_rng(229)


class TestBondConstraints:
    def test_shake_restores_bond_length(self, rng):
        s = System(
            np.array([[0.0, 0, 0], [1.2, 0, 0]]),
            np.zeros(2, int),
            None,
            masses=np.array([16.0, 1.0]),
        )
        ref = s.positions.copy()
        s.positions[1, 0] = 1.5  # stretched by the drift
        con = BondConstraints(np.array([[0, 1]]), np.array([1.2]))
        iters = con.apply_positions(s, ref, dt=1.0)
        assert iters < 100
        assert con.max_violation(s.positions) < 1e-6

    def test_shake_respects_mass_ratio(self):
        """The light atom moves (almost all of) the correction distance."""
        s = System(
            np.array([[0.0, 0, 0], [1.5, 0, 0]]),
            np.zeros(2, int),
            None,
            masses=np.array([1000.0, 1.0]),
        )
        ref = np.array([[0.0, 0, 0], [1.2, 0, 0]])
        con = BondConstraints(np.array([[0, 1]]), np.array([1.2]))
        con.apply_positions(s, ref, dt=1.0)
        # Heavy atom absorbs ~1/1000 of the 0.3 Å correction.
        assert abs(s.positions[0, 0]) < 1e-3
        assert s.positions[1, 0] - s.positions[0, 0] == pytest.approx(1.2, abs=1e-6)

    def test_rattle_removes_radial_velocity(self):
        s = System(
            np.array([[0.0, 0, 0], [1.0, 0, 0]]),
            np.zeros(2, int),
            None,
        )
        s.velocities = np.array([[0.0, 0, 0], [0.3, 0.2, 0.0]])
        con = BondConstraints(np.array([[0, 1]]), np.array([1.0]))
        con.apply_velocities(s)
        d = s.positions[1] - s.positions[0]
        radial = (d * (s.velocities[1] - s.velocities[0])).sum()
        assert abs(radial) < 1e-7  # converged to the constraint tolerance
        # Tangential motion preserved.
        assert abs(s.velocities[1][1] - s.velocities[0][1] - 0.2) < 1e-9

    def test_rigid_water_detection(self):
        w = water_unit_cell(n_grid=2)
        con = BondConstraints.rigid_water(
            w.species, SPECIES_INDEX["O"], SPECIES_INDEX["H"]
        )
        n_waters = w.n_atoms // 3
        assert len(con.pairs) == 3 * n_waters
        assert con.max_violation(w.positions) < 0.05  # generator geometry

    def test_constrained_water_md_preserves_geometry(self, rng):
        """SHAKE-constrained MD holds bond lengths at dt = 2 fs — the AMBER
        production setup the paper's benchmark systems use."""
        w = water_unit_cell(n_grid=3, seed=2)
        con = BondConstraints.rigid_water(
            w.species, SPECIES_INDEX["O"], SPECIES_INDEX["H"]
        )
        # Start exactly on the constraint manifold.
        ref0 = w.positions.copy()
        con.apply_positions(w, ref0, dt=0.0)
        w.seed_velocities(300.0, rng)
        con.apply_velocities(w)
        ref = ReferencePotential(cutoff=3.0, three_body_cutoff=2.0)
        sim = Simulation(w, ref, dt=2.0)

        prev = {"pos": w.positions.copy()}

        def constrain(step, simulation):
            con.apply_positions(simulation.system, prev["pos"], simulation.integrator.dt)
            con.apply_velocities(simulation.system)
            prev["pos"] = simulation.system.positions.copy()

        sim.add_callback(constrain)
        sim.run(20)
        assert con.max_violation(w.positions) < 1e-4

    def test_validation(self):
        with pytest.raises(ValueError):
            BondConstraints(np.zeros((2, 3)), np.ones(2))
        with pytest.raises(ValueError):
            BondConstraints(np.zeros((2, 2), dtype=int), np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            BondConstraints.rigid_water(np.array([1, 1, 1]), 3, 0)


class TestNoseHoover:
    def _crystal(self, rng):
        n_side, a = 4, 1.7
        g = (
            np.stack(np.meshgrid(*[np.arange(n_side)] * 3, indexing="ij"), -1)
            .reshape(-1, 3) * a
        )
        s = System(
            g + rng.normal(scale=0.02, size=g.shape),
            np.zeros(len(g), int),
            Cell.cubic(n_side * a),
        )
        return s, LennardJones(epsilon=0.05, sigma=1.5, cutoff=3.0)

    def test_drives_temperature_to_target(self, rng):
        s, lj = self._crystal(rng)
        s.seed_velocities(80.0, rng)
        nh = NoseHooverThermostat(250.0, tau=25.0)
        res = Simulation(s, lj, dt=0.4, thermostat=nh).run(500)
        assert abs(res.temperatures[-150:].mean() - 250.0) < 60.0

    def test_deterministic(self, rng):
        runs = []
        for _ in range(2):
            s, lj = self._crystal(np.random.default_rng(7))
            s.seed_velocities(100.0, np.random.default_rng(8))
            nh = NoseHooverThermostat(200.0, tau=30.0)
            runs.append(Simulation(s, lj, dt=0.4, thermostat=nh).run(40).temperatures)
        assert np.array_equal(runs[0], runs[1])

    def test_friction_sign_follows_temperature_error(self, rng):
        s, lj = self._crystal(rng)
        s.seed_velocities(500.0, rng)  # far above target
        nh = NoseHooverThermostat(100.0, tau=20.0)
        nh.apply(s, 0.5)
        assert nh.xi > 0  # heating excess -> positive friction

    def test_validation(self):
        with pytest.raises(ValueError):
            NoseHooverThermostat(-10.0)
        with pytest.raises(ValueError):
            NoseHooverThermostat(300.0, tau=0.0)
