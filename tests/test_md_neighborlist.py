"""Tests for neighbor lists: cell vs brute agreement, per-pair cutoffs, skins."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md import (
    Cell,
    System,
    VerletList,
    filter_by_pair_cutoffs,
    neighbor_list,
    ordered_pair_counts,
)
from repro.md.neighborlist import NeighborList, triplet_list


@pytest.fixture
def rng():
    return np.random.default_rng(61)


def _canon(nl: NeighborList):
    arr = np.concatenate([nl.edge_index.T, np.round(nl.shifts, 6)], axis=1)
    return set(map(tuple, arr.tolist()))


class TestNeighborListCorrectness:
    def test_cell_equals_brute_periodic(self, rng):
        L, n = 13.0, 500
        s = System(rng.uniform(0, L, (n, 3)), np.zeros(n, int), Cell.cubic(L))
        assert _canon(neighbor_list(s, 3.1, "cells")) == _canon(
            neighbor_list(s, 3.1, "brute")
        )

    def test_cell_equals_brute_open(self, rng):
        n = 400
        s = System(rng.uniform(0, 12, (n, 3)), np.zeros(n, int), None)
        assert _canon(neighbor_list(s, 3.0, "cells")) == _canon(
            neighbor_list(s, 3.0, "brute")
        )

    def test_out_of_box_positions_consistent_shifts(self, rng):
        """Shift vectors must be valid in the caller's position frame."""
        L, n = 12.0, 400
        pos = rng.uniform(-0.4, L + 0.4, (n, 3))  # slightly outside the box
        s = System(pos, np.zeros(n, int), Cell.cubic(L))
        for method in ("cells", "brute"):
            nl = neighbor_list(s, 3.0, method)
            assert nl.distances(s.positions).max() < 3.0

    def test_ordered_pairs_symmetric(self, rng):
        L, n = 11.0, 300
        s = System(rng.uniform(0, L, (n, 3)), np.zeros(n, int), Cell.cubic(L))
        nl = neighbor_list(s, 3.0)
        pairs = set(zip(*nl.edge_index))
        for i, j in pairs:
            assert (j, i) in pairs  # both ordered directions present

    def test_no_self_edges(self, rng):
        s = System(rng.uniform(0, 10, (100, 3)), np.zeros(100, int), Cell.cubic(10))
        nl = neighbor_list(s, 3.0)
        same = nl.edge_index[0] == nl.edge_index[1]
        assert np.allclose(np.abs(nl.shifts[same]).max(axis=1) > 1, True)

    def test_empty_system(self):
        s = System(np.zeros((0, 3)), np.zeros(0, int), Cell.cubic(5.0))
        assert neighbor_list(s, 2.0).n_edges == 0

    def test_brute_rejects_too_large_cutoff(self, rng):
        s = System(rng.uniform(0, 5, (10, 3)), np.zeros(10, int), Cell.cubic(5.0))
        with pytest.raises(ValueError):
            neighbor_list(s, 3.0, "brute")

    def test_invalid_method(self, rng):
        s = System(rng.uniform(0, 5, (4, 3)), np.zeros(4, int), Cell.cubic(5.0))
        with pytest.raises(ValueError):
            neighbor_list(s, 1.0, "magic")

    def test_small_periodic_image_counts(self):
        """Two atoms in a small box: image pairs appear once per image."""
        s = System(
            np.array([[0.5, 0.5, 0.5], [2.0, 0.5, 0.5]]),
            np.zeros(2, int),
            Cell.cubic(4.0),
        )
        nl = neighbor_list(s, 1.9, "brute")
        # i->j at +1.5 and via wrap at -2.5 (excluded, > cutoff): 2 ordered edges
        assert nl.n_edges == 2

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_distance_bound_property(self, seed):
        rng = np.random.default_rng(seed)
        L = rng.uniform(9.0, 15.0)
        n = rng.integers(50, 300)
        s = System(rng.uniform(0, L, (n, 3)), np.zeros(n, int), Cell.cubic(L))
        cutoff = rng.uniform(1.5, 3.0)
        nl = neighbor_list(s, cutoff)
        if nl.n_edges:
            assert nl.distances(s.positions).max() < cutoff


class TestPerPairCutoffs:
    def test_ordered_filtering(self, rng):
        n = 200
        s = System(
            rng.uniform(0, 10, (n, 3)),
            rng.integers(0, 2, n),
            Cell.cubic(10.0),
        )
        cut = np.array([[3.0, 1.2], [3.0, 3.0]])  # (0→1) strict
        nl = neighbor_list(s, 3.0)
        f = filter_by_pair_cutoffs(nl, s.positions, s.species, cut)
        i, j = f.edge_index
        d = f.distances(s.positions)
        mask01 = (s.species[i] == 0) & (s.species[j] == 1)
        if mask01.any():
            assert d[mask01].max() < 1.2
        mask10 = (s.species[i] == 1) & (s.species[j] == 0)
        if mask10.any():
            assert d[mask10].max() < 3.0
            assert d[mask10].max() > 1.2  # asymmetry retained

    def test_pair_count_reduction(self, rng):
        n = 300
        s = System(
            rng.uniform(0, 12, (n, 3)), rng.integers(0, 2, n), Cell.cubic(12.0)
        )
        cut = np.array([[1.5, 1.5], [4.0, 4.0]])
        full, reduced = ordered_pair_counts(s, cut)
        assert reduced < full


class TestVerletList:
    def test_rebuild_on_motion(self, rng):
        s = System(rng.uniform(0, 10, (100, 3)), np.zeros(100, int), Cell.cubic(10.0))
        v = VerletList(2.5, skin=0.5)
        v.get(s)
        assert v.n_builds == 1
        s.positions += 0.05  # uniform drift below skin/2
        v.get(s)
        assert v.n_builds == 1
        s.positions[0] += 0.5
        v.get(s)
        assert v.n_builds == 2

    def test_wraps_at_rebuild(self, rng):
        s = System(rng.uniform(0, 10, (50, 3)), np.zeros(50, int), Cell.cubic(10.0))
        s.positions[0] = [12.0, 5.0, 5.0]
        VerletList(2.0, skin=0.4).get(s)
        assert s.positions[0, 0] == pytest.approx(2.0)

    def test_rejects_negative_skin(self):
        with pytest.raises(ValueError):
            VerletList(2.0, skin=-0.1)


class TestTripletList:
    def test_counts_and_centers(self, rng):
        s = System(rng.uniform(0, 8, (60, 3)), np.zeros(60, int), Cell.cubic(8.0))
        nl = neighbor_list(s, 2.5)
        e1, e2 = triplet_list(nl)
        i = nl.edge_index[0]
        assert (i[e1] == i[e2]).all()
        assert (e1 != e2).all()
        c = np.bincount(i)
        assert len(e1) == (c * (c - 1)).sum()

    def test_empty(self):
        nl = NeighborList(np.zeros((2, 0), dtype=np.int64), np.zeros((0, 3)))
        e1, e2 = triplet_list(nl)
        assert len(e1) == 0 and len(e2) == 0
