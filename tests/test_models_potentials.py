"""Tests shared across all interatomic potentials: symmetries and physics."""

import numpy as np
import pytest

from repro.equivariant.wigner import random_rotation
from repro.md import Cell, System, neighbor_list
from repro.models import (
    AllegroConfig,
    AllegroModel,
    ClassicalConfig,
    ClassicalForceField,
    DeepMDConfig,
    DeepMDModel,
    LennardJones,
    MorsePotential,
    NequIPConfig,
    NequIPModel,
    ZBLRepulsion,
)


@pytest.fixture
def rng():
    return np.random.default_rng(83)


def small_allegro(n_species=2, **kw):
    defaults = dict(
        n_species=n_species,
        n_tensor=4,
        latent_dim=16,
        two_body_hidden=(16,),
        latent_hidden=(16,),
        edge_energy_hidden=(8,),
        r_cut=3.5,
        avg_num_neighbors=10.0,
    )
    defaults.update(kw)
    return AllegroModel(AllegroConfig(**defaults))


def all_ml_models(n_species=2):
    return {
        "allegro": small_allegro(n_species),
        "nequip": NequIPModel(NequIPConfig(n_species=n_species, n_features=4, n_layers=2)),
        "deepmd": DeepMDModel(DeepMDConfig(n_species=n_species)),
        "classical": ClassicalForceField(ClassicalConfig(n_species=n_species)),
    }


@pytest.fixture
def cluster(rng):
    """Open-boundary random cluster (so rigid motions are exact symmetries)."""
    n = 14
    pos = rng.uniform(0, 6.5, size=(n, 3))
    spec = rng.integers(0, 2, size=n)
    return System(pos, spec, None)


class TestSymmetries:
    @pytest.mark.parametrize("name", ["allegro", "nequip", "deepmd", "classical"])
    def test_e3_invariance_and_equivariance(self, name, cluster, rng):
        model = all_ml_models()[name]
        E0, F0 = model.energy_and_forces(cluster)
        R = random_rotation(rng)
        t = rng.normal(size=3) * 4

        rotated = System(cluster.positions @ R.T + t, cluster.species, None)
        E1, F1 = model.energy_and_forces(rotated)
        assert E1 == pytest.approx(E0, abs=1e-9)
        assert np.allclose(F1, F0 @ R.T, atol=1e-8)

        inverted = System(-cluster.positions, cluster.species, None)
        E2, F2 = model.energy_and_forces(inverted)
        assert E2 == pytest.approx(E0, abs=1e-9)
        assert np.allclose(F2, -F0, atol=1e-8)

    @pytest.mark.parametrize("name", ["allegro", "nequip", "deepmd"])
    def test_permutation_invariance(self, name, cluster, rng):
        model = all_ml_models()[name]
        E0, F0 = model.energy_and_forces(cluster)
        perm = rng.permutation(cluster.n_atoms)
        permuted = System(cluster.positions[perm], cluster.species[perm], None)
        E1, F1 = model.energy_and_forces(permuted)
        assert E1 == pytest.approx(E0, abs=1e-9)
        assert np.allclose(F1, F0[perm], atol=1e-8)

    @pytest.mark.parametrize("name", ["allegro", "nequip", "deepmd", "classical"])
    def test_zero_net_force(self, name, cluster):
        _, F = all_ml_models()[name].energy_and_forces(cluster)
        assert np.abs(F.sum(axis=0)).max() < 1e-9

    def test_forces_are_exact_energy_gradient(self, cluster):
        """Central-difference check of F = −∂E/∂r on a few coordinates."""
        model = small_allegro()
        nl = model.prepare_neighbors(cluster)
        _, F = model.energy_and_forces(cluster, nl)
        eps = 1e-5
        for atom, axis in [(0, 0), (5, 2), (9, 1)]:
            plus = cluster.copy()
            plus.positions[atom, axis] += eps
            minus = cluster.copy()
            minus.positions[atom, axis] -= eps
            ep, _ = model.energy_and_forces(plus, nl)
            em, _ = model.energy_and_forces(minus, nl)
            fd = -(ep - em) / (2 * eps)
            assert fd == pytest.approx(F[atom, axis], abs=1e-5, rel=1e-4)


class TestAllegroSpecifics:
    def test_paper_scale_parameter_count(self):
        model = AllegroModel(AllegroConfig.paper(n_species=4))
        n = model.num_parameters()
        assert 7.0e6 < n < 8.5e6  # paper: 7.85M weights

    def test_per_pair_cutoffs_reduce_edges(self, rng):
        n = 60
        s = System(rng.uniform(0, 9, (n, 3)), rng.integers(0, 2, n), Cell.cubic(9.0))
        ppc = np.array([[1.5, 1.2], [3.5, 3.5]])
        model = small_allegro(per_pair_cutoffs=ppc)
        nl_full = neighbor_list(s, model.cutoff)
        nl_model = model.prepare_neighbors(s)
        assert nl_model.n_edges < nl_full.n_edges

    def test_energy_continuous_at_cutoff(self, rng):
        """Moving an atom through the cutoff must not jump the energy.

        The difference across the cutoff must scale linearly with the probe
        step (finite slope), i.e. no O(1) discontinuity as the neighbor list
        drops the edge.
        """
        model = small_allegro()
        base = np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0], [0.0, 2.0, 0.0]])

        def energy(d):
            pos = np.vstack([base, [d, 0.0, 0.0]])
            s = System(pos, np.array([0, 1, 0, 1]), None)
            return model.energy_and_forces(s)[0]

        gaps = [abs(energy(3.5 - eps) - energy(3.5 + eps)) for eps in (1e-3, 1e-5)]
        # Continuous with bounded slope: gap shrinks proportionally to eps.
        assert gaps[1] < gaps[0] * 1e-1
        assert gaps[1] < 1e-4

    def test_zbl_requires_atomic_numbers(self):
        with pytest.raises(ValueError):
            AllegroModel(AllegroConfig(n_species=2, zbl=True))

    def test_zbl_adds_core_repulsion(self, rng):
        m_zbl = small_allegro(zbl=True, atomic_numbers=np.array([1.0, 6.0]))
        close = System(
            np.array([[0.0, 0.0, 0.0], [0.35, 0.0, 0.0]]), np.array([0, 1]), None
        )
        e_zbl, f_zbl = m_zbl.energy_and_forces(close)
        # ZBL must dominate at 0.35 Å: strong mutual repulsion.
        assert f_zbl[0, 0] < -1.0 and f_zbl[1, 0] > 1.0

    def test_batched_prediction_matches_individual(self, rng):
        model = small_allegro()
        systems = [
            System(rng.uniform(0, 5, (8, 3)), rng.integers(0, 2, 8), None)
            for _ in range(3)
        ]
        nls = [model.prepare_neighbors(s) for s in systems]
        # individual
        singles = [model.energy_and_forces(s, nl) for s, nl in zip(systems, nls)]
        # batched
        from repro.nn.training import LabeledFrame, _Batch

        frames = [
            LabeledFrame(s, e, f) for s, (e, f) in zip(systems, singles)
        ]
        batch = _Batch(frames, nls)
        e_b, f_b = model.predict_batch(
            batch.positions, batch.species, batch.nl, batch.batch_index, 3
        )
        assert np.allclose(e_b, [e for e, _ in singles], atol=1e-10)
        assert np.allclose(f_b, np.concatenate([f for _, f in singles]), atol=1e-10)

    def test_empty_neighbor_list(self):
        model = small_allegro()
        s = System(np.array([[0.0, 0.0, 0.0], [50.0, 0.0, 0.0]]), np.array([0, 1]), None)
        e, f = model.energy_and_forces(s)
        assert np.isfinite(e)
        assert np.allclose(f, 0.0)


class TestNequIPSpecifics:
    def test_receptive_field_grows_with_layers(self):
        m2 = NequIPModel(NequIPConfig(n_species=2, n_layers=2, r_cut=4.0))
        m4 = NequIPModel(NequIPConfig(n_species=2, n_layers=4, r_cut=4.0))
        assert m2.receptive_field() == 8.0
        assert m4.receptive_field() == 16.0

    def test_energy_depends_beyond_cutoff(self, rng):
        """Message passing: an atom OUTSIDE the cutoff (but within 2 hops)
        influences the energy — the non-locality that blocks decomposition."""
        model = NequIPModel(
            NequIPConfig(n_species=1, n_features=4, n_layers=2, r_cut=2.0, seed=1)
        )
        # chain: A(0) - B(1.5) - C(3.0): A-C distance 3.0 > cutoff 2.0
        def energy_with_c_at(x):
            pos = np.array([[0.0, 0, 0], [1.5, 0, 0], [x, 0, 0]])
            s = System(pos, np.zeros(3, int), None)
            e, _ = model.energy_and_forces(s)
            return e

        e1 = energy_with_c_at(3.0)
        e2 = energy_with_c_at(3.2)
        # Moving C (never within A's cutoff) changes B's messages to A.
        assert abs(e1 - e2) > 1e-10


class TestPairPotentials:
    def test_lj_minimum_location(self):
        lj = LennardJones(epsilon=1.0, sigma=1.0, cutoff=5.0)
        r_min = 2 ** (1 / 6)
        s = System(np.array([[0.0, 0, 0], [r_min, 0, 0]]), np.zeros(2, int), None)
        _, f = lj.energy_and_forces(s)
        assert np.abs(f).max() < 0.05  # near-zero force at the minimum

    def test_lj_validation(self):
        with pytest.raises(ValueError):
            LennardJones(epsilon=np.ones((2, 3)), sigma=1.0, n_species=2)

    def test_morse_well_depth(self):
        D = np.array([[0.5]])
        m = MorsePotential(D, np.array([[1.5]]), np.array([[1.2]]), cutoff=6.0)
        s = System(np.array([[0.0, 0, 0], [1.2, 0, 0]]), np.zeros(2, int), None)
        e, f = m.energy_and_forces(s)
        assert e < 0
        assert np.abs(f).max() < 0.05

    def test_morse_validation(self):
        with pytest.raises(ValueError):
            MorsePotential(np.ones(2), np.ones(2), np.ones(2))

    def test_zbl_repulsive_and_monotone(self):
        zbl = ZBLRepulsion(np.array([1.0, 8.0]), cutoff=2.0)
        energies = []
        for r in (0.3, 0.5, 0.8, 1.2):
            s = System(np.array([[0.0, 0, 0], [r, 0, 0]]), np.array([0, 1]), None)
            e, _ = zbl.energy_and_forces(s)
            energies.append(e)
        assert all(e > 0 for e in energies)
        assert all(a > b for a, b in zip(energies, energies[1:]))

    def test_zbl_validation(self):
        with pytest.raises(ValueError):
            ZBLRepulsion(np.array([1.0, -2.0]))
