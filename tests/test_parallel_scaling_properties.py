"""Scaling properties measured on the virtual cluster (not the perf model).

These verify, on real decomposed computations, the structural facts the
paper's scalability rests on: per-rank work shrinks ∝ 1/P, halo fraction
follows surface/volume, and communication stays per-neighbor local.
"""

import numpy as np
import pytest

from repro.data import water_box
from repro.models import LennardJones
from repro.parallel import ParallelForceEvaluator, ProcessGrid


@pytest.fixture(scope="module")
def workload():
    system = water_box(2, seed=201)  # 1536 atoms
    lj = LennardJones(epsilon=0.01, sigma=2.5, cutoff=4.0, n_species=4)
    return system, lj


class TestStrongScalingStructure:
    def test_owned_work_divides_by_ranks(self, workload):
        system, lj = workload
        per_rank_edges = {}
        for n_ranks in (1, 2, 4, 8):
            ev = ParallelForceEvaluator(lj, ProcessGrid.create(n_ranks, system.cell))
            _, _, stats = ev.compute(system.copy())
            per_rank_edges[n_ranks] = stats.n_edges.mean()
        for n_ranks in (2, 4, 8):
            ideal = per_rank_edges[1] / n_ranks
            assert per_rank_edges[n_ranks] == pytest.approx(ideal, rel=0.15)

    def test_total_edges_constant_across_rank_counts(self, workload):
        """Decomposition re-partitions work; it must not create or lose it."""
        system, lj = workload
        totals = []
        for n_ranks in (1, 2, 4, 8):
            ev = ParallelForceEvaluator(lj, ProcessGrid.create(n_ranks, system.cell))
            _, _, stats = ev.compute(system.copy())
            totals.append(int(stats.n_edges.sum()))
        assert len(set(totals)) == 1, totals

    def test_ghost_fraction_grows_with_ranks(self, workload):
        """Smaller bricks ⇒ larger surface/volume ⇒ higher ghost fraction —
        the geometric origin of the strong-scaling communication limit."""
        system, lj = workload
        fractions = []
        for n_ranks in (2, 4, 8):
            ev = ParallelForceEvaluator(lj, ProcessGrid.create(n_ranks, system.cell))
            _, _, stats = ev.compute(system.copy())
            fractions.append(stats.n_ghost.mean() / stats.n_owned.mean())
        assert fractions == sorted(fractions)

    def test_forces_independent_of_rank_count(self, workload):
        system, lj = workload
        reference = None
        for n_ranks in (1, 2, 8):
            ev = ParallelForceEvaluator(lj, ProcessGrid.create(n_ranks, system.cell))
            _, forces, _ = ev.compute(system.copy())
            if reference is None:
                reference = forces
            else:
                assert np.allclose(forces, reference, atol=1e-9)


class TestCommunicationLocality:
    def test_forward_traffic_scales_with_ghosts(self, workload):
        system, lj = workload
        ev = ParallelForceEvaluator(lj, ProcessGrid.create(8, system.cell), skin=0.5)
        ev.compute(system.copy())
        ev.cluster.stats.reset()
        # Second call without rebuild: only forward+reverse halo traffic.
        system2 = system.copy()
        system2.positions += 0.01
        _, _, stats = ev.compute(system2)
        fwd = ev.cluster.stats.bytes.get("halo_forward", 0)
        # 3 doubles per ghost position (self-ghosts are local copies and
        # cost nothing, so measured bytes are bounded by the total).
        assert 0 < fwd <= stats.n_ghost.sum() * 24
        assert ev.cluster.stats.bytes.get("migrate", 0) == 0

    def test_no_all_to_all_pattern(self, workload):
        """Each rank only exchanges with spatial neighbors (≤26 in the
        3-D stencil), not with all P−1 ranks.  Small periodic grids are
        fully connected (every rank *is* a neighbor), so the distinction
        only appears at ≥4 ranks per axis: 64 ranks here."""
        system, lj = workload
        n_ranks = 64  # 4×4×4 on the 24.8 Å box: subdomain 6.2 Å > cutoff
        ev = ParallelForceEvaluator(
            lj, ProcessGrid.create(n_ranks, system.cell), skin=0.5
        )
        ev.compute(system.copy())
        ev.cluster.stats.reset()
        s2 = system.copy()
        s2.positions += 0.01
        ev.compute(s2)
        msgs = ev.cluster.stats.total_messages()
        stencil_bound = n_ranks * 26 * 2  # fwd + reverse per neighbor pair
        all_to_all = n_ranks * (n_ranks - 1) * 2
        assert msgs <= stencil_bound * 1.05
        assert msgs < 0.9 * all_to_all
