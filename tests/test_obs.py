"""The unified observability layer: registry, spans, timing, JSON export.

Covers the contracts every other layer now leans on:

* one ``Registry`` type (counters/gauges/histograms, labeled metrics)
  shared by serve, engine, MD, parallel, and training instrumentation;
* hierarchical span tracing with a bounded buffer, phase aggregation,
  and a true no-op when disabled;
* hardened ``Histogram.percentile`` (defined for empty/single-sample
  histograms, clamped q — property-tested with hypothesis);
* deterministic stats/trace JSON (sorted keys, stable floats,
  ``schema_version``);
* thread-safety under a ≥8-thread hammer with exact final totals.
"""

import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metrics,
    Registry,
    Timer,
    Tracer,
    labeled_name,
    stable_floats,
    time_callable,
    to_json,
)


@pytest.fixture
def tracer():
    """A fresh enabled tracer installed as the process-global one."""
    t = Tracer(enabled=True, max_traces=16)
    old = obs.set_tracer(t)
    yield t
    obs.set_tracer(old)


# ---------------------------------------------------------------------------
# Registry: counters, gauges, labels
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_get_or_create(self):
        reg = Registry()
        c = reg.counter("events")
        c.inc()
        reg.counter("events").inc(4)
        assert reg.counter("events").value == 5

    def test_gauge_set_inc_dec(self):
        reg = Registry()
        g = reg.gauge("arena_bytes")
        g.set(100.0)
        g.inc(28.0)
        g.dec(8.0)
        assert g.value == 120.0
        assert reg.gauge("arena_bytes") is g

    def test_labeled_metrics_are_distinct(self):
        reg = Registry()
        reg.counter("comm.bytes", labels={"category": "halo"}).inc(10)
        reg.counter("comm.bytes", labels={"category": "migrate"}).inc(3)
        snap = reg.snapshot()
        assert snap["counters"]["comm.bytes{category=halo}"] == 10
        assert snap["counters"]["comm.bytes{category=migrate}"] == 3

    def test_labeled_name_sorts_keys(self):
        a = labeled_name("m", {"b": 1, "a": 2})
        b = labeled_name("m", {"a": 2, "b": 1})
        assert a == b == "m{a=2,b=1}"
        assert labeled_name("m", None) == "m"
        assert labeled_name("m", {}) == "m"

    def test_snapshot_prefix_filters_one_layer(self):
        reg = Registry()
        reg.counter("md.steps").inc(7)
        reg.counter("engine.captures").inc(2)
        reg.gauge("engine.arena_bytes").set(64)
        snap = reg.snapshot(prefix="engine.")
        assert "md.steps" not in snap["counters"]
        assert snap["counters"]["engine.captures"] == 2
        assert snap["gauges"]["engine.arena_bytes"] == 64

    def test_snapshot_has_schema_version(self):
        assert Registry().snapshot()["schema_version"] == 1

    def test_metrics_alias_is_registry(self):
        assert Metrics is Registry

    def test_serve_metrics_reexport_unchanged(self):
        from repro.serve.metrics import Metrics as ServeMetrics

        assert ServeMetrics is Registry
        m = ServeMetrics()
        m.counter("requests").inc(5)
        assert m.snapshot()["counters"] == {"requests": 5}

    def test_delta_since(self):
        reg = Registry()
        reg.counter("a").inc(2)
        before = reg.snapshot()
        reg.counter("a").inc(3)
        reg.counter("b").inc(1)
        delta = Registry.delta_since(before, reg.snapshot())
        assert delta == {"a": 3, "b": 1}


# ---------------------------------------------------------------------------
# Histogram hardening
# ---------------------------------------------------------------------------


class TestHistogramPercentile:
    def make(self):
        return Histogram("h", (1.0, 2.0, 4.0, 8.0), threading.RLock())

    def test_empty_histogram_is_defined(self):
        h = self.make()
        assert h.percentile(0.5) == 0.0
        assert h.percentile(0.0) == 0.0
        snap = h.snapshot()
        assert snap["count"] == 0 and snap["min"] is None

    def test_single_observation_reports_it_exactly(self):
        h = self.make()
        h.observe(3.25)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.percentile(q) == 3.25

    def test_identical_observations_report_the_value(self):
        h = self.make()
        for _ in range(10):
            h.observe(2.5)
        assert h.percentile(0.5) == 2.5

    def test_q_clamped_outside_unit_interval(self):
        h = self.make()
        for x in (0.5, 1.5, 3.0, 7.0):
            h.observe(x)
        assert h.percentile(-0.3) == h.percentile(0.0)
        assert h.percentile(1.7) == h.percentile(1.0)
        assert h.percentile(1.0) == pytest.approx(7.0)

    def test_nan_q_raises(self):
        h = self.make()
        h.observe(1.0)
        with pytest.raises(ValueError, match="NaN"):
            h.percentile(float("nan"))

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", (2.0, 1.0), threading.RLock())
        with pytest.raises(ValueError):
            Histogram("h", (1.0, 1.0), threading.RLock())
        with pytest.raises(ValueError):
            Histogram("h", (), threading.RLock())

    @settings(max_examples=60, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=1e-6, max_value=1e3), min_size=0, max_size=40
        ),
        q=st.floats(min_value=-1.0, max_value=2.0, allow_nan=False),
    )
    def test_percentile_always_finite_and_bounded(self, samples, q):
        h = Histogram("h", LATENCY_BUCKETS, threading.RLock())
        for x in samples:
            h.observe(x)
        p = h.percentile(q)
        assert np.isfinite(p)
        if samples:
            assert min(samples) - 1e-9 <= p <= max(samples) + 1e-9
        else:
            assert p == 0.0

    @settings(max_examples=40, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=1e-6, max_value=1e3), min_size=2, max_size=40
        ),
        qs=st.tuples(
            st.floats(min_value=0.0, max_value=1.0),
            st.floats(min_value=0.0, max_value=1.0),
        ),
    )
    def test_percentile_monotone_in_q(self, samples, qs):
        h = Histogram("h", LATENCY_BUCKETS, threading.RLock())
        for x in samples:
            h.observe(x)
        lo, hi = sorted(qs)
        assert h.percentile(lo) <= h.percentile(hi) + 1e-12


# ---------------------------------------------------------------------------
# Span tracing
# ---------------------------------------------------------------------------


class TestTracing:
    def test_disabled_span_is_shared_nop(self):
        t = Tracer(enabled=False)
        s1, s2 = t.span("a"), t.span("b")
        assert s1 is s2  # one shared no-op object, no allocation
        with s1 as sp:
            sp.add("pairs", 10)
        assert t.phase_totals() == {}

    def test_global_span_nop_when_disabled(self, tracer):
        tracer.disable()
        with obs.span("md.step") as sp:
            sp.add("pairs", 1)
        assert tracer.phase_totals() == {}

    def test_nesting_builds_parent_qualified_paths(self, tracer):
        with obs.span("md.step"):
            with obs.span("md.force"):
                pass
            with obs.span("md.neighbor"):
                pass
        totals = tracer.phase_totals()
        assert set(totals) == {
            "md.step",
            "md.step/md.force",
            "md.step/md.neighbor",
        }
        assert totals["md.step"]["count"] == 1
        assert totals["md.step"]["total_s"] >= (
            totals["md.step/md.force"]["total_s"]
        )

    def test_per_span_counters_export(self, tracer):
        with obs.span("md.step") as sp:
            sp.add("pairs", 100)
            sp.add("pairs", 20)
            sp.add("rebuilds")
        doc = tracer.export()
        root = doc["traces"][-1]
        assert root["counters"] == {"pairs": 120, "rebuilds": 1}

    def test_trace_buffer_is_bounded(self, tracer):
        for _ in range(50):
            with obs.span("md.step"):
                pass
        doc = tracer.export()
        assert doc["n_traces_recorded"] == 50
        assert doc["n_traces_buffered"] == 16  # max_traces
        assert doc["n_traces_dropped"] == 34
        # Dropped roots still contribute to the aggregates.
        assert tracer.phase_totals()["md.step"]["count"] == 50

    def test_phase_totals_prefix(self, tracer):
        with obs.span("md.step"):
            pass
        with obs.span("train.epoch"):
            pass
        assert list(tracer.phase_totals("train.")) == ["train.epoch"]

    def test_export_tree_shape(self, tracer):
        with obs.span("parent"):
            with obs.span("child"):
                pass
        root = tracer.export()["traces"][-1]
        assert root["name"] == "parent"
        assert [c["name"] for c in root["children"]] == ["child"]
        child = root["children"][0]
        assert 0.0 <= child["t_offset_s"] <= root["duration_s"]
        assert child["duration_s"] <= root["duration_s"]

    def test_threads_get_independent_stacks(self, tracer):
        seen = []

        def worker():
            with obs.span("worker.task"):
                pass
            seen.append(True)

        with obs.span("main.outer"):
            th = threading.Thread(target=worker)
            th.start()
            th.join()
        totals = tracer.phase_totals()
        # The worker's span must NOT nest under the main thread's span.
        assert "worker.task" in totals
        assert "main.outer/worker.task" not in totals

    def test_format_phases_table(self, tracer):
        with obs.span("md.step"):
            with obs.span("md.force"):
                pass
        table = tracer.format_phases("md.")
        assert "phase" in table and "calls" in table and "share" in table
        assert "md.step" in table
        assert Tracer().format_phases().startswith("(no spans")

    def test_clear_resets_buffers_not_enabled_flag(self, tracer):
        with obs.span("a"):
            pass
        tracer.clear()
        assert tracer.enabled
        assert tracer.phase_totals() == {}
        assert tracer.export()["n_traces_recorded"] == 0

    def test_enable_resizes_buffer(self, tracer):
        obs.enable(max_traces=4)
        for _ in range(10):
            with obs.span("s"):
                pass
        assert tracer.export()["n_traces_buffered"] == 4


# ---------------------------------------------------------------------------
# Timing primitives (canonical home; repro.perf.timing is the shim)
# ---------------------------------------------------------------------------


class TestTiming:
    def test_timer_measures(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed >= 0.0

    def test_named_timer_emits_span(self, tracer):
        with Timer("bench.kernel"):
            pass
        assert "bench.kernel" in tracer.phase_totals()

    def test_time_callable(self):
        best, result = time_callable(lambda: 42, repeat=2)
        assert result == 42
        assert best >= 0.0
        with pytest.raises(ValueError):
            time_callable(lambda: 1, repeat=0)

    def test_perf_timing_shim_warns_but_works(self):
        from repro.perf.timing import Timer as OldTimer
        from repro.perf.timing import time_callable as old_time_callable

        with pytest.warns(DeprecationWarning):
            with OldTimer() as t:
                pass
        assert t.elapsed >= 0.0
        with pytest.warns(DeprecationWarning):
            best, result = old_time_callable(lambda: 7, repeat=1)
        assert result == 7


# ---------------------------------------------------------------------------
# Deterministic JSON
# ---------------------------------------------------------------------------


class TestDeterministicJson:
    def test_sorted_keys_and_schema_version(self):
        s = to_json({"zebra": 1, "alpha": 2})
        doc = json.loads(s)
        assert doc["schema_version"] == 1
        assert list(doc) == sorted(doc)
        assert s.index('"alpha"') < s.index('"zebra"')

    def test_stable_floats_normalizes(self):
        assert stable_floats(0.1 + 0.2) == 0.3
        assert stable_floats(True) is True  # bool is not coerced to int
        assert stable_floats(np.float64(1.5)) == 1.5
        assert isinstance(stable_floats(np.int64(3)), int)
        assert stable_floats(np.arange(3)) == [0, 1, 2]
        nested = stable_floats({"a": [np.float32(2.0), {"b": (1, 2.5)}]})
        assert nested == {"a": [2.0, {"b": [1, 2.5]}]}

    def test_identical_payloads_serialize_identically(self):
        a = to_json({"x": 1.0000000000001, "y": [3.14159, {"k": 2}]})
        b = to_json({"y": [3.14159, {"k": 2}], "x": 1.0000000000001})
        assert a == b

    def test_registry_to_json_roundtrips(self):
        reg = Registry()
        reg.counter("md.steps").inc(3)
        reg.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        doc = json.loads(reg.to_json())
        assert doc["counters"]["md.steps"] == 3
        assert doc["schema_version"] == 1

    def test_write_json_deterministic_on_disk(self, tmp_path):
        reg = Registry()
        reg.counter("a").inc(1)
        reg.gauge("g").set(2.5)
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        reg.write_json(p1)
        reg.write_json(p2)
        assert p1.read_bytes() == p2.read_bytes()

    def test_tracer_export_json_has_schema(self, tmp_path, tracer):
        with obs.span("x"):
            pass
        path = tmp_path / "trace.json"
        tracer.write_json(path)
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == 1
        assert doc["phases"]["x"]["count"] == 1


# ---------------------------------------------------------------------------
# Thread-safety hammer
# ---------------------------------------------------------------------------


class TestConcurrency:
    N_THREADS = 8
    N_OPS = 2000

    def test_registry_hammer_exact_totals(self):
        reg = Registry()
        snapshots = []
        barrier = threading.Barrier(self.N_THREADS + 1)

        def worker(k):
            barrier.wait()
            c = reg.counter("hits")
            mine = reg.counter("hits", labels={"thread": str(k)})
            h = reg.histogram("lat", buckets=(0.25, 0.5, 1.0))
            g = reg.gauge("depth")
            for i in range(self.N_OPS):
                c.inc()
                mine.inc()
                h.observe((i % 4) / 4.0)
                g.inc()
                g.dec()

        threads = [
            threading.Thread(target=worker, args=(k,))
            for k in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        # Snapshot mid-flight: must be internally consistent, never raise.
        for _ in range(20):
            snapshots.append(reg.snapshot())
        for t in threads:
            t.join()

        snap = reg.snapshot()
        total = self.N_THREADS * self.N_OPS
        assert snap["counters"]["hits"] == total
        for k in range(self.N_THREADS):
            assert snap["counters"][f"hits{{thread={k}}}"] == self.N_OPS
        hist = snap["histograms"]["lat"]
        assert hist["count"] == total
        assert sum(hist["buckets"].values()) == total
        assert snap["gauges"]["depth"] == 0.0
        # Mid-flight snapshots: monotone counters, buckets sum to count.
        last = 0
        for s in snapshots:
            n = s["counters"].get("hits", 0)
            assert n >= last
            last = n
            lat = s["histograms"].get("lat")
            if lat is not None:
                assert sum(lat["buckets"].values()) == lat["count"]

    def test_tracer_hammer(self):
        t = Tracer(enabled=True, max_traces=8)
        barrier = threading.Barrier(self.N_THREADS)

        def worker():
            barrier.wait()
            for _ in range(200):
                with t.span("outer"):
                    with t.span("inner"):
                        pass

        threads = [
            threading.Thread(target=worker) for _ in range(self.N_THREADS)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        totals = t.phase_totals()
        assert totals["outer"]["count"] == self.N_THREADS * 200
        assert totals["outer/inner"]["count"] == self.N_THREADS * 200
        assert t.export()["n_traces_buffered"] == 8


# ---------------------------------------------------------------------------
# Cross-layer integration: one registry tree, spans through the hot paths
# ---------------------------------------------------------------------------


class TestIntegration:
    def _lj_sim(self, registry=None, engine="eager"):
        from repro.md import Cell, Simulation, System
        from repro.models import LennardJones

        rng = np.random.default_rng(0)
        n = 27
        grid = np.stack(
            np.meshgrid(*[np.arange(3)] * 3, indexing="ij"), axis=-1
        ).reshape(-1, 3)
        positions = 1.7 * grid + rng.normal(scale=0.02, size=(n, 3))
        system = System(positions, np.zeros(n, dtype=int), Cell.cubic(5.1))
        system.velocities = rng.normal(scale=0.05, size=(n, 3))
        return Simulation(
            system,
            LennardJones(epsilon=0.05, sigma=1.2, cutoff=2.0),
            dt=0.2,
            engine=engine,
            registry=registry,
        )

    def test_md_steps_and_spans_land_in_one_registry(self, tracer):
        reg = Registry()
        sim = self._lj_sim(registry=reg, engine="compiled")
        sim.run(5)
        snap = reg.snapshot()
        assert snap["counters"]["md.steps"] == 5
        # Engine counters share the same tree (one Registry underlies both).
        assert snap["counters"]["engine.captures"] >= 1
        assert snap["gauges"]["engine.arena_bytes"] > 0
        totals = tracer.phase_totals("md.")
        assert totals["md.step"]["count"] == 5
        assert totals["md.step/md.force"]["count"] == 5
        assert totals["md.step/md.force/engine.replay"]["count"] >= 1

    def test_simulation_stats_is_registry_view(self):
        sim = self._lj_sim(engine="compiled")
        sim.run(3)
        stats = sim.stats()
        assert stats["counters"]["md.steps"] == 3
        assert stats["engine_stats"]["n_replays"] >= 1
        assert stats["schema_version"] == 1

    def test_parallel_driver_shares_registry_tree(self):
        from repro.md import Cell, System
        from repro.models import LennardJones
        from repro.parallel import ParallelSimulation

        rng = np.random.default_rng(1)
        n = 32
        system = System(
            rng.uniform(0, 7.0, size=(n, 3)),
            np.zeros(n, dtype=int),
            Cell.cubic(7.0),
        )
        system.velocities = rng.normal(scale=0.02, size=(n, 3))
        reg = Registry()
        sim = ParallelSimulation(
            system,
            LennardJones(epsilon=0.05, sigma=1.5, cutoff=2.5),
            n_ranks=4,
            dt=0.2,
            registry=reg,
        )
        sim.run(2)
        snap = reg.snapshot()
        halo = [
            k for k in snap["counters"]
            if k.startswith("comm.bytes{category=halo")
        ]
        assert halo, f"no halo traffic counters in {sorted(snap['counters'])}"
        assert sim.evaluator.n_failures == 0
        assert sim.stats()["counters"] == snap["counters"]

    def test_trainer_counters_live_in_registry(self):
        from repro.data import conformation_dataset, label_frames
        from repro.models import ClassicalConfig, ClassicalForceField
        from repro.nn import TrainConfig, Trainer

        frames = label_frames(
            conformation_dataset(6, n_heavy=3, seed=4, sigma=0.05)
        )
        reg = Registry()
        tr = Trainer(
            ClassicalForceField(ClassicalConfig(n_species=4, r_cut=3.5)),
            frames,
            config=TrainConfig(
                lr=1e-2, batch_size=4, seed=0, grad_clip_norm=1e-9
            ),
            registry=reg,
        )
        tr.fit(1)
        assert reg.snapshot()["counters"]["train.clip_events"] >= 1
        assert tr.stats()["n_clip_events"] >= 1
