"""Shape/consistency tests for dataset containers and generator statistics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    ReferencePotential,
    molecule_dataset,
    perturbed_water_frames,
    water_box,
    water_unit_cell,
)
from repro.data.reference import SPECIES_INDEX
from repro.md import neighbor_list


class TestWaterStatistics:
    def test_liquid_density(self):
        """192-atom cell at liquid water density (~0.1 atoms/Å³)."""
        w = water_unit_cell()
        density = w.n_atoms / w.cell.volume
        assert 0.08 < density < 0.12

    def test_neighbor_count_scales_with_cutoff_cubed(self):
        w = water_box(2, seed=1)
        n3 = neighbor_list(w, 3.0).n_edges
        n6 = neighbor_list(w, 6.0).n_edges
        assert 5.0 < n6 / n3 < 12.0  # ideal (6/3)³ = 8 ± structure

    @given(st.integers(2, 4))
    @settings(max_examples=3, deadline=None)
    def test_grid_sizes(self, n_grid):
        w = water_unit_cell(n_grid=n_grid)
        assert w.n_atoms == 3 * n_grid**3

    def test_frames_share_composition(self):
        frames = perturbed_water_frames(3, n_grid=2, seed=9)
        ref = frames[0].species
        for f in frames[1:]:
            assert np.array_equal(f.species, ref)


class TestMoleculeStatistics:
    def test_species_restricted_to_hcno(self):
        for mol in molecule_dataset(5, seed=31):
            assert mol.species.max() <= 3

    def test_hydrogen_fraction_reasonable(self):
        """Organic molecules are roughly half hydrogen."""
        fracs = []
        for mol in molecule_dataset(10, seed=33):
            h = (mol.species == SPECIES_INDEX["H"]).sum()
            fracs.append(h / mol.n_atoms)
        assert 0.3 < np.mean(fracs) < 0.75

    def test_bond_lengths_physical(self):
        """Nearest-neighbor distances fall in covalent range (0.7–1.8 Å)."""
        from scipy.spatial.distance import pdist, squareform

        mol = molecule_dataset(1, seed=35)[0]
        d = squareform(pdist(mol.positions))
        np.fill_diagonal(d, np.inf)
        nearest = d.min(axis=0)
        assert nearest.min() > 0.6
        assert nearest.max() < 2.2


class TestReferenceEnergyScale:
    def test_cohesive_energies_negative(self):
        """Bound structures sit below the dissociated-atom limit (E = 0).

        Randomly grown molecules can carry construction strain, so they are
        briefly relaxed first; the claim is about (near-)equilibrium
        structures.
        """
        from repro.md import minimize

        ref = ReferencePotential()
        systems = [water_unit_cell(n_grid=3)] + molecule_dataset(2, seed=37)
        for system in systems[1:]:
            minimize(system, ref, max_steps=80, force_tol=0.3)
        for system in systems:
            e, _ = ref.label(system)
            assert e < 0.0

    def test_energy_per_atom_magnitude(self):
        """eV-scale per-atom energies, like real cohesive energies."""
        ref = ReferencePotential()
        w = water_unit_cell(n_grid=3)
        e, _ = ref.label(w)
        assert 0.05 < abs(e) / w.n_atoms < 10.0

    def test_force_scale_thermally_reasonable(self):
        """Forces on near-equilibrium thermal frames are sub-eV/Å scale."""
        ref = ReferencePotential()
        frames = perturbed_water_frames(2, n_grid=3, sigma=0.03, seed=39)
        for f in frames:
            _, forces = ref.label(f)
            assert np.abs(forces).max() < 20.0
            assert np.sqrt((forces**2).mean()) < 5.0
