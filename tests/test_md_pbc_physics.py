"""Physics consistency tests under periodic boundary conditions.

These catch the classic PBC bugs (stale shifts, double-counted images,
asymmetric wrap handling) at the level of observable physics rather than
data structures.
"""

import numpy as np
import pytest

from repro.data import ReferencePotential, water_unit_cell
from repro.md import Cell, Simulation, System, neighbor_list
from repro.models import AllegroConfig, AllegroModel, LennardJones


@pytest.fixture
def rng():
    return np.random.default_rng(131)


def tiny_allegro():
    return AllegroModel(
        AllegroConfig(
            n_species=4,
            n_tensor=2,
            latent_dim=8,
            two_body_hidden=(8,),
            latent_hidden=(8,),
            edge_energy_hidden=(4,),
            r_cut=3.0,
            avg_num_neighbors=20.0,
        )
    )


class TestPBCInvariances:
    def test_energy_invariant_under_lattice_translation(self, rng):
        """Shifting any atom by a full lattice vector changes nothing."""
        w = water_unit_cell(n_grid=3)
        model = tiny_allegro()
        e0, f0 = model.energy_and_forces(w)
        shifted = w.copy()
        shifted.positions[5] += w.cell.lengths * np.array([1, 0, -2])
        e1, f1 = model.energy_and_forces(shifted)
        assert e1 == pytest.approx(e0, rel=1e-10)
        assert np.allclose(f1, f0, atol=1e-9)

    def test_energy_invariant_under_rigid_translation(self, rng):
        w = water_unit_cell(n_grid=3)
        model = tiny_allegro()
        e0, f0 = model.energy_and_forces(w)
        shifted = w.copy()
        shifted.positions += np.array([1.234, -0.77, 3.1])
        e1, f1 = model.energy_and_forces(shifted)
        assert e1 == pytest.approx(e0, rel=1e-10)
        assert np.allclose(f1, f0, atol=1e-9)

    def test_supercell_energy_extensive(self, rng):
        """E(2×2×2 replication) = 8·E(cell) for a periodic potential."""
        ref = ReferencePotential(cutoff=3.0, three_body_cutoff=2.0)
        w = water_unit_cell(n_grid=2, seed=3)
        e1, _ = ref.label(w)
        pos, cell = w.cell.replicate(w.positions, (2, 2, 2))
        big = System(pos, np.tile(w.species, 8), cell, species_names=w.species_names)
        e8, _ = ref.label(big)
        assert e8 == pytest.approx(8 * e1, rel=1e-8)

    def test_forces_identical_across_replicas(self, rng):
        ref = ReferencePotential(cutoff=3.0, three_body_cutoff=2.0)
        w = water_unit_cell(n_grid=2, seed=3)
        _, f1 = ref.label(w)
        pos, cell = w.cell.replicate(w.positions, (2, 1, 1))
        big = System(pos, np.tile(w.species, 2), cell)
        _, f2 = ref.label(big)
        n = w.n_atoms
        assert np.allclose(f2[:n], f1, atol=1e-9)
        assert np.allclose(f2[n:], f1, atol=1e-9)

    def test_nve_with_boundary_crossings(self, rng):
        """Energy conserved while atoms stream through periodic boundaries."""
        n_side, a = 4, 1.8
        g = (
            np.stack(
                np.meshgrid(*[np.arange(n_side)] * 3, indexing="ij"), -1
            ).reshape(-1, 3)
            * a
        )
        s = System(
            g + rng.normal(scale=0.02, size=g.shape),
            np.zeros(len(g), int),
            Cell.cubic(n_side * a),
        )
        s.seed_velocities(40.0, rng)
        s.velocities += 0.015  # net drift guarantees boundary crossings
        lj = LennardJones(epsilon=0.02, sigma=1.6, cutoff=3.0)
        sim = Simulation(s, lj, dt=0.2)
        res = sim.run(200)
        drift = abs(res.total_energies[-1] - res.total_energies[0]) / len(g)
        assert drift < 5e-4
        assert sim.verlet.n_builds > 1  # crossings actually happened


class TestNeighborEdgeCases:
    def test_atom_exactly_on_boundary(self):
        s = System(
            np.array([[0.0, 4.0, 4.0], [7.9, 4.0, 4.0]]),
            np.zeros(2, int),
            Cell.cubic(8.0),
        )
        nl = neighbor_list(s, 1.0, "brute")
        assert nl.n_edges == 2  # sees each other across the boundary
        assert np.allclose(abs(nl.shifts[:, 0]), 8.0)

    def test_dense_cluster_in_large_box(self, rng):
        """Cell list handles highly non-uniform density."""
        cluster = rng.normal(scale=0.8, size=(50, 3)) + 10.0
        s = System(cluster, np.zeros(50, int), Cell.cubic(30.0))
        nl_c = neighbor_list(s, 2.0, "cells")
        nl_b = neighbor_list(s, 2.0, "brute")
        assert nl_c.n_edges == nl_b.n_edges
