"""Tests for the synthetic dataset generators and the reference potential."""

import numpy as np
import pytest
from scipy.spatial.distance import pdist

from repro.data import (
    BENCHMARK_SYSTEMS,
    ICE_LABELS,
    ReferencePotential,
    benchmark_proxy,
    conformation_dataset,
    ice_frames,
    ice_polymorph,
    label_frames,
    molecule_dataset,
    perturbed_water_frames,
    random_molecule,
    solvated_protein,
    split_frames,
    subsample,
    water_box,
    water_unit_cell,
)
from repro.data.reference import SPECIES_INDEX, default_species_params
from repro.equivariant.wigner import random_rotation
from repro.md import System, neighbor_list


@pytest.fixture
def rng():
    return np.random.default_rng(97)


class TestWater:
    def test_unit_cell_is_192_atoms(self):
        w = water_unit_cell()
        assert w.n_atoms == 192  # paper §VII-B
        assert np.isclose(w.cell.volume ** (1 / 3), 12.42)

    def test_composition(self):
        w = water_unit_cell()
        counts = np.bincount(w.species, minlength=4)
        assert counts[SPECIES_INDEX["O"]] == 64
        assert counts[SPECIES_INDEX["H"]] == 128

    def test_oh_geometry(self):
        w = water_unit_cell()
        o = w.positions[0]
        h1, h2 = w.positions[1], w.positions[2]
        assert np.isclose(np.linalg.norm(h1 - o), 0.9572, atol=1e-6)
        cos = (h1 - o) @ (h2 - o) / (np.linalg.norm(h1 - o) * np.linalg.norm(h2 - o))
        assert np.isclose(np.degrees(np.arccos(cos)), 104.52, atol=0.1)

    def test_replication(self):
        wb = water_box(2)
        assert wb.n_atoms == 192 * 8
        assert np.allclose(wb.cell.lengths, 2 * 12.42)

    def test_perturbed_frames_distinct(self):
        frames = perturbed_water_frames(3, sigma=0.05)
        assert len(frames) == 3
        assert not np.allclose(frames[0].positions, frames[1].positions)

    def test_deterministic(self):
        w1, w2 = water_unit_cell(seed=4), water_unit_cell(seed=4)
        assert np.allclose(w1.positions, w2.positions)


class TestIce:
    @pytest.mark.parametrize("label", ICE_LABELS)
    def test_polymorphs_build(self, label):
        ice = ice_polymorph(label, n_cells=2)
        assert ice.n_atoms % 3 == 0
        assert ice.n_atoms > 0

    def test_distinct_densities(self):
        dens = []
        for label in ICE_LABELS:
            ice = ice_polymorph(label, n_cells=2)
            dens.append(ice.n_atoms / ice.cell.volume)
        assert len({round(d, 4) for d in dens}) == 3

    def test_frames(self):
        frames = ice_frames("b", 2, n_cells=2)
        assert len(frames) == 2

    def test_unknown_label(self):
        with pytest.raises(ValueError):
            ice_polymorph("x")


class TestMolecules:
    def test_valence_saturation(self, rng):
        mol = random_molecule(n_heavy=6, seed=11)
        # Count bonds by proximity: every heavy atom's neighbors within 1.8 Å
        # should match its valence approximately; at minimum, H count > 0 and
        # no atom is isolated.
        nl = neighbor_list(System(mol.positions, mol.species), 1.8)
        degrees = np.bincount(nl.edge_index[0], minlength=mol.n_atoms)
        assert (degrees > 0).all()

    def test_no_severe_clashes(self):
        for seed in range(5):
            mol = random_molecule(n_heavy=7, seed=seed)
            assert pdist(mol.positions).min() > 0.6

    def test_heavy_atom_count(self):
        mol = random_molecule(n_heavy=5, seed=3)
        heavy = (mol.species != SPECIES_INDEX["H"]).sum()
        assert heavy == 5

    def test_molecule_dataset_sizes(self):
        mols = molecule_dataset(4, n_heavy_range=(3, 5), seed=2)
        assert len(mols) == 4

    def test_conformations_share_topology(self):
        frames = conformation_dataset(3, n_heavy=4, seed=5, sigma=0.05)
        assert all(f.n_atoms == frames[0].n_atoms for f in frames)
        assert all((f.species == frames[0].species).all() for f in frames)

    def test_rejects_zero_heavy(self):
        with pytest.raises(ValueError):
            random_molecule(n_heavy=0)


class TestProteins:
    def test_solvated_protein_structure(self):
        ps = solvated_protein(n_residues=4, seed=1)
        assert ps.system.n_atoms > 100
        assert len(ps.backbone_indices) == 4
        assert ps.system.cell is not None
        # waters carved away from the protein
        prot = ps.system.positions[ps.protein_indices]
        wat = np.delete(ps.system.positions, ps.protein_indices, axis=0)
        from scipy.spatial.distance import cdist

        assert cdist(prot, wat).min() > 0.8

    def test_benchmark_registry_matches_paper(self):
        assert BENCHMARK_SYSTEMS["stmv"] > 1_000_000
        assert BENCHMARK_SYSTEMS["capsid"] == 44_000_000
        assert BENCHMARK_SYSTEMS["dhfr"] < 25_000

    def test_benchmark_proxy(self):
        ps = benchmark_proxy("dhfr", max_atoms=400)
        assert 100 < ps.system.n_atoms < 2000
        with pytest.raises(KeyError):
            benchmark_proxy("nonexistent")


class TestReferencePotential:
    def test_e3_symmetries(self, rng):
        ref = ReferencePotential()
        mol = random_molecule(n_heavy=4, seed=7)
        E0, F0 = ref.label(mol)
        R = random_rotation(rng)
        rot = System(mol.positions @ R.T + 3.0, mol.species, None)
        E1, F1 = ref.label(rot)
        assert E1 == pytest.approx(E0, abs=1e-9)
        assert np.allclose(F1, F0 @ R.T, atol=1e-8)

    def test_forces_match_numeric_gradient(self):
        ref = ReferencePotential()
        mol = random_molecule(n_heavy=3, seed=9)
        nl = neighbor_list(mol, ref.cutoff)
        _, F = ref.label(mol, nl)
        eps = 1e-6
        for atom, ax in [(0, 0), (2, 1)]:
            p = mol.copy()
            p.positions[atom, ax] += eps
            m = mol.copy()
            m.positions[atom, ax] -= eps
            ep, _ = ref.label(p, nl)
            em, _ = ref.label(m, nl)
            assert -(ep - em) / (2 * eps) == pytest.approx(F[atom, ax], abs=1e-5)

    def test_three_body_term_is_not_pair_additive(self):
        """The angular 3-body energy cannot be absorbed into pair terms:
        E_full − E_pair-only varies with the bond angle at fixed bond
        lengths — the many-body physics pair potentials cannot represent."""
        full = ReferencePotential()
        params = default_species_params()
        params.three_body_lambda[:] = 0.0
        pair_only = ReferencePotential(params=params)
        r = 1.4

        def three_body_part(theta):
            pos = np.array(
                [
                    [0.0, 0.0, 0.0],
                    [r, 0.0, 0.0],
                    [r * np.cos(theta), r * np.sin(theta), 0.0],
                ]
            )
            s = System(pos, np.array([SPECIES_INDEX["C"]] * 3), None)
            return full.label(s)[0] - pair_only.label(s)[0]

        vals = [three_body_part(np.deg2rad(d)) for d in (90.0, 109.5, 150.0)]
        assert max(vals) - min(vals) > 0.05

    def test_hydrogen_has_no_angular_preference(self):
        params = default_species_params()
        assert params.three_body_lambda[SPECIES_INDEX["H"]] == 0.0

    def test_label_frames_and_filter(self):
        frames = label_frames(conformation_dataset(4, n_heavy=3, seed=13))
        assert len(frames) == 4
        strict = label_frames(
            conformation_dataset(4, n_heavy=3, seed=13), max_force=1e-9
        )
        assert len(strict) == 0  # everything filtered


class TestDatasetUtils:
    def test_split_partitions(self):
        frames = label_frames(conformation_dataset(10, n_heavy=3, seed=17))
        tr, va, te = split_frames(frames, (0.6, 0.2, 0.2), seed=1)
        assert len(tr) + len(va) + len(te) == 10
        ids = {id(f) for f in tr} | {id(f) for f in va} | {id(f) for f in te}
        assert len(ids) == 10

    def test_split_validates_fractions(self):
        with pytest.raises(ValueError):
            split_frames([], (0.5, 0.6))

    def test_subsample(self):
        frames = label_frames(conformation_dataset(6, n_heavy=3, seed=19))
        sub = subsample(frames, 3, seed=2)
        assert len(sub) == 3
        with pytest.raises(ValueError):
            subsample(frames, 99)
