"""Unit tests for the core autodiff Tensor type and arithmetic ops."""

import numpy as np
import pytest

import repro.autodiff as ad


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestTensorBasics:
    def test_construction_from_array(self, rng):
        arr = rng.normal(size=(3, 4))
        t = ad.Tensor(arr)
        assert t.shape == (3, 4)
        assert t.ndim == 2
        assert t.size == 12
        assert not t.requires_grad

    def test_construction_from_tensor_shares_data(self):
        t1 = ad.Tensor(np.ones(3))
        t2 = ad.Tensor(t1)
        assert t2.data is t1.data

    def test_requires_grad_casts_ints_to_float(self):
        t = ad.Tensor(np.array([1, 2, 3]), requires_grad=True)
        assert t.dtype.kind == "f"

    def test_astensor_passthrough(self):
        t = ad.Tensor(np.ones(3))
        assert ad.astensor(t) is t

    def test_item_and_len(self):
        assert ad.Tensor(np.array(2.5)).item() == 2.5
        assert len(ad.Tensor(np.zeros(7))) == 7

    def test_detach_cuts_tape(self):
        x = ad.Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad

    def test_repr_mentions_grad(self):
        t = ad.Tensor(np.ones(2), requires_grad=True)
        assert "requires_grad" in repr(t)


class TestArithmetic:
    def test_add_backward(self):
        x = ad.Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = ad.Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (x + y).sum().backward()
        assert np.allclose(x.grad.data, [1, 1])
        assert np.allclose(y.grad.data, [1, 1])

    def test_mul_backward(self):
        x = ad.Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = ad.Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (x * y).sum().backward()
        assert np.allclose(x.grad.data, [3, 4])
        assert np.allclose(y.grad.data, [1, 2])

    def test_div_backward(self, rng):
        ad.gradcheck(lambda a, b: a / b, [rng.normal(size=4), 1.0 + rng.random(4)])

    def test_sub_and_neg(self, rng):
        ad.gradcheck(lambda a, b: a - b, [rng.normal(size=4), rng.normal(size=4)])
        ad.gradcheck(lambda a: -a, [rng.normal(size=(2, 3))])

    def test_pow_backward(self, rng):
        ad.gradcheck(lambda a: a**3, [1.0 + rng.random(5)])
        ad.gradcheck(lambda a: a**-1.5, [1.0 + rng.random(5)])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            ad.Tensor(np.ones(2)) ** ad.Tensor(np.ones(2))

    def test_scalar_broadcasting(self):
        x = ad.Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (2.0 * x + 1.0).sum().backward()
        assert np.allclose(x.grad.data, [2, 2])

    def test_radd_rsub_rtruediv(self, rng):
        ad.gradcheck(lambda a: 3.0 - a, [rng.normal(size=3)])
        ad.gradcheck(lambda a: 2.0 / a, [1.0 + rng.random(3)])

    def test_broadcast_unbroadcast_gradients(self, rng):
        # (3, 1) * (4,) broadcasts to (3, 4); grads must fold back.
        a = ad.Tensor(rng.normal(size=(3, 1)), requires_grad=True)
        b = ad.Tensor(rng.normal(size=(4,)), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.data.shape == (3, 1)
        assert b.grad.data.shape == (4,)
        ad.gradcheck(lambda x, y: x * y, [rng.normal(size=(3, 1)), rng.normal(size=4)])

    def test_gradient_accumulation_across_uses(self):
        x = ad.Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0  # x used twice
        y.backward()
        assert np.allclose(x.grad.data, [7.0])

    def test_comparisons_return_numpy(self):
        x = ad.Tensor(np.array([1.0, 5.0]))
        assert (x > 2.0).dtype == bool
        assert (x <= 5.0).all()


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self, rng):
        ad.gradcheck(lambda a: a.sum(axis=0), [rng.normal(size=(3, 4))])
        ad.gradcheck(lambda a: a.sum(axis=1, keepdims=True), [rng.normal(size=(3, 4))])
        ad.gradcheck(lambda a: a.sum(axis=(0, 2)), [rng.normal(size=(2, 3, 4))])

    def test_mean(self, rng):
        x = ad.Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        x.mean().backward()
        assert np.allclose(x.grad.data, np.full((4, 5), 1 / 20))
        ad.gradcheck(lambda a: a.mean(axis=1), [rng.normal(size=(3, 4))])

    def test_reshape_transpose(self, rng):
        ad.gradcheck(lambda a: a.reshape(6, 2), [rng.normal(size=(3, 4))])
        ad.gradcheck(lambda a: a.transpose(1, 0, 2), [rng.normal(size=(2, 3, 4))])
        ad.gradcheck(lambda a: a.T, [rng.normal(size=(3, 4))])
        ad.gradcheck(lambda a: a.swapaxes(-1, -2), [rng.normal(size=(2, 3, 4))])

    def test_getitem_basic_and_fancy(self, rng):
        ad.gradcheck(lambda a: a[1:], [rng.normal(size=(4, 3))])
        ad.gradcheck(lambda a: a[np.array([0, 2, 2])], [rng.normal(size=(4, 3))])
        ad.gradcheck(lambda a: a[:, 1], [rng.normal(size=(4, 3))])

    def test_getitem_duplicate_indices_accumulate(self):
        x = ad.Tensor(np.arange(3.0), requires_grad=True)
        y = x[np.array([1, 1, 1])]
        y.sum().backward()
        assert np.allclose(x.grad.data, [0, 3, 0])

    def test_expand_squeeze(self, rng):
        ad.gradcheck(lambda a: a.expand_dims(1), [rng.normal(size=(3, 4))])
        ad.gradcheck(lambda a: a.expand_dims(-1), [rng.normal(size=(3,))])
        ad.gradcheck(lambda a: a.expand_dims(0).squeeze(0), [rng.normal(size=(3,))])

    def test_broadcast_to(self, rng):
        ad.gradcheck(lambda a: a.broadcast_to((5, 3)), [rng.normal(size=(3,))])

    def test_astype_roundtrip_gradient(self):
        x = ad.Tensor(np.ones(3), requires_grad=True)
        y = x.astype(np.float32) * 2.0
        y.sum().backward()
        assert x.grad.data.dtype == np.float64
        assert np.allclose(x.grad.data, 2.0)


class TestBackwardMachinery:
    def test_backward_requires_matching_seed(self):
        x = ad.Tensor(np.ones((2, 2)), requires_grad=True)
        y = x * 2.0
        with pytest.raises(ValueError):
            y.backward(np.ones(3))

    def test_no_grad_blocks_tape(self):
        x = ad.Tensor(np.ones(3), requires_grad=True)
        with ad.no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert ad.is_grad_enabled()

    def test_deep_chain_no_recursion_error(self):
        x = ad.Tensor(np.ones(2), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()
        assert np.allclose(x.grad.data, [1, 1])

    def test_grad_functional_does_not_pollute(self):
        x = ad.Tensor(np.ones(3), requires_grad=True)
        w = ad.Tensor(np.full(3, 2.0), requires_grad=True)
        y = (x * w).sum()
        (gx,) = ad.grad(y, [x])
        assert np.allclose(gx.data, 2.0)
        assert x.grad is None and w.grad is None

    def test_grad_unused_input_returns_zeros(self):
        x = ad.Tensor(np.ones(3), requires_grad=True)
        z = ad.Tensor(np.ones(2), requires_grad=True)
        (gz,) = ad.grad((x * 2).sum(), [z])
        assert np.allclose(gz.data, 0.0)

    def test_zero_grad(self):
        x = ad.Tensor(np.ones(2), requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None
