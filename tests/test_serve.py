"""Serving-layer tests: exactness, caching, batching, backpressure, lifecycle.

The acceptance contract for ``repro.serve`` mirrors the engine's: served
energies and forces must be *bitwise* identical (float64) to direct eager
evaluation of each structure — batching, padding, plan reuse and thread
hand-offs change throughput, never physics.  Around that core, these tests
pin down the operational behaviours a service needs: registry versioning
and LRU eviction of compiled state, bucket-cache hit/miss accounting,
micro-batch coalescing, shed-with-error backpressure, queue-wait timeouts,
and graceful drain.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.md import Cell, System, neighbor_list
from repro.models import LennardJones, MorsePotential
from repro.models.electrostatics import WolfCoulomb
from repro.resilience import FaultPlan, RetryPolicy
from repro.resilience.faults import POTENTIAL_CORRUPT, WORKER_CRASH, WORKER_STALL
from repro.serve import (
    CircuitOpen,
    Client,
    ForceServer,
    Metrics,
    MicroBatcher,
    ModelFailure,
    ModelRegistry,
    PlanCache,
    RequestTimeout,
    ServeError,
    ServerOverloaded,
    SizeClasses,
    UnknownModelError,
    concatenate_structures,
)
from repro.serve.batching import ForceRequest
from repro.serve.metrics import Histogram


def make_system(n=12, seed=0, box=8.0):
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0, box, size=(n, 3))
    spec = rng.integers(0, 2, size=n)
    return System(pos, spec, Cell.cubic(box))


def make_lj():
    return LennardJones(epsilon=0.8, sigma=1.1, cutoff=3.0, n_species=2)


def make_morse():
    D = np.full((2, 2), 0.4)
    a = np.full((2, 2), 1.6)
    r0 = np.full((2, 2), 1.4)
    return MorsePotential(D, a, r0, cutoff=3.5)


class SlowLJ(LennardJones):
    """LJ whose neighbor-list build sleeps: a controllable slow model."""

    def __init__(self, delay, **kw):
        super().__init__(**kw)
        self.delay = delay

    def prepare_neighbors(self, system):
        time.sleep(self.delay)
        return neighbor_list(system, self.cutoff)


def direct_eager(pot, system):
    """The reference result: eager evaluation with the server's NL recipe."""
    prepare = getattr(pot, "prepare_neighbors", None)
    nl = prepare(system) if prepare is not None else neighbor_list(system, pot.cutoff)
    return pot.energy_and_forces(system, nl)


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counters_and_get_or_create(self):
        m = Metrics()
        m.counter("requests").inc()
        m.counter("requests").inc(4)
        assert m.counter("requests").value == 5
        assert m.snapshot()["counters"] == {"requests": 5}

    def test_histogram_moments_and_percentiles(self):
        m = Metrics()
        h = m.histogram("lat", buckets=[0.001, 0.01, 0.1, 1.0])
        for x in [0.002, 0.003, 0.004, 0.05, 0.5]:
            h.observe(x)
        snap = h.snapshot()
        assert snap["count"] == 5
        assert snap["min"] == 0.002 and snap["max"] == 0.5
        assert snap["mean"] == pytest.approx(sum([0.002, 0.003, 0.004, 0.05, 0.5]) / 5)
        # Percentiles are bucket-interpolated: right bucket, monotone in q.
        assert 0.001 <= h.percentile(0.5) <= 0.01
        assert h.percentile(0.99) <= 0.5
        assert h.percentile(0.2) <= h.percentile(0.8)

    def test_histogram_rejects_bad_buckets(self):
        lock = threading.Lock()
        with pytest.raises(ValueError):
            Histogram("h", [1.0, 0.5], lock)
        with pytest.raises(ValueError):
            Histogram("h", [], lock)

    def test_snapshot_json_roundtrip_and_delta(self):
        m = Metrics()
        m.counter("a").inc(3)
        m.histogram("h").observe(0.01)
        before = m.snapshot()
        m.counter("a").inc(2)
        m.counter("b").inc()
        delta = Metrics.delta_since(before, m.snapshot())
        assert delta == {"a": 2, "b": 1}
        parsed = json.loads(m.to_json())
        assert parsed["counters"]["a"] == 5
        assert parsed["histograms"]["h"]["count"] == 1

    def test_write_json(self, tmp_path):
        m = Metrics()
        m.counter("x").inc()
        path = tmp_path / "metrics.json"
        m.write_json(path)
        assert json.loads(path.read_text())["counters"]["x"] == 1


# ---------------------------------------------------------------------------
# size classes and plan cache
# ---------------------------------------------------------------------------


class TestSizeClasses:
    def test_ladder_covers_and_is_deterministic(self):
        sc = SizeClasses(floor=16, growth=1.5)
        for n in [1, 16, 17, 24, 25, 100, 1000]:
            c = sc.round_up(n)
            assert c >= n
            assert sc.round_up(n) == c  # stable
        assert sc.round_up(5) == 16  # floor
        # Ladder is geometric: distinct classes stay sparse.
        classes = {sc.round_up(n) for n in range(1, 2000)}
        assert len(classes) < 16

    def test_validation(self):
        with pytest.raises(ValueError):
            SizeClasses(floor=0)
        with pytest.raises(ValueError):
            SizeClasses(growth=1.0)


class TestPlanCache:
    def test_hit_miss_accounting(self):
        cache = PlanCache(make_lj(), max_plans=4)
        e1 = cache.acquire(10, 60)
        e2 = cache.acquire(11, 55)  # same buckets
        assert e1 is e2
        assert (cache.n_hits, cache.n_misses) == (1, 1)
        cache.acquire(200, 900)  # new bucket
        assert (cache.n_hits, cache.n_misses) == (1, 2)
        stats = cache.stats()
        assert stats["n_plans"] == 2
        assert stats["hit_rate"] == pytest.approx(1 / 3)

    def test_mixed_sizes_map_to_few_buckets(self):
        cache = PlanCache(make_lj(), max_plans=32)
        for n in range(5, 60):
            cache.acquire(n, n * 6)
        # 55 distinct request sizes collapse onto a small (atom, pair)
        # class grid — the property that keeps replay hit-rate high.
        assert cache.n_plans <= 12

    def test_lru_eviction(self):
        cache = PlanCache(make_lj(), max_plans=2)
        k_small = cache.acquire(10, 64).key
        cache.acquire(100, 600)
        cache.acquire(10, 64)  # touch small → MRU
        cache.acquire(400, 4000)  # evicts the middle bucket
        assert cache.n_evictions == 1
        assert k_small in cache.keys()
        assert cache.n_plans == 2

    def test_bucketed_evaluate_replays_and_is_exact(self):
        pot = make_lj()
        cache = PlanCache(pot)
        for seed in range(4):
            system = make_system(n=14, seed=seed)
            nl = neighbor_list(system, pot.cutoff)
            e0, f0 = pot.energy_and_forces(system, nl)
            entry = cache.acquire(system.n_atoms, nl.n_edges)
            with entry.lock:
                e_atoms, forces = entry.compiled.evaluate(
                    system.positions, system.species, nl
                )
                assert float(np.sum(e_atoms[: system.n_atoms])) == e0
                np.testing.assert_array_equal(forces[: system.n_atoms], f0)
        stats = cache.stats()
        assert stats["n_captures"] == 1  # one bucket, one capture
        assert stats["n_replays"] == 4

    def test_clear_drops_plans(self):
        cache = PlanCache(make_lj())
        cache.acquire(10, 64)
        cache.clear()
        assert cache.n_plans == 0
        assert cache.n_evictions == 1


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class TestModelRegistry:
    def test_register_resolve_and_default(self):
        reg = ModelRegistry()
        reg.register("lj", make_lj())
        reg.register("morse", make_morse())
        assert reg.default_model == "lj"
        assert reg.resolve_key(None) == "lj:v1"
        assert reg.resolve_key("morse") == "morse:v1"
        assert reg.names() == ["lj", "morse"]

    def test_version_pinning_and_latest(self):
        reg = ModelRegistry()
        reg.register("lj", make_lj(), version="v1")
        v2 = make_lj()
        reg.register("lj", v2, version="v2")
        assert reg.resolve_key("lj") == "lj:v2"
        assert reg.get("lj").potential is v2
        assert reg.get("lj:v1").potential is not v2
        assert set(reg.keys()) == {"lj:v1", "lj:v2"}

    def test_unknown_model_raises(self):
        reg = ModelRegistry()
        with pytest.raises(UnknownModelError):
            reg.resolve_key(None)  # empty registry
        reg.register("lj", make_lj())
        with pytest.raises(UnknownModelError):
            reg.get("nequip")
        with pytest.raises(UnknownModelError):
            reg.get("lj:v9")

    def test_lru_evicts_compiled_state_not_identity(self):
        reg = ModelRegistry(max_compiled=2)
        for name in ("a", "b", "c"):
            reg.register(name, make_lj())
        ea = reg.get("a")
        reg.get("b")
        assert ea.compiled
        reg.get("c")  # exceeds max_compiled → evicts a's plans
        assert reg.n_evictions == 1
        assert not ea.compiled
        assert "a" in reg.names()  # identity survives
        assert reg.get("a").compiled  # transparently rebuilt (evicting b or c)
        assert reg.stats()["n_compiled"] == 2

    def test_invalidate_drops_plans(self):
        reg = ModelRegistry()
        reg.register("lj", make_lj())
        entry = reg.get("lj")
        entry.ensure_cache().acquire(10, 64)
        reg.invalidate("lj")
        assert not reg.peek("lj").compiled

    def test_colon_in_name_rejected(self):
        with pytest.raises(ValueError):
            ModelRegistry().register("a:b", make_lj())


# ---------------------------------------------------------------------------
# micro-batcher
# ---------------------------------------------------------------------------


def _req(model="m", t=None):
    return ForceRequest(
        system=None, model=model, future=None, t_enqueue=t if t is not None else 0.0
    )


class TestMicroBatcher:
    def test_full_batch_releases_immediately(self):
        b = MicroBatcher(max_batch=4, max_wait=10.0)  # window would block
        for _ in range(4):
            b.put(_req())
        batch = b.get_batch(timeout=0.5)
        assert batch is not None and len(batch) == 4
        assert b.pending() == 0

    def test_partial_batch_waits_out_the_window(self):
        b = MicroBatcher(max_batch=8, max_wait=0.05, adaptive=False)
        b.put(_req())
        t0 = time.monotonic()
        batch = b.get_batch(timeout=1.0)
        waited = time.monotonic() - t0
        assert len(batch) == 1
        assert waited >= 0.02  # held for (most of) the window

    def test_batches_never_mix_models(self):
        b = MicroBatcher(max_batch=8, max_wait=0.0)
        for k in range(6):
            b.put(_req(model="x" if k % 2 else "y"))
        seen = []
        while b.pending():
            batch = b.get_batch(timeout=0.2)
            assert len({r.model for r in batch}) == 1
            seen.append((batch[0].model, len(batch)))
        assert sorted(seen) == [("x", 3), ("y", 3)]

    def test_fifo_within_model(self):
        b = MicroBatcher(max_batch=8, max_wait=0.0)
        now = time.monotonic()
        for k in range(5):
            b.put(_req(t=now + k * 1e-6))
        batch = b.get_batch(timeout=0.2)
        stamps = [r.t_enqueue for r in batch]
        assert stamps == sorted(stamps)

    def test_adaptive_window_tracks_arrival_rate(self):
        clock_val = [0.0]
        b = MicroBatcher(max_batch=5, max_wait=1.0, clock=lambda: clock_val[0])
        for _ in range(10):
            clock_val[0] += 0.001  # 1 ms gaps
            b.put(_req(t=clock_val[0]))
        # window ≈ gap * (max_batch - 1) = 4 ms, far below max_wait.
        assert 0.0 < b.window() < 0.1

    def test_close_drains_then_none(self):
        b = MicroBatcher(max_batch=8, max_wait=10.0)
        b.put(_req())
        b.close()
        # Closed ⇒ the coalescing window no longer applies: drain promptly.
        assert len(b.get_batch(timeout=0.2)) == 1
        assert b.get_batch(timeout=0.0) is None
        with pytest.raises(RuntimeError):
            b.put(_req())

    def test_get_batch_times_out_empty(self):
        b = MicroBatcher()
        t0 = time.monotonic()
        assert b.get_batch(timeout=0.02) is None
        assert time.monotonic() - t0 < 1.0


# ---------------------------------------------------------------------------
# concatenation
# ---------------------------------------------------------------------------


class TestConcatenation:
    def test_offsets_and_edge_shifting(self):
        s1, s2 = make_system(n=5, seed=1), make_system(n=7, seed=2)
        nl1 = neighbor_list(s1, 3.0)
        nl2 = neighbor_list(s2, 3.0)
        pos, spec, nl, offsets = concatenate_structures([s1, s2], [nl1, nl2])
        assert pos.shape == (12, 3) and spec.shape == (12,)
        assert offsets.tolist() == [0, 5, 12]
        assert nl.n_edges == nl1.n_edges + nl2.n_edges
        # Graphs stay disjoint: s2's edges index only s2's atom rows.
        tail = nl.edge_index[:, nl1.n_edges :]
        assert tail.min() >= 5 if tail.size else True

    def test_mismatched_lengths_rejected(self):
        s = make_system(n=5, seed=1)
        with pytest.raises(ValueError):
            concatenate_structures([s], [])


# ---------------------------------------------------------------------------
# the server: exactness
# ---------------------------------------------------------------------------


class TestServedExactness:
    @pytest.mark.parametrize("engine", ["compiled", "eager"])
    def test_served_results_bitwise_match_direct_eager(self, engine):
        """The acceptance criterion: serving is invisible in float64."""
        pot = make_lj()
        systems = [make_system(n=8 + (k % 9), seed=k) for k in range(24)]
        with ForceServer(pot, n_workers=2, max_batch=6, engine=engine) as server:
            results = Client(server).evaluate_many(systems)
        for system, (e, f) in zip(systems, results):
            e0, f0 = direct_eager(pot, system)
            assert e == e0
            np.testing.assert_array_equal(f, f0)

    def test_morse_served_bitwise(self):
        pot = make_morse()
        systems = [make_system(n=10 + k, seed=k) for k in range(8)]
        with ForceServer(pot, n_workers=2, max_batch=4) as server:
            results = server.evaluate_many(systems)
        for system, (e, f) in zip(systems, results):
            e0, f0 = direct_eager(pot, system)
            assert e == e0
            np.testing.assert_array_equal(f, f0)

    def test_zero_edge_structures_use_exact_empty_path(self):
        """Models with non-trivial empty-graph energies (Wolf self-term)."""
        pot = WolfCoulomb(np.array([0.4, -0.4]), alpha=0.3, cutoff=3.5)
        sparse = System(
            np.array([[0.0, 0.0, 0.0], [20.0, 20.0, 20.0]]),
            np.array([0, 1]),
            Cell.cubic(50.0),
        )
        dense = make_system(n=10, seed=3)
        with ForceServer(pot, n_workers=1, max_batch=4) as server:
            (e_s, f_s), (e_d, f_d) = server.evaluate_many([sparse, dense])
        e0, f0 = direct_eager(pot, sparse)
        assert e_s == e0 and e_s != 0.0  # the self-energy survived serving
        np.testing.assert_array_equal(f_s, f0)
        e1, f1 = direct_eager(pot, dense)
        assert e_d == e1
        np.testing.assert_array_equal(f_d, f1)

    def test_caller_supplied_neighbor_list_is_respected(self):
        pot = make_lj()
        system = make_system(n=12, seed=5)
        nl = neighbor_list(system, pot.cutoff)
        e0, f0 = pot.energy_and_forces(system, nl)
        with ForceServer(pot, n_workers=1) as server:
            e, f = server.evaluate(system, nl=nl)
        assert e == e0
        np.testing.assert_array_equal(f, f0)

    def test_multi_model_routing(self):
        reg = ModelRegistry()
        lj, morse = make_lj(), make_morse()
        reg.register("lj", lj)
        reg.register("morse", morse)
        system = make_system(n=12, seed=7)
        with ForceServer(reg, n_workers=2) as server:
            e_lj, _ = server.evaluate(system, model="lj")
            e_m, _ = server.evaluate(system, model="morse")
        assert e_lj == direct_eager(lj, system)[0]
        assert e_m == direct_eager(morse, system)[0]
        assert e_lj != e_m


# ---------------------------------------------------------------------------
# the server: plan reuse
# ---------------------------------------------------------------------------


class TestReplayRate:
    def test_mixed_size_stream_replays_after_warmup(self):
        """≥95% plan replays post-warmup on heterogeneous request sizes."""
        pot = make_lj()
        systems = [make_system(n=9 + (k % 12), seed=k) for k in range(40)]
        with ForceServer(pot, n_workers=2, max_batch=8) as server:
            client = Client(server)
            client.evaluate_many(systems)  # warmup: discovers the buckets
            before = server.metrics.snapshot()
            for _ in range(3):
                client.evaluate_many(systems)
            delta = Metrics.delta_since(before, server.metrics.snapshot())
        replays = delta.get("plan_replays", 0)
        captures = delta.get("plan_captures", 0)
        assert replays + captures > 0
        rate = replays / (replays + captures)
        assert rate >= 0.95, f"post-warmup replay rate {rate:.2%}"

    def test_single_size_stream_uses_one_plan(self):
        pot = make_lj()
        systems = [make_system(n=12, seed=k) for k in range(12)]
        with ForceServer(pot, n_workers=1, max_batch=1) as server:
            server.evaluate_many(systems)
            stats = server.stats()
        model_stats = stats["registry"]["models"]["default:v1"]
        assert model_stats["n_plans"] <= 2  # edge counts may straddle a class
        assert model_stats["misses"] == model_stats["n_plans"]
        assert model_stats["hits"] == 12 - model_stats["misses"]


# ---------------------------------------------------------------------------
# the server: backpressure, timeouts, lifecycle
# ---------------------------------------------------------------------------


class TestBackpressure:
    def test_full_queue_sheds_with_error(self):
        reg = ModelRegistry()
        reg.register("slow", SlowLJ(0.15, epsilon=0.8, sigma=1.1, cutoff=3.0, n_species=2))
        system = make_system(n=6, seed=0)
        with ForceServer(reg, n_workers=1, max_queue=3, max_batch=1) as server:
            futures = []
            with pytest.raises(ServerOverloaded):
                for _ in range(8):  # worker absorbs ≤1; pending must hit the cap
                    futures.append(server.submit(system, model="slow"))
            assert server.metrics.counter("requests_shed").value >= 1
            # Admitted requests still complete: shedding is not failure.
            for fut in futures:
                e, f = fut.result(timeout=10.0)
                assert np.isfinite(e)
        snap = server.stats()
        assert snap["counters"]["requests_shed"] >= 1
        assert snap["counters"]["requests_served"] == len(futures)

    def test_server_recovers_after_shedding(self):
        pot = make_lj()
        system = make_system(n=10, seed=1)
        reg = ModelRegistry()
        reg.register("slow", SlowLJ(0.1, epsilon=0.8, sigma=1.1, cutoff=3.0, n_species=2))
        reg.register("fast", pot)
        with ForceServer(reg, n_workers=1, max_queue=2, max_batch=1) as server:
            try:
                for _ in range(6):
                    server.submit(system, model="slow")
            except ServerOverloaded:
                pass
            server.drain(timeout=10.0)
            e, _ = server.evaluate(system, model="fast")
            assert e == direct_eager(pot, system)[0]


class TestTimeouts:
    def test_stale_request_fails_with_timeout(self):
        reg = ModelRegistry()
        reg.register("slow", SlowLJ(0.25, epsilon=0.8, sigma=1.1, cutoff=3.0, n_species=2))
        reg.register("fast", make_lj())
        system = make_system(n=6, seed=0)
        with ForceServer(reg, n_workers=1, max_batch=1) as server:
            blocker = server.submit(system, model="slow")
            stale = server.submit(system, model="fast", timeout=0.05)
            with pytest.raises(RequestTimeout):
                stale.result(timeout=10.0)
            blocker.result(timeout=10.0)
            assert server.metrics.counter("requests_timeout").value == 1

    def test_generous_timeout_succeeds(self):
        pot = make_lj()
        system = make_system(n=10, seed=2)
        with ForceServer(pot, n_workers=1, default_timeout=30.0) as server:
            e, _ = server.evaluate(system)
        assert e == direct_eager(pot, system)[0]


class TestLifecycle:
    def test_drain_completes_all_admitted(self):
        pot = make_lj()
        systems = [make_system(n=10, seed=k) for k in range(10)]
        server = ForceServer(pot, n_workers=2, max_batch=4)
        futures = [server.submit(s) for s in systems]
        assert server.drain(timeout=10.0)
        assert all(f.done() for f in futures)
        server.stop()

    def test_stop_rejects_new_work(self):
        # Regression: submit-after-stop must raise the *typed*
        # ServerStopped (error class "shutdown"), not a bare ServeError.
        from repro.serve import ServerStopped

        server = ForceServer(make_lj(), n_workers=1)
        server.stop()
        with pytest.raises(ServerStopped):
            server.submit(make_system())
        assert issubclass(ServerStopped, ServeError)
        counters = server.metrics.snapshot()["counters"]
        assert counters["errors_shutdown"] == 1

    def test_context_manager_drains_on_exit(self):
        with ForceServer(make_lj(), n_workers=1) as server:
            fut = server.submit(make_system(n=10, seed=0))
        assert fut.done() and fut.exception() is None

    def test_unknown_model_raises_at_submit(self):
        with ForceServer(make_lj(), n_workers=1) as server:
            with pytest.raises(UnknownModelError):
                server.submit(make_system(), model="nope")

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ForceServer(make_lj(), engine="jit", start=False)
        with pytest.raises(ValueError):
            ForceServer(make_lj(), n_workers=0, start=False)
        with pytest.raises(ValueError):
            ForceServer(make_lj(), max_queue=0, start=False)

    def test_stats_shape(self):
        with ForceServer(make_lj(), n_workers=1) as server:
            server.evaluate(make_system(n=10, seed=0))
            stats = server.stats()
        assert stats["engine"] == "compiled"
        assert 0.0 <= stats["replay_rate"] <= 1.0
        assert "latency_s" in stats["histograms"]
        assert stats["counters"]["requests_served"] == 1
        json.dumps(stats, default=float)  # snapshot must be serializable


# ---------------------------------------------------------------------------
# concurrency: many clients, one server
# ---------------------------------------------------------------------------


class TestConcurrentClients:
    def test_parallel_submitters_all_get_exact_results(self):
        pot = make_lj()
        systems = [make_system(n=8 + (k % 7), seed=k) for k in range(24)]
        expected = [direct_eager(pot, s) for s in systems]
        results = [None] * len(systems)
        with ForceServer(pot, n_workers=3, max_batch=4, max_queue=64) as server:
            def submit_range(lo, hi):
                for k in range(lo, hi):
                    results[k] = server.evaluate(systems[k])

            threads = [
                threading.Thread(target=submit_range, args=(lo, lo + 8))
                for lo in (0, 8, 16)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for (e, f), (e0, f0) in zip(results, expected):
            assert e == e0
            np.testing.assert_array_equal(f, f0)


# ---------------------------------------------------------------------------
# resilience: shutdown semantics, fault injection, circuit breaking
# ---------------------------------------------------------------------------


class CorruptingLJ(LennardJones):
    """LJ whose per-atom energies go NaN on scheduled calls (fault harness)."""

    def __init__(self, plan, **kw):
        super().__init__(**kw)
        self.plan = plan

    def atomic_energies(self, positions, species, nl):
        e = super().atomic_energies(positions, species, nl)
        if self.plan.fires(POTENTIAL_CORRUPT):
            return e * float("nan")
        return e


class HealsAfterLJ(LennardJones):
    """LJ that raises for the first ``fails_left`` evaluations, then works."""

    def __init__(self, fails_left, **kw):
        super().__init__(**kw)
        self.fails_left = fails_left

    def atomic_energies(self, positions, species, nl):
        if self.fails_left > 0:
            self.fails_left -= 1
            raise RuntimeError("model backend down")
        return super().atomic_energies(positions, species, nl)


class TestShutdownResilience:
    def test_stop_no_drain_fails_pending_futures(self):
        pot = SlowLJ(delay=0.05, epsilon=0.8, sigma=1.1, cutoff=3.0, n_species=2)
        server = ForceServer(
            pot, n_workers=1, max_batch=1, batch_wait=0.0, engine="eager"
        )
        futures = [server.submit(make_system(n=10, seed=k)) for k in range(8)]
        server.stop(drain=False)
        # Every admitted future resolves — finished or explicitly failed,
        # never left hanging.
        for fut in futures:
            assert fut.done()
            exc = fut.exception()
            assert exc is None or isinstance(exc, ServeError)
        assert any(isinstance(f.exception(), ServeError) for f in futures)
        errors = server.stats()["errors"]
        assert errors["shutdown"] >= 1

    def test_concurrent_stop_calls_resolve_everything(self):
        pot = SlowLJ(delay=0.02, epsilon=0.8, sigma=1.1, cutoff=3.0, n_species=2)
        server = ForceServer(
            pot, n_workers=2, max_batch=1, batch_wait=0.0, engine="eager"
        )
        futures = [server.submit(make_system(n=10, seed=k)) for k in range(10)]
        threads = [
            threading.Thread(target=server.stop, kwargs={"drain": False})
            for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for fut in futures:
            assert fut.done()
            exc = fut.exception()
            assert exc is None or isinstance(exc, ServeError)


class TestFaultInjectionServing:
    def test_injected_faults_all_requests_complete_correctly(self):
        """Worker crashes + stalls + NaN bursts: retries absorb everything,
        and every result equals the fault-free evaluation bitwise."""
        plan = FaultPlan(
            at={
                WORKER_CRASH: [2, 7, 8],
                WORKER_STALL: [4],
                POTENTIAL_CORRUPT: [5, 11],
            }
        )
        pot = CorruptingLJ(plan, epsilon=0.8, sigma=1.1, cutoff=3.0, n_species=2)
        ref = make_lj()
        systems = [make_system(n=8 + (k % 5), seed=k) for k in range(24)]
        server = ForceServer(
            pot,
            n_workers=1,  # sequential batches: the schedule is deterministic
            max_batch=2,
            engine="eager",
            fault_plan=plan,
            stall_time=0.001,
            retry_policy=RetryPolicy(
                max_retries=4, base_delay=1e-4, max_delay=1e-3, seed=2
            ),
        )
        futures = [server.submit(s) for s in systems]
        server.stop(drain=True)
        assert plan.fired(WORKER_CRASH) == 3
        assert plan.fired(POTENTIAL_CORRUPT) == 2
        for fut, s in zip(futures, systems):
            assert fut.exception() is None
            e, f = fut.result()
            e0, f0 = direct_eager(ref, s)
            assert e == e0
            np.testing.assert_array_equal(f, f0)
        stats = server.stats()
        assert stats["counters"]["batch_retries"] >= 5
        assert stats["errors"]["total"] == 0  # every fault was absorbed

    def test_persistent_failure_is_explicit_and_opens_breaker(self):
        registry = ModelRegistry(
            breaker_opts={"failure_threshold": 2, "reset_timeout": 3600.0}
        )
        plan = FaultPlan(rates={POTENTIAL_CORRUPT: 1.0})
        registry.register(
            "bad", CorruptingLJ(plan, epsilon=0.8, sigma=1.1, cutoff=3.0, n_species=2)
        )
        server = ForceServer(
            registry,
            n_workers=1,
            max_batch=1,
            batch_wait=0.0,
            engine="eager",
            retry_policy=RetryPolicy(
                max_retries=1, base_delay=0.0, sleep=lambda _t: None
            ),
        )
        futures = [server.submit(make_system(n=8, seed=k), model="bad") for k in range(5)]
        server.stop(drain=True)
        excs = [f.exception() for f in futures]
        assert all(isinstance(e, (ModelFailure, CircuitOpen)) for e in excs)
        assert isinstance(excs[0], ModelFailure)  # retried, then gave up
        assert any(isinstance(e, CircuitOpen) for e in excs)  # then shed fast
        stats = server.stats()
        assert stats["errors"]["model_failure"] >= 1
        assert stats["errors"]["circuit_open"] >= 1
        assert stats["errors"]["total"] >= 2
        assert stats["registry"]["breakers"]["bad:v1"] == "open"

    def test_breaker_half_open_probe_recovers(self):
        t = [0.0]
        registry = ModelRegistry(
            breaker_opts={
                "failure_threshold": 1,
                "reset_timeout": 10.0,
                "clock": lambda: t[0],
            }
        )
        pot = HealsAfterLJ(1, epsilon=0.8, sigma=1.1, cutoff=3.0, n_species=2)
        registry.register("flaky", pot)
        server = ForceServer(
            registry,
            n_workers=1,
            max_batch=1,
            batch_wait=0.0,
            engine="eager",
            retry_policy=RetryPolicy(
                max_retries=0, base_delay=0.0, sleep=lambda _t: None
            ),
        )
        system = make_system(n=8, seed=3)
        f1 = server.submit(system, model="flaky")
        assert isinstance(f1.exception(timeout=10.0), ModelFailure)
        f2 = server.submit(system, model="flaky")
        assert isinstance(f2.exception(timeout=10.0), CircuitOpen)
        t[0] = 11.0  # cooldown elapses: next batch is the half-open probe
        f3 = server.submit(system, model="flaky")
        e, forces = f3.result(timeout=10.0)
        e0, f0 = direct_eager(make_lj(), system)
        assert e == e0
        np.testing.assert_array_equal(forces, f0)
        assert registry.breaker("flaky").state == "closed"
        server.stop()


class TestErrorBreakdown:
    def test_timeout_and_overload_classes_counted(self):
        pot = SlowLJ(delay=0.08, epsilon=0.8, sigma=1.1, cutoff=3.0, n_species=2)
        server = ForceServer(
            pot, n_workers=1, max_batch=1, batch_wait=0.0, max_queue=2,
            engine="eager",
        )
        f1 = server.submit(make_system(n=8, seed=0))
        f2 = server.submit(make_system(n=8, seed=1), timeout=0.005)
        shed = 0
        for k in range(10):
            try:
                server.submit(make_system(n=8, seed=2 + k))
            except ServerOverloaded:
                shed += 1
        assert shed >= 1
        server.stop(drain=True)
        assert f1.exception() is None
        assert isinstance(f2.exception(), RequestTimeout)
        errors = server.stats()["errors"]
        assert errors["timeout"] >= 1
        assert errors["overload"] >= 1
        assert errors["total"] >= errors["timeout"] + errors["overload"]

    def test_errors_block_present_in_snapshot_json(self):
        with ForceServer(make_lj(), n_workers=1) as server:
            server.evaluate(make_system(n=10, seed=0))
            stats = server.stats()
        assert stats["errors"]["total"] == 0
        json.dumps(stats, default=float)


class TestDrainDeadline:
    def test_drain_deadline_fails_stuck_requests_explicitly(self):
        from repro.serve import DrainTimeout

        # A worker stuck far past the deadline: the neighbor-list build
        # sleeps longer than stop() is willing to wait.
        pot = SlowLJ(delay=1.5, epsilon=0.8, sigma=1.1, cutoff=3.0, n_species=2)
        server = ForceServer(
            pot, n_workers=1, max_batch=1, batch_wait=0.0, engine="eager"
        )
        futures = [server.submit(make_system(n=10, seed=k)) for k in range(3)]
        t0 = time.monotonic()
        server.stop(drain=True, timeout=0.1)
        # Shutdown is bounded: nowhere near the 4.5s the backlog needs.
        assert time.monotonic() - t0 < 1.4
        for fut in futures:
            assert fut.done(), "drain deadline must resolve every future"
        n_drained = sum(
            isinstance(f.exception(), DrainTimeout) for f in futures
        )
        assert n_drained >= 1
        stats = server.stats()
        assert stats["errors"]["drain_timeout"] == n_drained
        counters = stats["counters"]
        resolved = (
            counters.get("requests_served", 0)
            + counters.get("requests_failed", 0)
            + counters.get("requests_timeout", 0)
        )
        # Accounting survives the abort: every admitted request resolved
        # exactly once, even the one a stalled worker still held.
        assert counters["requests_admitted"] == resolved == len(futures)

    def test_late_worker_cannot_double_complete(self):
        from repro.serve import DrainTimeout

        pot = SlowLJ(delay=0.4, epsilon=0.8, sigma=1.1, cutoff=3.0, n_species=2)
        server = ForceServer(
            pot, n_workers=1, max_batch=1, batch_wait=0.0, engine="eager"
        )
        fut = server.submit(make_system(n=10, seed=0))
        server.stop(drain=True, timeout=0.05)
        assert isinstance(fut.exception(), DrainTimeout)
        # Give the stalled worker time to wake up and try to finish the
        # batch; the InvalidStateError-safe completion paths must neither
        # crash nor double-count.
        time.sleep(0.6)
        counters = server.stats()["counters"]
        assert counters["requests_admitted"] == 1
        assert (
            counters.get("requests_served", 0)
            + counters.get("requests_failed", 0)
            + counters.get("requests_timeout", 0)
        ) == 1

    def test_deadline_unlimited_when_none(self):
        pot = SlowLJ(delay=0.05, epsilon=0.8, sigma=1.1, cutoff=3.0, n_species=2)
        server = ForceServer(
            pot,
            n_workers=1,
            max_batch=1,
            batch_wait=0.0,
            engine="eager",
            drain_timeout=None,
        )
        futures = [server.submit(make_system(n=10, seed=k)) for k in range(3)]
        server.stop(drain=True)  # waits out the slow model
        assert all(f.exception() is None for f in futures)
        assert server.stats()["counters"].get("requests_served", 0) == 3
