"""Resilience subsystem tests: checkpoints, fault injection, guards.

The load-bearing property: **checkpoint → kill → resume reproduces the
uninterrupted trajectory bitwise in float64**, for every ensemble
(NVE / NVT-Langevin / NVT-Nosé-Hoover / NPT), on both engines, serial and
parallel.  Everything else — retransmission, rank-failure recovery, the
engine fallback chain, watchdog rollback — is exercised against
deterministic injected faults so failures are reproducible, not flaky.
"""

import numpy as np
import pytest

from repro.md import (
    BerendsenBarostat,
    Cell,
    LangevinThermostat,
    NoseHooverThermostat,
    Simulation,
    System,
)
from repro.models import LennardJones
from repro.parallel import (
    CommError,
    ParallelForceEvaluator,
    ParallelSimulation,
    ProcessGrid,
    VirtualCluster,
)
from repro.resilience import (
    COMM_DROP,
    POTENTIAL_CORRUPT,
    RANK_FAIL,
    TORN_WRITE,
    CheckpointError,
    CheckpointManager,
    CircuitBreaker,
    FaultPlan,
    FaultyPotential,
    ForceWatchdog,
    NumericalInstabilityError,
    RetryPolicy,
    validate_energy_forces,
)


def _lj_crystal(seed=7, n_side=4, a=1.7, jitter=0.02):
    rng = np.random.default_rng(seed)
    g = (
        np.stack(np.meshgrid(*[np.arange(n_side)] * 3, indexing="ij"), -1).reshape(-1, 3)
        * a
    )
    s = System(
        g + rng.normal(scale=jitter, size=g.shape),
        np.zeros(len(g), int),
        Cell.cubic(n_side * a),
    )
    return s, LennardJones(epsilon=0.05, sigma=1.5, cutoff=3.0)


def _make_sim(kind, engine="eager", potential=None, watchdog=None):
    """A fresh, deterministically seeded simulation of the given ensemble."""
    s, lj = _lj_crystal()
    s.seed_velocities(30.0, np.random.default_rng(8))
    thermostat = barostat = None
    if kind == "nvt_langevin":
        thermostat = LangevinThermostat(30.0, friction=0.05, seed=3)
    elif kind == "nvt_nosehoover":
        thermostat = NoseHooverThermostat(30.0, tau=25.0)
    elif kind == "npt":
        thermostat = NoseHooverThermostat(30.0, tau=25.0)
        barostat = BerendsenBarostat(pressure=1.0, tau=200.0)
    elif kind != "nve":
        raise ValueError(kind)
    return Simulation(
        s,
        potential if potential is not None else lj,
        dt=0.2,
        thermostat=thermostat,
        barostat=barostat,
        engine=engine,
        watchdog=watchdog,
    )


# ---------------------------------------------------------------------------
# CheckpointManager
# ---------------------------------------------------------------------------
class TestCheckpointManager:
    def test_roundtrip(self, tmp_path):
        m = CheckpointManager(tmp_path)
        state = {"x": np.arange(5.0), "nested": {"rng": {"state": 3}}, "pe": -1.5}
        path = m.save(state, step=42)
        assert path.exists()
        loaded = m.load_step(42)
        np.testing.assert_array_equal(loaded["x"], state["x"])
        assert loaded["nested"] == state["nested"]
        step, latest = m.load_latest()
        assert step == 42 and latest["pe"] == -1.5

    def test_corruption_detected(self, tmp_path):
        m = CheckpointManager(tmp_path)
        path = m.save({"x": 1}, step=1)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip one payload byte
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            m.load_step(1)

    def test_not_a_checkpoint_file(self, tmp_path):
        bogus = tmp_path / "ckpt-000000000007.ckpt"
        bogus.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            CheckpointManager(tmp_path).load(bogus)

    def test_rolling_retention(self, tmp_path):
        m = CheckpointManager(tmp_path, keep_last=3)
        for step in range(0, 60, 10):
            m.save({"step": step}, step)
        assert m.steps() == [30, 40, 50]
        assert m.n_pruned == 3

    def test_load_latest_skips_corrupt(self, tmp_path):
        m = CheckpointManager(tmp_path, keep_last=None)
        m.save({"step": 10}, 10)
        newest = m.save({"step": 20}, 20)
        newest.write_bytes(b"RPRCKPT1" + b"0" * 64 + b"garbage")
        step, state = m.load_latest()
        assert step == 10 and state["step"] == 10

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoints"):
            CheckpointManager(tmp_path).load_latest()


# ---------------------------------------------------------------------------
# FaultPlan
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        fired_a = [FaultPlan(seed=3, rates={"c": 0.3}).fires("c") for _ in range(1)]
        a = FaultPlan(seed=3, rates={"c": 0.3})
        b = FaultPlan(seed=3, rates={"c": 0.3})
        assert [a.fires("c") for _ in range(200)] == [b.fires("c") for _ in range(200)]
        assert fired_a[0] == b.fires("c") or True  # counters independent per plan

    def test_channels_are_independent_streams(self):
        a = FaultPlan(seed=3, rates={"x": 0.5, "y": 0.5})
        xs = [a.fires("x") for _ in range(100)]
        b = FaultPlan(seed=3, rates={"x": 0.5, "y": 0.5})
        for _ in range(100):
            b.fires("y")  # draws on y must not shift x's stream
        assert xs == [b.fires("x") for _ in range(100)]

    def test_explicit_schedule(self):
        plan = FaultPlan(at={"c": [1, 4]})
        assert [plan.fires("c") for _ in range(6)] == [
            False, True, False, False, True, False,
        ]
        assert plan.draws("c") == 6 and plan.fired("c") == 2

    def test_rate_extremes(self):
        always = FaultPlan(rates={"c": 1.0})
        never = FaultPlan(rates={"c": 0.0})
        assert all(always.fires("c") for _ in range(10))
        assert not any(never.fires("c") for _ in range(10))

    def test_faulty_potential_corrupts_on_schedule(self):
        s, lj = _lj_crystal()
        plan = FaultPlan(at={POTENTIAL_CORRUPT: [1]})
        faulty = FaultyPotential(lj, plan, mode="nan")
        e0, f0 = faulty.energy_and_forces(s)
        assert np.isfinite(f0).all()
        _, f1 = faulty.energy_and_forces(s)
        assert np.isnan(f1[0, 0])
        e2, f2 = faulty.energy_and_forces(s)
        assert e2 == e0
        np.testing.assert_array_equal(f2, f0)


# ---------------------------------------------------------------------------
# Retry / circuit breaker primitives
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_delay_schedule_is_deterministic(self):
        a = RetryPolicy(base_delay=0.01, multiplier=2.0, max_delay=1.0, seed=5)
        b = RetryPolicy(base_delay=0.01, multiplier=2.0, max_delay=1.0, seed=5)
        assert [a.delay(k) for k in (1, 2, 3)] == [b.delay(k) for k in (1, 2, 3)]

    def test_no_jitter_is_pure_exponential(self):
        p = RetryPolicy(base_delay=0.01, multiplier=2.0, max_delay=0.03, jitter=0.0)
        assert [p.delay(k) for k in (1, 2, 3)] == [0.01, 0.02, 0.03]

    def test_call_retries_then_succeeds(self):
        sleeps = []
        p = RetryPolicy(max_retries=3, base_delay=1e-3, sleep=sleeps.append)
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise ValueError("transient")
            return "ok"

        assert p.call(flaky, retry_on=(ValueError,)) == "ok"
        assert attempts["n"] == 3 and len(sleeps) == 2 and p.n_retries == 2

    def test_call_gives_up(self):
        p = RetryPolicy(max_retries=2, base_delay=0.0, sleep=lambda _t: None)

        def broken():
            raise ValueError("permanent")

        with pytest.raises(ValueError):
            p.call(broken, retry_on=(ValueError,))
        assert p.n_giveups == 1 and p.n_retries == 2


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        t = [0.0]
        cb = CircuitBreaker(failure_threshold=3, reset_timeout=10.0, clock=lambda: t[0])
        for _ in range(2):
            cb.record_failure()
        assert cb.state == "closed" and cb.allow()
        cb.record_failure()
        assert cb.state == "open" and not cb.allow()
        assert cb.n_opens == 1

    def test_success_resets_consecutive_count(self):
        cb = CircuitBreaker(failure_threshold=2)
        cb.record_failure()
        cb.record_success()
        cb.record_failure()
        assert cb.state == "closed"

    def test_half_open_single_probe_then_close(self):
        t = [0.0]
        cb = CircuitBreaker(failure_threshold=1, reset_timeout=5.0, clock=lambda: t[0])
        cb.record_failure()
        assert not cb.allow()
        t[0] = 6.0
        assert cb.state == "half_open"
        assert cb.allow()  # the probe
        assert not cb.allow()  # everyone else waits on the probe
        cb.record_success()
        assert cb.state == "closed" and cb.allow()

    def test_half_open_failure_reopens(self):
        t = [0.0]
        cb = CircuitBreaker(failure_threshold=1, reset_timeout=5.0, clock=lambda: t[0])
        cb.record_failure()
        t[0] = 6.0
        assert cb.allow()
        cb.record_failure()
        assert cb.state == "open" and cb.n_opens == 2


# ---------------------------------------------------------------------------
# Guards
# ---------------------------------------------------------------------------
class TestGuards:
    def test_validate_rejects_nonfinite(self):
        f = np.zeros((4, 3))
        validate_energy_forces(-1.0, f)
        with pytest.raises(NumericalInstabilityError, match="energy"):
            validate_energy_forces(float("nan"), f)
        f[2, 1] = np.inf
        with pytest.raises(NumericalInstabilityError, match="1 atom"):
            validate_energy_forces(-1.0, f)

    def test_watchdog_spike_detection(self):
        wd = ForceWatchdog(policy="abort", spike_factor=100.0, min_history=8)
        f = np.zeros((2, 3))
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert wd.check(-10.0 + rng.normal(scale=0.01), f)
        with pytest.raises(NumericalInstabilityError, match="spike"):
            wd.check(+1e6, f)
        assert wd.n_trips == 1

    def test_watchdog_recover_policy_escalates(self):
        wd = ForceWatchdog(policy="recover", max_recoveries=2)
        f = np.full((2, 3), np.nan)
        assert wd.check(-1.0, f) is False
        wd.on_recovered()
        assert wd.check(-1.0, f) is False
        wd.on_recovered()
        with pytest.raises(NumericalInstabilityError):
            wd.check(-1.0, f)


# ---------------------------------------------------------------------------
# Simulation wiring: fail fast, watchdog recovery
# ---------------------------------------------------------------------------
class TestSimulationGuards:
    def test_run_fails_fast_on_nan_forces(self):
        plan = FaultPlan(at={POTENTIAL_CORRUPT: [6]})
        s, lj = _lj_crystal()
        s.seed_velocities(30.0, np.random.default_rng(8))
        sim = Simulation(s, FaultyPotential(lj, plan, mode="nan"), dt=0.2)
        with pytest.raises(NumericalInstabilityError, match="non-finite forces"):
            sim.run(50)
        # The poisoned step was never integrated or banked.
        assert np.isfinite(sim.system.positions).all()
        assert np.isfinite(sim.system.velocities).all()

    def test_run_fails_fast_on_inf_energy(self):
        plan = FaultPlan(at={POTENTIAL_CORRUPT: [0]})
        s, lj = _lj_crystal()
        sim = Simulation(s, FaultyPotential(lj, plan, mode="inf"), dt=0.2)
        with pytest.raises(NumericalInstabilityError, match="energy"):
            sim.run(5)

    def test_watchdog_recovers_and_matches_clean_run(self, tmp_path):
        total = 40
        clean = _make_sim("nvt_nosehoover")
        clean_res = clean.run(total)

        plan = FaultPlan(at={POTENTIAL_CORRUPT: [23]})
        _, lj = _lj_crystal()
        wd = ForceWatchdog(policy="recover", spike_factor=None)
        sim = _make_sim(
            "nvt_nosehoover",
            potential=FaultyPotential(lj, plan, mode="nan"),
            watchdog=wd,
        )
        res = sim.run(total, checkpoint_every=10, checkpoint_dir=tmp_path)
        assert sim.n_recoveries == 1 and wd.n_trips == 1
        # Rolled-back steps were replayed: the final state and the recorded
        # series are bitwise those of the fault-free run.
        np.testing.assert_array_equal(sim.system.positions, clean.system.positions)
        np.testing.assert_array_equal(sim.system.velocities, clean.system.velocities)
        np.testing.assert_array_equal(
            res.potential_energies, clean_res.potential_energies
        )
        assert len(res.times) == len(clean_res.times)

    def test_recover_without_checkpointing_raises(self):
        plan = FaultPlan(at={POTENTIAL_CORRUPT: [3]})
        _, lj = _lj_crystal()
        sim = _make_sim(
            "nve",
            potential=FaultyPotential(lj, plan, mode="nan"),
            watchdog=ForceWatchdog(policy="recover", spike_factor=None),
        )
        with pytest.raises(NumericalInstabilityError, match="no .?checkpointing"):
            sim.run(20)

    def test_checkpoint_every_needs_sink(self):
        sim = _make_sim("nve")
        with pytest.raises(ValueError, match="checkpoint_every"):
            sim.run(5, checkpoint_every=2)


# ---------------------------------------------------------------------------
# The bitwise-resume property
# ---------------------------------------------------------------------------
class TestBitwiseResume:
    ENSEMBLES = ["nve", "nvt_langevin", "nvt_nosehoover", "npt"]

    @pytest.mark.parametrize("kind", ENSEMBLES)
    def test_serial_resume_is_bitwise(self, kind, tmp_path):
        total, killed_at = 60, 23
        ref = _make_sim(kind)
        ref.run(total)

        # Interrupted run: checkpoints every 5 steps, "killed" mid-interval.
        sim1 = _make_sim(kind)
        sim1.run(killed_at, checkpoint_every=5, checkpoint_dir=tmp_path)

        sim2 = _make_sim(kind)
        manager = CheckpointManager(tmp_path)
        step, state = manager.load_latest()
        assert step == 20  # newest whole checkpoint before the kill
        sim2.set_state(state)
        sim2.run(total - step)

        np.testing.assert_array_equal(sim2.system.positions, ref.system.positions)
        np.testing.assert_array_equal(sim2.system.velocities, ref.system.velocities)
        if kind == "npt":
            np.testing.assert_array_equal(
                sim2.system.cell.lengths, ref.system.cell.lengths
            )

    @pytest.mark.parametrize("kind", ["nve", "nvt_nosehoover"])
    def test_compiled_engine_resume_is_bitwise(self, kind, tmp_path):
        total, killed_at = 40, 17
        ref = _make_sim(kind, engine="compiled")
        ref.run(total)

        sim1 = _make_sim(kind, engine="compiled")
        sim1.run(killed_at, checkpoint_every=5, checkpoint_dir=tmp_path)

        sim2 = _make_sim(kind, engine="compiled")
        step, state = CheckpointManager(tmp_path).load_latest()
        sim2.set_state(state)
        sim2.run(total - step)
        np.testing.assert_array_equal(sim2.system.positions, ref.system.positions)
        np.testing.assert_array_equal(sim2.system.velocities, ref.system.velocities)

    def test_langevin_rng_stream_is_restored(self, tmp_path):
        # The killer detail: without RNG state in the checkpoint the resumed
        # thermostat would draw a different noise sequence.
        sim1 = _make_sim("nvt_langevin")
        sim1.run(10, checkpoint_every=10, checkpoint_dir=tmp_path)
        state_a = sim1.thermostat.rng.bit_generator.state

        sim2 = _make_sim("nvt_langevin")
        assert sim2.thermostat.rng.bit_generator.state != state_a
        _, state = CheckpointManager(tmp_path).load_latest()
        sim2.set_state(state)
        assert sim2.thermostat.rng.bit_generator.state == state_a


# ---------------------------------------------------------------------------
# Engine fallback chain
# ---------------------------------------------------------------------------
class TestEngineFallback:
    def _compiled(self):
        s, lj = _lj_crystal()
        return s, lj, lj.compile()

    def test_transient_replay_failure_recaptures_once(self):
        s, lj, compiled = self._compiled()
        e_ref, f_ref = lj.energy_and_forces(s)
        compiled.energy_and_forces(s)  # warm capture

        calls = {"replay": 0}

        def hook(stage):
            if stage == "replay":
                calls["replay"] += 1
                if calls["replay"] == 1:
                    raise RuntimeError("injected replay corruption")

        compiled.fault_hook = hook
        e, f = compiled.energy_and_forces(s)
        assert compiled.n_replay_failures == 1
        assert compiled.n_failure_recaptures == 1
        assert compiled.n_eager_fallbacks == 0
        assert e == pytest.approx(e_ref, rel=0, abs=0)
        np.testing.assert_array_equal(f, f_ref)

    def test_persistent_failure_falls_back_to_eager(self):
        s, lj, compiled = self._compiled()
        e_ref, f_ref = lj.energy_and_forces(s)
        compiled.energy_and_forces(s)

        compiled.fault_hook = lambda stage: (_ for _ in ()).throw(
            RuntimeError(f"poisoned {stage}")
        )
        e, f = compiled.energy_and_forces(s)
        assert compiled.n_replay_failures == 1
        assert compiled.n_eager_fallbacks == 1
        assert e == pytest.approx(e_ref, rel=0, abs=0)
        np.testing.assert_array_equal(f, f_ref)
        stats = compiled.stats()
        assert stats["n_eager_fallbacks"] == 1

    def test_recovery_after_fault_clears(self):
        s, lj, compiled = self._compiled()
        compiled.energy_and_forces(s)
        compiled.fault_hook = lambda stage: (_ for _ in ()).throw(
            RuntimeError("down")
        )
        compiled.energy_and_forces(s)  # degrades to eager
        compiled.fault_hook = None
        e, f = compiled.energy_and_forces(s)  # recaptures cleanly
        e_ref, f_ref = lj.energy_and_forces(s)
        assert e == pytest.approx(e_ref, rel=0, abs=0)
        np.testing.assert_array_equal(f, f_ref)


# ---------------------------------------------------------------------------
# Parallel layer: retransmission, rank failure, resume
# ---------------------------------------------------------------------------
def _parallel_system(seed=11, n_side=6, a=1.9):
    rng = np.random.default_rng(seed)
    g = (
        np.stack(np.meshgrid(*[np.arange(n_side)] * 3, indexing="ij"), -1).reshape(-1, 3)
        * a
    )
    pos = g + rng.normal(scale=0.05, size=g.shape)
    return (
        System(pos, rng.integers(0, 2, len(pos)), Cell.cubic(n_side * a)),
        LennardJones(epsilon=0.01, sigma=1.6, cutoff=3.0, n_species=2),
    )


class TestParallelFaults:
    def test_dropped_messages_are_retransmitted(self):
        s, lj = _parallel_system()
        e_ref, f_ref = lj.energy_and_forces(s)
        plan = FaultPlan(seed=5, rates={COMM_DROP: 0.1})
        cluster = VirtualCluster(8, fault_plan=plan, max_retries=3)
        grid = ProcessGrid.create(8, s.cell)
        ev = ParallelForceEvaluator(lj, grid, cluster)
        e, f, _ = ev.compute(s)
        assert cluster.n_dropped > 0
        assert cluster.n_retransmits == cluster.n_dropped
        assert "retransmit" in cluster.stats.messages
        np.testing.assert_allclose(e, e_ref, rtol=1e-10)
        np.testing.assert_allclose(f, f_ref, atol=1e-9)

    def test_retry_budget_exhaustion_raises_commerror(self):
        s, lj = _parallel_system()
        plan = FaultPlan(at={COMM_DROP: range(2000)})  # drop everything
        cluster = VirtualCluster(8, fault_plan=plan, max_retries=0)
        grid = ProcessGrid.create(8, s.cell)
        ev = ParallelForceEvaluator(lj, grid, cluster, max_retries=0)
        with pytest.raises(CommError):
            ev.compute(s)

    def test_rank_failure_recovers_and_matches_serial(self):
        s, lj = _parallel_system()
        e_ref, f_ref = lj.energy_and_forces(s)
        plan = FaultPlan(at={RANK_FAIL: [0]})  # first evaluation loses a rank
        grid = ProcessGrid.create(8, s.cell)
        ev = ParallelForceEvaluator(lj, grid, fault_plan=plan, max_retries=2)
        e, f, _ = ev.compute(s)
        assert ev.n_failures == 1 and ev.n_recoveries == 1
        np.testing.assert_allclose(e, e_ref, rtol=1e-10)
        np.testing.assert_allclose(f, f_ref, atol=1e-9)
        stats = ev.resilience_stats()
        assert stats["n_recoveries"] == 1

    def test_rank_failure_budget_exhaustion_raises(self):
        s, lj = _parallel_system()
        plan = FaultPlan(at={RANK_FAIL: range(50)})
        grid = ProcessGrid.create(4, s.cell)
        ev = ParallelForceEvaluator(lj, grid, fault_plan=plan, max_retries=3)
        with pytest.raises(Exception, match="rank"):
            ev.compute(s)
        assert ev.n_failures == 4  # initial + 3 retries

    def test_parallel_resume_is_bitwise(self, tmp_path):
        def make():
            s, lj = _parallel_system()
            s.seed_velocities(30.0, np.random.default_rng(12))
            return ParallelSimulation(
                s, lj, n_ranks=4, dt=0.2,
                thermostat=NoseHooverThermostat(30.0, tau=25.0),
            )

        total, killed_at = 30, 13
        ref = make()
        ref.run(total)

        sim1 = make()
        sim1.run(killed_at, checkpoint_every=5, checkpoint_dir=tmp_path)

        sim2 = make()
        step, state = CheckpointManager(tmp_path).load_latest()
        assert step == 10
        sim2.set_state(state)
        sim2.run(total - step)
        np.testing.assert_array_equal(sim2.system.positions, ref.system.positions)
        np.testing.assert_array_equal(sim2.system.velocities, ref.system.velocities)

    def test_md_survives_injected_comm_faults(self):
        s, lj = _parallel_system()
        s.seed_velocities(30.0, np.random.default_rng(12))
        ref = ParallelSimulation(s, lj, n_ranks=4, dt=0.2)
        ref.run(10)

        s2, lj2 = _parallel_system()
        s2.seed_velocities(30.0, np.random.default_rng(12))
        plan = FaultPlan(seed=9, rates={COMM_DROP: 0.05})
        sim = ParallelSimulation(s2, lj2, n_ranks=4, dt=0.2, fault_plan=plan)
        sim.run(10)
        assert sim.evaluator.cluster.n_dropped > 0
        # Retransmission is transparent: trajectory identical to fault-free.
        np.testing.assert_allclose(
            sim.system.positions, ref.system.positions, atol=1e-9
        )


# ---------------------------------------------------------------------------
# Torn checkpoint writes (chaos channel: checkpoint.torn_write)
# ---------------------------------------------------------------------------
class TestTornWrites:
    def test_torn_save_fails_verification_and_is_skipped(self, tmp_path):
        from repro.obs import Registry

        registry = Registry()
        plan = FaultPlan(seed=0, at={TORN_WRITE: [1]})
        m = CheckpointManager(
            tmp_path, keep_last=None, fault_plan=plan, registry=registry
        )
        m.save({"step": 0}, 0)
        torn_path = m.save({"step": 10}, 10)  # draw 1: torn
        # The torn file lands at the *target* path and starts like a real
        # checkpoint, but fails verification on load.
        assert torn_path.exists()
        with pytest.raises(CheckpointError):
            m.load(torn_path)
        # Recovery walks past it to the previous good snapshot...
        step, state = m.load_latest()
        assert step == 0 and state["step"] == 0
        # ...and both the tear and the skip are observable.
        assert m.n_torn == 1
        snap = registry.snapshot()["counters"]
        assert snap["checkpoint.torn_writes"] == 1
        assert snap["checkpoint.skipped_corrupt"] == 1
        stats = m.stats()
        assert stats["n_torn"] == 1 and stats["n_skipped_corrupt"] == 1

    def test_no_fault_plan_means_no_tears(self, tmp_path):
        m = CheckpointManager(tmp_path)
        for step in range(0, 30, 10):
            m.save({"step": step}, step)
        assert m.n_torn == 0
        assert m.load_latest()[0] == 20

    def test_md_recovery_walks_past_torn_checkpoint_bitwise(self, tmp_path):
        """Composed faults: a torn write *and* a later force corruption.

        The corruption at force draw 14 trips the recover watchdog; the
        newest checkpoint (step 12) is torn, so recovery must fall back to
        step 6 and replay further — and still land bitwise on the clean
        trajectory."""
        ref = _make_sim("nvt_nosehoover")
        ref_res = ref.run(24)

        plan = FaultPlan(seed=0, at={TORN_WRITE: [2], POTENTIAL_CORRUPT: [14]})
        _, lj = _lj_crystal()
        sim = _make_sim(
            "nvt_nosehoover",
            potential=FaultyPotential(lj, plan, mode="nan"),
            watchdog=ForceWatchdog(
                policy="recover", spike_factor=None, max_recoveries=8
            ),
        )
        manager = CheckpointManager(
            tmp_path, keep_last=4, fault_plan=plan, registry=sim.obs
        )
        res = sim.run(24, checkpoint_every=6, checkpoint_manager=manager)

        assert sim.n_recoveries >= 1
        assert manager.n_torn == 1
        assert sim.obs.snapshot()["counters"]["checkpoint.skipped_corrupt"] >= 1
        np.testing.assert_array_equal(
            sim.system.positions, ref.system.positions
        )
        np.testing.assert_array_equal(
            sim.system.velocities, ref.system.velocities
        )
        np.testing.assert_array_equal(
            res.potential_energies, ref_res.potential_energies
        )
