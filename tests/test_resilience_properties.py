"""Property-based tests (Hypothesis) for the retry/breaker primitives.

:class:`RetryPolicy` and :class:`CircuitBreaker` were built deterministic
(seeded jitter, injectable clock) precisely so their contracts could be
stated as properties over arbitrary inputs rather than a handful of
examples:

* retry delays always respect the jittered-backoff envelope and are
  reproducible from the seed;
* ``call`` performs exactly the promised number of attempts and sleeps
  exactly the scheduled delays;
* the circuit breaker's state machine never skips a state — every
  transition in its recorded history is one of the four legal edges —
  and half-open admits exactly one probe.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import CircuitBreaker, CircuitOpenError, RetryPolicy

# Keep the suite fast and CI-deterministic.
settings.register_profile("repro", deadline=None, max_examples=60)
settings.load_profile("repro")


class _Clock:
    """Injectable monotonic clock for breaker tests."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


policies = st.fixed_dictionaries(
    {
        "max_retries": st.integers(0, 6),
        "base_delay": st.floats(0.0, 0.1, allow_nan=False),
        "multiplier": st.floats(1.0, 4.0, allow_nan=False),
        "max_delay": st.floats(0.0, 0.5, allow_nan=False),
        "jitter": st.floats(0.0, 1.0, allow_nan=False),
        "seed": st.integers(0, 2**31 - 1),
    }
)


class TestRetryPolicyProperties:
    @given(params=policies, attempts=st.integers(1, 12))
    def test_delay_within_jittered_backoff_envelope(self, params, attempts):
        policy = RetryPolicy(sleep=lambda _: None, **params)
        for attempt in range(1, attempts + 1):
            ceiling = min(
                params["max_delay"],
                params["base_delay"] * params["multiplier"] ** (attempt - 1),
            )
            delay = policy.delay(attempt)
            assert 0.0 <= delay <= ceiling + 1e-12
            assert delay >= ceiling * (1.0 - params["jitter"]) - 1e-12

    @given(params=policies, attempts=st.integers(1, 10))
    def test_delay_sequence_reproducible_from_seed(self, params, attempts):
        a = RetryPolicy(sleep=lambda _: None, **params)
        b = RetryPolicy(sleep=lambda _: None, **params)
        assert [a.delay(k) for k in range(1, attempts + 1)] == [
            b.delay(k) for k in range(1, attempts + 1)
        ]

    @given(params=policies, n_failures=st.integers(0, 10))
    def test_call_attempt_and_sleep_accounting(self, params, n_failures):
        sleeps = []
        policy = RetryPolicy(**{**params, "sleep": sleeps.append})
        twin = RetryPolicy(sleep=lambda _: None, **params)
        state = {"calls": 0}

        def flaky():
            state["calls"] += 1
            if state["calls"] <= n_failures:
                raise ValueError("injected")
            return "ok"

        if n_failures > params["max_retries"]:
            try:
                policy.call(flaky)
                raise AssertionError("expected the last failure to re-raise")
            except ValueError:
                pass
            expected_attempts = params["max_retries"] + 1
            assert policy.n_giveups == 1
        else:
            assert policy.call(flaky) == "ok"
            expected_attempts = n_failures + 1
            assert policy.n_giveups == 0
        assert state["calls"] == expected_attempts
        assert policy.n_retries == expected_attempts - 1
        # Every backoff slept is exactly the seeded schedule.
        assert sleeps == [
            twin.delay(k) for k in range(1, expected_attempts)
        ]


#: The only legal edges of the breaker state machine.
_LEGAL_EDGES = {
    ("closed", "open"),
    ("open", "half_open"),
    ("half_open", "closed"),
    ("half_open", "open"),
}

breaker_ops = st.lists(
    st.sampled_from(["fail", "success", "advance", "small_advance"]),
    min_size=1,
    max_size=60,
)


class TestCircuitBreakerProperties:
    @given(
        ops=breaker_ops,
        threshold=st.integers(1, 5),
        reset_timeout=st.floats(0.1, 10.0, allow_nan=False),
    )
    def test_state_machine_never_skips_a_state(
        self, ops, threshold, reset_timeout
    ):
        clock = _Clock()
        breaker = CircuitBreaker(
            failure_threshold=threshold,
            reset_timeout=reset_timeout,
            clock=clock,
        )
        for op in ops:
            if op == "advance":
                clock.t += reset_timeout
            elif op == "small_advance":
                clock.t += reset_timeout * 0.25
            elif breaker.allow():
                if op == "fail":
                    breaker.record_failure()
                else:
                    breaker.record_success()
        path = ["closed"] + breaker.transitions
        for src, dst in zip(path, path[1:]):
            assert (src, dst) in _LEGAL_EDGES, breaker.transitions
        # Every open in the history was counted.
        assert breaker.n_opens == breaker.transitions.count("open")
        assert breaker.state in ("closed", "open", "half_open")

    @given(
        ops=breaker_ops,
        threshold=st.integers(1, 5),
    )
    def test_opens_only_after_threshold_consecutive_failures(
        self, ops, threshold
    ):
        clock = _Clock()
        breaker = CircuitBreaker(
            failure_threshold=threshold, reset_timeout=1e9, clock=clock
        )
        consecutive = 0
        for op in ops:
            if op in ("advance", "small_advance"):
                continue
            if not breaker.allow():
                break
            if op == "fail":
                breaker.record_failure()
                consecutive += 1
                if consecutive < threshold:
                    assert breaker.state == "closed"
                else:
                    assert breaker.state == "open"
                    break
            else:
                breaker.record_success()
                consecutive = 0
                assert breaker.state == "closed"

    @given(
        threshold=st.integers(1, 4),
        reset_timeout=st.floats(0.1, 10.0, allow_nan=False),
        probe_succeeds=st.booleans(),
        n_waiters=st.integers(1, 5),
    )
    def test_half_open_admits_exactly_one_probe(
        self, threshold, reset_timeout, probe_succeeds, n_waiters
    ):
        clock = _Clock()
        breaker = CircuitBreaker(
            failure_threshold=threshold,
            reset_timeout=reset_timeout,
            clock=clock,
        )
        for _ in range(threshold):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        # Before the cooldown elapses nothing is admitted.
        rejected_before = breaker.n_rejections
        assert not breaker.allow()
        assert breaker.n_rejections == rejected_before + 1
        clock.t += reset_timeout
        # Exactly one probe gets through; concurrent callers are rejected.
        assert breaker.allow()
        for _ in range(n_waiters):
            assert not breaker.allow()
        if probe_succeeds:
            breaker.record_success()
            assert breaker.state == "closed"
            assert breaker.allow()
        else:
            breaker.record_failure()
            assert breaker.state == "open"
            assert not breaker.allow()


def test_circuit_open_error_is_exported():
    assert issubclass(CircuitOpenError, RuntimeError)
