"""Tests for Cell, System, and observables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md import (
    Cell,
    System,
    block_average,
    energy_drift_per_atom,
    kabsch_align,
    radial_distribution,
    rmsd,
)
from repro.md.system import ACCEL_CONV


@pytest.fixture
def rng():
    return np.random.default_rng(53)


class TestCell:
    def test_wrap(self):
        cell = Cell.cubic(10.0)
        pos = np.array([[11.0, -1.0, 5.0]])
        assert np.allclose(cell.wrap(pos), [[1.0, 9.0, 5.0]])

    def test_wrap_respects_pbc_flags(self):
        cell = Cell((10.0, 10.0, 10.0), pbc=(True, False, True))
        pos = np.array([[11.0, 11.0, 11.0]])
        assert np.allclose(cell.wrap(pos), [[1.0, 11.0, 1.0]])

    def test_minimum_image(self):
        cell = Cell.cubic(10.0)
        d = cell.minimum_image(np.array([[9.0, -9.0, 4.0]]))
        assert np.allclose(d, [[-1.0, 1.0, 4.0]])

    def test_replicate(self, rng):
        cell = Cell.cubic(5.0)
        pos = rng.uniform(0, 5, (4, 3))
        new_pos, new_cell = cell.replicate(pos, (2, 1, 3))
        assert new_pos.shape == (24, 3)
        assert np.allclose(new_cell.lengths, [10, 5, 15])

    def test_volume(self):
        assert Cell((2.0, 3.0, 4.0)).volume == 24.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Cell((1.0, 2.0))
        with pytest.raises(ValueError):
            Cell((1.0, -2.0, 3.0))
        with pytest.raises(ValueError):
            Cell.cubic(5.0).replicate(np.zeros((1, 3)), (0, 1, 1))

    @given(st.floats(5.0, 50.0), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_wrap_idempotent(self, L, seed):
        rng = np.random.default_rng(seed)
        cell = Cell.cubic(L)
        pos = rng.uniform(-3 * L, 3 * L, (10, 3))
        w1 = cell.wrap(pos)
        assert np.all((w1 >= 0) & (w1 < L))
        assert np.allclose(cell.wrap(w1), w1)


class TestSystem:
    def test_basic_properties(self, rng):
        s = System(rng.uniform(0, 5, (10, 3)), np.array([0] * 5 + [1] * 5))
        assert s.n_atoms == 10
        assert s.n_species == 2

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            System(rng.normal(size=(3, 2)), np.zeros(3, int))
        with pytest.raises(ValueError):
            System(rng.normal(size=(3, 3)), np.zeros(4, int))
        with pytest.raises(ValueError):
            System(rng.normal(size=(3, 3)), np.array([-1, 0, 0]))

    def test_masses_from_species_names(self, rng):
        s = System(
            rng.normal(size=(2, 3)), np.array([0, 3]), species_names=("H", "C", "N", "O")
        )
        assert np.isclose(s.masses[0], 1.008)
        assert np.isclose(s.masses[1], 15.999)

    def test_seed_velocities_temperature(self, rng):
        s = System(rng.uniform(0, 20, (2000, 3)), np.zeros(2000, int))
        s.seed_velocities(300.0, rng)
        assert abs(s.temperature() - 300.0) < 25.0
        momentum = (s.masses[:, None] * s.velocities).sum(axis=0)
        assert np.abs(momentum).max() < 1e-10

    def test_kinetic_energy_formula(self):
        s = System(np.zeros((1, 3)), np.zeros(1, int), masses=np.array([2.0]))
        s.velocities = np.array([[0.01, 0.0, 0.0]])
        expected = 0.5 * 2.0 * 0.01**2 / ACCEL_CONV
        assert np.isclose(s.kinetic_energy(), expected)

    def test_copy_is_deep(self, rng):
        s = System(rng.uniform(0, 5, (4, 3)), np.zeros(4, int))
        c = s.copy()
        c.positions[0, 0] += 1.0
        assert s.positions[0, 0] != c.positions[0, 0]


class TestObservables:
    def test_rmsd_zero_for_identical(self, rng):
        P = rng.normal(size=(10, 3))
        assert rmsd(P, P) < 1e-12

    def test_rmsd_invariant_to_rigid_motion(self, rng):
        from repro.equivariant.wigner import random_rotation

        P = rng.normal(size=(20, 3))
        R = random_rotation(rng)
        moved = P @ R.T + np.array([5.0, -3.0, 2.0])
        assert rmsd(moved, P) < 1e-10

    def test_rmsd_detects_distortion(self, rng):
        P = rng.normal(size=(20, 3))
        Q = P + rng.normal(scale=0.5, size=P.shape)
        assert rmsd(Q, P) > 0.1

    def test_rmsd_no_align(self, rng):
        P = rng.normal(size=(5, 3))
        shift = P + 1.0
        assert rmsd(shift, P, align=False) == pytest.approx(np.sqrt(3.0))

    def test_kabsch_proper_rotation_only(self, rng):
        P = rng.normal(size=(10, 3))
        aligned = kabsch_align(P, P)
        assert np.allclose(aligned, P - P.mean(axis=0), atol=1e-10)

    def test_rdf_ideal_gas_near_one(self, rng):
        """g(r) ≈ 1 for an ideal gas at distances ≪ box."""
        from repro.md import neighbor_list

        L, n = 14.0, 1200
        s = System(rng.uniform(0, L, (n, 3)), np.zeros(n, int), Cell.cubic(L))
        nl = neighbor_list(s, 4.0)
        r, g = radial_distribution(nl.distances(s.positions), n, L**3, 4.0, n_bins=16)
        mask = r > 1.0
        assert np.abs(g[mask] - 1.0).max() < 0.25

    def test_energy_drift(self):
        assert energy_drift_per_atom([1.0, 1.5], 10) == pytest.approx(0.05)
        assert energy_drift_per_atom([1.0], 10) == 0.0

    def test_block_average(self):
        x = np.arange(10.0)
        b = block_average(x, 5)
        assert np.allclose(b, [2.0, 7.0])
