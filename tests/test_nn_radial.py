"""Tests for Bessel bases and the polynomial cutoff envelope."""

import numpy as np
import pytest

import repro.autodiff as ad
from repro.nn import BesselBasis, PerPairBesselBasis, PolynomialCutoff


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestPolynomialCutoff:
    def test_boundary_values(self):
        env = PolynomialCutoff(6)
        x = ad.Tensor(np.array([0.0, 0.5, 1.0, 1.5]))
        u = env(x).data
        assert np.isclose(u[0], 1.0)
        assert 0 < u[1] < 1
        assert u[2] == 0.0 and u[3] == 0.0

    def test_smooth_derivatives_at_cutoff(self):
        """p−1 derivatives vanish at x = 1: check the first two numerically."""
        env = PolynomialCutoff(6)
        eps = 1e-5
        for x0 in (1.0 - eps,):
            x = ad.Tensor(np.array([x0]), requires_grad=True)
            env(x).sum().backward()
            assert abs(x.grad.data[0]) < 1e-3

    def test_monotone_decreasing(self):
        env = PolynomialCutoff(6)
        x = np.linspace(0, 1, 100)
        u = env.numpy(x)
        assert np.all(np.diff(u) <= 1e-12)

    def test_numpy_matches_tensor_path(self, rng):
        env = PolynomialCutoff(4)
        x = rng.random(20) * 1.4
        assert np.allclose(env.numpy(x), env(ad.Tensor(x)).data)

    def test_rejects_small_p(self):
        with pytest.raises(ValueError):
            PolynomialCutoff(1)

    def test_gradcheck(self, rng):
        env = PolynomialCutoff(6)
        x = rng.random(8) * 0.9 + 0.02
        ad.gradcheck(lambda v: env(v), [x])


class TestBesselBasis:
    def test_shape_and_envelope(self, rng):
        basis = BesselBasis(4.0, num_basis=8)
        r = ad.Tensor(rng.random(10) * 3.5 + 0.3)
        out = basis(r)
        assert out.shape == (10, 8)
        beyond = basis(ad.Tensor(np.array([4.5, 6.0]))).data
        assert np.allclose(beyond, 0.0)

    def test_trainable_frequencies(self, rng):
        basis = BesselBasis(4.0, num_basis=4)
        r = ad.Tensor(rng.random(5) * 3 + 0.5)
        basis(r).sum().backward()
        assert basis.frequencies.grad is not None
        fixed = BesselBasis(4.0, num_basis=4, trainable=False)
        assert not fixed.frequencies.requires_grad

    def test_gradcheck_wrt_distance(self, rng):
        basis = BesselBasis(4.0, num_basis=4)
        ad.gradcheck(lambda r: basis(r), [rng.random(5) * 3 + 0.5], atol=1e-4)

    def test_rejects_bad_cutoff(self):
        with pytest.raises(ValueError):
            BesselBasis(-1.0)


class TestPerPairBesselBasis:
    def _cutoffs(self):
        # 2 species; ordered: (0→1) much stricter than (1→0), as in §V-B4.
        return np.array([[3.0, 1.25], [4.0, 4.0]])

    def test_ordered_asymmetry(self, rng):
        basis = PerPairBesselBasis(self._cutoffs(), num_basis=4)
        r = ad.Tensor(np.array([2.0, 2.0]))
        # pair index 0*2+1 = (0→1) cutoff 1.25: r=2 is beyond → zero.
        # pair index 1*2+0 = (1→0) cutoff 4.0: r=2 within → nonzero.
        out = basis(r, np.array([1, 2])).data
        assert np.allclose(out[0], 0.0)
        assert not np.allclose(out[1], 0.0)

    def test_envelope_of_uses_pair_cutoff(self):
        basis = PerPairBesselBasis(self._cutoffs())
        u = basis.envelope_of(ad.Tensor(np.array([2.0, 2.0])), np.array([1, 2])).data
        assert u[0] == 0.0 and u[1] > 0.0

    def test_gradcheck(self, rng):
        basis = PerPairBesselBasis(self._cutoffs(), num_basis=3)
        pair_idx = np.array([0, 3, 2])
        ad.gradcheck(
            lambda r: basis(r, pair_idx), [np.array([1.0, 2.0, 1.5])], atol=1e-4
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            PerPairBesselBasis(np.ones((2, 3)))
        with pytest.raises(ValueError):
            PerPairBesselBasis(np.array([[1.0, -1.0], [1.0, 1.0]]))

    def test_per_pair_frequencies_are_parameters(self):
        basis = PerPairBesselBasis(self._cutoffs(), num_basis=4)
        assert basis.frequencies.data.shape == (4, 4)  # S² pairs × B
        assert basis.frequencies.requires_grad
