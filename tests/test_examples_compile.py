"""Smoke checks that every example script parses and imports cleanly.

The examples run for minutes (they train models), so the test suite only
compiles them and verifies their imports resolve; the benchmark run and
documentation exercise them for real.
"""

import ast
import importlib
import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Every `from repro...` / `import repro...` target must exist."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
            mod = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(mod, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} missing"
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro"):
                    importlib.import_module(alias.name)


def test_examples_exist_and_have_mains():
    assert len(EXAMPLES) >= 11  # quickstart + domain + resilience scenarios
    for path in EXAMPLES:
        text = path.read_text()
        assert "__main__" in text, f"{path.name} is not runnable"
        assert text.startswith("#!/usr/bin/env python"), path.name
