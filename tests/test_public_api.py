"""The public API surface: README snippet works, exports resolve, docs exist."""

import importlib
import inspect

import numpy as np
import pytest

import repro


class TestReadmeSnippet:
    def test_minimal_pipeline(self):
        """The README's minimal API example, at smoke-test size."""
        from repro.data import label_frames, perturbed_water_frames
        from repro.md import LangevinThermostat, Simulation
        from repro.models import AllegroConfig, AllegroModel
        from repro.nn import TrainConfig, Trainer

        frames = label_frames(perturbed_water_frames(4, n_grid=3, sigma=0.04))
        model = AllegroModel(
            AllegroConfig(
                n_species=4,
                lmax=1,
                n_layers=1,
                n_tensor=2,
                latent_dim=8,
                two_body_hidden=(8,),
                latent_hidden=(8,),
                edge_energy_hidden=(4,),
                r_cut=3.0,
                avg_num_neighbors=10.0,
            )
        )
        Trainer(model, frames[:3], frames[3:], TrainConfig(lr=4e-3, batch_size=3)).fit(
            epochs=1
        )
        system = frames[0].system.copy()
        system.seed_velocities(300.0, np.random.default_rng(0))
        res = Simulation(
            system, model, dt=0.5, thermostat=LangevinThermostat(300.0)
        ).run(3)
        assert res.n_steps == 3
        assert np.isfinite(res.total_energies).all()


class TestExports:
    @pytest.mark.parametrize(
        "modname",
        [
            "repro.autodiff",
            "repro.equivariant",
            "repro.nn",
            "repro.models",
            "repro.md",
            "repro.parallel",
            "repro.perf",
            "repro.data",
            "repro.serve",
        ],
    )
    def test_all_exports_resolve(self, modname):
        mod = importlib.import_module(modname)
        assert hasattr(mod, "__all__")
        for name in mod.__all__:
            assert hasattr(mod, name), f"{modname}.{name} in __all__ but missing"

    def test_package_lists_subpackages(self):
        for sub in repro.__all__:
            importlib.import_module(f"repro.{sub}")

    @pytest.mark.parametrize(
        "modname",
        [
            "repro.autodiff",
            "repro.equivariant",
            "repro.nn",
            "repro.models",
            "repro.md",
            "repro.parallel",
            "repro.perf",
            "repro.data",
            "repro.serve",
        ],
    )
    def test_public_items_documented(self, modname):
        """Every public class/function in __all__ carries a docstring."""
        mod = importlib.import_module(modname)
        undocumented = []
        for name in mod.__all__:
            obj = getattr(mod, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{modname}.{name}")
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_module_docstrings(self):
        import pkgutil

        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            mod = importlib.import_module(info.name)
            if not (mod.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, f"modules without docstrings: {missing}"
