"""repro.traj tests: binary format, store, async writer, streaming folds.

The load-bearing property mirrors the checkpoint suite: **dump → kill →
resume produces a trajectory file byte-identical to an uninterrupted
run's** — no duplicated frames, no gaps, same chunk boundaries.  Around
it: exact binary round-trips, O(1) random access, torn-chunk quarantine
(the reader never returns a corrupt frame), rollback-on-recovery, and
the streaming analysis folds pinned against their materialized
counterparts.
"""

import os
import threading

import numpy as np
import pytest

from repro.md import Cell, Simulation, System
from repro.md.analysis import (
    _mean_squared_displacement_naive,
    mean_squared_displacement,
    velocity_autocorrelation,
)
from repro.md.observables import radial_distribution
from repro.models import LennardJones
from repro.resilience import TRAJ_TORN_CHUNK, CheckpointManager, FaultPlan
from repro.traj import (
    Frame,
    FrameQuarantinedError,
    StreamingMSD,
    StreamingRDF,
    StreamingThermo,
    StreamingVACF,
    TrajectoryReader,
    TrajectoryStore,
    TrajectoryWriter,
    TrajFormatError,
    analyze_stream,
    sidecar_path,
)
from repro.traj.format import (
    decode_chunk_header,
    decode_payload,
    encode_chunk,
    encode_header,
    read_header,
)


def _system(seed=7, n_side=4, a=1.7, jitter=0.02):
    rng = np.random.default_rng(seed)
    g = (
        np.stack(np.meshgrid(*[np.arange(n_side)] * 3, indexing="ij"), -1).reshape(-1, 3)
        * a
    )
    s = System(
        g + rng.normal(scale=jitter, size=g.shape),
        np.zeros(len(g), int),
        Cell.cubic(n_side * a),
    )
    s.seed_velocities(30.0, np.random.default_rng(8))
    return s


def _sim(system=None):
    return Simulation(
        system if system is not None else _system(),
        LennardJones(epsilon=0.05, sigma=1.5, cutoff=3.0),
        dt=0.2,
    )


def _frames(system, n, seed=3):
    """n deterministic frames derived from a system (fresh arrays each)."""
    rng = np.random.default_rng(seed)
    out = []
    for k in range(n):
        out.append(
            Frame(
                step=k,
                time_fs=0.5 * k,
                pe=-float(k),
                cell_lengths=np.array(system.cell.lengths, dtype=np.float64),
                positions=system.positions + rng.normal(scale=0.01, size=(system.n_atoms, 3)),
                velocities=rng.normal(scale=0.01, size=(system.n_atoms, 3)),
            )
        )
    return out


def _write(path, system, frames, frames_per_chunk=4, **kw):
    store = TrajectoryStore(
        path, system=system, frames_per_chunk=frames_per_chunk, **kw
    )
    for f in frames:
        store.append(f)
    store.close()
    return store


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------
class TestFormat:
    def test_header_roundtrip(self, tmp_path):
        system = _system()
        path = tmp_path / "t.rtrj"
        _write(path, system, _frames(system, 1))
        with open(path, "rb") as fh:
            header, size = read_header(fh)
        assert header.n_atoms == system.n_atoms
        assert list(header.species) == list(system.species)
        np.testing.assert_array_equal(header.masses, system.masses)
        assert tuple(header.species_names) == tuple(system.species_names or ())
        assert size == len(encode_header(header))

    def test_truncated_header_is_descriptive(self, tmp_path):
        path = tmp_path / "t.rtrj"
        path.write_bytes(b"RPRTRJ1\n\x01\x00")
        import io

        with pytest.raises(TrajFormatError, match="too short"):
            with open(path, "rb") as fh:
                read_header(fh)

    def test_bad_magic_is_descriptive(self, tmp_path):
        path = tmp_path / "t.rtrj"
        path.write_bytes(b"NOTATRAJ" + b"\x00" * 64)
        with pytest.raises(TrajFormatError, match="magic"):
            with open(path, "rb") as fh:
                read_header(fh)

    @pytest.mark.parametrize("compressed", [False, True])
    def test_chunk_payload_roundtrip(self, compressed):
        system = _system(n_side=2)
        frames = _frames(system, 5)
        blob = encode_chunk(frames, 0, system.n_atoms, compressed)
        header = decode_chunk_header(blob[:36])
        assert header.n_frames == 5
        out = decode_payload(header, blob[36:], system.n_atoms)
        for a, b in zip(frames, out):
            assert a.step == b.step
            assert a.time_fs == b.time_fs
            assert a.pe == b.pe
            np.testing.assert_array_equal(a.positions, b.positions)
            np.testing.assert_array_equal(a.velocities, b.velocities)
            np.testing.assert_array_equal(a.cell_lengths, b.cell_lengths)

    def test_corrupt_payload_fails_crc(self):
        system = _system(n_side=2)
        blob = bytearray(encode_chunk(_frames(system, 3), 0, system.n_atoms, True))
        blob[40] ^= 0xFF
        header = decode_chunk_header(bytes(blob[:36]))
        with pytest.raises(TrajFormatError, match="checksum"):
            decode_payload(header, bytes(blob[36:]), system.n_atoms)

    def test_compression_shrinks_similar_frames(self, tmp_path):
        system = _system()
        frames = _frames(system, 16)
        raw = tmp_path / "raw.rtrj"
        packed = tmp_path / "packed.rtrj"
        _write(raw, system, frames, frames_per_chunk=16, compression=False)
        _write(packed, system, frames, frames_per_chunk=16, compression=True)
        assert os.path.getsize(packed) < os.path.getsize(raw)


# ---------------------------------------------------------------------------
# Store + reader
# ---------------------------------------------------------------------------
class TestStoreReader:
    def test_roundtrip_exact(self, tmp_path):
        system = _system()
        frames = _frames(system, 10)
        path = tmp_path / "t.rtrj"
        _write(path, system, frames)
        with TrajectoryReader(path) as reader:
            assert len(reader) == 10
            assert reader.index_source == "footer"
            for k, frame in enumerate(reader.frames()):
                ref = frames[k]
                assert frame.step == ref.step
                np.testing.assert_array_equal(frame.positions, ref.positions)
                np.testing.assert_array_equal(frame.velocities, ref.velocities)

    def test_random_access_equals_sequential(self, tmp_path):
        system = _system(n_side=2)
        frames = _frames(system, 11)
        path = tmp_path / "t.rtrj"
        _write(path, system, frames, frames_per_chunk=3)
        with TrajectoryReader(path) as reader:
            seq = list(reader.frames())
            for i in [10, 0, 7, 3, 5, 9, 1]:
                frame = reader[i]
                assert frame.step == seq[i].step
                np.testing.assert_array_equal(frame.positions, seq[i].positions)
            with pytest.raises(IndexError):
                reader.read(11)

    def test_missing_footer_falls_back_to_sidecar_then_scan(self, tmp_path):
        system = _system(n_side=2)
        frames = _frames(system, 8)
        path = tmp_path / "t.rtrj"
        store = TrajectoryStore(path, system=system, frames_per_chunk=4)
        for f in frames:
            store.append(f)
        store.commit()
        store.abort()  # crash-shaped: no footer written
        with TrajectoryReader(path) as reader:
            assert reader.index_source == "sidecar"
            assert [f.step for f in reader.frames()] == list(range(8))
        os.remove(sidecar_path(path))
        with TrajectoryReader(path) as reader:
            assert reader.index_source == "scan"
            assert [f.step for f in reader.frames()] == list(range(8))

    def test_torn_tail_never_raises_on_read(self, tmp_path):
        system = _system(n_side=2)
        path = tmp_path / "t.rtrj"
        _write(path, system, _frames(system, 10), frames_per_chunk=4)
        raw = path.read_bytes()
        os.remove(sidecar_path(path))
        for cut in (1, 20, 37, len(raw) // 2):
            torn = tmp_path / f"torn{cut}.rtrj"
            torn.write_bytes(raw[: len(raw) - cut])
            with TrajectoryReader(torn) as reader:
                frames = list(reader.frames())  # must not raise
                for f in frames:
                    assert np.all(np.isfinite(f.positions))

    def test_quarantined_random_access_raises_typed(self, tmp_path):
        system = _system(n_side=2)
        path = tmp_path / "t.rtrj"
        plan = FaultPlan(seed=3, at={TRAJ_TORN_CHUNK: [1]})
        _write(path, system, _frames(system, 12), fault_plan=plan)
        assert plan.fired(TRAJ_TORN_CHUNK) == 1
        with TrajectoryReader(path) as reader:
            readable = [f.step for f in reader.frames()]
            assert readable == [0, 1, 2, 3, 8, 9, 10, 11]
            assert reader.frames_quarantined == 4
            with pytest.raises(FrameQuarantinedError):
                reader.read(5)
            # chunks after the torn one stay randomly accessible
            assert reader.read(9).step == 9

    def test_torn_chunk_accounting(self, tmp_path):
        system = _system(n_side=2)
        path = tmp_path / "t.rtrj"
        plan = FaultPlan(seed=3, at={TRAJ_TORN_CHUNK: [0, 2]})
        store = _write(path, system, _frames(system, 12), fault_plan=plan)
        with TrajectoryReader(path) as reader:
            n_readable = sum(1 for _ in reader.frames())
            assert (
                store.frames_durable
                == n_readable + reader.frames_quarantined
            )
            report = reader.verify()
            assert report["frames_quarantined"] == reader.frames_quarantined
            assert [c["ok"] for c in report["chunks"]] == [False, True, False]

    def test_verify_report_shape(self, tmp_path):
        system = _system(n_side=2)
        path = tmp_path / "t.rtrj"
        _write(path, system, _frames(system, 5), frames_per_chunk=2)
        with TrajectoryReader(path) as reader:
            report = reader.verify()
        assert report["n_frames"] == 5
        assert report["frames_readable"] == 5
        assert report["frames_quarantined"] == 0
        assert report["n_chunks"] == 3
        assert not report["torn_tail"]


# ---------------------------------------------------------------------------
# Async writer
# ---------------------------------------------------------------------------
class TestWriter:
    def test_writer_matches_store(self, tmp_path):
        """The async path produces the same bytes as direct appends."""
        system = _system(n_side=2)
        frames = _frames(system, 9)
        direct = tmp_path / "direct.rtrj"
        _write(direct, system, frames)
        via_writer = tmp_path / "writer.rtrj"
        w = TrajectoryWriter(via_writer, system=system, frames_per_chunk=4)
        for f in frames:
            class _Sys:  # record() snapshots (positions, velocities, cell)
                positions = f.positions
                velocities = f.velocities
                cell = system.cell
            w.record(f.step, f.time_fs, _Sys, pe=f.pe)
        w.close()
        assert direct.read_bytes() == via_writer.read_bytes()

    def test_drop_policy_counts(self, tmp_path):
        system = _system(n_side=2)
        path = tmp_path / "t.rtrj"
        w = TrajectoryWriter(
            path, system=system, queue_size=1, policy="drop"
        )
        # stall the worker so the queue stays full
        gate = threading.Event()
        orig = w._store.append

        def slow(frame):
            gate.wait(5.0)
            orig(frame)

        w._store.append = slow
        for k in range(50):
            w.record(k, 0.5 * k, system)
        gate.set()
        w.close()
        assert w.frames_dropped > 0
        assert w.frames_recorded + w.frames_dropped == 50
        with TrajectoryReader(path) as reader:
            assert len(reader) == w.frames_recorded

    def test_worker_error_surfaces_on_producer(self, tmp_path):
        system = _system(n_side=2)
        w = TrajectoryWriter(tmp_path / "t.rtrj", system=system)

        def boom(frame):
            raise OSError("disk gone")

        w._store.append = boom
        w.record(0, 0.0, system)
        with pytest.raises(Exception, match="disk gone"):
            w.barrier()

    def test_abort_drops_uncommitted(self, tmp_path):
        system = _system(n_side=2)
        path = tmp_path / "t.rtrj"
        w = TrajectoryWriter(path, system=system, frames_per_chunk=4)
        for k in range(10):
            w.record(k, 0.5 * k, system)
        w.barrier()
        for k in range(10, 13):
            w.record(k, 0.5 * k, system)
        w.abort()
        with TrajectoryReader(path) as reader:
            assert [f.step for f in reader.frames()] == list(range(10))

    def test_rollback_then_rewrite_is_bitwise(self, tmp_path):
        system = _system(n_side=2)
        frames = _frames(system, 10)
        clean = tmp_path / "clean.rtrj"
        _write(clean, system, frames)
        rolled = tmp_path / "rolled.rtrj"
        store = TrajectoryStore(rolled, system=system, frames_per_chunk=4)
        for f in frames:
            store.append(f)
        store.truncate(6)
        for f in frames[7:]:
            store.append(f)
        store.close()
        assert clean.read_bytes() == rolled.read_bytes()


# ---------------------------------------------------------------------------
# MD integration: the byte-identity guarantee
# ---------------------------------------------------------------------------
class TestKillAndResume:
    def test_resume_appends_exactly_missing_frames(self, tmp_path):
        total, killed_at, every = 60, 23, 5
        clean = tmp_path / "clean.rtrj"
        ref = _sim()
        ref.run(
            total,
            checkpoint_every=every,
            checkpoint_dir=tmp_path / "ck_ref",
            dump_every=10,
            dump_path=clean,
        )

        part = tmp_path / "part.rtrj"
        sim1 = _sim()

        def bomb(step, sim):
            if step == killed_at:
                raise KeyboardInterrupt

        sim1._callbacks.append(bomb)
        with pytest.raises(KeyboardInterrupt):
            sim1.run(
                total,
                checkpoint_every=every,
                checkpoint_dir=tmp_path / "ck",
                dump_every=10,
                dump_path=part,
            )

        sim2 = _sim()
        manager = CheckpointManager(tmp_path / "ck")
        step, state = manager.load_latest()
        assert step == 20
        sim2.set_state(state)
        sim2.run(
            total - step,
            checkpoint_every=every,
            checkpoint_manager=manager,
            dump_every=10,
            dump_path=part,
        )
        np.testing.assert_array_equal(
            sim2.system.positions, ref.system.positions
        )
        assert clean.read_bytes() == part.read_bytes()
        with TrajectoryReader(part) as reader:
            assert [f.step for f in reader.frames()] == [10, 20, 30, 40, 50, 60]

    def test_dump_records_pe_and_metadata(self, tmp_path):
        path = tmp_path / "t.rtrj"
        sim = _sim()
        res = sim.run(20, dump_every=5, dump_path=path)
        with TrajectoryReader(path) as reader:
            frames = list(reader.frames())
        assert [f.step for f in frames] == [5, 10, 15, 20]
        for f in frames:
            assert np.isfinite(f.pe)
            assert f.time_fs == pytest.approx(f.step * 0.2)

    def test_run_without_dump_unchanged(self, tmp_path):
        a = _sim()
        ra = a.run(20)
        b = _sim()
        rb = b.run(20, dump_every=5, dump_path=tmp_path / "t.rtrj")
        np.testing.assert_array_equal(a.system.positions, b.system.positions)
        np.testing.assert_array_equal(
            ra.potential_energies, rb.potential_energies
        )

    def test_dump_every_validation(self, tmp_path):
        sim = _sim()
        with pytest.raises(ValueError, match="dump_every"):
            sim.run(4, dump_every=0, dump_path=tmp_path / "t.rtrj")
        with pytest.raises(ValueError, match="dump_every"):
            sim.run(4, dump_every=5)

    def test_parallel_dump_matches_serial(self, tmp_path):
        from repro.parallel import ParallelSimulation

        system = _system()
        serial = _sim(_system())
        serial.run(12, dump_every=3, dump_path=tmp_path / "serial.rtrj")
        par = ParallelSimulation(
            system, LennardJones(epsilon=0.05, sigma=1.5, cutoff=3.0),
            n_ranks=4, dt=0.2,
        )
        par.run(12, dump_every=3, dump_path=tmp_path / "par.rtrj")
        with TrajectoryReader(tmp_path / "serial.rtrj") as rs, \
                TrajectoryReader(tmp_path / "par.rtrj") as rp:
            fs, fp = list(rs.frames()), list(rp.frames())
            assert [f.step for f in fs] == [f.step for f in fp]
            L = np.asarray(system.cell.lengths)
            for a, b in zip(fs, fp):
                delta = a.positions - b.positions
                delta -= L * np.round(delta / L)
                assert float(np.max(np.abs(delta))) < 1e-8


# ---------------------------------------------------------------------------
# Streaming analysis
# ---------------------------------------------------------------------------
class TestStreaming:
    def test_streaming_msd_equals_materialized(self):
        rng = np.random.default_rng(0)
        traj = np.cumsum(rng.normal(size=(40, 6, 3)), axis=0)
        fold = StreamingMSD(window=39)
        for pos in traj:
            fold.update(pos)
        ref = mean_squared_displacement(list(traj))
        np.testing.assert_allclose(fold.result(), ref, rtol=1e-10, atol=1e-12)

    def test_streaming_msd_unwraps_minimum_image(self):
        # ballistic motion through a periodic box, dumped wrapped
        L = np.array([4.0, 4.0, 4.0])
        v = np.array([0.3, 0.0, 0.0])
        unwrapped = np.array([[k * v for _ in range(2)] for k in range(30)])
        wrapped = unwrapped % L
        fold = StreamingMSD(window=29)
        for pos in wrapped:
            fold.update(pos, L)
        ref = mean_squared_displacement([f for f in unwrapped])
        np.testing.assert_allclose(fold.result(), ref, atol=1e-10)

    def test_streaming_vacf_equals_materialized(self):
        rng = np.random.default_rng(1)
        vel = rng.normal(size=(30, 5, 3))
        fold = StreamingVACF(window=29)
        for v in vel:
            fold.update(v)
        ref = velocity_autocorrelation([v for v in vel])
        np.testing.assert_allclose(fold.result(), ref, rtol=1e-10, atol=1e-12)

    def test_streaming_rdf_matches_single_frame(self):
        system = _system()
        L = np.asarray(system.cell.lengths, dtype=np.float64)
        fold = StreamingRDF(r_max=2.5, n_bins=20)
        fold.update(system.positions, L)
        # Reference: min-image ordered pair distances through the batch API.
        d = system.positions[:, None, :] - system.positions[None, :, :]
        d -= np.round(d / L) * L
        r = np.linalg.norm(d, axis=-1)
        dists = r[~np.eye(system.n_atoms, dtype=bool)]
        r_ref, g_ref = radial_distribution(
            dists, system.n_atoms, float(np.prod(L)), r_max=2.5, n_bins=20
        )
        res = fold.result()
        np.testing.assert_allclose(res["r"], r_ref)
        np.testing.assert_allclose(res["g"], g_ref, rtol=1e-10, atol=1e-12)

    def test_streaming_thermo_drift(self):
        masses = np.ones(4) * 12.0
        fold = StreamingThermo(masses)
        rng = np.random.default_rng(2)
        for k in range(20):
            fold.update(rng.normal(scale=0.01, size=(4, 3)), pe=-1.0)
        res = fold.result()
        assert res["n_frames"] == 20
        assert res["mean_temperature"] > 0
        assert np.isfinite(res["temperature_drift_per_frame"])

    def test_analyze_stream_deterministic(self, tmp_path):
        path = tmp_path / "t.rtrj"
        sim = _sim()
        sim.run(30, dump_every=3, dump_path=path)
        from repro.obs import to_json

        with TrajectoryReader(path) as reader:
            a = to_json(analyze_stream(reader, msd_window=5))
        with TrajectoryReader(path) as reader:
            b = to_json(analyze_stream(reader, msd_window=5))
        assert a == b

    def test_msd_fft_equals_naive(self):
        rng = np.random.default_rng(3)
        traj = np.cumsum(rng.normal(size=(120, 5, 3)), axis=0)
        for kw in [{}, {"max_lag": 40}, {"atom_indices": np.array([0, 2, 4])}]:
            np.testing.assert_allclose(
                mean_squared_displacement(list(traj), **kw),
                _mean_squared_displacement_naive(list(traj), **kw),
                rtol=1e-9,
                atol=1e-9,
            )
