"""Extended spherical-harmonic checks: addition theorem, gradients at high ℓ."""

import numpy as np
import pytest

import repro.autodiff as ad
from repro.equivariant.spherical_harmonics import (
    _sh_numpy_single_l,
    spherical_harmonics,
)


@pytest.fixture
def rng():
    return np.random.default_rng(211)


def _unit(rng, n):
    v = rng.normal(size=(n, 3))
    return v / np.linalg.norm(v, axis=1, keepdims=True)


class TestAdditionTheorem:
    @pytest.mark.parametrize("l", [1, 2, 3])
    def test_pairwise_dot_is_legendre(self, l, rng):
        """Y_l(u)·Y_l(v) = (2l+1)·P_l(u·v) — the addition theorem, which
        pins down both normalization and basis consistency."""
        from numpy.polynomial import legendre

        u = _unit(rng, 12)
        v = _unit(rng, 12)
        Yu = _sh_numpy_single_l(l, u)
        Yv = _sh_numpy_single_l(l, v)
        lhs = (Yu * Yv).sum(axis=1)
        coeffs = np.zeros(l + 1)
        coeffs[l] = 1.0
        rhs = (2 * l + 1) * legendre.legval((u * v).sum(axis=1), coeffs)
        assert np.allclose(lhs, rhs, atol=1e-9)

    @pytest.mark.parametrize("l", [1, 2, 3])
    def test_self_dot_constant(self, l, rng):
        u = _unit(rng, 20)
        Y = _sh_numpy_single_l(l, u)
        assert np.allclose((Y * Y).sum(axis=1), 2 * l + 1)


class TestGradientsHighL:
    @pytest.mark.parametrize("l", [2, 3, 4])
    def test_gradcheck_per_l(self, l, rng):
        def f(v):
            return spherical_harmonics(l, v, ls=[l])

        ad.gradcheck(f, [rng.normal(size=(2, 3)) * 2.0], atol=2e-4, rtol=2e-3)

    def test_gradient_tangential_for_normalized_sh(self, rng):
        """Y(v/|v|) is scale-invariant ⇒ ∇ is orthogonal to v."""
        v = ad.Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        Y = spherical_harmonics(2, v)
        Y.sum().backward()
        radial = (v.grad.data * v.data).sum(axis=1)
        assert np.allclose(radial, 0.0, atol=1e-10)

    def test_second_derivatives_finite(self, rng):
        """Force training differentiates ∇Y again; must stay finite."""
        v = ad.Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        Y = spherical_harmonics(2, v)
        (g,) = ad.grad((Y * Y).sum(), [v], create_graph=True)
        (g * g).sum().backward()
        assert np.isfinite(v.grad.data).all()


class TestSubsets:
    def test_ls_subset_matches_slices(self, rng):
        v = rng.normal(size=(6, 3))
        full = spherical_harmonics(3, v).data
        only2 = spherical_harmonics(3, v, ls=[2]).data
        assert np.allclose(only2, full[:, 4:9])

    def test_order_preserved(self, rng):
        v = rng.normal(size=(3, 3))
        mixed = spherical_harmonics(3, v, ls=[0, 3]).data
        full = spherical_harmonics(3, v).data
        assert np.allclose(mixed[:, :1], full[:, :1])
        assert np.allclose(mixed[:, 1:], full[:, 9:16])
