"""Tests for the command-line MD runner."""

import json

import numpy as np
import pytest

from repro.cli import (
    EXAMPLE_CONFIG,
    EXAMPLE_SERVE_CONFIG,
    EXAMPLE_TRAIN_CONFIG,
    build_potential,
    build_system,
    build_training_frames,
    build_training_model,
    main,
    run_config,
    serve_config,
    train_config,
)


class TestBuilders:
    def test_build_each_system_kind(self):
        assert build_system({"kind": "water", "n_grid": 2}).n_atoms == 24
        assert build_system({"kind": "water_box", "reps": 1}).n_atoms == 192
        assert build_system({"kind": "molecule", "n_heavy": 3}).n_atoms > 3
        assert build_system({"kind": "protein", "n_residues": 3}).n_atoms > 30

    def test_unknown_kinds_rejected(self):
        with pytest.raises(ValueError):
            build_system({"kind": "quantum_computer"})
        with pytest.raises(ValueError):
            build_potential({"kind": "magic"})

    def test_build_reference_and_lj(self):
        assert build_potential({"kind": "reference"}).cutoff > 0
        lj = build_potential({"kind": "lennard_jones", "cutoff": 3.0})
        assert lj.cutoff == 3.0

    def test_build_allegro_with_checkpoint(self, tmp_path):
        cfg = {
            "n_species": 4,
            "n_tensor": 2,
            "latent_dim": 8,
            "two_body_hidden": [8],
            "latent_hidden": [8],
            "edge_energy_hidden": [4],
            "r_cut": 3.0,
            "avg_num_neighbors": 8.0,
        }
        m1 = build_potential({"kind": "allegro", "config": cfg})
        path = tmp_path / "ckpt.npz"
        np.savez(path, **m1.state_dict())
        m2 = build_potential(
            {"kind": "allegro", "config": cfg, "checkpoint": str(path)}
        )
        s = build_system({"kind": "molecule", "n_heavy": 3})
        e1, _ = m1.energy_and_forces(s)
        e2, _ = m2.energy_and_forces(s)
        assert e1 == e2


class TestRunConfig:
    def _config(self, **md_overrides):
        cfg = json.loads(json.dumps(EXAMPLE_CONFIG))  # deep copy
        cfg["system"] = {"kind": "water", "n_grid": 3, "seed": 1}
        cfg["md"].update({"steps": 5, "dt": 0.5}, **md_overrides)
        return cfg

    def test_langevin_run(self):
        result = run_config(self._config(), quiet=True)
        assert result.n_steps == 5
        assert np.isfinite(result.total_energies).all()

    def test_berendsen_and_nve(self):
        run_config(self._config(thermostat="berendsen"), quiet=True)
        run_config(self._config(thermostat=None), quiet=True)

    def test_minimize_first(self):
        result = run_config(self._config(minimize_first=True), quiet=True)
        assert np.isfinite(result.potential_energies).all()

    def test_unknown_thermostat(self):
        with pytest.raises(ValueError):
            run_config(self._config(thermostat="nose-hoover-42"), quiet=True)

    def test_trajectory_written(self, tmp_path):
        cfg = self._config()
        path = tmp_path / "out.xyz"
        cfg["output"] = {"trajectory": str(path), "every": 2}
        run_config(cfg, quiet=True)
        assert path.exists()
        assert path.read_text().startswith("81\n")


class TestServeConfig:
    def _config(self, **serve_overrides):
        cfg = json.loads(json.dumps(EXAMPLE_SERVE_CONFIG))  # deep copy
        cfg["workload"]["n_requests"] = 8
        cfg["serve"].update(serve_overrides)
        return cfg

    def test_serve_workload_runs(self):
        stats = serve_config(self._config(), quiet=True)
        assert stats["counters"]["requests_served"] == 8
        assert stats["requests_per_second"] > 0
        assert stats["engine"] == "compiled"
        # Everything completed: nothing shed, nothing timed out.
        assert stats["counters"].get("requests_shed", 0) == 0
        assert stats["counters"].get("requests_timeout", 0) == 0

    def test_serve_eager_engine(self):
        stats = serve_config(self._config(engine="eager"), quiet=True)
        assert stats["engine"] == "eager"
        assert stats["counters"]["requests_served"] == 8

    def test_serve_stats_json_written(self, tmp_path):
        path = tmp_path / "metrics.json"
        serve_config(self._config(), quiet=True, stats_json=path)
        payload = json.loads(path.read_text())
        assert payload["counters"]["requests_served"] == 8
        assert "latency_s" in payload["histograms"]


class TestTrainConfig:
    def _config(self, **train_overrides):
        cfg = json.loads(json.dumps(EXAMPLE_TRAIN_CONFIG))  # deep copy
        cfg["data"]["n_frames"] = 10
        cfg["train"].update({"epochs": 2, "batch_size": 4}, **train_overrides)
        return cfg

    def test_builders(self):
        assert build_training_model({"kind": "classical"}).cutoff > 0
        train, val = build_training_frames(
            {"kind": "conformations", "n_frames": 10, "val_fraction": 0.2}
        )
        assert len(train) == 8 and len(val) == 2
        with pytest.raises(ValueError):
            build_training_model({"kind": "magic"})
        with pytest.raises(ValueError):
            build_training_frames({"kind": "magic"})

    def test_train_runs_and_reports(self, tmp_path):
        stats_path = tmp_path / "stats.json"
        trainer = train_config(self._config(), quiet=True, stats_json=stats_path)
        assert trainer.epochs_completed == 2
        payload = json.loads(stats_path.read_text())
        assert len(payload["history"]) == 2
        assert np.isfinite(payload["history"][-1]["train_loss"])

    def test_train_saves_model(self, tmp_path):
        path = tmp_path / "model.npz"
        trainer = train_config(
            self._config(save_model=str(path)), quiet=True
        )
        saved = dict(np.load(path))
        for key, value in trainer.model.state_dict().items():
            np.testing.assert_array_equal(saved[key], value)

    def test_kill_and_resume_is_bitwise(self, tmp_path):
        full = train_config(
            self._config(epochs=4, checkpoint_dir=str(tmp_path / "a")), quiet=True
        )
        ckpt = tmp_path / "b"
        train_config(
            self._config(epochs=2, checkpoint_dir=str(ckpt)), quiet=True
        )
        resumed = train_config(
            self._config(epochs=4, checkpoint_dir=str(ckpt)),
            resume=True,
            quiet=True,
        )
        assert [s.train_loss for s in full.history] == [
            s.train_loss for s in resumed.history
        ]
        for key, value in full.model.state_dict().items():
            np.testing.assert_array_equal(resumed.model.state_dict()[key], value)

    def test_resume_without_checkpoint_dir_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            train_config(self._config(), resume=True, quiet=True)

    def test_train_from_file(self, tmp_path, capsys):
        cfg = self._config()
        path = tmp_path / "t.json"
        path.write_text(json.dumps(cfg))
        assert main(["train", str(path), "--quiet"]) == 0


class TestMain:
    def test_example_config_roundtrip(self, capsys):
        assert main(["example-config"]) == 0
        printed = capsys.readouterr().out
        assert json.loads(printed)["system"]["kind"] == "water"

    def test_example_serve_config_roundtrip(self, capsys):
        assert main(["example-serve-config"]) == 0
        printed = capsys.readouterr().out
        assert "serve" in json.loads(printed)

    def test_example_train_config_roundtrip(self, capsys):
        assert main(["example-train-config"]) == 0
        printed = capsys.readouterr().out
        assert json.loads(printed)["model"]["kind"] == "classical"

    def test_run_from_file(self, tmp_path, capsys):
        cfg = json.loads(json.dumps(EXAMPLE_CONFIG))
        cfg["system"] = {"kind": "water", "n_grid": 3}
        cfg["md"]["steps"] = 3
        path = tmp_path / "c.json"
        path.write_text(json.dumps(cfg))
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "timesteps/s" in out

    def test_run_stats_json(self, tmp_path, capsys):
        cfg = json.loads(json.dumps(EXAMPLE_CONFIG))
        cfg["system"] = {"kind": "water", "n_grid": 3}
        cfg["potential"] = {"kind": "lennard_jones", "cutoff": 3.0, "n_species": 4}
        cfg["md"].update({"steps": 3, "engine": "compiled"})
        cfg_path = tmp_path / "c.json"
        cfg_path.write_text(json.dumps(cfg))
        stats_path = tmp_path / "stats.json"
        assert main(["run", str(cfg_path), "--stats-json", str(stats_path)]) == 0
        payload = json.loads(stats_path.read_text())
        assert payload["engine"] == "compiled"
        assert payload["n_steps"] == 3
        assert payload["engine_stats"]["n_captures"] >= 1

    def test_serve_from_file(self, tmp_path, capsys):
        cfg = json.loads(json.dumps(EXAMPLE_SERVE_CONFIG))
        cfg["workload"]["n_requests"] = 6
        cfg_path = tmp_path / "s.json"
        cfg_path.write_text(json.dumps(cfg))
        stats_path = tmp_path / "metrics.json"
        assert main(["serve", str(cfg_path), "--stats-json", str(stats_path)]) == 0
        out = capsys.readouterr().out
        assert "requests/s" in out
        assert json.loads(stats_path.read_text())["counters"]["requests_served"] == 6


class TestObservabilityCli:
    def _write_config(self, tmp_path, steps=4):
        cfg = json.loads(json.dumps(EXAMPLE_CONFIG))
        cfg["system"] = {"kind": "water", "n_grid": 3, "seed": 1}
        cfg["md"].update({"steps": steps, "dt": 0.5})
        path = tmp_path / "c.json"
        path.write_text(json.dumps(cfg))
        return path

    def test_run_trace_json_covers_md_phases(self, tmp_path, capsys):
        cfg_path = self._write_config(tmp_path)
        trace_path = tmp_path / "trace.json"
        assert main(["run", str(cfg_path), "--trace-json", str(trace_path)]) == 0
        doc = json.loads(trace_path.read_text())
        assert doc["schema_version"] == 1
        phases = doc["phases"]
        # The acceptance tree: step spans with nested phase children.
        assert phases["md.step"]["count"] == 4
        for child in ("md.integrate", "md.force", "md.neighbor"):
            assert phases[f"md.step/{child}"]["count"] >= 1
        # The exported trace tree itself nests children under md.step.
        root = doc["traces"][-1]
        assert root["name"] == "md.step"
        assert {c["name"] for c in root["children"]} >= {
            "md.integrate",
            "md.force",
        }

    def test_run_trace_json_disabled_afterwards(self, tmp_path, capsys):
        from repro import obs

        cfg_path = self._write_config(tmp_path)
        assert main(
            ["run", str(cfg_path), "--trace-json", str(tmp_path / "t.json")]
        ) == 0
        assert not obs.enabled()

    def test_profile_prints_phase_table(self, tmp_path, capsys):
        cfg_path = self._write_config(tmp_path, steps=6)
        assert main(["profile", str(cfg_path)]) == 0
        out = capsys.readouterr().out
        assert "md.step" in out
        assert "share" in out
        assert "timesteps/s" in out

    def test_profile_writes_trace_and_stats(self, tmp_path, capsys):
        cfg_path = self._write_config(tmp_path, steps=3)
        trace_path = tmp_path / "trace.json"
        stats_path = tmp_path / "stats.json"
        assert main([
            "profile", str(cfg_path), "--steps", "5", "--quiet",
            "--trace-json", str(trace_path),
            "--stats-json", str(stats_path),
        ]) == 0
        trace = json.loads(trace_path.read_text())
        assert trace["phases"]["md.step"]["count"] == 5  # --steps overrides
        stats = json.loads(stats_path.read_text())
        assert stats["schema_version"] == 1
        assert stats["counters"]["md.steps"] == 5
        assert stats["timesteps_per_second"] > 0

    def test_stats_json_deterministic_bytes(self, tmp_path):
        cfg = json.loads(json.dumps(EXAMPLE_SERVE_CONFIG))
        cfg["workload"]["n_requests"] = 4
        cfg_path = tmp_path / "s.json"
        cfg_path.write_text(json.dumps(cfg))
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["serve", str(cfg_path), "--stats-json", str(a)]) == 0
        assert main(["serve", str(cfg_path), "--stats-json", str(b)]) == 0
        da = json.loads(a.read_bytes())
        db = json.loads(b.read_bytes())
        assert da["schema_version"] == db["schema_version"] == 1
        # Key order is sorted, so identical payloads give identical bytes.
        assert list(da["counters"]) == sorted(da["counters"])
        assert da["counters"] == db["counters"]
