"""Tests for energy minimization and thermal frame sampling."""

import numpy as np
import pytest

from repro.md import Cell, System, minimize, sample_md_frames
from repro.models import LennardJones, MorsePotential


@pytest.fixture
def rng():
    return np.random.default_rng(139)


class TestMinimize:
    def test_dimer_relaxes_to_known_minimum(self):
        lj = LennardJones(epsilon=1.0, sigma=1.0, cutoff=4.0)
        s = System(np.array([[0.0, 0, 0], [1.4, 0, 0]]), np.zeros(2, int), None)
        res = minimize(s, lj, max_steps=300, force_tol=1e-3)
        assert res.converged
        r = np.linalg.norm(s.positions[1] - s.positions[0])
        assert r == pytest.approx(2 ** (1 / 6), abs=2e-2)

    def test_energy_monotone_decreasing(self, rng):
        lj = LennardJones(epsilon=0.05, sigma=1.5, cutoff=3.0)
        n_side, a = 4, 1.7
        g = (
            np.stack(np.meshgrid(*[np.arange(n_side)] * 3, indexing="ij"), -1)
            .reshape(-1, 3) * a
        )
        s = System(
            g + rng.normal(scale=0.15, size=g.shape),
            np.zeros(len(g), int),
            Cell.cubic(n_side * a),
        )
        res = minimize(s, lj, max_steps=80)
        assert (np.diff(res.energies) <= 1e-12).all()
        assert res.energies[-1] < res.energies[0]

    def test_reduces_max_force(self, rng):
        morse = MorsePotential(
            np.array([[0.5]]), np.array([[1.5]]), np.array([[1.2]]), cutoff=4.0
        )
        s = System(
            np.array([[0.0, 0, 0], [0.9, 0, 0], [0.0, 1.0, 0.3]]),
            np.zeros(3, int),
            None,
        )
        _, f0 = morse.energy_and_forces(s)
        res = minimize(s, morse, max_steps=150, force_tol=0.01)
        assert res.max_force < np.abs(f0).max()

    def test_validation(self, rng):
        lj = LennardJones(cutoff=3.0)
        s = System(rng.uniform(0, 5, (4, 3)), np.zeros(4, int), None)
        with pytest.raises(ValueError):
            minimize(s, lj, max_steps=0)


class TestSampleMDFrames:
    def test_frames_are_independent_copies(self, rng):
        lj = LennardJones(epsilon=0.02, sigma=1.6, cutoff=3.0)
        n_side, a = 4, 1.8
        g = (
            np.stack(np.meshgrid(*[np.arange(n_side)] * 3, indexing="ij"), -1)
            .reshape(-1, 3) * a
        )
        s = System(g, np.zeros(len(g), int), Cell.cubic(n_side * a))
        frames = sample_md_frames(
            s, lj, n_frames=3, spacing_steps=5, temperature=100.0, dt=0.3, seed=2
        )
        assert len(frames) == 3
        # Original untouched; frames mutually distinct.
        assert np.allclose(s.positions, g)
        assert not np.allclose(frames[0].positions, frames[1].positions)
        assert not np.allclose(frames[1].positions, frames[2].positions)

    def test_thermal_distribution_reasonable(self, rng):
        lj = LennardJones(epsilon=0.02, sigma=1.6, cutoff=3.0)
        n_side, a = 4, 1.8
        g = (
            np.stack(np.meshgrid(*[np.arange(n_side)] * 3, indexing="ij"), -1)
            .reshape(-1, 3) * a
        )
        s = System(g, np.zeros(len(g), int), Cell.cubic(n_side * a))
        frames = sample_md_frames(
            s, lj, n_frames=4, spacing_steps=10, temperature=150.0, dt=0.3, seed=3,
            equilibration_steps=40,
        )
        temps = [f.temperature() for f in frames]
        assert 30 < np.mean(temps) < 400  # thermalized, not exploded
