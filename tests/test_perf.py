"""Tests for precision emulation, the allocator simulator, and the perf model."""

import numpy as np
import pytest

import repro.autodiff as ad
from repro.data import water_unit_cell
from repro.models import AllegroConfig, AllegroModel
from repro.parallel import PerfModel, strong_scaling_curve, weak_scaling_curve
from repro.perf import (
    POLICIES,
    CachingAllocator,
    PaddingPolicy,
    Timer,
    apply_policy,
    policy_speed_factor,
    round_f32,
    simulate_md_allocation,
    time_callable,
    truncate_tf32,
)
from repro.perf.precision import PrecisionPolicy


@pytest.fixture
def rng():
    return np.random.default_rng(103)


class TestPrecisionRounding:
    def test_round_f32_idempotent(self, rng):
        x = rng.normal(size=100)
        once = round_f32(x)
        assert np.allclose(round_f32(once), once)
        assert once.dtype == np.float64

    def test_tf32_coarser_than_f32(self, rng):
        x = rng.normal(size=1000) * 7
        err32 = np.abs(round_f32(x) - x).max()
        err_tf = np.abs(truncate_tf32(x) - x).max()
        assert err_tf > err32

    def test_tf32_relative_error_bound(self, rng):
        """10-bit mantissa: relative error ≤ 2^-11."""
        x = rng.normal(size=10000)
        rel = np.abs((truncate_tf32(x) - x) / x)
        assert rel.max() < 2.0**-10  # round-to-nearest within one ulp bound

    def test_tf32_preserves_exact_small_ints(self):
        x = np.array([0.0, 1.0, 2.0, -4.0, 0.5])
        assert np.allclose(truncate_tf32(x), x)

    def test_tf32_handles_nonfinite(self):
        x = np.array([np.inf, -np.inf, np.nan])
        out = truncate_tf32(x)
        assert np.isinf(out[0]) and np.isinf(out[1]) and np.isnan(out[2])

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            PrecisionPolicy("x", "f16", "f32", "f32")
        with pytest.raises(ValueError):
            PrecisionPolicy("x", "f64", "f32", "bf16")


class TestApplyPolicy:
    @pytest.fixture
    def model_and_system(self):
        model = AllegroModel(
            AllegroConfig(
                n_species=4,
                n_tensor=2,
                latent_dim=8,
                two_body_hidden=(8,),
                latent_hidden=(8,),
                edge_energy_hidden=(4,),
                r_cut=3.5,
                avg_num_neighbors=30,
            )
        )
        return model, water_unit_cell()

    def test_policies_perturb_but_do_not_break(self, model_and_system):
        model, w = model_and_system
        E0, F0 = model.energy_and_forces(w)
        frms = np.sqrt((F0**2).mean())
        for name, pol in POLICIES.items():
            with apply_policy(model, pol):
                E, F = model.energy_and_forces(w)
            rel = np.abs(F - F0).max() / frms
            assert np.isfinite(E)
            assert rel < 0.05, f"{name}: force perturbation {rel}"

    def test_f64_policy_is_exact(self, model_and_system):
        model, w = model_and_system
        E0, _ = model.energy_and_forces(w)
        with apply_policy(model, POLICIES["F64,F64,F64"]):
            E, _ = model.energy_and_forces(w)
        assert E == E0

    def test_state_fully_restored(self, model_and_system):
        model, w = model_and_system
        sd_before = model.state_dict()
        E0, _ = model.energy_and_forces(w)
        with apply_policy(model, POLICIES["F32,F32,TF32"]):
            model.energy_and_forces(w)
        for k, v in model.state_dict().items():
            assert np.array_equal(v, sd_before[k]), k
        assert ad.config.matmul_input_cast is None
        assert ad.config.final_dtype == np.float64
        E1, _ = model.energy_and_forces(w)
        assert E1 == E0

    def test_tf32_larger_error_than_f32_compute(self, model_and_system):
        model, w = model_and_system
        _, F0 = model.energy_and_forces(w)
        errs = {}
        for name in ("F64,F32,TF32", "F64,F32,F32"):
            with apply_policy(model, POLICIES[name]):
                _, F = model.energy_and_forces(w)
            errs[name] = np.abs(F - F0).max()
        assert errs["F64,F32,TF32"] > errs["F64,F32,F32"]


class TestSpeedModel:
    def test_matches_paper_row_shape(self):
        """Table IV speed row: 0.98×, 0.37×, 1×, 0.37×, 0.26×."""
        paper = {
            "F32,F32,TF32": 0.98,
            "F32,F32,F32": 0.37,
            "F64,F32,TF32": 1.0,
            "F64,F32,F32": 0.37,
            "F64,F64,F64": 0.26,
        }
        for name, expected in paper.items():
            modeled = policy_speed_factor(POLICIES[name])
            assert modeled == pytest.approx(expected, abs=0.06), name

    def test_tf32_speedup_factor(self):
        """Tensor cores buy >2× (paper: 2.7×)."""
        tf = policy_speed_factor(POLICIES["F64,F32,TF32"])
        f32 = policy_speed_factor(POLICIES["F64,F32,F32"])
        assert 2.0 < tf / f32 < 3.5


class TestAllocator:
    def test_cache_hit_after_free(self):
        a = CachingAllocator()
        h, c1 = a.malloc(10_000_000)
        a.free(h)
        h2, c2 = a.malloc(10_000_000)
        assert h2 == h
        assert c2 < c1
        assert a.n_hits == 1

    def test_relative_bucketing(self):
        a = CachingAllocator()
        assert a._round(100_000_000) == a._round(100_400_000)
        assert a._round(100_000_000) != a._round(110_000_000)

    def test_flush_under_pressure(self):
        a = CachingAllocator(capacity_bytes=1e6)
        handles = [a.malloc(300_000)[0] for _ in range(3)]
        for h in handles:
            a.free(h)
        a.malloc(900_000)
        assert a.n_flushes >= 1

    def test_padding_policy_monotone(self):
        p = PaddingPolicy(0.05)
        s1 = p.padded_size(1000)
        assert s1 == 1050
        assert p.padded_size(900) == s1  # shape stays constant
        assert p.padded_size(1100) > s1

    def test_padded_run_is_stable(self, rng):
        n = 800
        drift = 2000 * np.exp(-np.arange(n) / 150)
        pairs = (50_000 + drift + 500 * rng.normal(size=n)).astype(int)
        padded = simulate_md_allocation(pairs, padding=0.05)
        unpadded = simulate_md_allocation(pairs, padding=None)
        # Padding: early throughput within 10% of late throughput.
        assert padded[:100].mean() > 0.9 * padded[-100:].mean()
        # Unpadded pays more allocation cost during the warmup phase.
        assert unpadded[:100].mean() <= padded[:100].mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            CachingAllocator(capacity_bytes=-1)


class TestPerfModel:
    def test_table3_calibration(self):
        """Modeled steps/s within 25% of each paper Table III entry."""
        pm = PerfModel()
        for nodes, paper in [(16, 6.28), (32, 11.9), (64, 20.3), (1024, 104.2)]:
            mine = pm.timesteps_per_second(1_119_744, nodes)
            assert abs(mine - paper) / paper < 0.25, (nodes, mine, paper)

    def test_saturation_plateau_near_100(self):
        """Strong scaling saturates around 100 steps/s (paper §VII-B)."""
        pm = PerfModel()
        peak = max(
            pm.timesteps_per_second(1_000_000, n) for n in (256, 512, 1024, 1280)
        )
        assert 80 < peak < 140

    def test_near_linear_before_saturation(self):
        pm = PerfModel()
        r16 = pm.timesteps_per_second(10_000_000, 16)
        r64 = pm.timesteps_per_second(10_000_000, 64)
        assert 3.0 < r64 / r16 <= 4.2

    def test_weak_scaling_efficiency_ordering(self):
        """Larger per-node sizes scale better (fig. 7)."""
        pm = PerfModel()
        effs = [
            weak_scaling_curve(pm, apn, [1, 1280])[-1][2]
            for apn in (25_000, 50_000, 75_000, 100_000)
        ]
        assert effs == sorted(effs)
        assert effs[-1] >= 0.70  # paper: "excess of 70%"

    def test_strong_scaling_clamps_to_memory(self):
        pm = PerfModel()
        curve = strong_scaling_curve(pm, 44_000_000, [16, 64, 256, 512, 1024, 1280])
        nodes = [n for n, _ in curve]
        assert min(nodes) >= 256  # 44M atoms cannot fit on 16 nodes
        assert pm.min_nodes(44_000_000) == pytest.approx(512, rel=0.15)

    def test_capsid_rate_matches_paper(self):
        pm = PerfModel()
        rate = pm.timesteps_per_second(44_000_000, 1280)
        assert rate == pytest.approx(8.73, rel=0.25)  # paper fig. 6

    def test_tts_vs_tight_binding_factor(self):
        """>1000× over tight binding (Table III headline)."""
        pm = PerfModel()
        ours = pm.timesteps_per_second(1_119_744, 64)
        tb = 0.020  # paper-quoted tight-binding steps/s on 64 nodes
        assert ours / tb > 1000

    def test_calibrate_throughput(self):
        pm = PerfModel()
        pm.calibrate_throughput(
            pairs_per_second_measured=1e5, pairs_per_atom=50, speedup=100
        )
        assert pm.spec.atoms_per_second_per_gpu == pytest.approx(2e5)
        with pytest.raises(ValueError):
            pm.calibrate_throughput(-1, 50, 100)

    def test_validation(self):
        with pytest.raises(ValueError):
            PerfModel(density=-1)


class TestTiming:
    def test_timer(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed > 0

    def test_time_callable(self):
        best, result = time_callable(lambda: 42, repeat=2)
        assert result == 42
        assert best >= 0
        with pytest.raises(ValueError):
            time_callable(lambda: 1, repeat=0)
