"""Unit tests for matmul and einsum, including the precision hooks."""

import numpy as np
import pytest

import repro.autodiff as ad
from repro.autodiff.tensor import config


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestMatmul:
    def test_forward_matches_numpy(self, rng):
        for sa, sb in [((3, 4), (4, 5)), ((2, 3, 4), (4, 5)), ((2, 3, 4), (2, 4, 5))]:
            a, b = rng.normal(size=sa), rng.normal(size=sb)
            assert np.allclose(ad.matmul(a, b).data, a @ b)

    def test_vector_cases(self, rng):
        a, b = rng.normal(size=4), rng.normal(size=4)
        assert np.allclose(ad.matmul(a, b).data, a @ b)
        M = rng.normal(size=(4, 5))
        assert np.allclose(ad.matmul(a, M).data, a @ M)
        assert np.allclose(ad.matmul(M.T, a).data, M.T @ a)

    @pytest.mark.parametrize(
        "sa,sb",
        [
            ((3, 4), (4, 5)),
            ((2, 3, 4), (4, 5)),
            ((2, 3, 4), (2, 4, 5)),
            ((4,), (4, 5)),
            ((3, 4), (4,)),
            ((4,), (4,)),
        ],
    )
    def test_gradcheck(self, sa, sb, rng):
        ad.gradcheck(ad.matmul, [rng.normal(size=sa), rng.normal(size=sb)])

    def test_operator_form(self, rng):
        a = ad.Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = ad.Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad is not None and b.grad is not None


class TestEinsum:
    def test_forward_matches_numpy(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        assert np.allclose(ad.einsum("ij,jk->ik", a, b).data, np.einsum("ij,jk->ik", a, b))

    @pytest.mark.parametrize(
        "spec,shapes",
        [
            ("ij,jk->ik", [(3, 4), (4, 5)]),
            ("zua,zub,abc->zuc", [(5, 2, 4), (5, 2, 3), (4, 3, 6)]),
            ("zij->z", [(4, 2, 3)]),
            ("ij->ji", [(3, 4)]),
            ("zi,zj->zij", [(4, 2), (4, 3)]),
            ("p,pabc->abc", [(3,), (3, 2, 2, 2)]),
            ("znl,ld->znd", [(4, 2, 3), (3, 5)]),
        ],
    )
    def test_gradcheck(self, spec, shapes, rng):
        ad.gradcheck(lambda *ops: ad.einsum(spec, *ops), [rng.normal(size=s) for s in shapes])

    def test_pure_reduction_broadcast_backward(self, rng):
        # Index appearing only in one operand must broadcast back in grad.
        x = ad.Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        ad.einsum("ij->i", x).sum().backward()
        assert np.allclose(x.grad.data, 1.0)

    def test_requires_explicit_output(self):
        with pytest.raises(ValueError):
            ad.einsum("ij,jk", np.ones((2, 2)), np.ones((2, 2)))

    def test_rejects_repeated_index_in_operand(self):
        with pytest.raises(NotImplementedError):
            ad.einsum("ii->i", np.ones((2, 2)))

    def test_rejects_ellipsis(self):
        with pytest.raises(NotImplementedError):
            ad.einsum("...i->...", np.ones((2, 2)))

    def test_operand_count_mismatch(self):
        with pytest.raises(ValueError):
            ad.einsum("ij,jk->ik", np.ones((2, 2)))


class TestPrecisionHooks:
    def test_input_cast_applied(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        try:
            config.matmul_input_cast = lambda x: np.zeros_like(x)
            out = ad.matmul(a, b)
            assert np.allclose(out.data, 0.0)
        finally:
            config.matmul_input_cast = None

    def test_output_cast_applied(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        try:
            config.matmul_precision = lambda x: np.round(x)
            out = ad.einsum("ij,jk->ik", a, b)
            assert np.allclose(out.data, np.round(a @ b))
        finally:
            config.matmul_precision = None

    def test_hooks_do_not_leak(self, rng):
        a, b = rng.normal(size=(2, 2)), rng.normal(size=(2, 2))
        assert np.allclose(ad.matmul(a, b).data, a @ b)
