"""Fault-tolerant training: bitwise resume, watchdog rollback, dataset screening."""

import numpy as np
import pytest

from repro.data import (
    DatasetValidationError,
    conformation_dataset,
    label_frames,
    validate_frames,
)
from repro.models import (
    AllegroConfig,
    AllegroModel,
    ClassicalConfig,
    ClassicalForceField,
)
from repro.nn import TrainConfig, Trainer
from repro.resilience import (
    TRAIN_LABEL_CORRUPTION,
    TRAIN_STEP_FAILURE,
    CheckpointManager,
    CorruptedFrames,
    FaultPlan,
    InjectedFault,
    NumericalInstabilityError,
    TrainingWatchdog,
)


@pytest.fixture(scope="module")
def frames():
    return label_frames(conformation_dataset(12, n_heavy=4, seed=11, sigma=0.06))


def tiny_allegro():
    return AllegroModel(
        AllegroConfig(
            n_species=4,
            n_tensor=4,
            latent_dim=16,
            two_body_hidden=(16,),
            latent_hidden=(24,),
            edge_energy_hidden=(8,),
            r_cut=3.5,
            avg_num_neighbors=8.0,
        )
    )


def tiny_classical():
    return ClassicalForceField(ClassicalConfig(n_species=4, r_cut=3.5))


MODEL_FACTORIES = {"allegro": tiny_allegro, "classical": tiny_classical}


def _train_cfg(**kw):
    kw.setdefault("lr", 5e-3)
    kw.setdefault("batch_size", 4)
    kw.setdefault("seed", 7)
    return TrainConfig(**kw)


def _assert_trainers_bitwise_equal(a: Trainer, b: Trainer) -> None:
    sa, sb = a.model.state_dict(), b.model.state_dict()
    assert sorted(sa) == sorted(sb)
    for key in sa:
        np.testing.assert_array_equal(sa[key], sb[key])
    assert a.optimizer.t == b.optimizer.t
    for ma, mb in zip(a.optimizer._m, b.optimizer._m):
        np.testing.assert_array_equal(ma, mb)
    for va, vb in zip(a.optimizer._v, b.optimizer._v):
        np.testing.assert_array_equal(va, vb)
    for ea, eb in zip(a.ema.shadow, b.ema.shadow):
        np.testing.assert_array_equal(ea, eb)
    assert [s.__dict__ for s in a.history] == [s.__dict__ for s in b.history]


class TestBitwiseResume:
    """The headline property: kill + resume == never killed, bitwise."""

    @pytest.mark.parametrize("family", sorted(MODEL_FACTORIES))
    def test_killed_and_resumed_matches_uninterrupted(self, family, frames, tmp_path):
        make = MODEL_FACTORIES[family]
        cfg = _train_cfg()

        reference = Trainer(make(), frames[:8], frames[8:], cfg)
        reference.fit(5)

        killed = Trainer(make(), frames[:8], frames[8:], cfg)
        killed.fit(3, checkpoint_dir=tmp_path, checkpoint_every=2)
        # cadence 2 from a fresh run: anchor at epoch 0, snapshot at epoch 2
        assert CheckpointManager(tmp_path).steps() == [0, 2]

        resumed = Trainer(make(), frames[:8], frames[8:], cfg)
        assert resumed.resume(tmp_path) == 2
        resumed.fit(3)

        assert resumed.epochs_completed == 5
        _assert_trainers_bitwise_equal(reference, resumed)

    def test_resume_restores_shuffle_rng(self, frames, tmp_path):
        cfg = _train_cfg(shuffle=True)
        a = Trainer(tiny_classical(), frames[:8], config=cfg)
        a.fit(2, checkpoint_dir=tmp_path)
        b = Trainer(tiny_classical(), frames[:8], config=cfg)
        b.resume(tmp_path)
        assert a._rng.bit_generator.state == b._rng.bit_generator.state

    def test_epoch_numbering_continues_across_fits(self, frames):
        tr = Trainer(tiny_classical(), frames[:8], config=_train_cfg())
        tr.fit(2)
        tr.fit(2)
        assert [s.epoch for s in tr.history] == [0, 1, 2, 3]
        assert tr.epochs_completed == 4

    def test_resume_with_lr_schedule_sees_global_epochs(self, frames, tmp_path):
        cfg = _train_cfg(lr=1e-3, lr_schedule=lambda e: 1e-3 * 0.5**e)
        a = Trainer(tiny_classical(), frames[:8], config=cfg)
        a.fit(4, checkpoint_dir=tmp_path, checkpoint_every=2)
        b = Trainer(tiny_classical(), frames[:8], config=cfg)
        b.resume(tmp_path)
        b.fit(4 - b.epochs_completed)
        assert b.optimizer.lr == pytest.approx(1e-3 * 0.5**3)
        _assert_trainers_bitwise_equal(a, b)

    def test_unknown_checkpoint_format_rejected(self, frames):
        tr = Trainer(tiny_classical(), frames[:8], config=_train_cfg())
        with pytest.raises(ValueError, match="checkpoint format"):
            tr.load_state_dict({"format": "trainer-v999"})

    def test_checkpoint_every_requires_sink(self, frames):
        tr = Trainer(tiny_classical(), frames[:8], config=_train_cfg())
        with pytest.raises(ValueError, match="checkpoint_dir"):
            tr.fit(1, checkpoint_every=1)


class TestTrainingWatchdog:
    def test_healthy_losses_bank(self):
        wd = TrainingWatchdog()
        for k in range(8):
            assert wd.check(1.0 + 0.01 * k)
        assert wd.n_checks == 8 and wd.n_trips == 0

    def test_nonfinite_loss_aborts(self):
        wd = TrainingWatchdog(policy="abort")
        with pytest.raises(NumericalInstabilityError, match="non-finite training loss"):
            wd.check(float("nan"))

    def test_nonfinite_gradient_aborts(self):
        wd = TrainingWatchdog(policy="abort")
        grads = [np.zeros(3), np.array([1.0, np.inf])]
        with pytest.raises(NumericalInstabilityError, match="grad #1"):
            wd.check(0.5, grads)

    def test_loss_spike_detected(self):
        wd = TrainingWatchdog(policy="abort", spike_factor=10.0, min_history=4)
        for _ in range(6):
            wd.check(1.0)
        with pytest.raises(NumericalInstabilityError, match="loss spike"):
            wd.check(1e6, step=6)

    def test_recover_policy_returns_false_then_escalates(self):
        wd = TrainingWatchdog(policy="recover", max_rollbacks=2)
        assert wd.check(float("inf")) is False
        wd.on_rollback()
        assert wd.check(float("inf")) is False
        wd.on_rollback()
        with pytest.raises(NumericalInstabilityError):
            wd.check(float("inf"))

    def test_state_dict_roundtrip(self):
        wd = TrainingWatchdog(policy="recover", min_history=2)
        for k in range(5):
            wd.check(1.0 + k)
        wd.check(float("nan"))
        wd.on_rollback()
        clone = TrainingWatchdog(policy="recover", min_history=2)
        clone.load_state_dict(wd.state_dict())
        assert clone.state_dict() == wd.state_dict()
        assert clone.n_rollbacks == 1

    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError):
            TrainingWatchdog(policy="pray")


class TestRollbackIntegration:
    def test_rollback_restores_and_backs_off_lr(self, frames, tmp_path):
        # An absurdly tight spike threshold guarantees trips: every epoch
        # after the history warms up rolls back until escalation.
        wd = TrainingWatchdog(
            policy="recover", spike_factor=1e-9, min_history=2, max_rollbacks=2
        )
        cfg = _train_cfg(lr=1e-2, rollback_lr_factor=0.5)
        tr = Trainer(tiny_classical(), frames[:8], config=cfg, watchdog=wd)
        with pytest.raises(NumericalInstabilityError):
            tr.fit(10, checkpoint_dir=tmp_path)
        stats = tr.stats()
        assert stats["n_rollbacks"] == 2
        assert stats["lr_scale"] == pytest.approx(0.25)
        assert stats["watchdog"]["n_rollbacks"] == 2
        # escalation tripped mid-run, before the epoch budget was spent
        assert tr.epochs_completed < 10

    def test_recover_without_checkpointing_is_explicit(self, frames):
        wd = TrainingWatchdog(policy="recover", spike_factor=1e-9, min_history=2)
        tr = Trainer(tiny_classical(), frames[:8], config=_train_cfg(), watchdog=wd)
        with pytest.raises(NumericalInstabilityError, match="needs active checkpoint"):
            tr.fit(4)

    def test_grad_clipping_counts_events(self, frames):
        cfg = _train_cfg(grad_clip_norm=1e-6)
        tr = Trainer(tiny_classical(), frames[:8], config=cfg)
        tr.fit(1)
        assert tr.stats()["n_clip_events"] > 0


class TestDatasetValidation:
    def test_validate_catches_injected_nan(self, frames):
        plan = FaultPlan(seed=0, at={TRAIN_LABEL_CORRUPTION: [1, 3]})
        corrupted = CorruptedFrames(frames, plan, mode="nan").materialize()
        report = validate_frames(corrupted)
        assert report.flagged_indices(include_soft=False) == [1, 3]
        assert report.counts()["nonfinite_forces"] == 2

    def test_validate_catches_injected_inf_energy(self, frames):
        plan = FaultPlan(seed=0, at={TRAIN_LABEL_CORRUPTION: [0]})
        corrupted = CorruptedFrames(frames, plan, mode="inf").materialize()
        report = validate_frames(corrupted)
        assert report.counts()["nonfinite_energy"] == 1

    def test_validate_catches_outlier_forces(self, frames):
        plan = FaultPlan(seed=0, at={TRAIN_LABEL_CORRUPTION: [5]})
        corrupted = CorruptedFrames(frames, plan, mode="outlier").materialize()
        report = validate_frames(corrupted)
        assert 5 in [i.index for i in report.issues if i.kind == "force_outlier"]
        assert not report.hard_issues  # outliers are soft

    def test_validate_catches_duplicates(self, frames):
        doubled = list(frames) + [frames[2]]
        report = validate_frames(doubled)
        dup = [i for i in report.issues if i.kind == "duplicate"]
        assert len(dup) == 1 and dup[0].index == len(frames)

    def test_trainer_rejects_corrupted_labels(self, frames):
        plan = FaultPlan(seed=0, at={TRAIN_LABEL_CORRUPTION: [2]})
        corrupted = CorruptedFrames(frames, plan, mode="nan").materialize()
        with pytest.raises(DatasetValidationError, match="rejected"):
            Trainer(tiny_classical(), corrupted, config=_train_cfg())

    def test_trainer_quarantines_and_trains(self, frames):
        plan = FaultPlan(seed=0, at={TRAIN_LABEL_CORRUPTION: [2, 6]})
        corrupted = CorruptedFrames(frames, plan, mode="nan").materialize()
        cfg = _train_cfg(data_policy="quarantine")
        tr = Trainer(tiny_classical(), corrupted, config=cfg)
        assert len(tr.train_frames) == len(frames) - 2
        assert tr.stats()["n_quarantined_frames"] == 2
        hist = tr.fit(2)
        assert np.isfinite(hist[-1].train_loss)

    def test_quarantine_protects_force_scale(self, frames):
        # An outlier frame must not poison max|F| normalization.
        plan = FaultPlan(seed=0, at={TRAIN_LABEL_CORRUPTION: [0]})
        corrupted = CorruptedFrames(frames, plan, mode="outlier").materialize()
        cfg = _train_cfg(data_policy="quarantine")
        tr = Trainer(tiny_classical(), corrupted, config=cfg)
        clean_scale = max(np.abs(f.forces).max() for f in frames[1:])
        assert tr.force_scale == pytest.approx(clean_scale)

    def test_policy_off_skips_validation(self, frames):
        plan = FaultPlan(seed=0, at={TRAIN_LABEL_CORRUPTION: [1]})
        corrupted = CorruptedFrames(frames, plan, mode="outlier").materialize()
        tr = Trainer(tiny_classical(), corrupted, config=_train_cfg(data_policy="off"))
        assert tr.dataset_report is None

    def test_unknown_policy_rejected(self, frames):
        with pytest.raises(ValueError, match="data_policy"):
            Trainer(tiny_classical(), frames, config=_train_cfg(data_policy="yolo"))

    def test_corrupted_val_frames_rejected(self, frames):
        plan = FaultPlan(seed=0, at={TRAIN_LABEL_CORRUPTION: [0]})
        bad_val = CorruptedFrames(frames[8:], plan, mode="nan").materialize()
        with pytest.raises(DatasetValidationError, match="validation set"):
            Trainer(tiny_classical(), frames[:8], bad_val, _train_cfg())


class TestStepFailureInjection:
    def test_transient_failures_recover_bitwise(self, frames):
        """Retried steps recompute the identical batch: faulted == clean."""
        plan = FaultPlan(seed=1, at={TRAIN_STEP_FAILURE: [1, 4]})
        faulted = Trainer(
            tiny_classical(), frames[:8], config=_train_cfg(), fault_plan=plan
        )
        faulted.fit(3)
        clean = Trainer(tiny_classical(), frames[:8], config=_train_cfg())
        clean.fit(3)
        _assert_trainers_bitwise_equal(faulted, clean)
        assert faulted.stats()["n_step_failures"] == 2
        assert faulted.stats()["n_step_retries"] == 2

    def test_exhausted_retries_reraise(self, frames):
        plan = FaultPlan(seed=1, at={TRAIN_STEP_FAILURE: [0, 1, 2]})
        tr = Trainer(
            tiny_classical(),
            frames[:8],
            config=_train_cfg(max_step_retries=2),
            fault_plan=plan,
        )
        with pytest.raises(InjectedFault):
            tr.fit(1)

    def test_skip_failed_batches_counts(self, frames):
        plan = FaultPlan(seed=1, at={TRAIN_STEP_FAILURE: [0, 1, 2]})
        cfg = _train_cfg(max_step_retries=2, skip_failed_batches=True)
        tr = Trainer(tiny_classical(), frames[:8], config=cfg, fault_plan=plan)
        hist = tr.fit(1)
        assert tr.stats()["n_skipped_batches"] == 1
        assert np.isfinite(hist[-1].train_loss)

    def test_every_batch_failing_is_explicit(self, frames):
        # frames[:4] at batch_size 4 = one batch/epoch; fail all attempts.
        plan = FaultPlan(seed=1, rates={TRAIN_STEP_FAILURE: 1.0})
        cfg = _train_cfg(max_step_retries=1, skip_failed_batches=True)
        tr = Trainer(tiny_classical(), frames[:4], config=cfg, fault_plan=plan)
        with pytest.raises(NumericalInstabilityError, match="every batch"):
            tr.fit(1)


class TestNoSilentCorruption:
    """Acceptance: under a seeded FaultPlan a run either finishes with
    finite, watchdog-clean metrics or raises an explicit typed error —
    a NaN never reaches a saved model."""

    def test_guarded_run_under_faults_is_clean_or_typed(self, frames, tmp_path):
        plan = FaultPlan(
            seed=5,
            rates={TRAIN_STEP_FAILURE: 0.2},
            at={TRAIN_LABEL_CORRUPTION: [3]},
        )
        corrupted = CorruptedFrames(frames, plan, mode="nan").materialize()
        cfg = _train_cfg(data_policy="quarantine", skip_failed_batches=True)
        wd = TrainingWatchdog(policy="recover", max_rollbacks=2)
        tr = Trainer(
            tiny_classical(), corrupted, config=cfg, watchdog=wd, fault_plan=plan
        )
        try:
            hist = tr.fit(3, checkpoint_dir=tmp_path)
        except (NumericalInstabilityError, InjectedFault, DatasetValidationError):
            return  # explicit typed failure is an accepted outcome
        assert all(np.isfinite(s.train_loss) for s in hist)
        for arr in tr.model.state_dict().values():
            assert np.isfinite(arr).all()
        for arr in tr.ema.shadow:
            assert np.isfinite(arr).all()
        assert tr.watchdog.n_trips == tr.stats()["watchdog"]["n_trips"]

    def test_checkpoints_never_hold_nonfinite_state(self, frames, tmp_path):
        tr = Trainer(tiny_classical(), frames[:8], config=_train_cfg())
        tr.fit(2, checkpoint_dir=tmp_path)
        manager = CheckpointManager(tmp_path)
        for step in manager.steps():
            state = manager.load_step(step)
            for arr in state["model"].values():
                assert np.isfinite(arr).all()
            for arr in state["ema"]["shadow"]:
                assert np.isfinite(arr).all()
