"""Tests for the domain decomposition, virtual cluster, and parallel driver.

The load-bearing assertion: parallel energies/forces equal serial ones for
every rank count — the correctness half of the paper's scalability claim.
"""

import numpy as np
import pytest

from repro.data import water_unit_cell
from repro.md import Cell, Simulation, System, energy_drift_per_atom
from repro.models import AllegroConfig, AllegroModel, LennardJones
from repro.parallel import (
    DomainDecomposition,
    ParallelForceEvaluator,
    ParallelSimulation,
    ProcessGrid,
    VirtualCluster,
)


@pytest.fixture
def rng():
    return np.random.default_rng(101)


def _lj_system(rng, n_side=6, a=1.9):
    g = (
        np.stack(np.meshgrid(*[np.arange(n_side)] * 3, indexing="ij"), -1).reshape(-1, 3)
        * a
    )
    pos = g + rng.normal(scale=0.05, size=g.shape)
    return (
        System(pos, rng.integers(0, 2, len(pos)), Cell.cubic(n_side * a)),
        LennardJones(epsilon=0.01, sigma=1.6, cutoff=3.0, n_species=2),
    )


class TestProcessGrid:
    def test_create_factorizes_all_ranks(self):
        cell = Cell.cubic(10.0)
        for p in (1, 2, 3, 4, 6, 8, 12, 27):
            grid = ProcessGrid.create(p, cell)
            assert grid.n_ranks == p

    def test_cubic_box_prefers_balanced_dims(self):
        grid = ProcessGrid.create(8, Cell.cubic(10.0))
        assert sorted(grid.dims) == [2, 2, 2]

    def test_elongated_box_splits_long_axis(self):
        grid = ProcessGrid.create(4, Cell((40.0, 10.0, 10.0)))
        assert grid.dims == (4, 1, 1)

    def test_coords_roundtrip(self):
        grid = ProcessGrid((2, 3, 2), Cell.cubic(12.0))
        for r in range(grid.n_ranks):
            assert grid.rank_of(grid.coords_of(r)) == r

    def test_neighbors_wrap(self):
        grid = ProcessGrid((2, 1, 1), Cell.cubic(10.0))
        assert grid.neighbor(0, 0, +1) == 1
        assert grid.neighbor(1, 0, +1) == 0

    def test_owner_covers_all_ranks(self, rng):
        grid = ProcessGrid((2, 2, 2), Cell.cubic(10.0))
        owners = grid.owner_of(rng.uniform(0, 10, (500, 3)))
        assert set(owners) == set(range(8))

    def test_domain_bounds_tile_box(self):
        grid = ProcessGrid((2, 2, 1), Cell.cubic(8.0))
        los = np.array([grid.domain_bounds(r)[0] for r in range(4)])
        assert len({tuple(lo) for lo in los}) == 4

    def test_validate_cutoff(self):
        grid = ProcessGrid((4, 1, 1), Cell.cubic(8.0))
        with pytest.raises(ValueError):
            grid.validate_cutoff(3.0)  # subdomain 2 Å < cutoff


class TestVirtualCluster:
    def test_send_recv_roundtrip(self, rng):
        c = VirtualCluster(2)
        payload = (rng.normal(size=(3, 3)),)
        c.send(0, 1, "test", payload)
        (out,) = c.recv(1, 0, "test")
        assert np.allclose(out, payload[0])
        assert c.pending() == 0

    def test_accounting(self, rng):
        c = VirtualCluster(2)
        c.send(0, 1, "halo", (np.zeros(10),))
        assert c.stats.messages["halo"] == 1
        assert c.stats.bytes["halo"] == 80

    def test_self_send_free(self):
        c = VirtualCluster(2)
        c.send(0, 0, "halo", (np.zeros(10),))
        assert c.stats.total_bytes() == 0
        c.recv(0, 0, "halo")

    def test_missing_message_raises(self):
        c = VirtualCluster(2)
        with pytest.raises(RuntimeError):
            c.recv(1, 0, "nothing")

    def test_rank_bounds(self):
        c = VirtualCluster(2)
        with pytest.raises(ValueError):
            c.send(0, 5, "x", (np.zeros(1),))


class TestDecompositionExactness:
    @pytest.mark.parametrize("n_ranks", [1, 2, 4, 8])
    def test_matches_serial(self, n_ranks, rng):
        system, lj = _lj_system(rng)
        E_s, F_s = lj.energy_and_forces(system)
        grid = ProcessGrid.create(n_ranks, system.cell)
        ev = ParallelForceEvaluator(lj, grid)
        E_p, F_p, stats = ev.compute(system.copy())
        assert E_p == pytest.approx(E_s, rel=1e-10)
        assert np.allclose(F_p, F_s, atol=1e-9)
        assert stats.n_owned.sum() == system.n_atoms

    def test_allegro_matches_serial_with_pair_cutoffs(self, rng):
        w = water_unit_cell()
        ppc = np.full((4, 4), 3.5)
        ppc[0, :] = 1.3
        ppc[0, 0] = 2.8
        model = AllegroModel(
            AllegroConfig(
                n_species=4,
                n_tensor=2,
                latent_dim=8,
                two_body_hidden=(8,),
                latent_hidden=(8,),
                edge_energy_hidden=(4,),
                r_cut=3.5,
                per_pair_cutoffs=ppc,
                avg_num_neighbors=30,
            )
        )
        E_s, F_s = model.energy_and_forces(w)
        ev = ParallelForceEvaluator(model, ProcessGrid.create(4, w.cell))
        E_p, F_p, _ = ev.compute(w.copy())
        assert E_p == pytest.approx(E_s, rel=1e-9)
        assert np.abs(F_p - F_s).max() < 1e-8

    def test_ghosts_only_within_halo(self, rng):
        system, lj = _lj_system(rng)
        grid = ProcessGrid.create(8, system.cell)
        decomp = DomainDecomposition(grid, 3.0)
        shards = decomp.build(system)
        for shard in shards:
            lo, hi = grid.domain_bounds(shard.rank)
            gpos = shard.positions[shard.n_owned :]
            assert np.all(gpos >= lo - 3.0 - 1e-9)
            assert np.all(gpos < hi + 3.0 + 1e-9)

    def test_communication_recorded(self, rng):
        system, lj = _lj_system(rng)
        grid = ProcessGrid.create(8, system.cell)
        ev = ParallelForceEvaluator(lj, grid)
        ev.compute(system.copy())
        assert ev.cluster.stats.bytes["halo_build"] > 0
        assert ev.cluster.stats.bytes["halo_reverse"] > 0

    def test_requires_periodic_cell(self, rng):
        s = System(rng.uniform(0, 5, (10, 3)), np.zeros(10, int), None)
        grid = ProcessGrid.create(2, Cell.cubic(5.0))
        decomp = DomainDecomposition(grid, 1.5)
        with pytest.raises(ValueError):
            decomp.build(s)

    def test_load_balance_reported(self, rng):
        system, lj = _lj_system(rng)
        ev = ParallelForceEvaluator(lj, ProcessGrid.create(8, system.cell))
        _, _, stats = ev.compute(system.copy())
        assert stats.load_imbalance >= 1.0


class TestParallelMD:
    def test_nve_conservation_parallel(self, rng):
        system, lj = _lj_system(rng, n_side=5)
        system.seed_velocities(30.0, rng)
        sim = ParallelSimulation(system, lj, n_ranks=4, dt=0.2)
        res = sim.run(80)
        assert energy_drift_per_atom(res.total_energies, system.n_atoms) < 1e-4

    def test_trajectory_matches_serial(self, rng):
        """Deterministic NVE: parallel and serial trajectories coincide."""
        sys_a, lj = _lj_system(rng, n_side=5)
        sys_a.seed_velocities(20.0, np.random.default_rng(1))
        sys_b = sys_a.copy()
        Simulation(sys_a, lj, dt=0.2, skin=0.4).run(30)
        ParallelSimulation(sys_b, lj, n_ranks=4, dt=0.2, skin=0.4).run(30)
        # Same physics; tiny FP reordering differences may grow chaotically,
        # so compare with a loose tolerance over a short run.
        assert np.abs(sys_a.positions - sys_b.positions).max() < 1e-6

    def test_migration_accounted_over_time(self, rng):
        system, lj = _lj_system(rng, n_side=5)
        system.seed_velocities(400.0, rng)
        sim = ParallelSimulation(system, lj, n_ranks=4, dt=1.0, skin=0.3)
        sim.run(60)
        assert sim.cluster.stats.messages["migrate"] > 0
