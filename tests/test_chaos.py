"""Tests for the deterministic chaos harness (``repro.chaos``).

Covers the four layers of the harness — scenario sampling, workload
adapters + invariant checkers, the delta-debugging shrinker, and the soak
runner / CLI — plus the harness's own falsifiability check: a planted bug
must be caught by an invariant and shrink to a minimal, byte-deterministic
reproducer.
"""

import json

import numpy as np
import pytest

from repro.chaos import (
    CHANNELS_BY_WORKLOAD,
    WORKLOADS,
    FaultEvent,
    ScenarioSpec,
    check_all,
    ddmin,
    registered_invariants,
    replay,
    report_json,
    run_scenario,
    sample_scenario,
    shrink_failure,
    soak,
)
from repro.chaos.runner import _SEED_STRIDE
from repro.obs import write_json
from repro.resilience import POTENTIAL_CORRUPT, TORN_WRITE

#: The soak seed the CI job pins; scenario i of a soak is
#: ``sample_scenario(seed * stride + i)`` — reusing the formula here keeps
#: the per-workload smoke tests on schedules the nightly soak also covers.
SOAK_SEED = 20260808

#: A hand-validated planted-bug schedule (md, eager, Nose-Hoover):
#: torn writes at checkpoint draws 2 and 3, corruption at force draws 14
#: and 20.  The corruption at 14 trips the watchdog; recovery then reads
#: the newest checkpoint (step 12, torn).  The hardened manager skips it;
#: the planted unverified loader crashes on it.  The failure needs exactly
#: {torn@2, corrupt@14} — what the shrinker must find.
BUG = "md.unverified_checkpoint_load"
BUG_SPEC = ScenarioSpec(
    workload="md",
    seed=5,
    events=(
        FaultEvent(TORN_WRITE, 2),
        FaultEvent(TORN_WRITE, 3),
        FaultEvent(POTENTIAL_CORRUPT, 14),
        FaultEvent(POTENTIAL_CORRUPT, 20),
    ),
    options={
        "kind": "nvt_nosehoover",
        "engine": "eager",
        "steps": 24,
        "checkpoint_every": 6,
    },
)


class TestDdmin:
    def test_finds_minimal_failing_pair(self):
        def fails(subset):
            return {2, 5} <= set(subset)

        assert ddmin(list(range(8)), fails) == [2, 5]

    def test_single_culprit(self):
        def fails(subset):
            return 3 in subset

        assert ddmin(list(range(10)), fails) == [3]

    def test_empty_when_failure_needs_nothing(self):
        assert ddmin([1, 2, 3], lambda subset: True) == []

    def test_result_always_fails(self):
        def fails(subset):
            return sum(subset) >= 7

        result = ddmin([1, 2, 3, 4, 5], fails)
        assert fails(result)

    def test_deterministic(self):
        def fails(subset):
            return {1, 4, 6} <= set(subset)

        runs = [ddmin(list(range(8)), fails) for _ in range(3)]
        assert runs[0] == runs[1] == runs[2] == [1, 4, 6]

    def test_budget_bounded(self):
        calls = []

        def fails(subset):
            calls.append(1)
            return len(subset) >= 40

        result = ddmin(list(range(64)), fails, max_tests=10)
        assert len(calls) <= 11  # budget + the guaranteed full-set check
        assert fails(result)  # budget exhaustion still returns a failer


class TestScenarioSampling:
    @pytest.mark.parametrize("seed", [0, 1, 7, 12345])
    def test_same_seed_same_spec(self, seed):
        assert sample_scenario(seed).to_dict() == sample_scenario(seed).to_dict()

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_composed_and_well_formed(self, workload):
        for seed in range(20):
            spec = sample_scenario(seed, workload=workload)
            assert spec.workload == workload
            assert len(spec.channels()) >= 2, "scenarios must compose faults"
            allowed = set(CHANNELS_BY_WORKLOAD[workload])
            assert set(spec.channels()) <= allowed
            assert all(e.index >= 0 for e in spec.events)

    def test_spec_round_trips(self):
        spec = sample_scenario(99, workload="train")
        again = ScenarioSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert again.to_dict() == spec.to_dict()
        assert again.fault_plan().at == spec.fault_plan().at


class TestInvariantRegistry:
    def test_expected_invariants_registered(self):
        names = set(registered_invariants())
        assert {
            "md_bitwise_vs_clean",
            "train_bitwise_vs_clean",
            "force_sanity",
            "parallel_matches_reference",
            "serve_no_silent_drop",
            "serve_shed_typed",
            "serve_no_priority_inversion",
            "metrics_consistency",
            "train_no_silent_poison",
            "checkpoint_chain",
        } <= names

    def test_liveness_gates_everything(self):
        violations = check_all(
            {"workload": "md", "error": None, "timed_out": True}
        )
        assert [v.invariant for v in violations] == ["liveness"]

    def test_crash_gates_everything(self):
        violations = check_all(
            {"workload": "md", "error": "ValueError: boom", "timed_out": False}
        )
        assert [v.invariant for v in violations] == ["no_crash"]
        assert "ValueError: boom" in violations[0].message


class TestScenarioExecution:
    """One composed scenario per workload family survives all invariants.

    Seeds reuse the CI soak formula, so these are schedules the full soak
    also covers — kept to one per family to stay test-suite fast.
    """

    @pytest.mark.parametrize("i,workload", list(enumerate(WORKLOADS)))
    def test_workload_scenario_passes_and_fires(self, i, workload):
        spec = sample_scenario(SOAK_SEED * _SEED_STRIDE + i, workload=workload)
        assert spec.workload == workload
        outcome = run_scenario(spec)
        assert outcome.ok, [v.to_dict() for v in outcome.violations]
        plan = outcome.obs["plan"]
        fired = sum(plan.fired(ch) for ch in spec.channels())
        assert fired > 0, "a chaos scenario must actually inject faults"


#: A hand-traced overload spec: 16 mixed-priority requests against a
#: 6-slot queue with QoS enforced admits 9 (evicting 3 weaker-class
#: victims), door-sheds 7, expires 1 pre-dated deadline, and drives the
#: health machine HEALTHY → DEGRADED → SHEDDING.
OVERLOAD_SPEC = ScenarioSpec(
    workload="serve",
    seed=7,
    events=(
        FaultEvent("serve.worker_crash", 1),
        FaultEvent("serve.worker_stall", 2),
    ),
    options={
        "variant": "overload",
        "n_requests": 16,
        "max_batch": 2,
        "max_queue": 6,
    },
)


def _qos_report(obs) -> dict:
    """The deterministic slice of an overload observation dict."""
    counters = obs["metrics"].get("counters", obs["metrics"])
    return {
        "qos": obs["qos"],
        "n_admitted": obs["n_admitted"],
        "health_state": obs["health_state"],
        "health_transitions": obs["health_transitions"],
        "statuses": [o[0] if o[0] == "ok" else tuple(o) for o in obs["outcomes"]],
        "shed_counters": {
            k: v for k, v in sorted(counters.items()) if "shed" in k
        },
    }


class TestOverloadScenario:
    """The 2× overload burst: 100% correct-or-explicit, zero inversions."""

    def test_overload_scenario_passes_invariants(self):
        outcome = run_scenario(OVERLOAD_SPEC)
        assert outcome.ok, [v.to_dict() for v in outcome.violations]
        obs = outcome.obs
        statuses = [r["status"] for r in obs["qos"]]
        # Overload actually bites: every outcome class is exercised.
        assert statuses.count("shed") > 0
        assert statuses.count("expired") > 0
        assert statuses.count("ok") > 0
        assert obs["health_state"] == "SHEDDING"
        assert obs["health_transitions"] == 2  # HEALTHY→DEGRADED→SHEDDING
        # Every admitted interactive request without a pre-expired
        # deadline met it (the acceptance criterion's goodput clause).
        for rec in obs["qos"]:
            if (
                rec["priority"] == "interactive"
                and rec["admitted"]
                and rec["deadline"] is None
            ):
                assert rec["status"] == "ok"

    def test_overload_report_byte_deterministic(self):
        a = run_scenario(OVERLOAD_SPEC)
        b = run_scenario(OVERLOAD_SPEC)
        assert a.ok and b.ok
        assert report_json(_qos_report(a.obs)) == report_json(_qos_report(b.obs))
        assert report_json(a.to_dict()) == report_json(b.to_dict())

    def test_sampled_overload_variant_passes(self):
        # Seed 44 is a sampled serve scenario that lands on the overload
        # variant (the soak rotation reaches these organically too).
        spec = sample_scenario(44, workload="serve")
        assert spec.options.get("variant") == "overload"
        outcome = run_scenario(spec)
        assert outcome.ok, [v.to_dict() for v in outcome.violations]

    def test_shed_leak_is_caught(self):
        # Falsifiability: a shed request that nonetheless produced a
        # result must trip serve_shed_typed.
        outcome = run_scenario(OVERLOAD_SPEC)
        obs = dict(outcome.obs)
        shed_idx = next(
            k for k, r in enumerate(obs["qos"]) if r["status"] == "shed"
        )
        outcomes = list(obs["outcomes"])
        e, f = obs["reference"][shed_idx]
        outcomes[shed_idx] = ("ok", e, np.array(f))
        obs["outcomes"] = outcomes
        violations = {v.invariant for v in check_all(obs)}
        assert "serve_shed_typed" in violations

    def test_priority_inversion_is_caught(self):
        outcome = run_scenario(OVERLOAD_SPEC)
        obs = dict(outcome.obs)
        records = [dict(r) for r in obs["qos"]]
        shed_idx = next(
            k for k, r in enumerate(records) if r["status"] == "shed"
        )
        records[shed_idx]["priority"] = "interactive"
        records[shed_idx]["pending_background_at_submit"] = 2
        obs["qos"] = records
        violations = {v.invariant for v in check_all(obs)}
        assert "serve_no_priority_inversion" in violations


class TestPlantedBug:
    """The harness's falsifiability check (ISSUE acceptance criterion)."""

    def test_schedule_passes_without_bug(self):
        outcome = run_scenario(BUG_SPEC)
        assert outcome.ok, [v.to_dict() for v in outcome.violations]

    def test_bug_caught_by_invariant(self):
        outcome = run_scenario(BUG_SPEC, bug=BUG)
        assert not outcome.ok
        assert {v.invariant for v in outcome.violations} == {"no_crash"}

    def test_shrinks_to_minimal_reproducer_deterministically(self, tmp_path):
        first = shrink_failure(BUG_SPEC, bug=BUG)
        second = shrink_failure(BUG_SPEC, bug=BUG)
        events = first["spec"]["events"]
        # <= 3 events required by the acceptance criterion; this schedule
        # is known to need exactly the torn write and the corruption that
        # forces recovery to read it.
        assert events == [["checkpoint.torn_write", 2], ["potential.corrupt", 14]]
        assert report_json(first) == report_json(second)
        assert first["violations"] and first["violations"][0]["invariant"] == (
            "no_crash"
        )
        # The artifact is byte-deterministic on disk too.
        write_json(tmp_path / "a.json", first)
        write_json(tmp_path / "b.json", second)
        assert (tmp_path / "a.json").read_bytes() == (
            tmp_path / "b.json"
        ).read_bytes()

    def test_reproducer_replays_and_fix_validates(self, tmp_path):
        artifact = shrink_failure(BUG_SPEC, bug=BUG)
        path = tmp_path / "reproducer.json"
        write_json(path, artifact)
        # Replaying the artifact re-applies its recorded bug tag and
        # reproduces the violation.
        outcome = replay(path)
        assert not outcome.ok
        # "Fixing" the bug (running the real CheckpointManager) passes.
        fixed = run_scenario(ScenarioSpec.from_dict(artifact["spec"]))
        assert fixed.ok


class TestSoak:
    def test_small_soak_green_and_byte_deterministic(self):
        r1 = soak(8, seed=42)
        r2 = soak(8, seed=42)
        assert r1["summary"] == {"passed": 8, "violated": 0}
        assert r1["n_run"] == 8 and r1["n_skipped_budget"] == 0
        # Every workload family appears.
        families = {s["spec"]["workload"] for s in r1["scenarios"]}
        assert families == set(WORKLOADS)
        assert report_json(r1) == report_json(r2)

    def test_budget_skips_are_counted(self):
        report = soak(6, seed=42, budget_s=0.0)
        assert report["n_run"] + report["n_skipped_budget"] == 6
        assert report["n_skipped_budget"] >= 5

    def test_soak_with_planted_bug_emits_reproducer(self, tmp_path):
        # Seed 5's md scenario under the planted bug: run the known-bad
        # spec through the soak machinery by replaying it directly —
        # shrink_failure is exercised above; here we check the artifact
        # file plumbing end to end.
        artifact = shrink_failure(BUG_SPEC, bug=BUG, max_tests=32)
        path = tmp_path / "repro.json"
        write_json(path, artifact)
        raw = json.loads(path.read_text())
        assert raw["kind"] == "chaos-reproducer"
        assert raw["bug"] == BUG
        assert len(raw["spec"]["events"]) <= 3


class TestChaosCLI:
    def test_soak_subcommand_green(self, tmp_path):
        from repro.cli import main

        report_path = tmp_path / "soak.json"
        code = main(
            [
                "chaos",
                "soak",
                "--n",
                "2",
                "--seed",
                "42",
                "--report",
                str(report_path),
                "--quiet",
            ]
        )
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["kind"] == "chaos-soak"
        assert report["summary"]["violated"] == 0

    def test_replay_subcommand_exit_codes(self, tmp_path):
        from repro.cli import main

        artifact = shrink_failure(BUG_SPEC, bug=BUG, max_tests=32)
        bad = tmp_path / "bad.json"
        write_json(bad, artifact)
        assert main(["chaos", "replay", str(bad), "--quiet"]) == 1
        good = tmp_path / "good.json"
        clean = dict(artifact)
        clean["bug"] = None
        write_json(good, clean)
        assert main(["chaos", "replay", str(good), "--quiet"]) == 0


def _greedy_knob():
    """A controller that wants to double its knob every ``dwell`` ticks."""
    from repro.tune import HysteresisController

    class Greedy(HysteresisController):
        def __init__(self):
            super().__init__(
                "greedy", lo=0.0, hi=100.0, dwell=4, min_abs_step=0.5
            )
            self.value = 1.0
            self.adapt_ticks = []
            self.recovery_ticks = []

        def read_signal(self):
            return 5.0

        def current(self):
            return self.value

        def apply_value(self, value):
            self.value = value
            self.adapt_ticks.append(self._ticks)

        def propose(self, ewma):
            return self.value * 2.0

        def notify_recovery(self):
            self.recovery_ticks.append(self._ticks)
            super().notify_recovery()

    return Greedy()


class TestControllersFrozenThroughChaos:
    def test_tune_controllers_stand_down_through_watchdog_recovery(
        self, tmp_path
    ):
        """e2e: chaos-injected corruption -> watchdog rollback -> the tune
        controllers freeze and make no adaptation for the rest of the run."""
        from repro.md import Cell, NoseHooverThermostat, Simulation, System
        from repro.models import LennardJones
        from repro.obs import Registry
        from repro.resilience import (
            CheckpointManager,
            FaultPlan,
            FaultyPotential,
            ForceWatchdog,
        )
        from repro.tune import ControllerSet

        rng = np.random.default_rng(7)
        g = (
            np.stack(
                np.meshgrid(*[np.arange(4)] * 3, indexing="ij"), -1
            ).reshape(-1, 3)
            * 1.7
        )
        system = System(
            g + rng.normal(scale=0.02, size=g.shape),
            np.zeros(len(g), int),
            Cell.cubic(4 * 1.7),
        )
        system.seed_velocities(30.0, np.random.default_rng(8))
        lj = LennardJones(epsilon=0.05, sigma=1.5, cutoff=3.0)

        plan = FaultPlan(seed=0, at={POTENTIAL_CORRUPT: [20]})
        controller = _greedy_knob()
        registry = Registry()
        sim = Simulation(
            system,
            FaultyPotential(lj, plan, mode="nan"),
            dt=0.2,
            thermostat=NoseHooverThermostat(30.0, tau=25.0),
            watchdog=ForceWatchdog(
                policy="recover", spike_factor=None, max_recoveries=8
            ),
            registry=registry,
            controllers=ControllerSet([controller]),
        )
        manager = CheckpointManager(tmp_path / "ckpt", keep_last=4)
        sim.run(24, checkpoint_every=6, checkpoint_manager=manager)

        assert sim.n_recoveries >= 1
        assert controller.recovery_ticks, "recovery must reach the controllers"
        # The controller was live before the fault...
        first_recovery = min(controller.recovery_ticks)
        assert any(t < first_recovery for t in controller.adapt_ticks)
        # ...and adapted exactly zero times after the watchdog fired.
        assert all(t <= first_recovery for t in controller.adapt_ticks)
        assert controller.stats()["frozen"] is True
        snap = registry.snapshot()["counters"]
        assert snap.get("md.recoveries", 0) == sim.n_recoveries
