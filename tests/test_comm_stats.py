"""Tests for communication statistics and accounting helpers."""

import numpy as np
import pytest

from repro.parallel import CommStats, VirtualCluster


class TestCommStats:
    def test_record_and_totals(self):
        s = CommStats()
        s.record("halo", 100)
        s.record("halo", 50)
        s.record("migrate", 10)
        assert s.messages["halo"] == 2
        assert s.bytes["halo"] == 150
        assert s.total_messages() == 3
        assert s.total_bytes() == 160

    def test_reset(self):
        s = CommStats()
        s.record("x", 10)
        s.reset()
        assert s.total_bytes() == 0
        assert s.total_messages() == 0

    def test_summary_lists_categories(self):
        s = CommStats()
        s.record("forward", 1_000_000)
        s.record("reverse", 500)
        text = s.summary()
        assert "forward" in text and "reverse" in text
        assert "1.000 MB" in text

    def test_empty_summary(self):
        assert "no traffic" in CommStats().summary()


class TestVirtualClusterOrdering:
    def test_fifo_per_channel(self):
        c = VirtualCluster(2)
        c.send(0, 1, "t", (np.array([1.0]),))
        c.send(0, 1, "t", (np.array([2.0]),))
        (a,) = c.recv(1, 0, "t")
        (b,) = c.recv(1, 0, "t")
        assert a[0] == 1.0 and b[0] == 2.0

    def test_tags_are_independent_channels(self):
        c = VirtualCluster(2)
        c.send(0, 1, "t", (np.array([1.0]),), tag=7)
        c.send(0, 1, "t", (np.array([2.0]),), tag=9)
        (b,) = c.recv(1, 0, "t", tag=9)
        (a,) = c.recv(1, 0, "t", tag=7)
        assert a[0] == 1.0 and b[0] == 2.0

    def test_multiple_payload_arrays_counted(self):
        c = VirtualCluster(2)
        c.send(0, 1, "t", (np.zeros(4), np.zeros((2, 3))))
        assert c.stats.bytes["t"] == 4 * 8 + 6 * 8

    def test_needs_at_least_one_rank(self):
        with pytest.raises(ValueError):
            VirtualCluster(0)
