"""Hypothesis property tests over the equivariant substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.autodiff as ad
from repro.equivariant import (
    FusedTensorProduct,
    Irrep,
    StridedLayout,
    enumerate_paths,
    reachable_output_irreps,
    wigner_3j,
)
from repro.equivariant.spherical_harmonics import _sh_numpy_single_l
from repro.equivariant.wigner import random_rotation, rotation_to_wigner_d

irrep_l = st.integers(0, 3)
parity = st.sampled_from([1, -1])


class TestWignerProperties:
    @given(irrep_l, irrep_l, irrep_l)
    @settings(max_examples=30, deadline=None)
    def test_w3j_norm_is_zero_or_one(self, l1, l2, l3):
        """Allowed triples are unit-normalized; forbidden ones are zero."""
        w = wigner_3j(l1, l2, l3)
        total = float((w**2).sum())
        if abs(l1 - l2) <= l3 <= l1 + l2:
            assert total == pytest.approx(1.0, abs=1e-10)
        else:
            assert total == 0.0

    @given(irrep_l, irrep_l)
    @settings(max_examples=20, deadline=None)
    def test_w3j_shape(self, l1, l2):
        l3 = l1 + l2
        w = wigner_3j(l1, l2, l3)
        assert w.shape == (2 * l1 + 1, 2 * l2 + 1, 2 * l3 + 1)

    @given(st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_sh_unit_norm_random_directions(self, seed):
        rng = np.random.default_rng(seed)
        v = rng.normal(size=(8, 3))
        u = v / np.linalg.norm(v, axis=1, keepdims=True)
        for l in range(4):
            Y = _sh_numpy_single_l(l, u)
            assert np.allclose((Y**2).sum(axis=1), 2 * l + 1, atol=1e-9)

    @given(st.integers(0, 100), st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_wigner_d_determinant_is_one(self, seed, l):
        R = random_rotation(np.random.default_rng(seed))
        D = rotation_to_wigner_d(l, R)
        assert np.linalg.det(D) == pytest.approx(1.0, abs=1e-7)


class TestPathProperties:
    @given(st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_paths_obey_selection_rules(self, lmax1, lmax2):
        lay1 = StridedLayout.full_o3(lmax1, mul=1)
        lay2 = StridedLayout.spherical(lmax2, mul=1)
        for p in enumerate_paths(lay1, lay2):
            assert abs(p.ir1.l - p.ir2.l) <= p.ir_out.l <= p.ir1.l + p.ir2.l
            assert p.ir_out.p == p.ir1.p * p.ir2.p

    @given(st.integers(1, 3), st.integers(0, 3))
    @settings(max_examples=15, deadline=None)
    def test_reachable_monotone_in_layers(self, lmax, layers):
        env = [Irrep(l, (-1) ** l) for l in range(lmax + 1)]
        smaller = reachable_output_irreps(lmax, layers, env)
        larger = reachable_output_irreps(lmax, layers + 1, env)
        assert smaller <= larger
        assert Irrep(0, 1) in smaller

    @given(st.integers(1, 2), st.integers(0, 400))
    @settings(max_examples=10, deadline=None)
    def test_tp_linearity_in_both_args(self, lmax, seed):
        rng = np.random.default_rng(seed)
        lay1 = StridedLayout.full_o3(lmax, mul=2)
        lay2 = StridedLayout.spherical(lmax, mul=2)
        tp = FusedTensorProduct(lay1, lay2)
        x = ad.Tensor(rng.normal(size=(3, 2, lay1.dim)))
        y = ad.Tensor(rng.normal(size=(3, 2, lay2.dim)))
        a = float(rng.normal())
        with ad.no_grad():
            lhs = tp(x * a, y).data
            rhs = a * tp(x, y).data
        assert np.allclose(lhs, rhs, atol=1e-9 * max(1, abs(a)))


class TestLayoutProperties:
    @given(st.integers(1, 4), st.integers(1, 16))
    @settings(max_examples=20, deadline=None)
    def test_full_o3_dim_formula(self, lmax, mul):
        lay = StridedLayout.full_o3(lmax, mul=mul)
        assert lay.dim == 2 * (lmax + 1) ** 2  # paper §V-B1 bound

    @given(st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_spherical_dim_formula(self, lmax):
        lay = StridedLayout.spherical(lmax, mul=1)
        assert lay.dim == (lmax + 1) ** 2


class TestValidationUtilities:
    def test_check_potential_invariance_passes_for_allegro(self):
        from repro.equivariant import check_potential_invariance
        from repro.md import System
        from repro.models import AllegroConfig, AllegroModel

        rng = np.random.default_rng(5)
        model = AllegroModel(
            AllegroConfig(
                n_species=2, n_tensor=2, latent_dim=8, two_body_hidden=(8,),
                latent_hidden=(8,), edge_energy_hidden=(4,), r_cut=3.0,
                avg_num_neighbors=8.0,
            )
        )
        s = System(rng.uniform(0, 5, (10, 3)), rng.integers(0, 2, 10), None)
        report = check_potential_invariance(model, s, n_trials=2)
        assert report.passed, str(report)
        assert "PASS" in str(report)

    def test_check_potential_invariance_catches_broken_symmetry(self):
        from repro.equivariant import check_potential_invariance
        from repro.md import System
        from repro.models import LennardJones

        class Broken(LennardJones):
            def atomic_energies(self, positions, species, nl):
                base = super().atomic_energies(positions, species, nl)
                return base + positions[:, 0] * 0.1  # explicit x-dependence

        rng = np.random.default_rng(6)
        s = System(rng.uniform(0, 5, (8, 3)), np.zeros(8, int), None)
        report = check_potential_invariance(
            Broken(epsilon=0.01, sigma=1.5, cutoff=3.0), s, n_trials=2
        )
        assert not report.passed

    def test_check_potential_invariance_rejects_periodic(self):
        from repro.equivariant import check_potential_invariance
        from repro.md import Cell, System
        from repro.models import LennardJones

        s = System(np.zeros((2, 3)), np.zeros(2, int), Cell.cubic(5.0))
        with pytest.raises(ValueError):
            check_potential_invariance(LennardJones(cutoff=2.0), s)

    def test_check_feature_equivariance_accepts_and_rejects(self):
        from repro.equivariant import check_feature_equivariance

        lay = StridedLayout.full_o3(1, mul=2)
        # Per-irrep scaling commutes with every D: equivariant.
        scales = np.concatenate(
            [np.full(ir.dim, 1.0 + 0.5 * k) for k, ir in enumerate(lay.irreps)]
        )
        err = check_feature_equivariance(lambda x: x * scales, lay, lay, n_trials=2)
        assert err < 1e-10

        # Mixing columns across irreps breaks equivariance: must register.
        rng = np.random.default_rng(7)
        M = rng.normal(size=(lay.dim, lay.dim))
        err_bad = check_feature_equivariance(lambda x: x @ M, lay, lay, n_trials=2)
        assert err_bad > 1e-3
