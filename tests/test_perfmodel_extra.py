"""Additional performance-model properties beyond the calibration checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import ClusterSpec, PerfModel
from repro.parallel.perfmodel import strong_scaling_curve


class TestBreakdown:
    def test_components_nonnegative_and_sum(self):
        pm = PerfModel()
        b = pm.step_breakdown(1_000_000, 64)
        for part in (b.compute, b.halo, b.latency, b.sync):
            assert part >= 0
        assert b.total == pytest.approx(b.compute + b.halo + b.latency + b.sync)

    def test_single_rank_has_no_comm(self):
        pm = PerfModel(spec=ClusterSpec(gpus_per_node=1))
        b = pm.step_breakdown(10_000, 1)
        assert b.halo == 0 and b.latency == 0 and b.sync == 0

    def test_kernel_floor_binds_at_small_loads(self):
        pm = PerfModel()
        b = pm.step_breakdown(1000, 64)  # ~4 atoms/GPU
        assert b.compute == pm.spec.kernel_floor_s

    def test_compute_dominates_at_large_loads(self):
        pm = PerfModel()
        b = pm.step_breakdown(100_000_000, 16)
        assert b.compute > 10 * (b.halo + b.latency + b.sync)

    @given(st.integers(10_000, 5_000_000), st.sampled_from([1, 4, 16, 64, 256]))
    @settings(max_examples=30, deadline=None)
    def test_rate_positive_and_bounded(self, n_atoms, nodes):
        pm = PerfModel()
        rate = pm.timesteps_per_second(n_atoms, nodes)
        assert 0 < rate < 1.0 / pm.spec.kernel_floor_s + 1

    @given(st.integers(100_000, 10_000_000))
    @settings(max_examples=20, deadline=None)
    def test_more_nodes_never_slower_before_saturation(self, n_atoms):
        """Monotone speedup while compute-bound (rate < half the plateau)."""
        pm = PerfModel()
        prev = 0.0
        for nodes in (1, 2, 4, 8, 16):
            rate = pm.timesteps_per_second(n_atoms, nodes)
            if rate < 50:
                assert rate >= prev * 0.999
            prev = rate


class TestHaloGeometry:
    def test_halo_grows_sublinearly(self):
        """Halo/atoms ratio shrinks as the brick grows (surface/volume)."""
        pm = PerfModel()
        fr = [
            pm.halo_atoms_per_gpu(n) / n for n in (1_000, 10_000, 100_000, 1_000_000)
        ]
        assert fr == sorted(fr, reverse=True)

    def test_zero_atoms(self):
        assert PerfModel().halo_atoms_per_gpu(0) == 0.0

    def test_thicker_cutoff_bigger_halo(self):
        a = PerfModel(cutoff=4.0).halo_atoms_per_gpu(25_000)
        b = PerfModel(cutoff=8.0).halo_atoms_per_gpu(25_000)
        assert b > 1.5 * a


class TestMemoryBound:
    def test_min_nodes_monotone_in_atoms(self):
        pm = PerfModel()
        sizes = [1_000_000, 10_000_000, 44_000_000, 100_000_000]
        mins = [pm.min_nodes(n) for n in sizes]
        assert mins == sorted(mins)
        assert mins[0] >= 1

    def test_strong_scaling_curve_respects_memory(self):
        pm = PerfModel()
        curve = strong_scaling_curve(pm, 100_000_000, [1, 1280])
        assert all(n >= pm.min_nodes(100_000_000) for n, _ in curve)

    def test_unclamped_curve_keeps_all_nodes(self):
        pm = PerfModel()
        curve = strong_scaling_curve(
            pm, 100_000_000, [1, 1280], clamp_to_memory=False
        )
        assert curve[0][0] == 1
