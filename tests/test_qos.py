"""QoS tests: priority admission, deadlines, shedding, degraded serving.

The QoS layer's contract extends the server's correctly-or-explicitly
guarantee with three new explicit outcomes — ``LoadShed`` (class
``shed``), ``DeadlineExceeded`` (class ``deadline``) and degraded results
stamped ``degraded=True`` — and one ordering rule: admission never
sacrifices a stronger class for a weaker one.  Determinism trick
throughout: ``start(workers=False)`` opens admission without the worker
pool, so the whole admission sequence is single-threaded and exact.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md import Cell, System
from repro.models import LennardJones, MorsePotential
from repro.serve import (
    EAGER_FALLBACK,
    Client,
    DeadlineExceeded,
    ForceServer,
    HealthMonitor,
    HealthThresholds,
    LoadShed,
    Metrics,
    MicroBatcher,
    ModelRegistry,
    QoSPolicy,
    ServeError,
    ServerOverloaded,
    ServerStopped,
    ServeResult,
    priority_level,
    qos_from_config,
)
from repro.serve.batching import ForceRequest
from repro.serve.qos import DEGRADED_SERVED, SHED_DEADLINE, SHED_LOAD


def make_system(n=8, seed=0, box=8.0):
    rng = np.random.default_rng(seed)
    return System(
        rng.uniform(0, box, size=(n, 3)),
        rng.integers(0, 2, size=n),
        Cell.cubic(box),
    )


def make_lj():
    return LennardJones(epsilon=0.8, sigma=1.1, cutoff=3.0, n_species=2)


class CountingLJ(LennardJones):
    """LJ that counts force evaluations — proves shed work never ran.

    The server's eager batch path calls ``atomic_energies`` on the
    concatenated structure (one call per evaluated batch); zero-edge
    structures go through ``energy_and_forces``.  Count both.
    """

    def __init__(self, **kw):
        super().__init__(**kw)
        self.calls = 0

    def energy_and_forces(self, system, nl=None):
        self.calls += 1
        return super().energy_and_forces(system, nl)

    def atomic_energies(self, positions, species, nl):
        self.calls += 1
        return super().atomic_energies(positions, species, nl)


def paused_server(**kw):
    """A server accepting requests with no workers running yet."""
    kw.setdefault("engine", "eager")
    kw.setdefault("n_workers", 1)
    server = ForceServer(kw.pop("potential", make_lj()), start=False, **kw)
    server.start(workers=False)
    return server


def shedding_monitor(level):
    """A pre-driven monitor pinned at severity ``level`` (sticky)."""
    mon = HealthMonitor(dwell_up=1, dwell_down=10**6)
    for _ in range(level):
        mon.tick({"queue_frac": 1.0})
    assert mon.level == level
    return mon


# ---------------------------------------------------------------------------
# policy object
# ---------------------------------------------------------------------------
class TestQoSPolicy:
    def test_weighted_bounds_cap_non_top_classes(self):
        bounds = QoSPolicy().bounds_for(14)  # weights 4/2/1
        assert bounds["interactive"] == 14  # top class: full queue
        assert bounds["batch"] == 4  # round(14 * 2/7)
        assert bounds["background"] == 2  # round(14 * 1/7)

    def test_explicit_bounds_win_and_are_capped(self):
        policy = QoSPolicy(queue_bounds={"background": 100, "batch": 3})
        bounds = policy.bounds_for(10)
        assert bounds == {"interactive": 10, "batch": 3, "background": 10}

    def test_every_class_gets_at_least_one_slot(self):
        bounds = QoSPolicy().bounds_for(2)
        assert all(b >= 1 for b in bounds.values())

    def test_default_deadlines(self):
        policy = QoSPolicy(deadlines={"interactive": 0.25, "batch": None})
        assert policy.default_deadline("interactive") == 0.25
        assert policy.default_deadline("batch") is None
        assert policy.default_deadline("background") is None
        assert QoSPolicy().default_deadline("interactive") is None

    @pytest.mark.parametrize(
        "kw",
        [
            {"weights": {"interactive": 1, "batch": 1}},  # missing class
            {"weights": {"interactive": 0, "batch": 1, "background": 1}},
            {"weights": {"vip": 1, "batch": 1, "background": 1}},
            {"queue_bounds": {"batch": 0}},
            {"queue_bounds": {"nope": 3}},
            {"shed_admit_priority": "urgent"},
            {"default_priority": "urgent"},
            {"deadlines": {"batch": -1.0}},
            {"deadlines": {"nope": 1.0}},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            QoSPolicy(**kw)

    def test_priority_level_rejects_unknown(self):
        assert priority_level("interactive") == 0
        with pytest.raises(ValueError, match="unknown priority"):
            priority_level("urgent")
        with pytest.raises(ValueError):
            priority_level(None)

    def test_config_round_trip_and_unknown_key(self):
        policy = qos_from_config(
            {
                "weights": {"interactive": 4, "batch": 2, "background": 1},
                "queue_bounds": {"background": 2},
                "deadlines": {"interactive": 0.5},
                "default_priority": "interactive",
            }
        )
        assert policy.default_priority == "interactive"
        assert policy.bounds_for(8)["background"] == 2
        with pytest.raises(ValueError, match="unknown qos config"):
            qos_from_config({"wieghts": {}})


class TestServeResult:
    def test_unpacks_like_the_legacy_tuple(self):
        f = np.zeros((3, 3))
        res = ServeResult(-1.5, f, degraded=True, model="lj:v1", priority="batch")
        e, forces = res
        assert e == -1.5 and forces is f
        assert res.energy == -1.5 and res.forces is f
        assert res.degraded and res.model == "lj:v1" and res.priority == "batch"
        assert isinstance(res, tuple) and len(res) == 2

    def test_defaults_not_degraded(self):
        assert not ServeResult(0.0, np.zeros((1, 3))).degraded


# ---------------------------------------------------------------------------
# admission: class bounds, eviction, health-state shedding
# ---------------------------------------------------------------------------
class TestPriorityAdmission:
    def test_class_bound_sheds_with_typed_error(self):
        server = paused_server(
            qos=QoSPolicy(queue_bounds={"background": 2}), max_queue=10
        )
        try:
            for k in range(2):
                server.submit(make_system(seed=k), priority="background")
            with pytest.raises(LoadShed, match="queue share full"):
                server.submit(make_system(seed=9), priority="background")
            m = server.metrics.snapshot()["counters"]
            assert m["requests_shed"] == 1
            assert m[SHED_LOAD + "{class=background}"] == 1
        finally:
            server.stop(drain=False)

    def test_load_shed_is_a_server_overloaded(self):
        # Legacy callers catching ServerOverloaded keep working.
        assert issubclass(LoadShed, ServerOverloaded)
        assert issubclass(LoadShed, ServeError)

    def test_interactive_evicts_newest_weaker_request(self):
        server = paused_server(
            qos=QoSPolicy(queue_bounds={"background": 3, "batch": 3}),
            max_queue=3,
        )
        try:
            victims = [
                server.submit(make_system(seed=k), priority="background")
                for k in range(3)
            ]
            fut = server.submit(make_system(seed=9), priority="interactive")
            # The *newest* background request was displaced with a typed
            # error; the older ones and the arrival are still queued.
            with pytest.raises(LoadShed, match="evicted"):
                victims[2].result(timeout=1.0)
            assert not victims[0].done() and not victims[1].done()
            assert not fut.done()
            by_class = server._batcher.pending_by_class()
            assert by_class["interactive"] == 1 and by_class["background"] == 2
            m = server.metrics.snapshot()["counters"]
            assert m["requests_failed"] == 1 and m["errors_shed"] == 1
            assert m[SHED_LOAD + "{class=background}"] == 1
        finally:
            server.stop(drain=False)

    def test_weakest_only_queue_sheds_weak_arrival(self):
        server = paused_server(qos=QoSPolicy(), max_queue=4)
        try:
            for k in range(4):
                server.submit(make_system(seed=k), priority="interactive")
            # A weaker arrival cannot displace stronger work.
            with pytest.raises(LoadShed):
                server.submit(make_system(seed=9), priority="batch")
        finally:
            server.stop(drain=False)

    def test_shedding_state_admits_only_interactive(self):
        server = paused_server(qos=QoSPolicy(), health=shedding_monitor(2))
        try:
            assert server.health.state == "SHEDDING"
            for priority in ("batch", "background"):
                with pytest.raises(LoadShed, match="health state SHEDDING"):
                    server.submit(make_system(), priority=priority)
            fut = server.submit(make_system(), priority="interactive")
            assert not fut.done()
            m = server.metrics.snapshot()["counters"]
            assert m["errors_shed"] == 2 and m["requests_admitted"] == 1
        finally:
            server.stop(drain=False)

    def test_draining_state_sheds_everything(self):
        server = paused_server(qos=QoSPolicy())
        server.health.begin_drain()
        try:
            with pytest.raises(LoadShed, match="DRAINING"):
                server.submit(make_system(), priority="interactive")
        finally:
            server.stop(drain=False)

    def test_without_qos_or_health_admission_is_legacy(self):
        # No policy, no monitor: the monitor observes but never sheds.
        server = paused_server(max_queue=2)
        try:
            for k in range(2):
                server.submit(make_system(seed=k), priority="background")
            with pytest.raises(ServerOverloaded):
                server.submit(make_system(seed=9), priority="background")
            # Plain overload accounting, not a QoS shed.
            m = server.metrics.snapshot()["counters"]
            assert m["errors_overload"] == 1
        finally:
            server.stop(drain=False)


class TestShutdownTyped:
    def test_submit_after_stop_raises_server_stopped(self):
        server = ForceServer(make_lj(), n_workers=1, engine="eager")
        server.stop()
        with pytest.raises(ServerStopped, match="not accepting"):
            server.submit(make_system())
        assert issubclass(ServerStopped, ServeError)
        assert server.metrics.snapshot()["counters"]["errors_shutdown"] == 1


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------
class TestDeadlines:
    def test_expired_request_sheds_before_any_force_call(self):
        pot = CountingLJ(epsilon=0.8, sigma=1.1, cutoff=3.0, n_species=2)
        server = paused_server(potential=pot, qos=QoSPolicy())
        try:
            fut = server.submit(make_system(), deadline=0.0)
            live = server.submit(make_system(seed=1))
            time.sleep(0.002)  # let the 0-second deadline lapse strictly
            server.start()
            with pytest.raises(DeadlineExceeded):
                fut.result(timeout=5.0)
            e, f = live.result(timeout=5.0)
            assert np.isfinite(e)
            # Exactly one evaluation happened: the expired request never
            # reached the potential.
            assert pot.calls == 1
            m = server.metrics.snapshot()["counters"]
            assert m["requests_expired"] == 1
            assert m["errors_deadline"] == 1
            assert m[SHED_DEADLINE + "{class=batch}"] == 1
        finally:
            server.stop(drain=True)

    def test_policy_default_deadline_applies(self):
        server = paused_server(
            qos=QoSPolicy(deadlines={"interactive": 0.001})
        )
        try:
            fut = server.submit(make_system(), priority="interactive")
            time.sleep(0.01)
            server.start()
            with pytest.raises(DeadlineExceeded):
                fut.result(timeout=5.0)
        finally:
            server.stop(drain=True)

    def test_infeasible_deadline_sheds_at_pickup(self):
        server = paused_server(qos=QoSPolicy())
        try:
            # Pretend one batch evaluation takes 100 s: a 5 s deadline is
            # infeasible even though it has not passed yet.
            server._eval_ewma = 100.0
            fut = server.submit(make_system(), deadline=5.0)
            server.start()
            with pytest.raises(DeadlineExceeded, match="unmeetable"):
                fut.result(timeout=5.0)
            m = server.metrics.snapshot()["counters"]
            assert m["requests_expired"] == 1
        finally:
            server.stop(drain=True)

    def test_client_deadline_passthrough(self):
        server = paused_server(qos=QoSPolicy())
        try:
            client = Client(server, priority="interactive", deadline=0.0)
            fut = client.submit(make_system())
            time.sleep(0.002)
            server.start()
            with pytest.raises(DeadlineExceeded):
                fut.result(timeout=5.0)
        finally:
            server.stop(drain=True)


class TestDeadlineAwareBatching:
    def fake_clock(self):
        return self.now

    def make(self, window=10.0, max_batch=4):
        self.now = 1000.0
        return MicroBatcher(
            max_batch=max_batch, max_wait=window, adaptive=False,
            clock=self.fake_clock,
        )

    def req(self, deadline=None, priority="batch", seed=0):
        return ForceRequest(
            system=make_system(seed=seed),
            model="m",
            future=None,
            deadline=deadline,
            priority=priority,
        )

    def test_partial_batch_releases_at_tightest_deadline(self):
        b = self.make(window=10.0)
        b.put(self.req(deadline=1000.5))
        # Window (10 s) has not elapsed and the batch is not full: the
        # deadline is the only reason to release.
        assert b.get_batch(timeout=0) is None
        self.now = 1000.5  # exactly the deadline: release, don't expire
        batch = b.get_batch(timeout=0)
        assert batch is not None and len(batch) == 1

    def test_past_deadline_requests_are_purged_not_assembled(self):
        expired = []
        b = self.make(window=0.0)
        b.on_expire = expired.extend
        b.put(self.req(deadline=1000.5, seed=0))
        b.put(self.req(deadline=2000.0, seed=1))
        self.now = 1001.0  # strictly past the first deadline
        batch = b.get_batch(timeout=0)
        assert [r.deadline for r in expired] == [1000.5]
        assert batch is not None and len(batch) == 1
        assert batch[0].deadline == 2000.0
        assert b.stats()["n_expired"] == 1

    def test_stronger_class_dispatches_first(self):
        b = self.make(window=0.0)
        b.put(self.req(priority="background", seed=0))
        b.put(self.req(priority="interactive", seed=1))
        batch = b.get_batch(timeout=0)
        assert batch[0].priority == "interactive"
        assert b.get_batch(timeout=0)[0].priority == "background"

    def test_batches_never_mix_priority_classes(self):
        b = self.make(window=0.0, max_batch=8)
        for k in range(3):
            b.put(self.req(priority="batch", seed=k))
        for k in range(3):
            b.put(self.req(priority="background", seed=10 + k))
        first = b.get_batch(timeout=0)
        second = b.get_batch(timeout=0)
        assert {r.priority for r in first} == {"batch"}
        assert {r.priority for r in second} == {"background"}


# ---------------------------------------------------------------------------
# degraded serving
# ---------------------------------------------------------------------------
class TestDegradedServing:
    def test_degraded_serves_fallback_model_and_stamps_result(self):
        lj = make_lj()
        server = ForceServer(
            lj, n_workers=1, engine="eager",
            qos=QoSPolicy(), health=shedding_monitor(1), start=False,
        )
        cheap = LennardJones(epsilon=0.1, sigma=1.0, cutoff=2.0, n_species=2)
        server.registry.register("cheap", cheap)
        server.registry.set_fallback("default", "cheap")
        server.start()
        try:
            assert server.health.state == "DEGRADED"
            res = server.evaluate(make_system(), priority="interactive")
            assert isinstance(res, ServeResult)
            assert res.degraded and res.model == "cheap:v1"
            assert res.priority == "interactive"
            e, f = res  # legacy unpacking still works
            assert np.allclose(f, res.forces)
            m = server.metrics.snapshot()["counters"]
            assert m[DEGRADED_SERVED] == 1
        finally:
            server.stop(drain=True)

    def test_degraded_compiled_falls_back_to_eager(self):
        server = ForceServer(
            make_lj(), n_workers=1, engine="compiled",
            qos=QoSPolicy(), health=shedding_monitor(1),
        )
        server.registry.set_fallback("default", EAGER_FALLBACK)
        try:
            res = server.evaluate(make_system())
            assert res.degraded and res.model == "default:v1"
            # Eager and compiled are bitwise-identical here, so the
            # exactness contract survives degradation.
            direct = make_lj().energy_and_forces(
                make_system(),
                make_lj().prepare_neighbors(make_system())
                if hasattr(make_lj(), "prepare_neighbors") else None,
            )
        finally:
            server.stop(drain=True)

    def test_healthy_server_never_degrades(self):
        server = ForceServer(make_lj(), n_workers=1, engine="eager", qos=QoSPolicy())
        server.registry.register("cheap", make_lj())
        server.registry.set_fallback("default", "cheap")
        try:
            res = server.evaluate(make_system())
            assert not res.degraded and res.model == "default:v1"
        finally:
            server.stop(drain=True)

    def test_fallback_chain_is_cycle_safe(self):
        reg = ModelRegistry()
        reg.register("a", make_lj(), fallback="b")
        reg.register("b", make_lj(), fallback="a")
        entry, eager = reg.resolve_degraded("a")
        assert entry.key == "b:v1" and not eager

    def test_unresolvable_fallback_stops_at_last_entry(self):
        reg = ModelRegistry()
        reg.register("a", make_lj(), fallback="missing")
        entry, eager = reg.resolve_degraded("a")
        assert entry.key == "a:v1" and not eager

    def test_registry_stats_report_fallbacks(self):
        reg = ModelRegistry()
        reg.register("a", make_lj(), fallback=EAGER_FALLBACK)
        assert reg.stats()["fallbacks"]["a:v1"] == EAGER_FALLBACK


class TestStatsSurface:
    def test_stats_include_health_and_qos_sections(self):
        server = paused_server(qos=QoSPolicy(), max_queue=8)
        try:
            server.submit(make_system(), priority="interactive")
            stats = server.stats()
            assert stats["health"]["state"] == "HEALTHY"
            assert stats["qos"]["enforced"]
            assert stats["qos"]["pending_by_class"]["interactive"] == 1
            assert stats["qos"]["class_bounds"]["interactive"] == 8
        finally:
            server.stop(drain=False)


# ---------------------------------------------------------------------------
# properties: no inversion, exact shed accounting (hypothesis)
# ---------------------------------------------------------------------------
priorities = st.sampled_from(("interactive", "batch", "background"))
arrival_seqs = st.lists(priorities, min_size=1, max_size=14)


class TestAdmissionProperties:
    @given(arrival_seqs)
    @settings(max_examples=30, deadline=None)
    def test_admission_never_inverts_and_accounting_is_exact(self, seq):
        server = paused_server(
            qos=QoSPolicy(queue_bounds={"batch": 5, "background": 5}),
            max_queue=5,
            # Pin the monitor at HEALTHY (astronomical dwell): this
            # property isolates *admission* ordering; health-state
            # shedding is covered separately and by the chaos invariant.
            health=HealthMonitor(dwell_up=10**6, dwell_down=10**6),
        )
        n_shed = 0
        try:
            for k, priority in enumerate(seq):
                before = dict(server._batcher.pending_by_class())
                try:
                    server.submit(make_system(seed=k % 4), priority=priority)
                except (LoadShed, ServerOverloaded):
                    n_shed += 1
                    # An arrival is only shed when no strictly weaker
                    # class holds a slot (else it would have evicted).
                    weaker = [
                        p for p in ("interactive", "batch", "background")
                        if priority_level(p) > priority_level(priority)
                    ]
                    assert all(before.get(p, 0) == 0 for p in weaker)
            m = server.metrics.snapshot()["counters"]
            pending = server._batcher.pending()
            evicted = m.get("requests_failed", 0)
            # Nothing ran (no workers): every admitted request is either
            # still pending or was evicted; every rejected one counted.
            assert m.get("requests_admitted", 0) == pending + evicted
            assert m.get("requests_shed", 0) == n_shed
            shed_counters = sum(
                v for k_, v in m.items() if k_.startswith(SHED_LOAD + "{")
            )
            assert shed_counters == n_shed + evicted
        finally:
            server.stop(drain=False)

    @given(arrival_seqs)
    @settings(max_examples=30, deadline=None)
    def test_batcher_dispatch_order_is_strict_priority(self, seq):
        self_now = [0.0]
        b = MicroBatcher(
            max_batch=1, max_wait=0.0, adaptive=False, clock=lambda: self_now[0]
        )
        for k, priority in enumerate(seq):
            b.put(
                ForceRequest(
                    system=None, model="m", future=None, priority=priority
                )
            )
        out = []
        while True:
            batch = b.get_batch(timeout=0)
            if batch is None:
                break
            out.extend(r.priority for r in batch)
        levels = [priority_level(p) for p in out]
        assert sorted(levels) == levels  # strongest classes drain first
        assert len(out) == len(seq)
