"""Tests for Linear/MLP layers and their normalization discipline."""

import numpy as np
import pytest

import repro.autodiff as ad
from repro.nn import MLP, Linear


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestLinear:
    def test_output_shape(self, rng):
        lin = Linear(4, 6, rng=rng)
        out = lin(ad.Tensor(rng.normal(size=(10, 4))))
        assert out.shape == (10, 6)

    def test_unit_variance_at_init(self, rng):
        """Forward normalization: unit-variance in → ~unit-variance out."""
        lin = Linear(256, 256, rng=rng)
        x = ad.Tensor(rng.normal(size=(512, 256)))
        out = lin(x).data
        assert 0.8 < out.std() < 1.2

    def test_weight_distribution(self, rng):
        lin = Linear(64, 64, rng=rng)
        w = lin.weight.data
        assert abs(w.std() - 1.0) < 0.1
        assert np.abs(w).max() <= np.sqrt(3) + 1e-12

    def test_bias(self, rng):
        lin = Linear(3, 2, bias=True, rng=rng)
        assert lin.bias is not None
        names = [n for n, _ in lin.named_parameters()]
        assert any("bias" in n for n in names)

    def test_gradcheck(self, rng):
        lin = Linear(3, 2, bias=True, rng=rng)
        ad.gradcheck(lambda x: lin(x), [rng.normal(size=(4, 3))])


class TestMLP:
    def test_shapes_and_depth(self, rng):
        mlp = MLP([4, 8, 8, 2], rng=rng)
        assert len(mlp.layers) == 3
        assert mlp.in_features == 4 and mlp.out_features == 2
        out = mlp(rng.normal(size=(5, 4)))
        assert out.shape == (5, 2)

    def test_identity_nonlinearity_is_linear_map(self, rng):
        mlp = MLP([3, 5, 2], nonlinearity="identity", rng=rng)
        x1, x2 = rng.normal(size=(4, 3)), rng.normal(size=(4, 3))
        lhs = mlp(ad.Tensor(x1 + x2)).data
        rhs = mlp(ad.Tensor(x1)).data + mlp(ad.Tensor(x2)).data
        assert np.allclose(lhs, rhs, atol=1e-10)

    def test_activation_variance_preserved(self, rng):
        """The second-moment gain keeps deep activations O(1) (paper §V-B3)."""
        mlp = MLP([128] * 6, rng=rng)
        x = ad.Tensor(rng.normal(size=(256, 128)))
        h = x
        for i, layer in enumerate(mlp.layers[:-1]):
            h = ad.silu(layer(h)) * mlp._gain
            assert 0.5 < h.data.std() < 2.0, f"layer {i}: std={h.data.std()}"

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            MLP([4])
        with pytest.raises(ValueError):
            MLP([4, 2], nonlinearity="nope")

    def test_gradcheck_through_depth(self, rng):
        mlp = MLP([3, 6, 6, 1], rng=rng)
        ad.gradcheck(lambda x: mlp(x), [rng.normal(size=(3, 3))])

    def test_parameter_count(self, rng):
        mlp = MLP([4, 8, 2], rng=rng)
        assert mlp.num_parameters() == 4 * 8 + 8 * 2

    def test_deterministic_given_rng_seed(self):
        m1 = MLP([3, 4, 2], rng=np.random.default_rng(5))
        m2 = MLP([3, 4, 2], rng=np.random.default_rng(5))
        x = np.ones((2, 3))
        assert np.allclose(m1(x).data, m2(x).data)
