"""Tests for the Berendsen barostat and the cellulose fibril generator."""

import numpy as np
import pytest

from repro.data import cellulose_chain, cellulose_fibril
from repro.data.reference import SPECIES_INDEX
from repro.md import (
    BerendsenBarostat,
    Cell,
    Simulation,
    System,
    instantaneous_pressure,
)
from repro.md.barostat import EV_PER_A3_TO_BAR
from repro.md.system import KB_EV
from repro.models import LennardJones


@pytest.fixture
def rng():
    return np.random.default_rng(191)


def _lj_crystal(rng, a=1.75, n_side=4):
    g = (
        np.stack(np.meshgrid(*[np.arange(n_side)] * 3, indexing="ij"), -1)
        .reshape(-1, 3) * a
    )
    s = System(
        g + rng.normal(scale=0.02, size=g.shape),
        np.zeros(len(g), int),
        Cell.cubic(n_side * a),
    )
    return s, LennardJones(epsilon=0.05, sigma=1.5, cutoff=3.0)


class TestPressure:
    def test_ideal_gas_limit(self, rng):
        """Zero forces → P = N·k_B·T/V exactly."""
        n, L = 100, 20.0
        s = System(rng.uniform(0, L, (n, 3)), np.zeros(n, int), Cell.cubic(L))
        s.seed_velocities(300.0, rng)
        p = instantaneous_pressure(s, np.zeros((n, 3)))
        expected = n * KB_EV * s.temperature() / L**3 * EV_PER_A3_TO_BAR
        assert p == pytest.approx(expected, rel=1e-10)

    def test_compressed_crystal_positive_pressure(self, rng):
        s, lj = _lj_crystal(rng, a=1.55)  # compressed below LJ minimum
        _, forces = lj.energy_and_forces(s)
        assert instantaneous_pressure(s, forces) > 0

    def test_requires_cell(self, rng):
        s = System(rng.uniform(0, 5, (4, 3)), np.zeros(4, int), None)
        with pytest.raises(ValueError):
            instantaneous_pressure(s, np.zeros((4, 3)))


class TestBerendsenBarostat:
    def test_compressed_box_expands(self, rng):
        s, lj = _lj_crystal(rng, a=1.55)
        baro = BerendsenBarostat(pressure=1.0, tau=100.0)
        _, forces = lj.energy_and_forces(s)
        v0 = s.cell.volume
        mu = baro.apply(s, forces, dt=1.0)
        assert mu > 1.0
        assert s.cell.volume > v0
        assert baro.last_pressure > 1.0

    def test_scaling_capped(self, rng):
        s, lj = _lj_crystal(rng, a=1.3, n_side=5)  # extreme compression
        baro = BerendsenBarostat(pressure=1.0, tau=1.0, max_scaling=0.01)
        _, forces = lj.energy_and_forces(s)
        mu = baro.apply(s, forces, dt=1.0)
        assert abs(mu - 1.0) <= 0.01 + 1e-12

    def test_positions_scale_with_box(self, rng):
        s, lj = _lj_crystal(rng)
        _, forces = lj.energy_and_forces(s)
        pos0 = s.positions.copy()
        L0 = s.cell.lengths.copy()
        baro = BerendsenBarostat(pressure=1e6, tau=10.0)  # force compression
        mu = baro.apply(s, forces, dt=1.0)
        assert np.allclose(s.positions, mu * pos0)
        assert np.allclose(s.cell.lengths, mu * L0)

    def test_npt_equilibration_drives_pressure_down(self, rng):
        """Coupled MD + barostat relaxes a compressed crystal's pressure."""
        s, lj = _lj_crystal(rng, a=1.58, n_side=5)
        s.seed_velocities(40.0, rng)
        baro = BerendsenBarostat(pressure=1.0, tau=50.0)
        sim = Simulation(s, lj, dt=0.2)

        def couple(step, simulation):
            baro.apply(simulation.system, simulation._forces, simulation.integrator.dt)

        _, f = lj.energy_and_forces(s)
        p_start = instantaneous_pressure(s, f)
        sim.add_callback(couple)
        sim.run(150)
        _, f = lj.energy_and_forces(s)
        p_end = instantaneous_pressure(s, f)
        assert abs(p_end) < abs(p_start)

    def test_validation(self):
        with pytest.raises(ValueError):
            BerendsenBarostat(tau=-1)
        with pytest.raises(ValueError):
            BerendsenBarostat(compressibility=0.0)


class TestCellulose:
    def test_chain_composition(self):
        pos, spec = cellulose_chain(n_monomers=3, seed=1)
        assert len(pos) == len(spec) == 3 * 14  # 6 ring + 3 OH(2) + 2 H
        counts = np.bincount(spec, minlength=4)
        assert counts[SPECIES_INDEX["C"]] == 3 * 5
        assert counts[SPECIES_INDEX["O"]] == 3 * 4
        assert counts[SPECIES_INDEX["H"]] == 3 * 5

    def test_chain_extends_along_x(self):
        pos, _ = cellulose_chain(n_monomers=5, seed=2)
        extent = pos.max(axis=0) - pos.min(axis=0)
        assert extent[0] > 3 * extent[1]

    def test_fibril_builds_and_solvates(self):
        dry = cellulose_fibril(n_monomers=2, n_chains=(2, 2), solvate=False)
        wet = cellulose_fibril(n_monomers=2, n_chains=(2, 2), solvate=True)
        assert wet.n_atoms > dry.n_atoms
        assert dry.n_atoms == 4 * 2 * 14

    def test_no_interchain_clashes(self):
        from scipy.spatial.distance import pdist

        fib = cellulose_fibril(n_monomers=3, n_chains=(2, 2), solvate=False)
        assert pdist(fib.positions).min() > 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            cellulose_chain(n_monomers=0)
