"""Focused tests on trainer internals: scale-shift init, schedules, EMA use."""

import numpy as np
import pytest

from repro.data import conformation_dataset, label_frames
from repro.models import AllegroConfig, AllegroModel, LennardJones
from repro.nn import TrainConfig, Trainer


@pytest.fixture(scope="module")
def frames():
    return label_frames(conformation_dataset(8, n_heavy=3, seed=41, sigma=0.05))


def tiny_model():
    return AllegroModel(
        AllegroConfig(
            n_species=4,
            n_tensor=2,
            latent_dim=8,
            two_body_hidden=(8,),
            latent_hidden=(8,),
            edge_energy_hidden=(4,),
            r_cut=3.0,
            avg_num_neighbors=8.0,
        )
    )


class TestScaleShiftInit:
    def test_reference_energies_regressed(self, frames):
        model = tiny_model()
        Trainer(model, frames, config=TrainConfig())
        mu = model.scale_shift.shifts.data
        # The regressed per-species energies reproduce frame energies well.
        for f in frames[:3]:
            counts = np.bincount(f.system.species, minlength=4)
            predicted = counts @ mu
            assert abs(predicted - f.energy) < 0.3 * abs(f.energy) + 1.0

    def test_sigma_set_to_force_rms(self, frames):
        model = tiny_model()
        Trainer(model, frames, config=TrainConfig())
        frms = np.sqrt(
            np.mean(np.concatenate([f.forces.ravel() for f in frames]) ** 2)
        )
        assert np.allclose(model.scale_shift.scales.data, frms)

    def test_opt_out(self, frames):
        model = tiny_model()
        Trainer(model, frames, config=TrainConfig(init_reference_energies=False))
        assert np.allclose(model.scale_shift.shifts.data, 0.0)

    def test_no_scale_shift_model_is_fine(self, frames):
        lj = LennardJones(epsilon=0.01, sigma=1.8, cutoff=3.0, n_species=4)
        Trainer(lj, frames, config=TrainConfig())  # must not raise

class TestHistoryAndEMA:
    def test_history_records_val_metrics(self, frames):
        tr = Trainer(
            tiny_model(), frames[:6], frames[6:], TrainConfig(lr=3e-3, batch_size=3)
        )
        hist = tr.fit(epochs=2)
        assert len(hist) == 2
        assert hist[0].val_force_rmse is not None
        assert hist[0].epoch == 0 and hist[1].epoch == 1

    def test_evaluate_with_ema_differs_from_live(self, frames):
        tr = Trainer(tiny_model(), frames[:6], config=TrainConfig(lr=5e-3, batch_size=3))
        tr.fit(epochs=3)
        live = tr.evaluate(frames[6:])["force_rmse"]
        ema = tr.evaluate(frames[6:], use_ema=True)["force_rmse"]
        assert live != ema  # EMA lags behind live weights

    def test_no_shuffle_is_deterministic(self, frames):
        losses = []
        for _ in range(2):
            tr = Trainer(
                tiny_model(),
                frames[:6],
                config=TrainConfig(lr=3e-3, batch_size=3, shuffle=False, seed=9),
            )
            losses.append(tr.fit(epochs=2)[-1].train_loss)
        assert losses[0] == losses[1]
