"""Tests for trajectory analysis: MSD, unwrapping, VACF, stability reports."""

import numpy as np
import pytest

from repro.md import (
    Cell,
    Simulation,
    System,
    diffusion_coefficient,
    mean_squared_displacement,
    stability_report,
    unwrap_trajectory,
    velocity_autocorrelation,
)
from repro.models import LennardJones


@pytest.fixture
def rng():
    return np.random.default_rng(181)


class TestMSD:
    def test_ballistic_motion_quadratic(self):
        """Constant-velocity atoms: MSD(τ) = v²τ²."""
        v = np.array([0.1, 0.0, 0.0])
        frames = [np.array([[0.0, 0, 0]]) + v * t for t in range(10)]
        msd = mean_squared_displacement(frames)
        taus = np.arange(10)
        assert np.allclose(msd, (0.1 * taus) ** 2, atol=1e-12)

    def test_random_walk_linear(self, rng):
        """Brownian steps: MSD grows linearly with lag."""
        steps = rng.normal(scale=0.1, size=(400, 50, 3))
        frames = np.cumsum(steps, axis=0)
        msd = mean_squared_displacement(list(frames), max_lag=40)
        # slope ratio between halves ≈ 1 (linear).
        early = msd[10] / 10
        late = msd[40] / 40
        assert late == pytest.approx(early, rel=0.3)

    def test_atom_subset(self, rng):
        frames = [rng.normal(size=(6, 3)) for _ in range(5)]
        full = mean_squared_displacement(frames)
        sub = mean_squared_displacement(frames, atom_indices=np.arange(6))
        assert np.allclose(full, sub)

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_squared_displacement([np.zeros((2, 3))])


class TestUnwrap:
    def test_crossing_reconstructed(self):
        L = np.array([10.0, 10.0, 10.0])
        # atom walks +1 per frame, wrapping at 10.
        true = np.array([[float(t), 0.0, 0.0] for t in range(25)])
        wrapped = [np.array([[t % 10.0, 0.0, 0.0]]) for t in range(25)]
        un = unwrap_trajectory(wrapped, L)
        rebuilt = np.array([f[0] for f in un])
        assert np.allclose(rebuilt, true)

    def test_no_wrap_is_identity(self, rng):
        frames = [rng.uniform(2, 8, (4, 3)) + 0.01 * t for t in range(5)]
        un = unwrap_trajectory(frames, np.array([50.0, 50.0, 50.0]))
        for a, b in zip(frames, un):
            assert np.allclose(a, b)


class TestDiffusion:
    def test_known_slope(self):
        dt = 2.0
        lags = np.arange(50)
        msd = 6 * 0.01 * lags * dt  # D = 0.01 Å²/fs
        assert diffusion_coefficient(msd, dt) == pytest.approx(0.01, rel=1e-6)

    def test_too_short(self):
        with pytest.raises(ValueError):
            diffusion_coefficient(np.zeros(3), 1.0)


class TestVACF:
    def test_starts_at_one_and_constant_velocity_stays(self, rng):
        v = rng.normal(size=(1, 8, 3)).repeat(10, axis=0)
        vacf = velocity_autocorrelation(list(v))
        assert np.allclose(vacf, 1.0, atol=1e-12)

    def test_decorrelates_for_random_velocities(self, rng):
        v = [rng.normal(size=(200, 3)) for _ in range(60)]
        vacf = velocity_autocorrelation(v, max_lag=10)
        assert vacf[0] == 1.0
        assert abs(vacf[5]) < 0.2


class TestStabilityReport:
    def _run(self, rng, temperature):
        n_side, a = 4, 1.7
        g = (
            np.stack(np.meshgrid(*[np.arange(n_side)] * 3, indexing="ij"), -1)
            .reshape(-1, 3) * a
        )
        s = System(
            g + rng.normal(scale=0.02, size=g.shape),
            np.zeros(len(g), int),
            Cell.cubic(n_side * a),
        )
        s.seed_velocities(temperature, rng)
        lj = LennardJones(epsilon=0.05, sigma=1.5, cutoff=3.0)
        return Simulation(s, lj, dt=0.2).run(60)

    def test_healthy_run(self, rng):
        res = self._run(rng, 40.0)
        report = stability_report(res)
        assert not report.exploded
        assert "stable" in str(report)
        assert report.energy_drift_per_atom < 1e-2

    def test_explosion_detected(self, rng):
        res = self._run(rng, 40.0)
        res.temperatures[-1] = 1e6  # simulate a blown-up trajectory
        report = stability_report(res)
        assert report.exploded
        assert "UNSTABLE" in str(report)

    def test_displacement_tracked(self, rng):
        res = self._run(rng, 40.0)
        frames = [np.zeros((3, 3)), np.ones((3, 3))]
        report = stability_report(res, frames=frames)
        assert report.max_displacement == pytest.approx(np.sqrt(3.0))
