"""Property tests for the trajectory data plane (Hypothesis).

Four invariants, each checked over randomized shapes/contents:

1. **Binary round-trip is exact** — every ``Frame`` field survives the
   ``.rtrj`` store bit-for-bit, compressed or not, at any chunking.
2. **XYZ round-trip is faithful to format precision** — positions and
   velocities written at 8 decimals come back within 1e-8.
3. **Random access equals sequential scan** — ``reader[i]`` is the same
   frame the iterator yields ``i``-th, for every index.
4. **Torn tails never raise** — truncating a trajectory at *any* byte
   past the file header still opens, iterates and verifies cleanly; the
   readable prefix matches the original frames exactly.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.system import Cell, System
from repro.md.trajectory import read_xyz, write_xyz_frame
from repro.traj import Frame, TrajectoryReader, TrajectoryStore


def _frames(n_frames, n_atoms, seed):
    rng = np.random.default_rng(seed)
    cell = np.abs(rng.normal(loc=8.0, scale=1.0, size=3)) + 1.0
    out = []
    for k in range(n_frames):
        out.append(
            Frame(
                step=k * 3,
                time_fs=0.25 * k,
                pe=float(rng.normal()),
                cell_lengths=cell.copy(),
                positions=rng.normal(scale=2.0, size=(n_atoms, 3)),
                velocities=rng.normal(scale=0.1, size=(n_atoms, 3)),
            )
        )
    return out


def _system(n_atoms, seed):
    rng = np.random.default_rng(seed)
    return System(
        rng.uniform(0.5, 7.5, size=(n_atoms, 3)),
        rng.integers(0, 2, size=n_atoms),
        Cell.cubic(8.0),
        species_names=["H", "O"],
    )


def _write(path, frames, n_atoms, frames_per_chunk, compression):
    system = _system(n_atoms, seed=0)
    store = TrajectoryStore(
        path,
        system=system,
        frames_per_chunk=frames_per_chunk,
        compression=compression,
    )
    for f in frames:
        store.append(f)
    store.close()


def _assert_frame_equal(a: Frame, b: Frame) -> None:
    assert a.step == b.step
    assert a.time_fs == b.time_fs
    assert (a.pe == b.pe) or (np.isnan(a.pe) and np.isnan(b.pe))
    np.testing.assert_array_equal(a.cell_lengths, b.cell_lengths)
    np.testing.assert_array_equal(a.positions, b.positions)
    np.testing.assert_array_equal(a.velocities, b.velocities)


class TestBinaryRoundTrip:
    @given(
        n_frames=st.integers(1, 12),
        n_atoms=st.integers(1, 9),
        frames_per_chunk=st.integers(1, 5),
        compression=st.booleans(),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact(self, n_frames, n_atoms, frames_per_chunk, compression, seed):
        frames = _frames(n_frames, n_atoms, seed)
        with tempfile.TemporaryDirectory() as d:
            path = Path(d) / "t.rtrj"
            _write(path, frames, n_atoms, frames_per_chunk, compression)
            with TrajectoryReader(path) as reader:
                got = list(reader.frames())
                assert len(got) == n_frames
                assert reader.frames_quarantined == 0
                for a, b in zip(frames, got):
                    _assert_frame_equal(a, b)


class TestXYZRoundTrip:
    @given(n_atoms=st.integers(1, 12), seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_within_format_precision(self, n_atoms, seed):
        system = _system(n_atoms, seed)
        rng = np.random.default_rng(seed + 1)
        system.velocities = rng.normal(scale=0.1, size=(n_atoms, 3))
        with tempfile.TemporaryDirectory() as d:
            path = Path(d) / "t.xyz"
            with open(path, "w") as fh:
                write_xyz_frame(fh, system)
            (back,) = read_xyz(path, species_names=["H", "O"])
        assert back.n_atoms == n_atoms
        np.testing.assert_array_equal(back.species, system.species)
        np.testing.assert_allclose(back.positions, system.positions, atol=1e-8)
        np.testing.assert_allclose(back.velocities, system.velocities, atol=1e-8)
        np.testing.assert_allclose(
            np.asarray(back.cell.lengths), np.asarray(system.cell.lengths)
        )


class TestRandomAccess:
    @given(
        n_frames=st.integers(1, 15),
        frames_per_chunk=st.integers(1, 4),
        compression=st.booleans(),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_sequential(self, n_frames, frames_per_chunk, compression, seed):
        n_atoms = 4
        frames = _frames(n_frames, n_atoms, seed)
        with tempfile.TemporaryDirectory() as d:
            path = Path(d) / "t.rtrj"
            _write(path, frames, n_atoms, frames_per_chunk, compression)
            with TrajectoryReader(path) as reader:
                seq = list(reader.frames())
                assert len(reader) == len(seq) == n_frames
                for i in range(n_frames):
                    _assert_frame_equal(reader[i], seq[i])
                # Out-of-range access is an IndexError, not silence.
                with pytest.raises(IndexError):
                    reader.read(n_frames)


class TestTornTail:
    @given(
        n_frames=st.integers(1, 10),
        frames_per_chunk=st.integers(1, 4),
        compression=st.booleans(),
        seed=st.integers(0, 10_000),
        cut=st.floats(0.0, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_truncation_never_raises(
        self, n_frames, frames_per_chunk, compression, seed, cut
    ):
        n_atoms = 3
        frames = _frames(n_frames, n_atoms, seed)
        with tempfile.TemporaryDirectory() as d:
            path = Path(d) / "t.rtrj"
            _write(path, frames, n_atoms, frames_per_chunk, compression)
            raw = path.read_bytes()
            with TrajectoryReader(path) as reader:
                data_start = reader._data_start
            # Truncate anywhere from "no data at all" to "missing one byte",
            # and drop the sidecar so the reader has to scan from scratch.
            pos = data_start + int(cut * max(0, len(raw) - 1 - data_start))
            torn = Path(d) / "torn.rtrj"
            torn.write_bytes(raw[:pos])
            with TrajectoryReader(torn) as reader:
                got = list(reader.frames())  # must never raise
                report = reader.verify()
            assert report["frames_readable"] == len(got)
            # The readable prefix is a prefix of the original frames, exact.
            assert len(got) <= n_frames
            for a, b in zip(frames, got):
                _assert_frame_equal(a, b)
