"""Integration tests of the force-matching training loop on real models."""

import numpy as np
import pytest

from repro.data import conformation_dataset, label_frames
from repro.models import (
    AllegroConfig,
    AllegroModel,
    ClassicalConfig,
    ClassicalForceField,
    DeepMDConfig,
    DeepMDModel,
)
from repro.nn import TrainConfig, Trainer
from repro.nn.training import LabeledFrame, _Batch


@pytest.fixture(scope="module")
def frames():
    return label_frames(conformation_dataset(20, n_heavy=4, seed=11, sigma=0.06))


def tiny_allegro():
    return AllegroModel(
        AllegroConfig(
            n_species=4,
            n_tensor=4,
            latent_dim=16,
            two_body_hidden=(16,),
            latent_hidden=(24,),
            edge_energy_hidden=(8,),
            r_cut=3.5,
            avg_num_neighbors=8.0,
        )
    )


class TestTrainer:
    def test_loss_decreases_allegro(self, frames):
        tr = Trainer(
            tiny_allegro(),
            frames[:12],
            frames[12:],
            TrainConfig(lr=5e-3, batch_size=6, max_epochs=12, seed=1),
        )
        hist = tr.fit()
        assert hist[-1].train_loss < 0.3 * hist[0].train_loss
        assert hist[-1].val_force_rmse is not None

    def test_validation_improves_over_untrained(self, frames):
        model = tiny_allegro()
        tr = Trainer(model, frames[:12], frames[12:], TrainConfig(lr=5e-3, batch_size=6))
        before = tr.evaluate(frames[12:])["force_rmse"]
        tr.fit(epochs=12)
        after = tr.evaluate(frames[12:], use_ema=True)["force_rmse"]
        assert after < before

    def test_deepmd_and_classical_train(self, frames):
        for model in (
            DeepMDModel(DeepMDConfig(n_species=4, r_cut=3.5)),
            ClassicalForceField(ClassicalConfig(n_species=4, r_cut=3.5)),
        ):
            tr = Trainer(model, frames[:12], config=TrainConfig(lr=1e-2, batch_size=6))
            hist = tr.fit(epochs=10)
            assert hist[-1].train_loss < hist[0].train_loss

    def test_force_scale_from_training_set(self, frames):
        tr = Trainer(tiny_allegro(), frames[:4])
        expected = max(np.abs(f.forces).max() for f in frames[:4])
        assert tr.force_scale == pytest.approx(expected)

    def test_lr_schedule_applied(self, frames):
        cfg = TrainConfig(lr=1e-3, batch_size=4, lr_schedule=lambda e: 1e-3 * 0.5**e)
        tr = Trainer(tiny_allegro(), frames[:4], config=cfg)
        tr.fit(epochs=2)
        assert tr.optimizer.lr == pytest.approx(5e-4)

    def test_energy_weight_loss_runs(self, frames):
        cfg = TrainConfig(lr=1e-3, batch_size=4, energy_weight=1.0, max_epochs=2)
        tr = Trainer(tiny_allegro(), frames[:4], config=cfg)
        hist = tr.fit()
        assert np.isfinite(hist[-1].train_loss)

    def test_requires_training_data(self):
        with pytest.raises(ValueError):
            Trainer(tiny_allegro(), [])

    def test_labeled_frame_validation(self, frames):
        with pytest.raises(ValueError):
            LabeledFrame(frames[0].system, 0.0, np.zeros((2, 3)))

    def test_labeled_frame_rejects_nonfinite_energy(self, frames):
        shape = frames[0].system.positions.shape
        with pytest.raises(ValueError, match="energy must be finite"):
            LabeledFrame(frames[0].system, float("nan"), np.zeros(shape))

    def test_labeled_frame_rejects_nonfinite_forces(self, frames):
        forces = np.zeros(frames[0].system.positions.shape)
        forces[0, 0] = np.inf
        with pytest.raises(ValueError, match="forces must be finite"):
            LabeledFrame(frames[0].system, 0.0, forces)

    def test_evaluate_empty_frames_is_descriptive(self, frames):
        tr = Trainer(tiny_allegro(), frames[:4])
        with pytest.raises(ValueError, match="at least one frame"):
            tr.evaluate([])


class TestBatching:
    def test_batch_offsets(self, frames):
        model = tiny_allegro()
        nls = [model.prepare_neighbors(f.system) for f in frames[:3]]
        batch = _Batch(frames[:3], nls)
        n0 = frames[0].system.n_atoms
        assert batch.positions.shape[0] == sum(f.system.n_atoms for f in frames[:3])
        # edges of structure 1 are offset beyond structure 0's atoms
        e1_edges = batch.nl.edge_index[:, nls[0].n_edges : nls[0].n_edges + nls[1].n_edges]
        assert e1_edges.min() >= n0

    def test_batched_loss_matches_sum_of_singles(self, frames):
        """One batch of 2 equals the average of 2 single-frame losses."""
        model = tiny_allegro()
        tr = Trainer(model, frames[:2], config=TrainConfig(batch_size=2, shuffle=False))
        b2 = _Batch(frames[:2], tr._train_nls)
        loss2 = float(tr._batch_loss(b2).data)
        losses1 = []
        for k in range(2):
            b1 = _Batch([frames[k]], [tr._train_nls[k]])
            losses1.append(float(tr._batch_loss(b1).data))
        n_comp = [f.forces.size for f in frames[:2]]
        expected = (losses1[0] * n_comp[0] + losses1[1] * n_comp[1]) / sum(n_comp)
        assert loss2 == pytest.approx(expected, rel=1e-10)
