"""Tests for optimizers, EMA, and the Module parameter system."""

import numpy as np
import pytest

import repro.autodiff as ad
from repro.nn import MLP, Adam, ExponentialMovingAverage, Linear, SGD
from repro.nn.module import Module, ParameterList


@pytest.fixture
def rng():
    return np.random.default_rng(29)


def _quadratic_problem(rng, optimizer_cls, **kw):
    """Minimize |Wx - y|² and return the loss trajectory."""
    W = ad.Tensor(rng.normal(size=(3, 3)), requires_grad=True)
    x = rng.normal(size=(16, 3))
    y = x @ rng.normal(size=(3, 3))
    opt = optimizer_cls([W], **kw)
    losses = []
    for _ in range(150):
        pred = ad.matmul(ad.Tensor(x), W)
        loss = ((pred - ad.Tensor(y)) ** 2).mean()
        losses.append(float(loss.data))
        opt.zero_grad()
        loss.backward()
        opt.step()
    return losses


class TestOptimizers:
    def test_sgd_converges(self, rng):
        losses = _quadratic_problem(rng, SGD, lr=0.1)
        assert losses[-1] < 1e-3 * losses[0]

    def test_sgd_momentum_converges(self, rng):
        losses = _quadratic_problem(rng, SGD, lr=0.05, momentum=0.9)
        assert losses[-1] < 1e-3 * losses[0]

    def test_adam_converges(self, rng):
        losses = _quadratic_problem(rng, Adam, lr=0.05)
        assert losses[-1] < 1e-2 * losses[0]

    def test_adam_skips_gradless_params(self, rng):
        p = ad.Tensor(np.ones(3), requires_grad=True)
        opt = Adam([p], lr=0.1)
        opt.step()  # no grad: must not move or crash
        assert np.allclose(p.data, 1.0)

    def test_adam_set_lr(self, rng):
        p = ad.Tensor(np.ones(3), requires_grad=True)
        opt = Adam([p], lr=0.1)
        opt.set_lr(0.01)
        assert opt.lr == 0.01

    def test_weight_decay_shrinks(self):
        p = ad.Tensor(np.full(3, 10.0), requires_grad=True)
        opt = Adam([p], lr=0.1, weight_decay=0.5)
        for _ in range(50):
            opt.zero_grad()
            (p * 0.0).sum().backward()
            opt.step()
        assert np.abs(p.data).max() < 10.0


def _step_quadratic(opt, W, x, y, n_steps):
    for _ in range(n_steps):
        pred = ad.matmul(ad.Tensor(x), W)
        loss = ((pred - ad.Tensor(y)) ** 2).mean()
        opt.zero_grad()
        loss.backward()
        opt.step()


class TestOptimizerStateRoundTrip:
    """save → mutate → restore → continue must be bitwise (resume property)."""

    @pytest.mark.parametrize(
        "optimizer_cls,kw",
        [(Adam, {"lr": 0.05}), (SGD, {"lr": 0.05, "momentum": 0.9})],
    )
    def test_restore_then_continue_is_bitwise(self, rng, optimizer_cls, kw):
        x = rng.normal(size=(16, 3))
        y = x @ rng.normal(size=(3, 3))
        W0 = rng.normal(size=(3, 3))

        W_ref = ad.Tensor(W0.copy(), requires_grad=True)
        opt_ref = optimizer_cls([W_ref], **kw)
        _step_quadratic(opt_ref, W_ref, x, y, 10)

        W = ad.Tensor(W0.copy(), requires_grad=True)
        opt = optimizer_cls([W], **kw)
        _step_quadratic(opt, W, x, y, 5)
        saved_opt = opt.state_dict()
        saved_W = W.data.copy()
        # trash everything, then restore
        _step_quadratic(opt, W, x, y, 3)
        opt.lr = 123.0
        W.data[...] = saved_W
        opt.load_state_dict(saved_opt)
        _step_quadratic(opt, W, x, y, 5)

        np.testing.assert_array_equal(W.data, W_ref.data)
        if optimizer_cls is Adam:
            assert opt.t == opt_ref.t
            for m_a, m_b in zip(opt._m, opt_ref._m):
                np.testing.assert_array_equal(m_a, m_b)
            for v_a, v_b in zip(opt._v, opt_ref._v):
                np.testing.assert_array_equal(v_a, v_b)

    def test_adam_state_dict_is_a_copy(self, rng):
        p = ad.Tensor(rng.normal(size=3), requires_grad=True)
        opt = Adam([p], lr=0.1)
        state = opt.state_dict()
        state["m"][0][...] = 999.0
        assert np.all(opt._m[0] == 0.0)

    def test_load_rejects_wrong_count(self, rng):
        opt = Adam([ad.Tensor(np.ones(3), requires_grad=True)], lr=0.1)
        state = opt.state_dict()
        state["m"] = []
        with pytest.raises(ValueError, match="state holds 0 arrays"):
            opt.load_state_dict(state)

    def test_load_rejects_wrong_shape(self, rng):
        opt = SGD([ad.Tensor(np.ones(3), requires_grad=True)], momentum=0.5)
        state = opt.state_dict()
        state["vel"] = [np.ones((2, 2))]
        with pytest.raises(ValueError, match="shape mismatch"):
            opt.load_state_dict(state)


class TestEMA:
    def test_tracks_average(self):
        p = ad.Tensor(np.zeros(2), requires_grad=True)
        ema = ExponentialMovingAverage([p], decay=0.5)
        p.data[:] = 1.0
        ema.update()  # shadow = 0.5
        assert np.allclose(ema.shadow[0], 0.5)

    def test_swap_is_involutive(self):
        p = ad.Tensor(np.array([1.0, 2.0]), requires_grad=True)
        ema = ExponentialMovingAverage([p], decay=0.9)
        p.data[:] = [3.0, 4.0]
        live = p.data.copy()
        with ema.average_weights():
            assert np.allclose(p.data, [1.0, 2.0])
        assert np.allclose(p.data, live)

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            ExponentialMovingAverage([], decay=1.5)

    def test_state_dict_roundtrip_continues_bitwise(self, rng):
        p_ref = ad.Tensor(np.zeros(3), requires_grad=True)
        ema_ref = ExponentialMovingAverage([p_ref], decay=0.9)
        p = ad.Tensor(np.zeros(3), requires_grad=True)
        ema = ExponentialMovingAverage([p], decay=0.9)
        updates = rng.normal(size=(10, 3))
        for u in updates[:5]:
            p_ref.data[:] = u
            ema_ref.update()
            p.data[:] = u
            ema.update()
        saved = ema.state_dict()
        ema.shadow[0][...] = -1.0  # trash, then restore
        ema.load_state_dict(saved)
        for u in updates[5:]:
            p_ref.data[:] = u
            ema_ref.update()
            p.data[:] = u
            ema.update()
        np.testing.assert_array_equal(ema.shadow[0], ema_ref.shadow[0])

    def test_state_dict_is_a_copy(self):
        p = ad.Tensor(np.ones(2), requires_grad=True)
        ema = ExponentialMovingAverage([p])
        state = ema.state_dict()
        state["shadow"][0][...] = 99.0
        assert np.all(ema.shadow[0] == 1.0)


class TestModule:
    def test_nested_discovery(self, rng):
        class Net(Module):
            def __init__(self):
                self.a = Linear(2, 3, rng=rng)
                self.blocks = ParameterList([Linear(3, 3, rng=rng) for _ in range(2)])
                self.extra = ad.Tensor(np.ones(4), requires_grad=True)
                self.frozen = ad.Tensor(np.ones(4))  # not a parameter
                self.children = {"head": Linear(3, 1, rng=rng)}

        net = Net()
        names = dict(net.named_parameters())
        assert "a.weight" in names
        assert "blocks.0.weight" in names and "blocks.1.weight" in names
        assert "extra" in names
        assert "children.head.weight" in names
        assert len(names) == 5

    def test_state_dict_roundtrip(self, rng):
        m1 = MLP([3, 4, 2], rng=np.random.default_rng(1))
        m2 = MLP([3, 4, 2], rng=np.random.default_rng(2))
        x = rng.normal(size=(2, 3))
        assert not np.allclose(m1(x).data, m2(x).data)
        m2.load_state_dict(m1.state_dict())
        assert np.allclose(m1(x).data, m2(x).data)

    def test_state_dict_validates(self, rng):
        m = MLP([3, 4, 2], rng=rng)
        with pytest.raises(KeyError):
            m.load_state_dict({"nope": np.ones(3)})
        sd = m.state_dict()
        key = next(iter(sd))
        sd[key] = np.ones((1, 1))
        with pytest.raises(ValueError):
            m.load_state_dict(sd)

    def test_zero_grad(self, rng):
        m = MLP([3, 4, 1], rng=rng)
        m(rng.normal(size=(2, 3))).sum().backward()
        assert any(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())

    def test_num_parameters(self, rng):
        m = MLP([3, 4, 2], rng=rng)
        assert m.num_parameters() == sum(p.size for p in m.parameters())
