"""Tests for optimizers, EMA, and the Module parameter system."""

import numpy as np
import pytest

import repro.autodiff as ad
from repro.nn import MLP, Adam, ExponentialMovingAverage, Linear, SGD
from repro.nn.module import Module, ParameterList


@pytest.fixture
def rng():
    return np.random.default_rng(29)


def _quadratic_problem(rng, optimizer_cls, **kw):
    """Minimize |Wx - y|² and return the loss trajectory."""
    W = ad.Tensor(rng.normal(size=(3, 3)), requires_grad=True)
    x = rng.normal(size=(16, 3))
    y = x @ rng.normal(size=(3, 3))
    opt = optimizer_cls([W], **kw)
    losses = []
    for _ in range(150):
        pred = ad.matmul(ad.Tensor(x), W)
        loss = ((pred - ad.Tensor(y)) ** 2).mean()
        losses.append(float(loss.data))
        opt.zero_grad()
        loss.backward()
        opt.step()
    return losses


class TestOptimizers:
    def test_sgd_converges(self, rng):
        losses = _quadratic_problem(rng, SGD, lr=0.1)
        assert losses[-1] < 1e-3 * losses[0]

    def test_sgd_momentum_converges(self, rng):
        losses = _quadratic_problem(rng, SGD, lr=0.05, momentum=0.9)
        assert losses[-1] < 1e-3 * losses[0]

    def test_adam_converges(self, rng):
        losses = _quadratic_problem(rng, Adam, lr=0.05)
        assert losses[-1] < 1e-2 * losses[0]

    def test_adam_skips_gradless_params(self, rng):
        p = ad.Tensor(np.ones(3), requires_grad=True)
        opt = Adam([p], lr=0.1)
        opt.step()  # no grad: must not move or crash
        assert np.allclose(p.data, 1.0)

    def test_adam_set_lr(self, rng):
        p = ad.Tensor(np.ones(3), requires_grad=True)
        opt = Adam([p], lr=0.1)
        opt.set_lr(0.01)
        assert opt.lr == 0.01

    def test_weight_decay_shrinks(self):
        p = ad.Tensor(np.full(3, 10.0), requires_grad=True)
        opt = Adam([p], lr=0.1, weight_decay=0.5)
        for _ in range(50):
            opt.zero_grad()
            (p * 0.0).sum().backward()
            opt.step()
        assert np.abs(p.data).max() < 10.0


class TestEMA:
    def test_tracks_average(self):
        p = ad.Tensor(np.zeros(2), requires_grad=True)
        ema = ExponentialMovingAverage([p], decay=0.5)
        p.data[:] = 1.0
        ema.update()  # shadow = 0.5
        assert np.allclose(ema.shadow[0], 0.5)

    def test_swap_is_involutive(self):
        p = ad.Tensor(np.array([1.0, 2.0]), requires_grad=True)
        ema = ExponentialMovingAverage([p], decay=0.9)
        p.data[:] = [3.0, 4.0]
        live = p.data.copy()
        with ema.average_weights():
            assert np.allclose(p.data, [1.0, 2.0])
        assert np.allclose(p.data, live)

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            ExponentialMovingAverage([], decay=1.5)


class TestModule:
    def test_nested_discovery(self, rng):
        class Net(Module):
            def __init__(self):
                self.a = Linear(2, 3, rng=rng)
                self.blocks = ParameterList([Linear(3, 3, rng=rng) for _ in range(2)])
                self.extra = ad.Tensor(np.ones(4), requires_grad=True)
                self.frozen = ad.Tensor(np.ones(4))  # not a parameter
                self.children = {"head": Linear(3, 1, rng=rng)}

        net = Net()
        names = dict(net.named_parameters())
        assert "a.weight" in names
        assert "blocks.0.weight" in names and "blocks.1.weight" in names
        assert "extra" in names
        assert "children.head.weight" in names
        assert len(names) == 5

    def test_state_dict_roundtrip(self, rng):
        m1 = MLP([3, 4, 2], rng=np.random.default_rng(1))
        m2 = MLP([3, 4, 2], rng=np.random.default_rng(2))
        x = rng.normal(size=(2, 3))
        assert not np.allclose(m1(x).data, m2(x).data)
        m2.load_state_dict(m1.state_dict())
        assert np.allclose(m1(x).data, m2(x).data)

    def test_state_dict_validates(self, rng):
        m = MLP([3, 4, 2], rng=rng)
        with pytest.raises(KeyError):
            m.load_state_dict({"nope": np.ones(3)})
        sd = m.state_dict()
        key = next(iter(sd))
        sd[key] = np.ones((1, 1))
        with pytest.raises(ValueError):
            m.load_state_dict(sd)

    def test_zero_grad(self, rng):
        m = MLP([3, 4, 1], rng=rng)
        m(rng.normal(size=(2, 3))).sum().backward()
        assert any(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())

    def test_num_parameters(self, rng):
        m = MLP([3, 4, 2], rng=rng)
        assert m.num_parameters() == sum(p.size for p in m.parameters())
