"""Tests for the online hysteresis controllers and their guardrails."""

import numpy as np
import pytest

from repro import obs
from repro.obs import Registry
from repro.tune import (
    AdmissionController,
    BatchWindowController,
    ControllerSet,
    HysteresisController,
    RepadController,
)


class KnobController(HysteresisController):
    """Minimal concrete controller for exercising the base-class loop."""

    def __init__(self, **kwargs):
        kwargs.setdefault("dwell", 2)
        kwargs.setdefault("min_abs_step", 0.1)
        super().__init__("knob", lo=0.0, hi=10.0, **kwargs)
        self.value = 1.0
        self.signals = []
        self.objectives = []

    def read_signal(self):
        return self.signals.pop(0) if self.signals else None

    def current(self):
        return self.value

    def apply_value(self, value):
        self.value = value

    def propose(self, ewma):
        if ewma > 1.0:
            return self.value * 2.0  # wants to grow fast
        if ewma < -1.0:
            return 0.0
        return None

    def objective(self):
        return self.objectives.pop(0) if self.objectives else None


class TestHysteresisGuardrails:
    def test_bounded_step_and_dwell(self):
        c = KnobController(rel_step=0.25, dwell=3)
        c.signals = [5.0] * 20
        moved_ticks = []
        for tick in range(1, 13):
            if c.tick():
                moved_ticks.append(tick)
        # Each move is clamped to 25% of the current value, never the
        # proposed doubling, and moves are at least `dwell` ticks apart.
        assert all(b - a >= 3 for a, b in zip(moved_ticks, moved_ticks[1:]))
        assert c.value == pytest.approx(1.25 ** len(moved_ticks))

    def test_clamped_to_range(self):
        c = KnobController(rel_step=5.0, dwell=1)
        c.value = 8.0
        c.signals = [5.0] * 10
        for _ in range(10):
            c.tick()
        assert c.value <= c.hi

    def test_rollback_on_regression(self):
        c = KnobController(rel_step=0.25, dwell=1, regression_tol=0.10)
        c.signals = [5.0, 5.0]
        c.objectives = [1.0]  # baseline captured right after the move
        assert c.tick() is True
        assert c.value == pytest.approx(1.25)
        # Next tick: objective regressed > 10% above baseline -> revert.
        c.objectives = [1.5]
        assert c.tick() is True
        assert c.value == pytest.approx(1.0)
        assert c.stats()["rollbacks"] == 1
        assert c.stats()["frozen"] is True

    def test_recovery_notification_freezes(self):
        c = KnobController(dwell=2)
        c.signals = [5.0] * 10
        c.notify_recovery()  # watchdog wins: no adaptation for 2*dwell ticks
        assert not any([c.tick() for _ in range(3)])
        c.signals = [5.0] * 10
        assert any([c.tick() for _ in range(4)])

    def test_adaptations_visible_in_registry_and_trace(self):
        registry = Registry()
        c = KnobController(dwell=1).bind(registry)
        tracer = obs.get_tracer()
        tracer.clear()
        obs.enable()
        try:
            c.signals = [5.0, 5.0]
            c.tick(), c.tick()
        finally:
            obs.disable()
        snap = registry.snapshot()
        assert snap["counters"]["tune.adaptations{controller=knob}"] >= 1
        assert snap["gauges"]["tune.value{controller=knob}"] == c.value
        assert "tune.adapt" in tracer.phase_totals()
        tracer.clear()

    def test_stats_shape(self):
        stats = KnobController().stats()
        assert set(stats) >= {
            "name",
            "value",
            "ewma",
            "ticks",
            "adaptations",
            "rollbacks",
            "frozen",
        }

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            KnobController(dwell=0)
        with pytest.raises(ValueError):
            KnobController(alpha=0.0)
        with pytest.raises(ValueError):
            HysteresisController("bad", lo=2.0, hi=1.0)


class FakeBatcher:
    def __init__(self):
        self.max_batch = 8
        self.max_wait = 2e-3
        self.n_batches = 0
        self.n_coalesced = 0


class FakeServer:
    def __init__(self):
        self._batcher = FakeBatcher()
        self.max_queue = 64
        self.metrics = Registry()


class TestBatchWindowController:
    def test_shrinks_on_empty_batches(self):
        server = FakeServer()
        c = BatchWindowController(server, dwell=1).bind(server.metrics)
        for _ in range(6):
            server._batcher.n_batches += 4
            server._batcher.n_coalesced += 4  # occupancy 1.0 < low_occ
            c.tick()
        assert server._batcher.max_wait < 2e-3

    def test_grows_on_full_batches(self):
        server = FakeServer()
        c = BatchWindowController(server, dwell=1).bind(server.metrics)
        for _ in range(6):
            server._batcher.n_batches += 4
            server._batcher.n_coalesced += 4 * 8  # occupancy = max_batch
            c.tick()
        assert server._batcher.max_wait > 2e-3

    def test_holds_in_the_healthy_band(self):
        server = FakeServer()
        c = BatchWindowController(server, dwell=1).bind(server.metrics)
        for _ in range(6):
            server._batcher.n_batches += 4
            server._batcher.n_coalesced += 4 * 4  # mid occupancy
            assert c.tick() is False
        assert server._batcher.max_wait == 2e-3


class TestAdmissionController:
    def test_grows_under_shedding_with_healthy_waits(self):
        server = FakeServer()
        shed = server.metrics.counter("requests_shed")
        c = AdmissionController(server, dwell=1).bind(server.metrics)
        for _ in range(4):
            shed.inc(5)
            c.tick()
        assert server.max_queue > 64
        assert isinstance(server.max_queue, int)

    def test_shrinks_when_waits_blow_the_budget(self):
        server = FakeServer()
        wait = server.metrics.histogram("queue_wait_s")
        for _ in range(50):
            wait.observe(1.0)  # p99 far above the 0.25 s budget
        c = AdmissionController(server, dwell=1).bind(server.metrics)
        for _ in range(4):
            c.tick()
        assert server.max_queue < 64


class TestRepadController:
    def _engine(self, padding=0.05):
        from repro.md import Cell, System
        from repro.models import LennardJones

        rng = np.random.default_rng(0)
        system = System(
            rng.uniform(0, 9.0, size=(14, 3)),
            np.zeros(14, dtype=int),
            Cell.cubic(9.0),
        )
        potential = LennardJones(epsilon=0.8, sigma=1.1, cutoff=3.0)
        compiled = potential.compile(padding=padding)
        compiled.energy_and_forces(system)  # initial capture
        return compiled, system

    def test_repads_on_capture_spike(self):
        compiled, system = self._engine()
        registry = Registry()
        c = RepadController(compiled, dwell=1, spike=0.2).bind(registry)
        c.tick()  # first tick only establishes the capture baseline
        before = compiled.atom_policy.fraction
        for _ in range(6):
            compiled.invalidate()
            compiled.energy_and_forces(system)  # force a recapture
            c.tick()
        assert compiled.atom_policy.fraction > before
        snap = registry.snapshot()
        assert snap["counters"]["tune.adaptations{controller=repad}"] >= 1

    def test_quiet_engine_is_left_alone(self):
        compiled, system = self._engine()
        c = RepadController(compiled, dwell=1).bind(Registry())
        before = compiled.atom_policy.fraction
        for _ in range(6):
            compiled.energy_and_forces(system)  # pure replays
            c.tick()
        assert compiled.atom_policy.fraction == before

    def test_lifts_exact_fit_engine_onto_ladder(self):
        compiled, system = self._engine(padding=None)  # exact-fit buffers
        c = RepadController(compiled, dwell=1, spike=0.2).bind(Registry())
        c.tick()
        for _ in range(6):
            compiled.invalidate()
            compiled.energy_and_forces(system)
            c.tick()
        assert compiled.atom_policy.fraction >= c.lo


class TestControllerSet:
    def test_tick_counts_moves_and_stats(self):
        a, b = KnobController(dwell=1), KnobController(dwell=1)
        cs = ControllerSet([a, b]).bind(Registry())
        assert len(cs) == 2
        a.signals = [5.0]
        b.signals = [0.0]
        assert cs.tick() == 1
        assert [s["name"] for s in cs.stats()] == ["knob", "knob"]

    def test_notify_recovery_fans_out(self):
        a, b = KnobController(dwell=1), KnobController(dwell=1)
        cs = ControllerSet([a, b])
        cs.notify_recovery()
        a.signals = b.signals = [5.0] * 4
        assert cs.tick() == 0  # both frozen


class TestOffByDefault:
    def test_simulation_and_server_have_no_controllers(self):
        from repro.cli import EXAMPLE_CONFIG, build_simulation
        from repro.models import LennardJones
        from repro.serve import ForceServer

        sim, _, _ = build_simulation(
            {k: v for k, v in EXAMPLE_CONFIG.items() if k != "output"}
        )
        assert sim.controllers is None
        with ForceServer(LennardJones(cutoff=3.0), n_workers=1) as server:
            assert server.controllers is None

    def test_simulation_recovery_reaches_controllers(self):
        from repro.cli import build_simulation

        cfg = {
            "system": {"kind": "water", "n_grid": 2, "seed": 0},
            "potential": {"kind": "lennard_jones", "cutoff": 2.5},
            "md": {"steps": 2, "dt": 0.5, "seed": 0},
        }
        sim, _, _ = build_simulation(cfg)
        c = KnobController(dwell=1)
        sim.controllers = ControllerSet([c]).bind(sim.obs)
        sim._pe = 0.0
        sim._forces = np.zeros((sim.system.n_atoms, 3))
        state = sim.get_state()

        class FailingWatchdog:
            last_error = "synthetic divergence"

            def check(self, pe, forces, step):
                return False

            def reset_history(self):
                pass

            def on_recovered(self):
                pass

        class FakeManager:
            def load_latest(self):
                return 0, state

        sim.watchdog = FailingWatchdog()
        assert sim._check_health(FakeManager()) is False
        assert c.stats()["frozen"] is True
