"""Tests for the extension modules: electrostatics, ensembles, deployment.

These implement the "implications" section of the paper (§VIII): composable
local electrostatics [39], ensemble uncertainty for active learning [42],
and deployment-mode inference (the pair_allegro analogue).
"""

import numpy as np
import pytest

import repro.autodiff as ad
from repro.data import conformation_dataset, label_frames
from repro.md import System, neighbor_list
from repro.models import (
    AllegroConfig,
    AllegroModel,
    CompositePotential,
    EnsemblePotential,
    LennardJones,
    WolfCoulomb,
    max_force_uncertainty,
    train_ensemble,
)
from repro.nn import TrainConfig


@pytest.fixture
def rng():
    return np.random.default_rng(151)


def tiny_allegro(seed=0):
    return AllegroModel(
        AllegroConfig(
            n_species=4,
            n_tensor=2,
            latent_dim=12,
            two_body_hidden=(12,),
            latent_hidden=(12,),
            edge_energy_hidden=(8,),
            r_cut=3.0,
            avg_num_neighbors=8.0,
            seed=seed,
        )
    )


class TestWolfCoulomb:
    def test_opposite_charges_attract(self):
        wolf = WolfCoulomb(np.array([1.0, -1.0]), alpha=0.3, cutoff=6.0)
        s = System(np.array([[0.0, 0, 0], [2.0, 0, 0]]), np.array([0, 1]), None)
        e, f = wolf.energy_and_forces(s)
        assert f[0, 0] > 0 and f[1, 0] < 0  # pulled together

    def test_like_charges_repel(self):
        wolf = WolfCoulomb(np.array([1.0, -1.0]), alpha=0.3, cutoff=6.0)
        s = System(np.array([[0.0, 0, 0], [2.0, 0, 0]]), np.array([0, 0]), None)
        _, f = wolf.energy_and_forces(s)
        assert f[0, 0] < 0 and f[1, 0] > 0

    def test_approaches_bare_coulomb_at_short_range(self):
        """For r ≪ Rc and small α, Wolf ≈ q₁q₂/r + constant shift."""
        from repro.models.zbl import COULOMB_EV_A

        wolf = WolfCoulomb(np.array([1.0, -1.0]), alpha=0.05, cutoff=20.0)
        energies = {}
        for r in (1.0, 2.0):
            s = System(np.array([[0.0, 0, 0], [r, 0, 0]]), np.array([0, 1]), None)
            energies[r], _ = wolf.energy_and_forces(s)
        de = energies[1.0] - energies[2.0]
        bare = -COULOMB_EV_A * (1.0 / 1.0 - 1.0 / 2.0)
        assert de == pytest.approx(bare, rel=0.05)

    def test_energy_continuous_at_cutoff(self):
        wolf = WolfCoulomb(np.array([1.0, -1.0]), alpha=0.3, cutoff=5.0)

        def energy(r):
            s = System(np.array([[0.0, 0, 0], [r, 0, 0]]), np.array([0, 1]), None)
            return wolf.energy_and_forces(s)[0]

        gap = abs(energy(5.0 - 1e-6) - energy(5.0 + 1e-6))
        assert gap < 1e-5

    def test_forces_match_numeric_gradient(self, rng):
        wolf = WolfCoulomb(np.array([0.5, -0.5, 0.3, -0.3]), alpha=0.3, cutoff=5.0)
        s = System(rng.uniform(0, 4, (6, 3)), rng.integers(0, 4, 6), None)
        nl = neighbor_list(s, wolf.cutoff)
        _, F = wolf.energy_and_forces(s, nl)
        eps = 1e-6
        for atom, ax in [(0, 0), (3, 2)]:
            p, m = s.copy(), s.copy()
            p.positions[atom, ax] += eps
            m.positions[atom, ax] -= eps
            ep, _ = wolf.energy_and_forces(p, nl)
            em, _ = wolf.energy_and_forces(m, nl)
            assert -(ep - em) / (2 * eps) == pytest.approx(F[atom, ax], abs=1e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            WolfCoulomb(np.ones((2, 2)))
        with pytest.raises(ValueError):
            WolfCoulomb(np.ones(2), alpha=-1.0)


class TestCompositePotential:
    def test_sum_of_members(self, rng):
        lj = LennardJones(epsilon=0.01, sigma=1.8, cutoff=3.0, n_species=4)
        wolf = WolfCoulomb(np.array([0.3, -0.3, 0.1, -0.1]), alpha=0.3, cutoff=5.0)
        combo = CompositePotential(lj, wolf)
        assert combo.cutoff == 5.0
        s = System(rng.uniform(0, 4, (8, 3)), rng.integers(0, 4, 8), None)
        nl = neighbor_list(s, combo.cutoff)
        e_combo, f_combo = combo.energy_and_forces(s, nl)
        e_lj, f_lj = lj.energy_and_forces(s, nl)
        e_w, f_w = wolf.energy_and_forces(s, nl)
        assert e_combo == pytest.approx(e_lj + e_w, rel=1e-12)
        assert np.allclose(f_combo, f_lj + f_w, atol=1e-10)

    def test_allegro_plus_electrostatics_runs(self, rng):
        model = tiny_allegro()
        wolf = WolfCoulomb(np.array([0.25, 0.05, -0.2, -0.45]), alpha=0.3, cutoff=4.0)
        combo = CompositePotential(model, wolf)
        s = System(rng.uniform(0, 5, (10, 3)), rng.integers(0, 4, 10), None)
        e, f = combo.energy_and_forces(s)
        assert np.isfinite(e) and np.isfinite(f).all()

    def test_needs_members(self):
        with pytest.raises(ValueError):
            CompositePotential()


class TestEnsemble:
    @pytest.fixture(scope="class")
    def trained(self):
        frames = label_frames(conformation_dataset(8, n_heavy=3, seed=7, sigma=0.05))
        ens = train_ensemble(
            tiny_allegro,
            frames,
            n_members=3,
            trainer_config=TrainConfig(lr=5e-3, batch_size=4, seed=1),
            epochs=4,
        )
        return ens, frames

    def test_mean_energy_is_member_average(self, trained):
        ens, frames = trained
        s = frames[0].system
        nl = ens.prepare_neighbors(s)
        e_ens, _ = ens.energy_and_forces(s, nl)
        e_members = [m.energy_and_forces(s, nl)[0] for m in ens.members]
        assert e_ens == pytest.approx(np.mean(e_members), rel=1e-10)

    def test_uncertainty_shapes_and_positivity(self, trained):
        ens, frames = trained
        e, f, std = ens.predict_with_uncertainty(frames[0].system)
        n = frames[0].system.n_atoms
        assert f.shape == (n, 3)
        assert std.shape == (n,)
        assert (std >= 0).all()
        assert std.max() > 0  # differently-initialized members disagree

    def test_uncertainty_grows_out_of_distribution(self, trained):
        """Far-from-training geometries must look *more* uncertain — the
        active-learning signal."""
        ens, frames = trained
        in_dist = max_force_uncertainty(ens, frames[0].system)
        squeezed = frames[0].system.copy()
        squeezed.positions *= 0.75  # compress far outside training
        out_dist = max_force_uncertainty(ens, squeezed)
        assert out_dist > in_dist

    def test_validation(self):
        with pytest.raises(ValueError):
            EnsemblePotential([])
        with pytest.raises(ValueError):
            train_ensemble(tiny_allegro, [], n_members=0)


class TestInferenceMode:
    def test_identical_results_and_restoration(self, rng):
        model = tiny_allegro()
        s = System(rng.uniform(0, 5, (10, 3)), rng.integers(0, 4, 10), None)
        nl = model.prepare_neighbors(s)
        e0, f0 = model.energy_and_forces(s, nl)
        with model.inference_mode():
            e1, f1 = model.energy_and_forces(s, nl)
            assert all(not p.requires_grad for p in model.parameters())
        assert e1 == pytest.approx(e0, abs=1e-12)
        assert np.allclose(f1, f0, atol=1e-12)
        assert all(p.requires_grad for p in model.parameters())
        # TP caches cleared on exit.
        assert all(tp.frozen_weights is None for tp in model.tps)

    def test_training_still_works_after(self, rng):
        model = tiny_allegro()
        s = System(rng.uniform(0, 5, (8, 3)), rng.integers(0, 4, 8), None)
        nl = model.prepare_neighbors(s)
        with model.inference_mode():
            model.energy_and_forces(s, nl)
        pos = ad.Tensor(s.positions, requires_grad=True)
        e = model.total_energy(pos, s.species, nl)
        e.backward()
        assert any(p.grad is not None for p in model.parameters())
