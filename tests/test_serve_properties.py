"""Property tests for the serving primitives the tuner searches over.

The offline serve tuner (``repro.tune``) drives the real
:class:`SizeClasses` ladders and the real :class:`MicroBatcher` through a
simulated pipeline, so its determinism and its modeled bucket counts rest
on algebraic properties of those primitives — pinned here with hypothesis
rather than example tables.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.batching import ForceRequest, MicroBatcher
from repro.serve.plancache import SizeClasses

ladders = st.builds(
    SizeClasses,
    floor=st.integers(min_value=1, max_value=4096),
    growth=st.floats(min_value=1.01, max_value=4.0, allow_nan=False),
)


class TestSizeClassesProperties:
    @given(ladders, st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=200)
    def test_round_up_covers_request(self, ladder, n):
        assert ladder.round_up(n) >= n

    @given(
        ladders,
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=200)
    def test_round_up_monotone(self, ladder, a, b):
        lo, hi = sorted((a, b))
        assert ladder.round_up(lo) <= ladder.round_up(hi)

    @given(ladders, st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=200)
    def test_round_up_idempotent_on_ladder_members(self, ladder, n):
        # round_up maps onto the ladder, and ladder members are fixed
        # points — the property that makes bucket keys stable.
        cls = ladder.round_up(n)
        assert ladder.round_up(cls) == cls

    @given(st.integers(min_value=1, max_value=1000))
    @settings(max_examples=50)
    def test_ladder_classes_strictly_increase(self, floor):
        ladder = SizeClasses(floor, 1.5)
        c = floor
        for _ in range(20):
            nxt = ladder.round_up(c + 1)
            assert nxt > c
            c = nxt


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def _request(k):
    class _Sized:
        n_atoms = 4

    return ForceRequest(system=_Sized(), model="m", future=None)


class TestMicroBatcherWindowProperties:
    @given(
        gap=st.floats(min_value=1e-6, max_value=1e-2, allow_nan=False),
        max_batch=st.integers(min_value=2, max_value=64),
        max_wait=st.floats(min_value=1e-5, max_value=1e-1, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_ewma_window_converges_on_constant_gaps(
        self, gap, max_batch, max_wait
    ):
        """Constant arrival gap g => window -> min(max_wait, g*(max_batch-1)).

        The EWMA (coefficient 0.2) of a constant series converges to that
        constant, so after enough arrivals the adaptive window must sit at
        the documented effective-window formula within a tight tolerance.
        """
        clock = FakeClock()
        batcher = MicroBatcher(
            max_batch=max_batch,
            max_wait=max_wait,
            adaptive=True,
            clock=clock,
        )
        for k in range(200):
            batcher.put(_request(k))
            # Keep the queue drained so batches never clamp arrivals.
            while batcher.get_batch(timeout=0.0) is not None:
                pass
            clock.t += gap
        expected = min(max_wait, gap * (max_batch - 1))
        assert abs(batcher.window() - expected) <= 1e-9 + 0.05 * expected

    @given(
        gaps=st.lists(
            st.floats(min_value=0.0, max_value=1e-2, allow_nan=False),
            min_size=1,
            max_size=50,
        ),
        max_wait=st.floats(min_value=1e-5, max_value=1e-2, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_window_never_exceeds_max_wait(self, gaps, max_wait):
        clock = FakeClock()
        batcher = MicroBatcher(
            max_batch=8, max_wait=max_wait, adaptive=True, clock=clock
        )
        for k, gap in enumerate(gaps):
            clock.t += gap
            batcher.put(_request(k))
            assert 0.0 <= batcher.window() <= max_wait
            while batcher.get_batch(timeout=0.0) is not None:
                pass

    def test_non_adaptive_window_is_max_wait(self):
        batcher = MicroBatcher(max_batch=8, max_wait=3e-3, adaptive=False)
        assert batcher.window() == 3e-3
        single = MicroBatcher(max_batch=1, max_wait=3e-3, adaptive=True)
        assert single.window() == 0.0
