"""Unit tests for gather/scatter/concat/stack/pad — the neighbor-sum primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.autodiff as ad


@pytest.fixture
def rng():
    return np.random.default_rng(13)


class TestGatherScatter:
    def test_gather_forward(self, rng):
        x = rng.normal(size=(5, 3))
        idx = np.array([0, 4, 4, 2])
        assert np.allclose(ad.gather(x, idx).data, x[idx])

    def test_gather_gradcheck(self, rng):
        idx = np.array([0, 2, 2, 1])
        ad.gradcheck(lambda a: ad.gather(a, idx), [rng.normal(size=(3, 4))])

    def test_scatter_add_forward(self, rng):
        src = rng.normal(size=(4, 2))
        idx = np.array([0, 1, 0, 2])
        out = ad.scatter_add(src, idx, 3).data
        expected = np.zeros((3, 2))
        np.add.at(expected, idx, src)
        assert np.allclose(out, expected)

    def test_scatter_add_gradcheck(self, rng):
        idx = np.array([0, 1, 0, 2, 1])
        ad.gradcheck(lambda a: ad.scatter_add(a, idx, 3), [rng.normal(size=(5, 2))])

    def test_scatter_gather_adjoint(self, rng):
        """⟨scatter(x), y⟩ == ⟨x, gather(y)⟩ — the adjoint identity."""
        idx = rng.integers(0, 4, size=10)
        x = rng.normal(size=(10, 3))
        y = rng.normal(size=(4, 3))
        lhs = float((ad.scatter_add(x, idx, 4).data * y).sum())
        rhs = float((x * ad.gather(y, idx).data).sum())
        assert np.isclose(lhs, rhs)

    def test_scatter_rejects_bad_index_shape(self):
        with pytest.raises(ValueError):
            ad.scatter_add(np.ones((3, 2)), np.array([0, 1]), 2)

    def test_index_must_be_integer(self):
        with pytest.raises(TypeError):
            ad.gather(np.ones((3, 2)), np.array([0.5, 1.5]))

    @given(st.integers(1, 8), st.integers(1, 20))
    @settings(max_examples=25, deadline=None)
    def test_scatter_preserves_sum(self, n_bins, n_rows):
        rng = np.random.default_rng(n_bins * 100 + n_rows)
        src = rng.normal(size=(n_rows, 2))
        idx = rng.integers(0, n_bins, size=n_rows)
        out = ad.scatter_add(src, idx, n_bins).data
        assert np.allclose(out.sum(axis=0), src.sum(axis=0))


class TestAssembly:
    def test_concatenate_gradcheck(self, rng):
        ad.gradcheck(
            lambda a, b: ad.concatenate([a, b], axis=-1),
            [rng.normal(size=(3, 2)), rng.normal(size=(3, 4))],
        )
        ad.gradcheck(
            lambda a, b: ad.concatenate([a, b], axis=0),
            [rng.normal(size=(2, 3)), rng.normal(size=(4, 3))],
        )

    def test_stack_gradcheck(self, rng):
        ad.gradcheck(
            lambda a, b: ad.stack([a, b], axis=0),
            [rng.normal(size=(2, 3)), rng.normal(size=(2, 3))],
        )
        ad.gradcheck(
            lambda a, b: ad.stack([a, b], axis=-1),
            [rng.normal(size=(2, 3)), rng.normal(size=(2, 3))],
        )

    def test_pad_rows_forward_and_grad(self, rng):
        x = rng.normal(size=(3, 2))
        out = ad.pad_rows(x, 5, fill=7.0)
        assert out.shape == (5, 2)
        assert np.allclose(out.data[3:], 7.0)
        ad.gradcheck(lambda a: ad.pad_rows(a, 6), [x])

    def test_pad_rows_noop_and_error(self, rng):
        x = ad.Tensor(rng.normal(size=(3, 2)))
        assert ad.pad_rows(x, 3) is x
        with pytest.raises(ValueError):
            ad.pad_rows(x, 2)

    def test_pad_rows_gradient_ignores_padding(self):
        x = ad.Tensor(np.ones((2, 2)), requires_grad=True)
        y = ad.pad_rows(x, 4)
        (y * y).sum().backward()
        assert np.allclose(x.grad.data, 2.0)
