"""Tests for the real spherical harmonics (values, equivariance, gradients)."""

import numpy as np
import pytest
from scipy.special import sph_harm_y

import repro.autodiff as ad
from repro.equivariant.spherical_harmonics import (
    _sh_numpy_single_l,
    sh_normalization_constants,
    spherical_harmonics,
)
from repro.equivariant.wigner import random_rotation, rotation_to_wigner_d


@pytest.fixture
def rng():
    return np.random.default_rng(37)


def _unit(rng, n):
    v = rng.normal(size=(n, 3))
    return v / np.linalg.norm(v, axis=1, keepdims=True)


class TestValues:
    def test_l0_is_one(self, rng):
        u = _unit(rng, 5)
        assert np.allclose(_sh_numpy_single_l(0, u), 1.0)

    def test_l1_is_scaled_coordinates(self, rng):
        u = _unit(rng, 5)
        Y = _sh_numpy_single_l(1, u)
        assert np.allclose(Y, np.sqrt(3) * u[:, [1, 2, 0]])

    @pytest.mark.parametrize("l", range(5))
    def test_component_normalization(self, l, rng):
        """|Y_l(û)|² = 2l+1 everywhere on the sphere."""
        u = _unit(rng, 64)
        Y = _sh_numpy_single_l(l, u)
        assert np.allclose((Y**2).sum(axis=1), 2 * l + 1, atol=1e-10)

    @pytest.mark.parametrize("l", range(1, 5))
    def test_parity(self, l, rng):
        """Y_l(−û) = (−1)^l Y_l(û)."""
        u = _unit(rng, 16)
        assert np.allclose(
            _sh_numpy_single_l(l, -u), (-1) ** l * _sh_numpy_single_l(l, u)
        )

    @pytest.mark.parametrize("l", range(1, 4))
    def test_orthogonality_montecarlo(self, l, rng):
        """⟨Y_lm Y_lm'⟩_sphere = δ_mm' (component normalization)."""
        u = _unit(rng, 200_000)
        Y = _sh_numpy_single_l(l, u)
        G = Y.T @ Y / len(u)
        assert np.allclose(G, np.eye(2 * l + 1), atol=0.05)

    @pytest.mark.parametrize("l", range(1, 4))
    def test_spans_same_space_as_scipy(self, l, rng):
        """Our Y_l components are an orthogonal mix of scipy's sph_harm_y."""
        u = _unit(rng, 8 * (2 * l + 1))
        theta = np.arccos(np.clip(u[:, 2], -1, 1))
        phi = np.arctan2(u[:, 1], u[:, 0])
        # Complex scipy harmonics → real basis.
        cols = []
        for m in range(-l, l + 1):
            Ylm = sph_harm_y(l, abs(m), theta, phi)
            if m < 0:
                cols.append(np.sqrt(2) * (-1) ** m * Ylm.imag)
            elif m == 0:
                cols.append(Ylm.real)
            else:
                cols.append(np.sqrt(2) * (-1) ** m * Ylm.real)
        ref = np.stack(cols, axis=1) * np.sqrt(4 * np.pi)  # component-normalize
        ours = _sh_numpy_single_l(l, u)
        # Solve ours = ref @ M; M must be orthogonal (basis change only).
        M, *_ = np.linalg.lstsq(ref, ours, rcond=None)
        assert np.allclose(ref @ M, ours, atol=1e-8)
        assert np.allclose(M @ M.T, np.eye(2 * l + 1), atol=1e-8)

    def test_normalization_constants_cached(self):
        c1 = sh_normalization_constants(4)
        c2 = sh_normalization_constants(4)
        assert c1 is c2
        assert len(c1) == 3


class TestEquivarianceAndGradients:
    @pytest.mark.parametrize("l", range(1, 5))
    def test_rotation_equivariance(self, l, rng):
        u = _unit(rng, 32)
        R = random_rotation(rng)
        D = rotation_to_wigner_d(l, R)
        assert np.allclose(
            _sh_numpy_single_l(l, u @ R.T), _sh_numpy_single_l(l, u) @ D.T, atol=1e-9
        )

    def test_concatenated_output_shape(self, rng):
        v = rng.normal(size=(7, 3))
        Y = spherical_harmonics(3, v)
        assert Y.shape == (7, 16)

    def test_subset_ls(self, rng):
        v = rng.normal(size=(4, 3))
        Y = spherical_harmonics(2, v, ls=[0, 2])
        assert Y.shape == (4, 6)

    def test_autodiff_and_numpy_paths_agree(self, rng):
        v = rng.normal(size=(6, 3))
        y_np = spherical_harmonics(3, v).data
        vt = ad.Tensor(v, requires_grad=True)
        y_ad = spherical_harmonics(3, vt).data
        assert np.allclose(y_np, y_ad, atol=1e-12)

    def test_gradcheck(self, rng):
        ad.gradcheck(
            lambda v: spherical_harmonics(3, v),
            [rng.normal(size=(3, 3))],
            atol=1e-4,
            rtol=1e-3,
        )

    def test_gradcheck_unnormalized(self, rng):
        u = _unit(rng, 3)
        ad.gradcheck(
            lambda v: spherical_harmonics(2, v, normalize=False),
            [u],
            atol=1e-4,
            rtol=1e-3,
        )

    def test_scale_invariance_when_normalized(self, rng):
        v = rng.normal(size=(5, 3))
        Y1 = spherical_harmonics(2, v).data
        Y2 = spherical_harmonics(2, 3.7 * v).data
        assert np.allclose(Y1, Y2, atol=1e-12)

    def test_batched_leading_dims(self, rng):
        v = rng.normal(size=(2, 5, 3))
        Y = spherical_harmonics(2, v)
        assert Y.shape == (2, 5, 9)
        flat = spherical_harmonics(2, v.reshape(-1, 3)).data
        assert np.allclose(Y.data.reshape(-1, 9), flat)
