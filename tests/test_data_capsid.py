"""Tests for the icosahedral capsid assembly (fig. 1a proxy)."""

import numpy as np
import pytest

from repro.data import capsid_assembly, icosahedron_vertices, shell_points, shell_strain
from repro.data.capsid import icosahedron_faces


class TestIcosahedronGeometry:
    def test_twelve_unit_vertices(self):
        v = icosahedron_vertices()
        assert v.shape == (12, 3)
        assert np.allclose(np.linalg.norm(v, axis=1), 1.0)

    def test_twenty_faces(self):
        assert len(icosahedron_faces()) == 20

    def test_shell_points_on_sphere(self):
        pts = shell_points(10.0, subdivisions=2)
        assert np.allclose(np.linalg.norm(pts, axis=1), 10.0, atol=1e-9)

    def test_subdivision_increases_coverage(self):
        n1 = len(shell_points(10.0, subdivisions=1))
        n3 = len(shell_points(10.0, subdivisions=3))
        assert n3 > 2 * n1

    def test_points_quasi_uniform(self):
        """No two shell sites coincide; nearest-neighbor spread is modest."""
        pts = shell_points(10.0, subdivisions=2)
        d = np.linalg.norm(pts[:, None] - pts[None, :], axis=-1)
        np.fill_diagonal(d, np.inf)
        nn = d.min(axis=0)
        assert nn.min() > 0.5
        assert nn.max() / nn.min() < 3.0


class TestCapsidAssembly:
    @pytest.fixture(scope="class")
    def capsid(self):
        return capsid_assembly(radius=12.0, subdivisions=1, seed=3)

    def test_shell_and_solvent_present(self, capsid):
        assert capsid.n_shell_atoms > 50
        assert capsid.system.n_atoms > 3 * capsid.n_shell_atoms  # mostly water

    def test_water_inside_and_outside(self, capsid):
        """The real capsid contains water — so must the proxy."""
        center = capsid.system.cell.lengths / 2
        wat = np.delete(capsid.system.positions, capsid.shell_indices, axis=0)
        r = np.linalg.norm(wat - center, axis=1)
        assert (r < capsid.radius - 3.0).any(), "no interior water"
        assert (r > capsid.radius + 3.0).any(), "no exterior water"

    def test_shell_sits_at_radius(self, capsid):
        center = capsid.system.cell.lengths / 2
        shell = capsid.system.positions[capsid.shell_indices]
        r = np.linalg.norm(shell - center, axis=1)
        assert abs(np.median(r) - capsid.radius) < 2.5

    def test_no_steric_disasters(self, capsid):
        from scipy.spatial.distance import pdist

        sub = capsid.system.positions[:: max(1, capsid.system.n_atoms // 400)]
        assert pdist(sub).min() > 0.5

    def test_unsolvated_variant(self):
        dry = capsid_assembly(radius=10.0, subdivisions=1, solvate=False)
        assert dry.system.n_atoms == dry.n_shell_atoms

    def test_validation(self):
        with pytest.raises(ValueError):
            capsid_assembly(radius=-1.0)


class TestShellStrain:
    def test_zero_for_uniform_radial_scaling_of_sphere(self):
        cap = capsid_assembly(radius=10.0, subdivisions=1, solvate=False, seed=1)
        base = shell_strain(cap, cap.system.positions)
        # Radial compression moves every radius equally -> strain unchanged
        # only if shell were perfectly spherical; with subunit thickness it
        # still shrinks proportionally.
        center = cap.system.positions.mean(axis=0)
        squeezed = center + 0.9 * (cap.system.positions - center)
        assert shell_strain(cap, squeezed) == pytest.approx(0.9 * base, rel=1e-6)

    def test_rupture_increases_strain(self):
        cap = capsid_assembly(radius=10.0, subdivisions=1, solvate=False, seed=1)
        base = shell_strain(cap, cap.system.positions)
        ruptured = cap.system.positions.copy()
        ruptured[: cap.n_shell_atoms // 4] *= 1.4  # blow out one patch
        assert shell_strain(cap, ruptured) > 2 * base
