"""White-box tests of the Allegro architecture internals."""

import numpy as np
import pytest

import repro.autodiff as ad
from repro.equivariant import Irrep, ScalarOutputTensorProduct
from repro.md import System
from repro.models import AllegroConfig, AllegroModel
from repro.models.allegro import _block_expansion


@pytest.fixture
def rng():
    return np.random.default_rng(163)


def make_model(**kw):
    cfg = dict(
        n_species=2,
        n_tensor=4,
        latent_dim=16,
        two_body_hidden=(16,),
        latent_hidden=(16,),
        edge_energy_hidden=(8,),
        r_cut=3.5,
        avg_num_neighbors=8.0,
    )
    cfg.update(kw)
    return AllegroModel(AllegroConfig(**cfg))


class TestArchitectureShape:
    def test_last_layer_is_scalar_specialized(self):
        model = make_model(n_layers=2)
        assert isinstance(model.tps[-1], ScalarOutputTensorProduct)
        assert list(model.tps[-1].layout_out.irreps) == [Irrep(0, 1)]

    def test_intermediate_layouts_are_pruned(self):
        """Layer-0 output only keeps irreps that can still reach scalars."""
        model = make_model(n_layers=2, lmax=2)
        inter = model.tps[0].layout_out
        # With one TP remaining and env {0e,1o,2e}: reachable = {0e,1o,2e}.
        assert set(inter.irreps) == {Irrep(0, 1), Irrep(1, -1), Irrep(2, 1)}

    def test_layer_count_matches_config(self):
        for n in (1, 2, 3):
            model = make_model(n_layers=n)
            assert len(model.tps) == n
            assert len(model.latent_mlps) == n

    def test_block_expansion_matrix(self):
        M = _block_expansion(2)
        assert M.shape == (3, 9)
        assert np.allclose(M.sum(axis=1), [1, 3, 5])
        # w expanded: block l repeated 2l+1 times.
        w = np.array([1.0, 2.0, 3.0])
        exp = w @ M
        assert np.allclose(exp, [1, 2, 2, 2, 3, 3, 3, 3, 3])

    def test_lmax_one_model_runs(self, rng):
        model = make_model(lmax=1)
        s = System(rng.uniform(0, 5, (8, 3)), rng.integers(0, 2, 8), None)
        e, f = model.energy_and_forces(s)
        assert np.isfinite(e) and np.isfinite(f).all()

    def test_three_layer_model_runs_and_is_equivariant(self, rng):
        from repro.equivariant.wigner import random_rotation

        model = make_model(n_layers=3)
        pos = rng.uniform(0, 5, (8, 3))
        spec = rng.integers(0, 2, 8)
        e0, f0 = model.energy_and_forces(System(pos, spec, None))
        R = random_rotation(rng)
        e1, f1 = model.energy_and_forces(System(pos @ R.T, spec, None))
        assert e1 == pytest.approx(e0, abs=1e-9)
        assert np.allclose(f1, f0 @ R.T, atol=1e-8)


class TestParameters:
    def test_state_dict_roundtrip(self, rng):
        m1 = make_model(seed=1)
        m2 = make_model(seed=2)
        s = System(rng.uniform(0, 5, (8, 3)), rng.integers(0, 2, 8), None)
        e1, _ = m1.energy_and_forces(s)
        e2, _ = m2.energy_and_forces(s)
        assert e1 != e2
        m2.load_state_dict(m1.state_dict())
        e2b, _ = m2.energy_and_forces(s)
        assert e2b == pytest.approx(e1, abs=1e-12)

    def test_path_weights_are_registered_parameters(self):
        model = make_model()
        names = [n for n, _ in model.named_parameters()]
        assert any("tps" in n for n in names)

    def test_every_parameter_gets_gradient(self, rng):
        """Force-matching reaches every weight in the model."""
        model = make_model()
        s = System(rng.uniform(0, 4.5, (10, 3)), rng.integers(0, 2, 10), None)
        nl = model.prepare_neighbors(s)
        pos = ad.Tensor(s.positions, requires_grad=True)
        e = model.total_energy(pos, s.species, nl)
        (gpos,) = ad.grad(e, [pos], create_graph=True)
        loss = (gpos * gpos).sum()
        model.zero_grad()
        loss.backward()
        missing = [
            name for name, p in model.named_parameters() if p.grad is None
        ]
        # μ (per-species energy shifts) are constant offsets: their force
        # contribution is identically zero, so no gradient is expected from
        # a force-only loss (they learn through energy terms / the
        # least-squares init).
        assert missing == ["scale_shift.shifts"], (
            f"parameters without gradient: {missing}"
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AllegroModel(
                AllegroConfig(n_species=2, per_pair_cutoffs=np.ones((3, 3)))
            )


class TestDeterminism:
    def test_same_seed_same_model(self, rng):
        s = System(rng.uniform(0, 5, (8, 3)), rng.integers(0, 2, 8), None)
        e1, _ = make_model(seed=7).energy_and_forces(s)
        e2, _ = make_model(seed=7).energy_and_forces(s)
        assert e1 == e2

    def test_evaluation_is_deterministic(self, rng):
        model = make_model()
        s = System(rng.uniform(0, 5, (8, 3)), rng.integers(0, 2, 8), None)
        nl = model.prepare_neighbors(s)
        e1, f1 = model.energy_and_forces(s, nl)
        e2, f2 = model.energy_and_forces(s, nl)
        assert e1 == e2
        assert np.array_equal(f1, f2)
