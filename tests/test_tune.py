"""Tests for the offline autotuner: space, search, targets, profiles, CLI."""

import json

import numpy as np
import pytest

from repro.cli import (
    EXAMPLE_CONFIG,
    EXAMPLE_SERVE_CONFIG,
    apply_profile_path,
    build_simulation,
    main,
    tune_config,
)
from repro.obs.jsonio import SCHEMA_VERSION
from repro.tune import (
    ENGINE_SPACE,
    MD_SPACE,
    SERVE_SPACE,
    MeasurementProtocol,
    Param,
    ParamSpace,
    TuningProfile,
    apply_profile,
    coordinate_descent,
    run_target,
    tune_engine,
    tune_md,
    tune_serve,
)
from repro.tune.targets import INFEASIBLE_SCORE

TINY_SERVE_CONFIG = {
    "potential": {"kind": "lennard_jones", "epsilon": 0.8, "sigma": 1.1, "cutoff": 3.0},
    "serve": {"engine": "compiled"},
    "workload": {
        "systems": [
            {"kind": "molecule", "n_heavy": 3},
            {"kind": "molecule", "n_heavy": 5},
        ],
        "n_requests": 12,
        "seed": 0,
    },
}


class TestParamSpace:
    def test_defaults_and_validation(self):
        space = ParamSpace(
            [Param("a", (1, 2, 3), 2), Param("b", (0.1, 0.2), 0.1)]
        )
        assert space.defaults() == {"a": 2, "b": 0.1}
        space.validate({"a": 3, "b": 0.2})
        with pytest.raises(ValueError):
            space.validate({"a": 4, "b": 0.1})
        with pytest.raises(ValueError):
            space.validate({"a": 1})

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            Param("x", (), 1)
        with pytest.raises(ValueError):
            Param("x", (1, 1), 1)
        with pytest.raises(ValueError):
            Param("x", (1, 2), 3)

    def test_declared_spaces_are_valid(self):
        for space in (MD_SPACE, SERVE_SPACE, ENGINE_SPACE):
            space.validate(space.defaults())


class TestCoordinateDescent:
    SPACE = ParamSpace(
        [Param("x", (0, 1, 2, 3), 0), Param("y", (0, 1, 2, 3), 0)]
    )

    def test_finds_separable_minimum(self):
        calls = []

        def evaluate(p):
            calls.append(dict(p))
            return (p["x"] - 2) ** 2 + (p["y"] - 3) ** 2, {}

        result = coordinate_descent(self.SPACE, evaluate)
        assert result.best == {"x": 2, "y": 3}
        assert result.best_score == 0
        # Cached: each configuration is evaluated exactly once.
        keys = [tuple(sorted(c.items())) for c in calls]
        assert len(keys) == len(set(keys))
        assert result.n_evaluations == len(calls)

    def test_ties_keep_current_value(self):
        # Objective indifferent to y: y must stay at its default.
        result = coordinate_descent(
            self.SPACE, lambda p: ((p["x"] - 1) ** 2, {})
        )
        assert result.best == {"x": 1, "y": 0}

    def test_deterministic_trial_table(self):
        def evaluate(p):
            return abs(p["x"] - 3) + 0.5 * abs(p["y"] - 1), {"m": p["x"]}

        r1 = coordinate_descent(self.SPACE, lambda p: (evaluate(p)[0], {}))
        r2 = coordinate_descent(self.SPACE, lambda p: (evaluate(p)[0], {}))
        assert [t.params for t in r1.trials] == [t.params for t in r2.trials]
        assert [t.score for t in r1.trials] == [t.score for t in r2.trials]

    def test_start_point_respected(self):
        result = coordinate_descent(
            self.SPACE, lambda p: (0.0, {}), start={"x": 3, "y": 2}
        )
        assert result.best == {"x": 3, "y": 2}  # flat objective: no move


class TestMeasurementProtocol:
    def test_median_of_scores_and_metrics(self):
        series = iter([5.0, 1.0, 3.0])

        def objective(params):
            s = next(series)
            return s, {"wall_rate": s * 10, "fixed": 7, "flag": True}

        protocol = MeasurementProtocol(objective, warmup=0, repeats=3)
        score, metrics = protocol({})
        assert score == 3.0
        assert metrics["wall_rate"] == 30.0
        assert metrics["fixed"] == 7
        assert metrics["flag"] is True  # bools are not averaged

    def test_warmup_discarded(self):
        seen = []

        def objective(params):
            seen.append(1)
            return float(len(seen)), {}

        protocol = MeasurementProtocol(objective, warmup=2, repeats=1)
        score, _ = protocol({})
        assert score == 3.0  # two warmups ran first
        with pytest.raises(ValueError):
            MeasurementProtocol(objective, repeats=0)


class TestTargets:
    def test_serve_report_shape(self):
        rep = tune_serve(TINY_SERVE_CONFIG, seed=0, max_sweeps=1)
        assert rep["target"] == "serve"
        SERVE_SPACE.validate(rep["best"])
        assert rep["n_evaluations"] == len(rep["trials"])
        assert rep["workload"]["n_requests"] == 12
        scores = [t["score"] for t in rep["trials"]]
        assert scores == sorted(scores)
        assert rep["score"] == scores[0]

    def test_serve_profile_byte_identical_across_runs(self):
        def one():
            rep = tune_serve(TINY_SERVE_CONFIG, seed=0, max_sweeps=2)
            return TuningProfile.from_reports(
                [rep], provenance={"seed": 0}
            ).to_json()

        assert one() == one()

    def test_engine_frontier(self):
        cfg = {
            "system": {"kind": "water", "n_grid": 2, "seed": 0},
            "potential": {
                "kind": "lennard_jones",
                "epsilon": 0.8,
                "sigma": 1.1,
                # cutoff + default skin must stay under L/2 of the small box
                "cutoff": 2.5,
            },
            "md": {"steps": 20, "dt": 0.5, "seed": 0},
        }
        rep = tune_engine(cfg, seed=0, steps=20)
        # The tried table is the padding-vs-recapture frontier: every
        # candidate padding appears, with recapture rate non-increasing
        # and waste non-decreasing as padding grows.
        by_pad = {t["params"]["padding"]: t["metrics"] for t in rep["trials"]}
        pads = sorted(by_pad)
        assert pads == sorted(ENGINE_SPACE.param("padding").values)
        rates = [by_pad[p]["recapture_rate"] for p in pads]
        wastes = [by_pad[p]["padded_waste"] for p in pads]
        assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:]))
        assert all(a <= b + 1e-12 for a, b in zip(wastes, wastes[1:]))

    def test_md_target_with_uncompilable_potential_runs_eager(self):
        # The quickstart EXAMPLE_CONFIG uses the reference potential, which
        # cannot be compiled; tune_md must fall back to the eager engine
        # (padding inert -> its candidates tie -> default kept) instead of
        # crashing on every trial.
        cfg = {
            # n_grid 3: the reference potential's 4.0 cutoff needs the
            # larger box to keep cutoff + skin under the L/2 bound for at
            # least the narrower skin candidates.
            "system": {"kind": "water", "n_grid": 3, "seed": 0},
            "potential": {"kind": "reference"},
            "md": {"steps": 2, "dt": 0.5, "seed": 0},
        }
        rep = tune_md(cfg, seed=0, steps=2, max_sweeps=1)
        MD_SPACE.validate(rep["best"])
        assert rep["best"]["padding"] == MD_SPACE.param("padding").default
        assert rep["score"] < INFEASIBLE_SCORE

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown tuning target"):
            run_target("gpu", None)


class TestProfile:
    def _profile(self):
        rep = tune_serve(TINY_SERVE_CONFIG, seed=0, max_sweeps=1)
        return TuningProfile.from_reports(
            [rep], provenance={"seed": 0, "objective": "modeled"}
        )

    def test_roundtrip(self, tmp_path):
        profile = self._profile()
        path = tmp_path / "profile.json"
        profile.save(path)
        loaded = TuningProfile.load(path)
        assert loaded.best("serve") == profile.best("serve")
        assert loaded.to_json() == profile.to_json()

    def test_wall_metrics_stripped(self):
        profile = TuningProfile.from_reports(
            [
                {
                    "target": "md",
                    "best": {"skin": 0.4},
                    "score": 1.0,
                    "metrics": {"modeled_s_per_step": 1.0, "wall_steps_per_s": 9.9},
                    "trials": [
                        {
                            "params": {"skin": 0.4},
                            "score": 1.0,
                            "metrics": {"wall_steps_per_s": 9.9, "ok": 1},
                        }
                    ],
                }
            ]
        )
        payload = profile.to_payload()
        report = payload["targets"]["md"]
        assert "wall_steps_per_s" not in report["metrics"]
        assert "wall_steps_per_s" not in report["trials"][0]["metrics"]
        assert report["trials"][0]["metrics"]["ok"] == 1

    def test_rejects_wrong_kind_and_version(self, tmp_path):
        with pytest.raises(ValueError, match="not a tuning profile"):
            TuningProfile.from_payload({"kind": "trace", "schema_version": 1})
        with pytest.raises(ValueError, match="schema_version"):
            TuningProfile.from_payload(
                {"kind": "tuning_profile", "schema_version": SCHEMA_VERSION + 1}
            )

    def test_apply_profile_writes_config_keys(self):
        profile = self._profile()
        cfg = apply_profile({"serve": {"engine": "compiled"}}, profile)
        best = profile.best("serve")
        for key in ("max_batch", "batch_wait", "n_workers"):
            assert cfg["serve"][key] == best[key]
        assert cfg["serve"]["engine"] == "compiled"  # untouched keys survive
        assert "serve.max_batch" in cfg["_tuning"]["applied"]

    def test_apply_profile_md_and_parallel(self):
        profile = TuningProfile(
            {
                "md": {"best": {"skin": 0.7, "neighbor_every": 2, "padding": 0.1}},
                "parallel": {"best": {"grid": [2, 2, 1]}},
            }
        )
        cfg = apply_profile({}, profile)
        assert cfg["md"] == {"skin": 0.7, "neighbor_every": 2, "padding": 0.1}
        assert cfg["parallel"]["grid"] == [2, 2, 1]

    def test_apply_profile_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown profile targets"):
            apply_profile({}, self._profile(), targets=["serve", "gpu"])

    def test_apply_order_md_overrides_engine_padding(self):
        profile = TuningProfile(
            {
                "engine": {"best": {"padding": 0.3}},
                "md": {"best": {"skin": 0.2, "padding": 0.05}},
            }
        )
        cfg = apply_profile({}, profile)
        assert cfg["md"]["padding"] == 0.05


class TestCLI:
    def test_tune_serve_cli_byte_identical(self, tmp_path, capsys):
        cfg_path = tmp_path / "serve.json"
        cfg_path.write_text(json.dumps(TINY_SERVE_CONFIG))
        out1, out2 = tmp_path / "p1.json", tmp_path / "p2.json"
        for out in (out1, out2):
            rc = main(
                [
                    "tune",
                    "--target",
                    "serve",
                    str(cfg_path),
                    "--out",
                    str(out),
                    "--quiet",
                ]
            )
            assert rc == 0
        assert out1.read_bytes() == out2.read_bytes()
        payload = json.loads(out1.read_text())
        assert payload["kind"] == "tuning_profile"
        assert payload["provenance"]["targets"] == ["serve"]

    def test_tune_config_defaults_to_example(self, tmp_path):
        profile = tune_config(
            None, "engine", out=tmp_path / "p.json", steps=10, quiet=True
        )
        assert (tmp_path / "p.json").exists()
        assert "padding" in profile.best("engine")

    def test_run_with_profile_flag(self, tmp_path, capsys):
        profile = TuningProfile(
            {"md": {"best": {"skin": 0.2, "neighbor_every": 2, "padding": 0.1}}}
        )
        ppath = tmp_path / "profile.json"
        profile.save(ppath)
        cfg = json.loads(json.dumps(EXAMPLE_CONFIG))
        cfg["md"]["steps"] = 2
        cfg_path = tmp_path / "run.json"
        cfg_path.write_text(json.dumps(cfg))
        rc = main(
            ["run", str(cfg_path), "--profile", str(ppath), "--quiet"]
        )
        assert rc == 0

    def test_apply_profile_path_none_is_identity(self):
        cfg = {"md": {"skin": 0.3}}
        assert apply_profile_path(cfg, None) is cfg

    def test_skin_validated_at_parse(self):
        cfg = json.loads(json.dumps(EXAMPLE_CONFIG))
        cfg["md"]["skin"] = -0.1
        with pytest.raises(ValueError, match="md.skin must be >= 0"):
            build_simulation(cfg)
        cfg["md"]["skin"] = 0.4
        cfg["md"]["neighbor_every"] = 0
        with pytest.raises(ValueError, match="neighbor_every"):
            build_simulation(cfg)

    def test_example_configs_carry_tuning_knobs(self):
        assert EXAMPLE_CONFIG["md"]["skin"] >= 0
        assert isinstance(EXAMPLE_SERVE_CONFIG["serve"]["adaptive"], bool)


class TestSimulationKnobs:
    def test_neighbor_every_preserves_trajectory(self):
        # Cadence skips displacement *checks*; with a generous skin the
        # trajectory stays bitwise identical to per-step checking.
        def run(neighbor_every):
            cfg = json.loads(json.dumps(EXAMPLE_CONFIG))
            cfg["md"]["steps"] = 10
            cfg["md"]["skin"] = 0.6
            cfg["md"]["neighbor_every"] = neighbor_every
            sim, _, _ = build_simulation(cfg)
            sim.run(10)
            return sim.system.positions.copy()

        np.testing.assert_array_equal(run(1), run(4))
