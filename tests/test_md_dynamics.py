"""Integration tests of the MD engine: NVE conservation, thermostats, I/O."""

import numpy as np
import pytest

from repro.md import (
    BerendsenThermostat,
    Cell,
    LangevinThermostat,
    Simulation,
    System,
    TrajectoryRecorder,
    energy_drift_per_atom,
    read_xyz,
    write_xyz_frame,
)
from repro.models import LennardJones


@pytest.fixture
def rng():
    return np.random.default_rng(71)


def _lj_crystal(rng, n_side=4, a=1.7, jitter=0.02):
    g = (
        np.stack(np.meshgrid(*[np.arange(n_side)] * 3, indexing="ij"), -1).reshape(-1, 3)
        * a
    )
    s = System(
        g + rng.normal(scale=jitter, size=g.shape),
        np.zeros(len(g), int),
        Cell.cubic(n_side * a),
    )
    return s, LennardJones(epsilon=0.05, sigma=1.5, cutoff=3.0)


class TestNVE:
    def test_energy_conservation(self, rng):
        s, lj = _lj_crystal(rng)
        s.seed_velocities(30.0, rng)
        sim = Simulation(s, lj, dt=0.2)
        res = sim.run(300)
        assert energy_drift_per_atom(res.total_energies, s.n_atoms) < 1e-5
        assert res.total_energies.std() < 1e-3

    def test_drift_scales_quadratically_with_dt(self, rng):
        drifts = []
        for dt in (0.4, 0.1):
            s, lj = _lj_crystal(np.random.default_rng(5))
            s.seed_velocities(30.0, np.random.default_rng(6))
            res = Simulation(s, lj, dt=dt).run(int(40 / dt))
            drifts.append(energy_drift_per_atom(res.total_energies, s.n_atoms))
        # dt reduced 4×: symplectic integrator gives ≥ ~10× smaller drift.
        assert drifts[1] < drifts[0] / 8

    def test_momentum_conserved(self, rng):
        s, lj = _lj_crystal(rng)
        s.seed_velocities(50.0, rng)
        p0 = (s.masses[:, None] * s.velocities).sum(axis=0)
        Simulation(s, lj, dt=0.2).run(100)
        p1 = (s.masses[:, None] * s.velocities).sum(axis=0)
        assert np.allclose(p0, p1, atol=1e-10)

    def test_result_metadata(self, rng):
        s, lj = _lj_crystal(rng)
        res = Simulation(s, lj, dt=0.2).run(20, record_every=5)
        assert res.n_steps == 20
        assert len(res.times) == 4
        assert res.timesteps_per_second > 0
        assert (res.pair_counts > 0).all()


class TestThermostats:
    def test_langevin_reaches_target(self, rng):
        s, lj = _lj_crystal(rng)
        s.seed_velocities(100.0, rng)
        thermo = LangevinThermostat(300.0, friction=0.05, seed=3)
        sim = Simulation(s, lj, dt=0.5, thermostat=thermo)
        res = sim.run(600)
        assert abs(res.temperatures[-200:].mean() - 300.0) < 60.0

    def test_berendsen_rescales_toward_target(self, rng):
        s, lj = _lj_crystal(rng)
        s.seed_velocities(600.0, rng)
        thermo = BerendsenThermostat(300.0, tau=20.0)
        sim = Simulation(s, lj, dt=0.5, thermostat=thermo)
        res = sim.run(300)
        assert abs(res.temperatures[-50:].mean() - 300.0) < 80.0

    def test_langevin_validation(self):
        with pytest.raises(ValueError):
            LangevinThermostat(-1.0)
        with pytest.raises(ValueError):
            LangevinThermostat(300.0, friction=0.0)
        with pytest.raises(ValueError):
            BerendsenThermostat(300.0, tau=-1.0)

    def test_langevin_deterministic_with_seed(self, rng):
        temps = []
        for _ in range(2):
            s, lj = _lj_crystal(np.random.default_rng(9))
            s.seed_velocities(200.0, np.random.default_rng(10))
            sim = Simulation(
                s, lj, dt=0.5, thermostat=LangevinThermostat(300.0, seed=4)
            )
            temps.append(sim.run(50).temperatures)
        assert np.allclose(temps[0], temps[1])


class TestCallbacksAndRecording:
    def test_callback_invoked(self, rng):
        s, lj = _lj_crystal(rng)
        seen = []
        sim = Simulation(s, lj, dt=0.2)
        sim.add_callback(lambda step, _sim: seen.append(step))
        sim.run(5)
        assert seen == [1, 2, 3, 4, 5]

    def test_trajectory_roundtrip(self, rng, tmp_path):
        s, lj = _lj_crystal(rng)
        s.species_names = ["C"]
        path = tmp_path / "traj.xyz"
        rec = TrajectoryRecorder(path=str(path), every=2)
        sim = Simulation(s, lj, dt=0.2, recorder=rec)
        sim.run(6)
        rec.close()
        frames = read_xyz(path, ["C"])
        assert len(frames) == 3
        assert frames[0].n_atoms == s.n_atoms
        assert np.allclose(frames[0].cell.lengths, s.cell.lengths)

    def test_in_memory_recording(self, rng):
        s, lj = _lj_crystal(rng)
        rec = TrajectoryRecorder(every=1)
        Simulation(s, lj, dt=0.2, recorder=rec).run(4)
        assert len(rec.frames) == 4
        assert rec.frames[0].shape == (s.n_atoms, 3)

    def test_write_xyz_format(self, rng, tmp_path):
        s = System(
            np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]]),
            np.array([0, 1]),
            Cell.cubic(5.0),
            species_names=("H", "O"),
        )
        path = tmp_path / "one.xyz"
        with open(path, "w") as fh:
            write_xyz_frame(fh, s, {"step": 7})
        lines = path.read_text().splitlines()
        assert lines[0] == "2"
        assert "step=7" in lines[1] and "Lattice=" in lines[1]
        assert lines[2].startswith("H ")
        assert lines[3].startswith("O ")
