"""Tests for Wigner 3j symbols and Wigner D-matrix extraction."""

import numpy as np
import pytest

from repro.equivariant.wigner import (
    random_rotation,
    rotation_to_wigner_d,
    su2_clebsch_gordan,
    wigner_3j,
)


@pytest.fixture
def rng():
    return np.random.default_rng(31)


class TestClebschGordan:
    def test_cg_000(self):
        assert np.allclose(su2_clebsch_gordan(0, 0, 0), np.ones((1, 1, 1)))

    def test_cg_normalization(self):
        """Σ_{m1,m2} |⟨j1m1j2m2|j3m3⟩|² = 1 for each m3."""
        for j1, j2, j3 in [(1, 1, 1), (1, 1, 2), (2, 1, 2), (2, 2, 3)]:
            C = su2_clebsch_gordan(j1, j2, j3)
            sums = (C**2).sum(axis=(0, 1))
            assert np.allclose(sums, 1.0), (j1, j2, j3, sums)

    def test_cg_selection_rule_m(self):
        C = su2_clebsch_gordan(1, 1, 2)
        for m1 in range(3):
            for m2 in range(3):
                for m3 in range(5):
                    if (m1 - 1) + (m2 - 1) != m3 - 2:
                        assert C[m1, m2, m3] == 0.0


class TestWigner3j:
    def test_000(self):
        assert np.allclose(wigner_3j(0, 0, 0), np.ones((1, 1, 1)))

    def test_110_is_scaled_identity(self):
        w = wigner_3j(1, 1, 0)[:, :, 0]
        assert np.allclose(w, np.eye(3) / np.sqrt(3))

    def test_111_is_levi_civita_like(self):
        w = wigner_3j(1, 1, 1)
        # Fully antisymmetric up to the basis convention: w[a,b,c] = -w[b,a,c]
        assert np.allclose(w, -w.transpose(1, 0, 2), atol=1e-12)
        assert np.isclose((w**2).sum(), 1.0)

    def test_unit_normalization(self):
        for l1, l2, l3 in [(1, 1, 2), (2, 2, 2), (2, 1, 3), (3, 2, 1)]:
            assert np.isclose((wigner_3j(l1, l2, l3) ** 2).sum(), 1.0)

    def test_forbidden_triple_is_zero(self):
        assert np.allclose(wigner_3j(0, 1, 3), 0.0)
        assert np.allclose(wigner_3j(1, 1, 3), 0.0)

    def test_real_valued(self):
        for l1, l2, l3 in [(1, 2, 3), (2, 2, 4), (3, 3, 2)]:
            w = wigner_3j(l1, l2, l3)
            assert w.dtype == np.float64

    def test_scalar_output_diagonal(self):
        """w3j(l, l, 0) is δ_{m1 m2}·c — the last-layer specialization."""
        for l in range(1, 4):
            w = wigner_3j(l, l, 0)[:, :, 0]
            off = w - np.diag(np.diag(w))
            assert np.allclose(off, 0.0)
            assert np.allclose(np.abs(np.diag(w)), 1.0 / np.sqrt(2 * l + 1))

    @pytest.mark.parametrize("triple", [(1, 1, 2), (2, 1, 1), (2, 2, 2), (1, 2, 3)])
    def test_equivariance_under_rotation(self, triple, rng):
        l1, l2, l3 = triple
        w = wigner_3j(l1, l2, l3)
        R = random_rotation(rng)
        D1, D2, D3 = (rotation_to_wigner_d(l, R) for l in triple)
        w_rot = np.einsum("abc,ai,bj,ck->ijk", w, D1, D2, D3)
        assert np.allclose(w, w_rot, atol=1e-8)

    def test_cached_result_is_readonly(self):
        w = wigner_3j(1, 1, 2)
        with pytest.raises(ValueError):
            w[0, 0, 0] = 5.0


class TestWignerD:
    def test_identity_rotation(self):
        for l in range(4):
            D = rotation_to_wigner_d(l, np.eye(3))
            assert np.allclose(D, np.eye(2 * l + 1), atol=1e-9)

    def test_orthogonality(self, rng):
        R = random_rotation(rng)
        for l in range(1, 5):
            D = rotation_to_wigner_d(l, R)
            assert np.allclose(D @ D.T, np.eye(2 * l + 1), atol=1e-9)

    def test_homomorphism(self, rng):
        """D(R1 R2) = D(R1) D(R2)."""
        R1, R2 = random_rotation(rng), random_rotation(rng)
        for l in (1, 2, 3):
            D12 = rotation_to_wigner_d(l, R1 @ R2)
            assert np.allclose(
                D12, rotation_to_wigner_d(l, R1) @ rotation_to_wigner_d(l, R2), atol=1e-8
            )

    def test_rejects_improper_rotation(self, rng):
        R = random_rotation(rng)
        with pytest.raises(ValueError):
            rotation_to_wigner_d(1, -R)

    def test_random_rotation_is_proper(self, rng):
        for _ in range(5):
            R = random_rotation(rng)
            assert np.isclose(np.linalg.det(R), 1.0)
            assert np.allclose(R @ R.T, np.eye(3), atol=1e-12)
