"""Tests for the strided layout and the three tensor-product implementations."""

import numpy as np
import pytest
import scipy.linalg as sla

import repro.autodiff as ad
from repro.equivariant import (
    FusedTensorProduct,
    Irrep,
    ScalarOutputTensorProduct,
    StridedLayout,
    UnfusedTensorProduct,
    enumerate_paths,
    reachable_output_irreps,
)
from repro.equivariant.tensor_product import output_layout_for_paths
from repro.equivariant.wigner import random_rotation, rotation_to_wigner_d


@pytest.fixture
def rng():
    return np.random.default_rng(41)


def block_wigner_d(layout: StridedLayout, R: np.ndarray, improper: bool = False):
    """Block-diagonal rep matrix of (R, optional inversion) on a layout."""
    blocks = []
    for ir in layout.irreps:
        D = rotation_to_wigner_d(ir.l, R)
        if improper:
            D = D * ir.p
        blocks.append(D)
    return sla.block_diag(*blocks)


class TestStridedLayout:
    def test_dims(self):
        lay = StridedLayout.full_o3(2, mul=8)
        assert lay.dim == 2 * (2 + 1) ** 2  # paper: ≤ 2(lmax+1)²
        assert lay.mul == 8
        assert len(lay) == 6

    def test_spherical(self):
        lay = StridedLayout.spherical(2, mul=4)
        assert [str(ir) for ir in lay.irreps] == ["0e", "1o", "2e"]
        assert lay.dim == 9

    def test_slices_partition(self):
        lay = StridedLayout.full_o3(2, mul=1)
        sls = lay.slices()
        assert sls[0].start == 0
        assert sls[-1].stop == lay.dim
        covered = sum(s.stop - s.start for s in sls)
        assert covered == lay.dim

    def test_scalar_slice(self):
        lay = StridedLayout.spherical(2, mul=4)
        assert lay.scalar_slice == slice(0, 1)
        assert lay.has_scalars()

    def test_rejects_duplicates_and_multiplicity(self):
        with pytest.raises(ValueError):
            StridedLayout("0e + 0e", mul=2)
        with pytest.raises(ValueError):
            StridedLayout("2x0e", mul=2)
        with pytest.raises(ValueError):
            StridedLayout("0e", mul=0)

    def test_restrict_and_extract(self, rng):
        lay = StridedLayout.spherical(2, mul=3)
        sub = lay.restrict([Irrep(0, 1), Irrep(2, 1)])
        assert sub.dim == 6
        arr = rng.normal(size=(5, 3, lay.dim))
        out = lay.extract(arr, sub)
        assert out.shape == (5, 3, 6)
        assert np.allclose(out[..., 0], arr[..., 0])
        assert np.allclose(out[..., 1:], arr[..., 4:9])

    def test_zeros_shape(self):
        lay = StridedLayout.spherical(1, mul=2)
        assert lay.zeros(7).shape == (7, 2, 4)

    def test_index_errors(self):
        lay = StridedLayout.spherical(1, mul=2)
        with pytest.raises(KeyError):
            lay.slice_of(Irrep(3, 1))


class TestPathEnumeration:
    def test_counts(self):
        l1 = StridedLayout.spherical(1, mul=2)
        paths = enumerate_paths(l1, l1)
        # (0e,0e)->0e; (0e,1o)->1o; (1o,0e)->1o; (1o,1o)->0e,1e,2e = 6
        assert len(paths) == 6

    def test_output_restriction(self):
        l1 = StridedLayout.spherical(1, mul=2)
        paths = enumerate_paths(l1, l1, output_irreps={Irrep(0, 1)})
        assert len(paths) == 2
        assert all(p.ir_out == Irrep(0, 1) for p in paths)

    def test_parity_rule(self):
        l1 = StridedLayout.spherical(2, mul=1)
        for p in enumerate_paths(l1, l1):
            assert p.ir_out.p == p.ir1.p * p.ir2.p

    def test_output_layout_sorted(self):
        l1 = StridedLayout.spherical(1, mul=2)
        lay = output_layout_for_paths(enumerate_paths(l1, l1), 2)
        ls = [(ir.l, -ir.p) for ir in lay.irreps]
        assert ls == sorted(ls)

    def test_path_count_grows_with_lmax(self):
        """The unfavorable path scaling the paper's fusion eliminates."""
        counts = []
        for lmax in (1, 2, 3):
            lay = StridedLayout.full_o3(lmax, mul=1)
            sh = StridedLayout.spherical(lmax, mul=1)
            counts.append(len(enumerate_paths(lay, sh)))
        assert counts[0] < counts[1] < counts[2]


class TestReachability:
    ENV2 = [Irrep(0, 1), Irrep(1, -1), Irrep(2, 1)]

    def test_zero_layers_only_scalar(self):
        assert reachable_output_irreps(2, 0, self.ENV2) == {Irrep(0, 1)}

    def test_one_layer(self):
        assert reachable_output_irreps(2, 1, self.ENV2) == {
            Irrep(0, 1),
            Irrep(1, -1),
            Irrep(2, 1),
        }

    def test_two_layers_includes_odd_parities(self):
        out = reachable_output_irreps(2, 2, self.ENV2)
        assert Irrep(1, 1) in out  # 1e reachable via 1o⊗2e→1e then 1e⊗1o→0e? etc.
        assert all(ir.l <= 2 for ir in out)


class TestTensorProducts:
    def _setup(self, rng, mul=3):
        lay1 = StridedLayout.full_o3(2, mul=mul)
        lay2 = StridedLayout.spherical(2, mul=mul)
        tp = FusedTensorProduct(lay1, lay2)
        x = ad.Tensor(rng.normal(size=(6, mul, lay1.dim)))
        y = ad.Tensor(rng.normal(size=(6, mul, lay2.dim)))
        return lay1, lay2, tp, x, y

    def test_fused_equals_unfused(self, rng):
        lay1, lay2, tp, x, y = self._setup(rng)
        utp = UnfusedTensorProduct(lay1, lay2, layout_out=tp.layout_out)
        utp.weights = tp.weights
        assert np.allclose(tp(x, y).data, utp(x, y).data, atol=1e-12)

    def test_frozen_matches_training_path(self, rng):
        _, _, tp, x, y = self._setup(rng)
        assert np.allclose(tp(x, y).data, tp(x, y, frozen=True).data, atol=1e-13)

    def test_equivariance_proper_and_improper(self, rng):
        lay1, lay2, tp, x, y = self._setup(rng)
        out = tp(x, y).data
        R = random_rotation(rng)
        for improper in (False, True):
            D1 = block_wigner_d(lay1, R, improper)
            D2 = block_wigner_d(lay2, R, improper)
            Do = block_wigner_d(tp.layout_out, R, improper)
            out_rot = tp(ad.Tensor(x.data @ D1.T), ad.Tensor(y.data @ D2.T)).data
            assert np.allclose(out_rot, out @ Do.T, atol=1e-9)

    def test_scalar_specialization_matches_fused(self, rng):
        lay1, lay2, _, x, y = self._setup(rng)
        stp = ScalarOutputTensorProduct(lay1, lay2)
        full = FusedTensorProduct(lay1, lay2, output_irreps={Irrep(0, 1)})
        stp.weights = full.weights
        assert np.allclose(stp(x, y).data, full(x, y).data, atol=1e-12)

    def test_scalar_output_is_invariant(self, rng):
        lay1, lay2, _, x, y = self._setup(rng)
        stp = ScalarOutputTensorProduct(lay1, lay2)
        R = random_rotation(rng)
        D1 = block_wigner_d(lay1, R)
        D2 = block_wigner_d(lay2, R)
        o1 = stp(x, y).data
        o2 = stp(ad.Tensor(x.data @ D1.T), ad.Tensor(y.data @ D2.T)).data
        assert np.allclose(o1, o2, atol=1e-9)

    def test_gradcheck_through_tp(self, rng):
        lay1 = StridedLayout.full_o3(1, mul=2)
        lay2 = StridedLayout.spherical(1, mul=2)
        tp = FusedTensorProduct(lay1, lay2)
        ad.gradcheck(
            lambda a, b: tp(a, b),
            [rng.normal(size=(3, 2, lay1.dim)), rng.normal(size=(3, 2, lay2.dim))],
        )

    def test_path_weights_receive_gradients(self, rng):
        _, _, tp, x, y = self._setup(rng)
        out = tp(x, y)
        out.sum().backward()
        assert tp.weights.tensor.grad is not None
        assert tp.weights.tensor.grad.data.shape == (tp.num_paths,)

    def test_mismatched_mul_rejected(self):
        with pytest.raises(ValueError):
            FusedTensorProduct(
                StridedLayout.spherical(1, mul=2), StridedLayout.spherical(1, mul=3)
            )

    def test_fuse_precomputation(self, rng):
        _, _, tp, x, y = self._setup(rng)
        W = tp.fuse()
        manual = ad.einsum("zua,zub,abc->zuc", x, y, ad.Tensor(W)).data
        assert np.allclose(manual, tp(x, y).data, atol=1e-12)

    def test_bilinearity(self, rng):
        """TP(αx, y) = α·TP(x, y) and TP(x1+x2, y) = TP(x1,y) + TP(x2,y)."""
        _, _, tp, x, y = self._setup(rng)
        a = 2.5
        assert np.allclose(tp(x * a, y).data, a * tp(x, y).data, atol=1e-10)
        x2 = ad.Tensor(np.random.default_rng(1).normal(size=x.shape))
        lhs = tp(x + x2, y).data
        rhs = tp(x, y).data + tp(x2, y).data
        assert np.allclose(lhs, rhs, atol=1e-10)
