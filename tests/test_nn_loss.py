"""Tests for loss functions and error metrics."""

import numpy as np
import pytest

import repro.autodiff as ad
from repro.nn import mae, mse_force_loss, rmse, weighted_energy_force_loss


@pytest.fixture
def rng():
    return np.random.default_rng(149)


class TestMetrics:
    def test_mae_rmse_known_values(self):
        pred = np.array([1.0, 2.0, 3.0])
        target = np.array([1.0, 1.0, 5.0])
        assert mae(pred, target) == pytest.approx(1.0)
        assert rmse(pred, target) == pytest.approx(np.sqrt(5.0 / 3.0))

    def test_metrics_accept_tensors(self, rng):
        x = rng.normal(size=(4, 3))
        assert mae(ad.Tensor(x), x) == 0.0
        assert rmse(ad.Tensor(x), x) == 0.0

    def test_rmse_ge_mae(self, rng):
        a, b = rng.normal(size=50), rng.normal(size=50)
        assert rmse(a, b) >= mae(a, b)


class TestLosses:
    def test_mse_force_loss_zero_at_match(self, rng):
        f = rng.normal(size=(5, 3))
        loss = mse_force_loss(ad.Tensor(f), f)
        assert float(loss.data) == 0.0

    def test_scale_divides_out(self, rng):
        pred = ad.Tensor(rng.normal(size=(4, 3)))
        target = rng.normal(size=(4, 3))
        l1 = float(mse_force_loss(pred, target, scale=1.0).data)
        l2 = float(mse_force_loss(pred, target, scale=2.0).data)
        assert l2 == pytest.approx(l1 / 4.0)

    def test_loss_differentiable(self, rng):
        pred = ad.Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        loss = mse_force_loss(pred, rng.normal(size=(4, 3)))
        loss.backward()
        assert pred.grad is not None

    def test_weighted_energy_force_components(self, rng):
        e_pred = ad.Tensor(np.array(10.0))
        f_pred = ad.Tensor(rng.normal(size=(3, 3)))
        f_tgt = f_pred.data.copy()
        # Forces match: only the energy term remains.
        loss = weighted_energy_force_loss(
            e_pred, f_pred, 4.0, f_tgt, n_atoms=3, energy_weight=1.0, force_weight=1.0
        )
        assert float(loss.data) == pytest.approx(((10.0 - 4.0) / 3.0) ** 2)
        # Energy weight 0 kills it.
        loss0 = weighted_energy_force_loss(
            e_pred, f_pred, 4.0, f_tgt, n_atoms=3, energy_weight=0.0
        )
        assert float(loss0.data) == 0.0
