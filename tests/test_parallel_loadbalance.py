"""Tests for the load-balanced process grid (LAMMPS `balance` analogue)."""

import numpy as np
import pytest

from repro.data import capsid_assembly
from repro.md import Cell, System
from repro.models import LennardJones
from repro.parallel import BalancedProcessGrid, ParallelForceEvaluator, ProcessGrid


@pytest.fixture
def rng():
    return np.random.default_rng(223)


def _clustered_system(rng, n=400, L=20.0):
    """Heterogeneous density: a dense blob in one corner + dilute gas."""
    blob = rng.normal(scale=1.5, size=(n // 2, 3)) + 4.0
    gas = rng.uniform(0, L, (n // 2, 3))
    pos = np.concatenate([blob, gas])
    return System(pos, np.zeros(n, int), Cell.cubic(L))


class TestBalancedGrid:
    def test_quantile_cuts_equalize_ownership(self, rng):
        """Tensor-plane balancing (the LAMMPS `balance shift` scheme) cannot
        perfectly split a corner blob — the planes are shared across the
        grid — but it must get within ~2x of mean (uniform cuts are ~4x)."""
        system = _clustered_system(rng)
        grid = BalancedProcessGrid.create_balanced(8, system.cell, system.positions)
        owners = grid.owner_of(system.positions)
        counts = np.bincount(owners, minlength=8)
        assert counts.max() / counts.mean() < 2.2

    def test_uniform_grid_is_worse_on_clustered_input(self, rng):
        system = _clustered_system(rng)
        uniform = ProcessGrid.create(8, system.cell)
        balanced = BalancedProcessGrid.create_balanced(
            8, system.cell, system.positions
        )
        cu = np.bincount(uniform.owner_of(system.positions), minlength=8)
        cb = np.bincount(balanced.owner_of(system.positions), minlength=8)
        assert cb.max() < cu.max()

    def test_domain_bounds_tile_box(self, rng):
        system = _clustered_system(rng)
        grid = BalancedProcessGrid.create_balanced(8, system.cell, system.positions)
        # Each atom's owner's bounds must contain it.
        owners = grid.owner_of(system.positions)
        wrapped = system.cell.wrap(system.positions)
        for rank in range(8):
            lo, hi = grid.domain_bounds(rank)
            mine = wrapped[owners == rank]
            assert np.all(mine >= lo - 1e-9)
            assert np.all(mine <= hi + 1e-9)

    def test_forces_remain_exact(self, rng):
        system = _clustered_system(rng)
        lj = LennardJones(epsilon=0.01, sigma=1.8, cutoff=3.0)
        e_ref, f_ref = lj.energy_and_forces(system)
        grid = BalancedProcessGrid.create_balanced(4, system.cell, system.positions)
        ev = ParallelForceEvaluator(lj, grid)
        e_par, f_par, stats = ev.compute(system.copy())
        assert e_par == pytest.approx(e_ref, rel=1e-9)
        assert np.allclose(f_par, f_ref, atol=1e-8)

    def test_improves_work_balance_on_capsid(self, rng):
        """The paper's flagship workload is exactly this density profile."""
        capsid = capsid_assembly(radius=12.0, subdivisions=1, seed=5)
        system = capsid.system
        lj = LennardJones(epsilon=0.01, sigma=2.0, cutoff=3.5, n_species=4)
        imb = {}
        for name, grid in (
            ("uniform", ProcessGrid.create(8, system.cell)),
            (
                "balanced",
                BalancedProcessGrid.create_balanced(8, system.cell, system.positions),
            ),
        ):
            ev = ParallelForceEvaluator(lj, grid)
            _, _, stats = ev.compute(system.copy())
            imb[name] = stats.load_imbalance
        assert imb["balanced"] <= imb["uniform"] + 0.05

    def test_validate_cutoff_uses_narrowest_slab(self, rng):
        system = _clustered_system(rng)
        grid = BalancedProcessGrid.create_balanced(8, system.cell, system.positions)
        with pytest.raises(ValueError):
            grid.validate_cutoff(50.0)

    def test_single_rank_noop(self, rng):
        system = _clustered_system(rng)
        grid = BalancedProcessGrid.create_balanced(1, system.cell, system.positions)
        assert (grid.owner_of(system.positions) == 0).all()
