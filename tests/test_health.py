"""Tests for the serving health state machine (``repro.health``).

The monitor's contract: transitions are always *adjacent* (never skip a
state), need ``dwell_up``/``dwell_down`` consecutive agreeing ticks, exit
thresholds sit below entry thresholds (hysteresis), DRAINING is terminal,
and the whole trajectory is a pure function of the tick sequence — the
chaos harness's byte-determinism rests on that purity.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.health import (
    HEALTH_STATES,
    HealthMonitor,
    HealthThresholds,
    health_from_config,
)
from repro.obs import Registry

CALM = {"queue_frac": 0.0}
BUSY = {"queue_frac": 0.8}  # above queue_degraded, below queue_shedding
SWAMPED = {"queue_frac": 1.0}  # above queue_shedding


def fast_monitor(**kw):
    """A monitor that reacts in one tick each way unless overridden."""
    kw.setdefault("dwell_up", 1)
    kw.setdefault("dwell_down", 1)
    return HealthMonitor(**kw)


class TestThresholds:
    def test_defaults_validate(self):
        th = HealthThresholds()
        assert th.desired_level(CALM) == 0
        assert th.desired_level(BUSY) == 1
        assert th.desired_level(SWAMPED) == 2

    def test_hysteresis_scales_exit_below_entry(self):
        th = HealthThresholds(queue_degraded=0.5, hysteresis=0.6)
        # 0.4 is below entry (0.5) but above exit (0.3): inside the band.
        assert th.desired_level({"queue_frac": 0.4}) == 0
        assert th.desired_level({"queue_frac": 0.4}, scale=0.6) == 1

    def test_breaker_and_recovery_floor_at_degraded(self):
        th = HealthThresholds()
        assert th.desired_level({"queue_frac": 0.0, "breaker_open": True}) == 1
        assert th.desired_level({"queue_frac": 0.0, "recoveries": 2}) == 1
        # The floor never reaches SHEDDING on its own.
        assert th.desired_level({"breaker_open": True, "recoveries": 5}) == 1

    def test_p99_thresholds_disabled_by_default(self):
        assert HealthThresholds().desired_level({"p99_s": 1e9}) == 0

    def test_p99_thresholds_when_enabled(self):
        th = HealthThresholds(p99_degraded_s=0.1, p99_shedding_s=0.5)
        assert th.desired_level({"p99_s": 0.2}) == 1
        assert th.desired_level({"p99_s": 0.6}) == 2

    @pytest.mark.parametrize(
        "kw",
        [
            {"hysteresis": 0.0},
            {"hysteresis": 1.0},
            {"queue_degraded": 0.0},
            {"queue_degraded": 0.9, "queue_shedding": 0.5},
            {"p99_degraded_s": 0.1},  # one of the pair
            {"p99_degraded_s": 0.5, "p99_shedding_s": 0.1},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            HealthThresholds(**kw)


class TestMonitorTransitions:
    def test_starts_healthy_and_stays_on_calm_signals(self):
        mon = fast_monitor()
        for _ in range(5):
            assert mon.tick(CALM) == "HEALTHY"
        assert mon.history() == []

    def test_dwell_up_requires_consecutive_ticks(self):
        mon = HealthMonitor(dwell_up=3, dwell_down=1)
        assert mon.tick(BUSY) == "HEALTHY"
        assert mon.tick(BUSY) == "HEALTHY"
        assert mon.tick(BUSY) == "DEGRADED"

    def test_interrupted_streak_resets(self):
        mon = HealthMonitor(dwell_up=2, dwell_down=100)
        mon.tick(BUSY)
        mon.tick(CALM)  # breaks the streak
        mon.tick(BUSY)
        assert mon.state == "HEALTHY"
        mon.tick(BUSY)
        assert mon.state == "DEGRADED"

    def test_never_skips_states(self):
        mon = fast_monitor()
        # The signal asks for SHEDDING immediately; the machine still
        # walks HEALTHY → DEGRADED → SHEDDING one tick at a time.
        assert mon.tick(SWAMPED) == "DEGRADED"
        assert mon.tick(SWAMPED) == "SHEDDING"
        assert [(a, b) for _, a, b in mon.history()] == [
            ("HEALTHY", "DEGRADED"),
            ("DEGRADED", "SHEDDING"),
        ]

    def test_hysteresis_band_holds_state(self):
        mon = fast_monitor(
            thresholds=HealthThresholds(queue_degraded=0.5, hysteresis=0.6)
        )
        mon.tick({"queue_frac": 0.6})
        assert mon.state == "DEGRADED"
        # 0.4 < entry 0.5 but > exit 0.3: no recovery, however long.
        for _ in range(50):
            assert mon.tick({"queue_frac": 0.4}) == "DEGRADED"

    def test_dwell_down_slows_recovery(self):
        mon = HealthMonitor(dwell_up=1, dwell_down=3)
        mon.tick(BUSY)
        assert mon.state == "DEGRADED"
        assert mon.tick(CALM) == "DEGRADED"
        assert mon.tick(CALM) == "DEGRADED"
        assert mon.tick(CALM) == "HEALTHY"

    def test_notify_recovery_floors_next_tick(self):
        mon = fast_monitor()
        mon.notify_recovery()
        assert mon.tick(CALM) == "DEGRADED"
        # The pending recovery is consumed: calm ticks then recover.
        assert mon.tick(CALM) == "HEALTHY"

    def test_begin_drain_walks_adjacent_and_is_terminal(self):
        mon = fast_monitor()
        assert mon.begin_drain() == "DRAINING"
        assert [(a, b) for _, a, b in mon.history()] == [
            ("HEALTHY", "DEGRADED"),
            ("DEGRADED", "SHEDDING"),
            ("SHEDDING", "DRAINING"),
        ]
        for _ in range(5):
            assert mon.tick(CALM) == "DRAINING"
        assert mon.draining

    def test_on_transition_callback(self):
        seen = []
        mon = fast_monitor()
        mon.on_transition = lambda old, new: seen.append((old, new))
        mon.tick(BUSY)
        mon.begin_drain()
        assert seen == [
            ("HEALTHY", "DEGRADED"),
            ("DEGRADED", "SHEDDING"),
            ("SHEDDING", "DRAINING"),
        ]

    def test_history_is_bounded(self):
        mon = fast_monitor(history=4)
        for _ in range(10):
            mon.tick(BUSY)  # up one
            mon.tick(CALM)  # down one
        assert len(mon.history()) == 4

    def test_attached_source_is_polled(self):
        mon = fast_monitor()
        mon.attach(lambda: BUSY)
        assert mon.tick() == "DEGRADED"


class TestMonitorExport:
    def test_bound_registry_tracks_state_and_edges(self):
        reg = Registry()
        mon = fast_monitor()
        mon.bind(reg)
        assert reg.gauge("health.state").value == 0
        mon.tick(SWAMPED)
        mon.tick(SWAMPED)
        snap = reg.snapshot()
        assert reg.gauge("health.state").value == 2
        assert snap["counters"]["health.transitions"] == 2
        counters = mon.stats()  # fresh snapshot after the second tick
        snap = reg.snapshot()["counters"]
        assert snap["health.transitions{from=HEALTHY,to=DEGRADED}"] == 1
        assert snap["health.transitions{from=DEGRADED,to=SHEDDING}"] == 1
        assert counters["state"] == "SHEDDING"

    def test_stats_shape(self):
        mon = fast_monitor()
        mon.tick(BUSY)
        s = mon.stats()
        assert s["state"] == "DEGRADED" and s["level"] == 1
        assert s["ticks"] == 1 and s["transitions"] == 1
        assert s["history"][0] == {
            "tick": 1, "from": "HEALTHY", "to": "DEGRADED",
        }
        assert not s["draining"]


class TestConfig:
    def test_round_trip(self):
        mon = health_from_config(
            {
                "queue_degraded": 0.5,
                "queue_shedding": 0.9,
                "hysteresis": 0.5,
                "dwell_up": 2,
                "dwell_down": 4,
            }
        )
        assert mon.thresholds.queue_degraded == 0.5
        assert mon.dwell_up == 2 and mon.dwell_down == 4

    def test_unknown_key_raises(self):
        with pytest.raises(ValueError, match="unknown health config"):
            health_from_config({"queue_degrated": 0.5})

    def test_bad_dwell_raises(self):
        with pytest.raises(ValueError):
            HealthMonitor(dwell_up=0)


# ---------------------------------------------------------------------------
# properties: adjacency, dwell, determinism under arbitrary signal walks
# ---------------------------------------------------------------------------
signal_walks = st.lists(
    st.floats(min_value=0.0, max_value=1.5, allow_nan=False),
    min_size=1,
    max_size=60,
)
dwells = st.integers(min_value=1, max_value=4)


class TestMonitorProperties:
    @given(signal_walks, dwells, dwells)
    @settings(max_examples=100)
    def test_transitions_always_adjacent_never_draining(self, walk, up, down):
        mon = HealthMonitor(dwell_up=up, dwell_down=down)
        for q in walk:
            mon.tick({"queue_frac": q})
        levels = {s: i for i, s in enumerate(HEALTH_STATES)}
        for _, a, b in mon.history():
            assert abs(levels[a] - levels[b]) == 1
        # Only begin_drain may enter DRAINING.
        assert mon.level <= 2

    @given(signal_walks, dwells, dwells)
    @settings(max_examples=100)
    def test_same_walk_same_trajectory(self, walk, up, down):
        def run():
            mon = HealthMonitor(dwell_up=up, dwell_down=down)
            states = [mon.tick({"queue_frac": q}) for q in walk]
            return states, mon.history()

        assert run() == run()

    @given(signal_walks, dwells)
    @settings(max_examples=100)
    def test_dwell_up_lower_bounds_transition_spacing(self, walk, up):
        """Consecutive *upward* transitions are >= dwell_up ticks apart."""
        mon = HealthMonitor(dwell_up=up, dwell_down=1)
        for q in walk:
            mon.tick({"queue_frac": q})
        ups = [t for t, a, b in mon.history() if HEALTH_STATES.index(b) > HEALTH_STATES.index(a)]
        assert all(b - a >= up for a, b in zip(ups, ups[1:]))
        if ups:
            assert ups[0] >= up
