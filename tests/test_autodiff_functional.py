"""Unit tests for elementwise functions, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

import repro.autodiff as ad


@pytest.fixture
def rng():
    return np.random.default_rng(7)


finite_floats = st.floats(
    min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False
)
small_arrays = arrays(np.float64, st.integers(1, 6), elements=finite_floats)


class TestForwardValues:
    def test_exp_log_inverse(self, rng):
        x = rng.random(10) + 0.1
        assert np.allclose(ad.log(ad.exp(ad.Tensor(x))).data, x)

    def test_trig_identity(self, rng):
        x = rng.normal(size=10)
        s, c = ad.sin(ad.Tensor(x)), ad.cos(ad.Tensor(x))
        assert np.allclose(s.data**2 + c.data**2, 1.0)

    def test_sigmoid_range_and_stability(self):
        x = ad.Tensor(np.array([-1000.0, 0.0, 1000.0]))
        y = ad.sigmoid(x).data
        assert np.all((y >= 0) & (y <= 1))
        assert np.allclose(y, [0.0, 0.5, 1.0])
        assert np.isfinite(y).all()

    def test_silu_matches_definition(self, rng):
        x = rng.normal(size=20)
        expected = x / (1 + np.exp(-x))
        assert np.allclose(ad.silu(ad.Tensor(x)).data, expected)

    def test_softplus_large_input_stable(self):
        y = ad.softplus(ad.Tensor(np.array([800.0, -800.0]))).data
        assert np.isfinite(y).all()
        assert y[1] >= 0

    def test_relu_clip_abs(self, rng):
        x = rng.normal(size=10)
        assert np.allclose(ad.relu(ad.Tensor(x)).data, np.maximum(x, 0))
        assert np.allclose(ad.clip(ad.Tensor(x), -0.5, 0.5).data, np.clip(x, -0.5, 0.5))
        assert np.allclose(ad.absolute(ad.Tensor(x)).data, np.abs(x))

    def test_where_minimum_maximum(self, rng):
        a, b = rng.normal(size=6), rng.normal(size=6)
        assert np.allclose(ad.maximum(a, b).data, np.maximum(a, b))
        assert np.allclose(ad.minimum(a, b).data, np.minimum(a, b))
        out = ad.where(a > 0, ad.Tensor(a), ad.Tensor(b)).data
        assert np.allclose(out, np.where(a > 0, a, b))

    def test_safe_norm_zero_vector_no_nan(self):
        x = ad.Tensor(np.zeros((2, 3)), requires_grad=True)
        n = ad.safe_norm(x, axis=-1)
        n.sum().backward()
        assert np.isfinite(n.data).all()
        assert np.isfinite(x.grad.data).all()


class TestGradients:
    @pytest.mark.parametrize(
        "fn",
        [ad.exp, ad.sin, ad.cos, ad.tanh, ad.sigmoid, ad.silu, ad.softplus],
        ids=["exp", "sin", "cos", "tanh", "sigmoid", "silu", "softplus"],
    )
    def test_smooth_unary_gradcheck(self, fn, rng):
        ad.gradcheck(fn, [rng.normal(size=(3, 4))])

    def test_log_sqrt_gradcheck(self, rng):
        ad.gradcheck(ad.log, [0.5 + rng.random(5)])
        ad.gradcheck(ad.sqrt, [0.5 + rng.random(5)])

    def test_piecewise_gradcheck_away_from_kinks(self, rng):
        x = rng.normal(size=8)
        x = x[np.abs(x) > 0.1]
        ad.gradcheck(ad.relu, [x])
        ad.gradcheck(ad.absolute, [x])

    def test_maximum_minimum_where_gradcheck(self, rng):
        a = rng.normal(size=6)
        b = a + np.where(rng.random(6) > 0.5, 0.5, -0.5)  # keep apart from ties
        ad.gradcheck(ad.maximum, [a, b])
        ad.gradcheck(ad.minimum, [a, b])
        cond = rng.random(6) > 0.5
        ad.gradcheck(lambda x, y: ad.where(cond, x, y), [a, b])

    def test_safe_norm_gradcheck(self, rng):
        ad.gradcheck(lambda v: ad.safe_norm(v, axis=-1), [rng.normal(size=(5, 3))])
        ad.gradcheck(
            lambda v: ad.safe_norm(v, axis=0, keepdims=True), [rng.normal(size=(3, 2))]
        )

    def test_second_derivative_silu(self, rng):
        """d²/dx² via grad-of-grad must match finite differences of f'."""
        x0 = rng.normal(size=5)
        x = ad.Tensor(x0, requires_grad=True)
        (g,) = ad.grad(ad.silu(x).sum(), [x], create_graph=True)
        g.sum().backward()
        second = x.grad.data
        eps = 1e-5

        def fprime(v):
            t = ad.Tensor(v, requires_grad=True)
            (gg,) = ad.grad(ad.silu(t).sum(), [t])
            return gg.data

        num = (fprime(x0 + eps) - fprime(x0 - eps)) / (2 * eps)
        assert np.allclose(second, num, atol=1e-5)


class TestHypothesisProperties:
    @given(small_arrays)
    @settings(max_examples=30, deadline=None)
    def test_silu_bounded_below(self, arr):
        y = ad.silu(ad.Tensor(arr)).data
        assert (y >= -0.2785).all()  # global minimum of x·σ(x)

    @given(small_arrays)
    @settings(max_examples=30, deadline=None)
    def test_sigmoid_symmetry(self, arr):
        s1 = ad.sigmoid(ad.Tensor(arr)).data
        s2 = ad.sigmoid(ad.Tensor(-arr)).data
        assert np.allclose(s1 + s2, 1.0, atol=1e-12)

    @given(small_arrays)
    @settings(max_examples=30, deadline=None)
    def test_exp_log_roundtrip(self, arr):
        y = ad.exp(ad.Tensor(arr)).data
        assert np.allclose(np.log(y), arr, atol=1e-10)

    @given(small_arrays)
    @settings(max_examples=30, deadline=None)
    def test_safe_norm_nonnegative_and_triangle(self, arr):
        v = arr.reshape(1, -1)
        n = ad.safe_norm(ad.Tensor(v), axis=-1).data
        assert (n >= 0).all()
        n2 = ad.safe_norm(ad.Tensor(2 * v), axis=-1).data
        assert np.allclose(n2, 2 * n, atol=1e-6)
