"""Tests for gradients-of-gradients — the force-matching training requirement.

The force loss L = Σ(F_pred − F_ref)² with F = −∂E/∂r needs ∂L/∂w through
the gradient graph; every primitive used by the models must support it.
"""

import numpy as np
import pytest

import repro.autodiff as ad


@pytest.fixture
def rng():
    return np.random.default_rng(23)


def _numeric_weight_grad(energy_fn, w0, x0, eps=1e-6):
    """Finite-difference d/dw of Σ(dE/dx)² used as the ground truth."""
    num = np.zeros_like(w0)
    it = np.nditer(w0, flags=["multi_index"])
    while not it.finished:
        ix = it.multi_index
        vals = []
        for s in (eps, -eps):
            w = w0.copy()
            w[ix] += s
            x = ad.Tensor(x0, requires_grad=True)
            (gx,) = ad.grad(energy_fn(ad.Tensor(w), x), [x])
            vals.append(float((gx.data**2).sum()))
        num[ix] = (vals[0] - vals[1]) / (2 * eps)
        it.iternext()
    return num


def _analytic_weight_grad(energy_fn, w0, x0):
    w = ad.Tensor(w0, requires_grad=True)
    x = ad.Tensor(x0, requires_grad=True)
    (gx,) = ad.grad(energy_fn(w, x), [x], create_graph=True)
    loss = (gx * gx).sum()
    loss.backward()
    return w.grad.data


@pytest.mark.parametrize(
    "name,energy_fn,wshape,xshape",
    [
        (
            "mlp",
            lambda w, x: (ad.silu(x @ w) ** 2).sum(),
            (3, 3),
            (4, 3),
        ),
        (
            "einsum",
            lambda w, x: ad.einsum("ij,kj,kj->", w, x, x),
            (4, 3),
            (4, 3),
        ),
        (
            "trig",
            lambda w, x: (ad.sin(x) @ w).sum() + (ad.cos(x * 2) @ w).sum(),
            (3,),
            (5, 3),
        ),
        (
            "norm",
            lambda w, x: (ad.safe_norm(x, axis=-1) ** 3 * w).sum(),
            (5,),
            (5, 3),
        ),
    ],
)
def test_double_backprop_matches_fd(name, energy_fn, wshape, xshape, rng):
    w0 = rng.normal(size=wshape)
    x0 = rng.normal(size=xshape)
    ana = _analytic_weight_grad(energy_fn, w0, x0)
    num = _numeric_weight_grad(energy_fn, w0, x0)
    assert np.allclose(ana, num, atol=1e-4, rtol=1e-4), np.abs(ana - num).max()


def test_double_backprop_through_gather_scatter(rng):
    idx_i = np.array([0, 1, 2, 0, 2])
    idx_j = np.array([1, 2, 0, 2, 1])

    def energy(w, pos):
        disp = ad.gather(pos, idx_j) - ad.gather(pos, idx_i)
        r = ad.safe_norm(disp, axis=-1)
        feat = ad.sin(r.expand_dims(-1) * ad.Tensor(np.arange(1.0, 4.0)))
        e_edge = (ad.silu(feat @ w) ** 2).sum(axis=-1)
        return ad.scatter_add(e_edge, idx_i, 3).sum()

    w0 = rng.normal(size=(3, 4))
    x0 = rng.normal(size=(3, 3)) * 2
    ana = _analytic_weight_grad(energy, w0, x0)
    num = _numeric_weight_grad(energy, w0, x0)
    assert np.allclose(ana, num, atol=1e-4, rtol=1e-4)


def test_hessian_diagonal_of_quadratic(rng):
    """For E = ½xᵀAx the Hessian is A; check grad-of-grad recovers a row."""
    A = rng.normal(size=(4, 4))
    A = A + A.T
    x = ad.Tensor(rng.normal(size=4), requires_grad=True)
    E = 0.5 * ad.einsum("i,ij,j->", x, ad.Tensor(A), x)
    (g,) = ad.grad(E, [x], create_graph=True)
    g[0].backward()
    assert np.allclose(x.grad.data, A[0], atol=1e-10)


def test_force_loss_gradient_drives_descent(rng):
    """A few SGD steps on a force-matching loss must reduce it."""
    idx_i = np.array([0, 1, 2, 3])
    idx_j = np.array([1, 2, 3, 0])
    pos0 = rng.normal(size=(4, 3)) * 2
    f_ref = rng.normal(size=(4, 3)) * 0.1

    w = ad.Tensor(0.1 * rng.normal(size=(3, 3)), requires_grad=True)

    def loss_fn():
        pos = ad.Tensor(pos0, requires_grad=True)
        disp = ad.gather(pos, idx_j) - ad.gather(pos, idx_i)
        r = ad.safe_norm(disp, axis=-1)
        feat = ad.exp(-r.expand_dims(-1) * ad.Tensor(np.array([0.5, 1.0, 2.0])))
        e = (ad.tanh(feat @ w) ** 2).sum()
        (gp,) = ad.grad(e, [pos], create_graph=True)
        diff = -gp - ad.Tensor(f_ref)
        return (diff * diff).mean()

    losses = []
    for _ in range(25):
        loss = loss_fn()
        losses.append(float(loss.data))
        w.zero_grad()
        loss.backward()
        w.data -= 0.5 * w.grad.data
    assert losses[-1] < losses[0] * 0.9, losses
