"""Unit tests for the Irrep/Irreps algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.equivariant import Irrep, Irreps


class TestIrrep:
    def test_dim(self):
        assert Irrep(0, 1).dim == 1
        assert Irrep(1, -1).dim == 3
        assert Irrep(3, 1).dim == 7

    def test_parse_roundtrip(self):
        for s in ["0e", "1o", "2e", "5o"]:
            assert str(Irrep.parse(s)) == s

    def test_parse_rejects_garbage(self):
        for bad in ["e0", "1x", "-1e", "1", ""]:
            with pytest.raises(ValueError):
                Irrep.parse(bad)

    def test_validation(self):
        with pytest.raises(ValueError):
            Irrep(-1, 1)
        with pytest.raises(ValueError):
            Irrep(1, 0)

    def test_selection_rule(self):
        prods = Irrep(1, -1) * Irrep(1, -1)
        assert prods == [Irrep(0, 1), Irrep(1, 1), Irrep(2, 1)]
        prods = Irrep(2, 1) * Irrep(1, -1)
        assert [p.l for p in prods] == [1, 2, 3]
        assert all(p.p == -1 for p in prods)

    def test_is_scalar(self):
        assert Irrep(0, 1).is_scalar()
        assert not Irrep(0, -1).is_scalar()
        assert not Irrep(1, 1).is_scalar()

    def test_ordering_and_hash(self):
        assert Irrep(0, 1) < Irrep(1, -1)
        assert len({Irrep(1, 1), Irrep(1, 1), Irrep(1, -1)}) == 2


class TestIrreps:
    def test_parse_string(self):
        irr = Irreps("2x0e + 1x1o + 2e")
        assert irr.dim == 2 + 3 + 5
        assert irr.num_irreps == 4
        assert irr.lmax == 2

    def test_empty(self):
        irr = Irreps("")
        assert irr.dim == 0
        with pytest.raises(ValueError):
            _ = irr.lmax

    def test_slices(self):
        irr = Irreps("2x0e + 1x1o")
        assert irr.slices() == [slice(0, 2), slice(2, 5)]

    def test_simplify(self):
        irr = Irreps("1x0e + 1x0e + 1x1o")
        assert irr.simplify() == Irreps("2x0e + 1x1o")

    def test_sort(self):
        irr = Irreps("1x2e + 1x0e + 1x1o").sort()
        assert [ir.l for _, ir in irr] == [0, 1, 2]

    def test_count_and_filter(self):
        irr = Irreps("2x0e + 3x1o + 1x0e")
        assert irr.count("0e") == 3
        assert irr.filter(lambda ir: ir.l == 0).dim == 3

    def test_add(self):
        assert (Irreps("0e") + Irreps("1o")).dim == 4

    def test_spherical_harmonics(self):
        sh = Irreps.spherical_harmonics(2)
        assert [str(ir) for _, ir in sh] == ["0e", "1o", "2e"]
        assert sh.dim == 9

    def test_from_tuples(self):
        irr = Irreps([(2, Irrep(0, 1)), (1, (1, -1))])
        assert irr == Irreps("2x0e + 1x1o")

    def test_negative_multiplicity_rejected(self):
        with pytest.raises(ValueError):
            Irreps([(-1, Irrep(0, 1))])

    @given(st.integers(0, 4), st.sampled_from([1, -1]))
    @settings(max_examples=20, deadline=None)
    def test_product_dims_conserve(self, l, p):
        """Σ dim(l_out) over l1⊗l2 equals dim(l1)·dim(l2)."""
        a, b = Irrep(l, p), Irrep(2, 1)
        total = sum(ir.dim for ir in a * b)
        assert total == a.dim * b.dim
