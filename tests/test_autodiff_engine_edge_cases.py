"""Edge cases of the autodiff engine: dtype flow, graph topology, memory."""

import numpy as np
import pytest

import repro.autodiff as ad


@pytest.fixture
def rng():
    return np.random.default_rng(173)


class TestDtypeFlow:
    def test_final_dtype_config_controls_cast(self):
        x = ad.Tensor(np.ones(3), requires_grad=True)
        try:
            ad.config.final_dtype = np.float32
            y = x.astype(ad.config.final_dtype)
            assert y.dtype == np.float32
        finally:
            ad.config.final_dtype = np.float64
        y.sum().backward()
        assert x.grad.data.dtype == np.float64  # gradient cast back

    def test_float32_graph_stays_float32(self, rng):
        x = ad.Tensor(rng.normal(size=4).astype(np.float32), requires_grad=True)
        y = (x * x).sum()
        assert y.dtype == np.float32

    def test_mixed_op_promotes_like_numpy(self, rng):
        a = ad.Tensor(rng.normal(size=3).astype(np.float32))
        b = ad.Tensor(rng.normal(size=3))
        assert (a + b).dtype == np.float64


class TestGraphTopology:
    def test_diamond_graph_gradients(self):
        """x feeds two branches that rejoin: gradient must accumulate once
        per path (the classic diamond-double-count check)."""
        x = ad.Tensor(np.array([2.0]), requires_grad=True)
        a = x * 3.0
        b = x * 5.0
        y = a * b  # y = 15 x², dy/dx = 30x = 60
        y.backward()
        assert np.allclose(x.grad.data, [60.0])

    def test_shared_subexpression(self, rng):
        x = ad.Tensor(rng.normal(size=4), requires_grad=True)
        s = ad.sin(x)
        y = (s * s).sum() + s.sum()
        y.backward()
        expected = (2 * np.sin(x.data) + 1) * np.cos(x.data)
        assert np.allclose(x.grad.data, expected)

    def test_backward_twice_accumulates(self):
        x = ad.Tensor(np.ones(2), requires_grad=True)
        y = (x * 3.0).sum()
        y.backward()
        y2 = (x * 3.0).sum()
        y2.backward()
        assert np.allclose(x.grad.data, [6.0, 6.0])

    def test_grad_of_nonscalar_with_seed(self, rng):
        x = ad.Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        y = x * 2.0
        seed = rng.normal(size=(2, 3))
        y.backward(seed)
        assert np.allclose(x.grad.data, 2.0 * seed)

    def test_intermediate_grads_freed(self, rng):
        """backward() frees non-leaf gradients to bound memory."""
        x = ad.Tensor(rng.normal(size=4), requires_grad=True)
        mid = x * 2.0
        out = (mid * mid).sum()
        out.backward()
        assert x.grad is not None
        assert mid.grad is None  # freed after use

    def test_create_graph_keeps_differentiable_grad(self, rng):
        x = ad.Tensor(rng.normal(size=3), requires_grad=True)
        (x**3).sum().backward(create_graph=True)
        g = x.grad  # 3x², itself on the tape
        assert g.requires_grad
        x.grad = None
        g.sum().backward()
        assert np.allclose(x.grad.data, 6.0 * x.data)


class TestNumericalRobustness:
    def test_no_nan_in_allegro_style_chain_with_padded_zero_edges(self):
        """Zero displacement vectors (padding fake pairs) stay NaN-free."""
        disp = ad.Tensor(np.zeros((4, 3)), requires_grad=True)
        r = ad.safe_norm(disp, axis=-1)
        y = (ad.sin(r) / (r + 1e-12)).sum()
        y.backward()
        assert np.isfinite(disp.grad.data).all()

    def test_large_graph_memory_sanity(self, rng):
        """A few thousand ops backward without recursion/memory failure."""
        x = ad.Tensor(rng.normal(size=64), requires_grad=True)
        y = x
        for _ in range(1000):
            y = ad.silu(y) * 1.001
        y.sum().backward()
        assert np.isfinite(x.grad.data).all()

    def test_no_grad_inside_backward_of_first_order(self):
        """First-order backward must not grow the tape."""
        x = ad.Tensor(np.ones(3), requires_grad=True)
        y = (x * x).sum()
        y.backward()
        assert not x.grad.requires_grad
