"""Workload adapters: run one scenario, return what the invariants need.

Each runner executes a *faulted* run of its workload under the spec's
:class:`~repro.resilience.FaultPlan` and a *clean reference* of the same
workload (no faults, same seeds), then returns a flat observation dict.
The invariant checkers (:mod:`repro.chaos.invariants`) consume only that
dict, so workloads and invariants stay decoupled.

Observation keys shared by every workload::

    workload   one of repro.chaos.WORKLOADS
    error      None, or "ExcType: message" when the faulted run crashed
    plan       the consumed FaultPlan (draw/fired accounting)
    registry   the obs.Registry every component of the faulted run shared

plus per-workload payloads documented on each runner.

The ``bug`` parameter deliberately plants a defect (test-only) so the
harness can be validated end-to-end: a planted bug must be *caught by an
invariant* and its schedule must *shrink to a minimal reproducer* — the
chaos suite's own falsifiability check.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from ..md import (
    BerendsenBarostat,
    Cell,
    LangevinThermostat,
    NoseHooverThermostat,
    Simulation,
    System,
)
from ..models import LennardJones
from ..obs import Registry
from ..resilience import (
    POTENTIAL_CORRUPT,
    REPLAY_FAIL,
    TRAIN_LABEL_CORRUPTION,
    CheckpointManager,
    CorruptedFrames,
    FaultyPotential,
    ForceWatchdog,
    RetryPolicy,
)
from .scenarios import ScenarioSpec

__all__ = ["WORKLOAD_RUNNERS", "run_workload"]

#: Planted defects (test-only): ``bug`` values :func:`run_workload` accepts.
KNOWN_BUGS = ("md.unverified_checkpoint_load",)


class _UnverifiedCheckpointManager(CheckpointManager):
    """PLANTED BUG (test-only): load without magic/checksum verification.

    A torn checkpoint deserializes garbage (or crashes) instead of being
    skipped — exactly the defect the ``checkpoint_chain`` hardening
    exists to prevent.  Used to validate that the chaos invariants catch
    a real regression and that the shrinker minimizes its schedule.
    """

    def load(self, path) -> Dict:
        raw = Path(path).read_bytes()
        return pickle.loads(raw[8 + 64 :])


# ---------------------------------------------------------------------------
# Shared builders (mirror the deterministic fixtures of the test-suite)
# ---------------------------------------------------------------------------
def _lj_crystal(seed=7, n_side=4, a=1.7, jitter=0.02, n_species=1):
    rng = np.random.default_rng(seed)
    g = (
        np.stack(np.meshgrid(*[np.arange(n_side)] * 3, indexing="ij"), -1).reshape(-1, 3)
        * a
    )
    species = (
        np.zeros(len(g), int) if n_species == 1 else rng.integers(0, n_species, len(g))
    )
    system = System(
        g + rng.normal(scale=jitter, size=g.shape), species, Cell.cubic(n_side * a)
    )
    lj = LennardJones(epsilon=0.05, sigma=1.5, cutoff=3.0, n_species=n_species)
    return system, lj


def _md_sim(kind, engine, potential, watchdog=None, registry=None):
    system, lj = _lj_crystal()
    system.seed_velocities(30.0, np.random.default_rng(8))
    thermostat = barostat = None
    if kind == "nvt_langevin":
        thermostat = LangevinThermostat(30.0, friction=0.05, seed=3)
    elif kind == "nvt_nosehoover":
        thermostat = NoseHooverThermostat(30.0, tau=25.0)
    elif kind == "npt":
        thermostat = NoseHooverThermostat(30.0, tau=25.0)
        barostat = BerendsenBarostat(pressure=1.0, tau=200.0)
    elif kind != "nve":
        raise ValueError(f"unknown md kind {kind!r}")
    return Simulation(
        system,
        potential if potential is not None else lj,
        dt=0.2,
        thermostat=thermostat,
        barostat=barostat,
        engine=engine,
        watchdog=watchdog,
        registry=registry,
    )


# ---------------------------------------------------------------------------
# md
# ---------------------------------------------------------------------------
def run_md(spec: ScenarioSpec, workdir: Path, bug: Optional[str] = None) -> Dict:
    """Checkpointed watchdog-guarded MD under corrupt/replay/torn faults.

    Extra observation keys: ``final``/``reference`` (positions,
    velocities), ``series``/``ref_series`` (potential energies),
    ``n_recoveries``, ``watchdog_trips``, ``manager``, ``n_steps``.
    """
    opts = spec.options
    kind = opts.get("kind", "nvt_nosehoover")
    engine = opts.get("engine", "eager")
    steps = int(opts.get("steps", 24))
    every = int(opts.get("checkpoint_every", 6))
    channels = spec.channels()

    clean = _md_sim(kind, engine, None)
    clean_traj = workdir / "clean.rtrj"
    # The clean run checkpoints on the same schedule (to a separate dir):
    # checkpoint barriers pin trajectory chunk boundaries, so matching
    # schedules are a precondition for the bitwise-dump invariant.
    clean_res = clean.run(
        steps,
        checkpoint_every=every,
        checkpoint_dir=workdir / "ckpt_clean",
        dump_every=3,
        dump_path=clean_traj,
    )

    plan = spec.fault_plan()
    registry = Registry()
    potential = None
    if POTENTIAL_CORRUPT in channels:
        if engine != "eager":
            raise ValueError("potential.corrupt requires the eager engine")
        _, lj = _lj_crystal()
        potential = FaultyPotential(lj, plan, mode="nan")
    watchdog = ForceWatchdog(policy="recover", spike_factor=None, max_recoveries=16)
    sim = _md_sim(kind, engine, potential, watchdog=watchdog, registry=registry)
    if REPLAY_FAIL in channels:

        def hook(stage: str) -> None:
            if stage == "replay":
                plan.raise_if_fires(REPLAY_FAIL)

        sim._evaluator.fault_hook = hook
    manager_cls = CheckpointManager
    if bug == "md.unverified_checkpoint_load":
        manager_cls = _UnverifiedCheckpointManager
    elif bug is not None:
        raise ValueError(f"unknown planted bug {bug!r} (known: {KNOWN_BUGS})")
    manager = manager_cls(
        workdir / "ckpt", keep_last=4, fault_plan=plan, registry=registry
    )
    # The faulted run dumps through a writer that shares the fault plan:
    # traj.torn_chunk events land on its chunk commits, and watchdog
    # recoveries roll the file back alongside the state.
    faulted_traj = workdir / "faulted.rtrj"
    from ..traj import TrajectoryWriter

    dump_writer = TrajectoryWriter(
        faulted_traj,
        system=sim.system,
        registry=registry,
        fault_plan=plan,
    )
    try:
        res = sim.run(
            steps,
            checkpoint_every=every,
            checkpoint_manager=manager,
            dump_every=3,
            dump_writer=dump_writer,
        )
    finally:
        if not dump_writer.closed:
            dump_writer.close()
    traj_stats = dump_writer.stats()

    return {
        "plan": plan,
        "registry": registry,
        "manager": manager,
        "n_steps": steps,
        "traj": {
            "clean_path": str(clean_traj),
            "faulted_path": str(faulted_traj),
            "stats": traj_stats,
        },
        "final": {
            "positions": np.array(sim.system.positions),
            "velocities": np.array(sim.system.velocities),
        },
        "reference": {
            "positions": np.array(clean.system.positions),
            "velocities": np.array(clean.system.velocities),
        },
        "series": np.array(res.potential_energies),
        "ref_series": np.array(clean_res.potential_energies),
        "n_recoveries": sim.n_recoveries,
        "watchdog_trips": watchdog.n_trips,
    }


# ---------------------------------------------------------------------------
# parallel
# ---------------------------------------------------------------------------
def run_parallel(spec: ScenarioSpec, workdir: Path, bug: Optional[str] = None) -> Dict:
    """4-rank MD under comm drop/delay + rank failure.

    Extra keys: ``final``/``reference`` positions, ``comm`` (fault_stats +
    pending), ``n_failures``/``n_recoveries``.
    """
    from ..parallel import ParallelSimulation

    if bug is not None:
        raise ValueError(f"unknown planted bug {bug!r} for parallel")
    opts = spec.options
    steps = int(opts.get("steps", 8))
    n_ranks = int(opts.get("n_ranks", 4))

    def build(fault_plan=None, registry=None):
        rng = np.random.default_rng(11)
        g = (
            np.stack(
                np.meshgrid(*[np.arange(5)] * 3, indexing="ij"), -1
            ).reshape(-1, 3)
            * 1.9
        )
        pos = g + rng.normal(scale=0.05, size=g.shape)
        system = System(pos, rng.integers(0, 2, len(pos)), Cell.cubic(5 * 1.9))
        system.seed_velocities(30.0, np.random.default_rng(12))
        lj = LennardJones(epsilon=0.01, sigma=1.6, cutoff=3.0, n_species=2)
        return ParallelSimulation(
            system, lj, n_ranks=n_ranks, dt=0.2,
            thermostat=NoseHooverThermostat(30.0, tau=25.0),
            fault_plan=fault_plan, registry=registry,
        )

    clean = build()
    clean_traj = workdir / "clean.rtrj"
    clean.run(steps, dump_every=3, dump_path=clean_traj)

    plan = spec.fault_plan()
    registry = Registry()
    sim = build(fault_plan=plan, registry=registry)
    # Rank-0 gathered dump under the same fault plan: traj.torn_chunk
    # draws land on the writer's chunk commits.
    from ..traj import TrajectoryWriter

    faulted_traj = workdir / "faulted.rtrj"
    dump_writer = TrajectoryWriter(
        faulted_traj, system=sim.system, registry=registry, fault_plan=plan
    )
    try:
        sim.run(steps, dump_every=3, dump_writer=dump_writer)
    finally:
        if not dump_writer.closed:
            dump_writer.close()
    cluster = sim.evaluator.cluster

    return {
        "plan": plan,
        "registry": registry,
        "final": {"positions": np.array(sim.system.positions)},
        "reference": {"positions": np.array(clean.system.positions)},
        "box_length": 5 * 1.9,
        "comm": {**cluster.fault_stats(), "pending": cluster.pending()},
        "n_failures": sim.evaluator.n_failures,
        "n_recoveries": sim.evaluator.n_recoveries,
        "traj": {
            "clean_path": str(clean_traj),
            "faulted_path": str(faulted_traj),
            "stats": dump_writer.stats(),
        },
    }


# ---------------------------------------------------------------------------
# serve
# ---------------------------------------------------------------------------
def _serve_systems(n_requests: int):
    """Mixed-size non-periodic LJ clusters plus direct eager references."""
    lj = LennardJones(epsilon=0.05, sigma=1.5, cutoff=3.0)
    systems, reference = [], []
    for k in range(n_requests):
        rng = np.random.default_rng(100 + k)
        n_atoms = 6 + int(rng.integers(6))
        g = np.stack(
            np.meshgrid(*[np.arange(3)] * 3, indexing="ij"), -1
        ).reshape(-1, 3)[:n_atoms] * 1.9
        system = System(
            g + rng.normal(scale=0.05, size=g.shape), np.zeros(n_atoms, int)
        )
        systems.append(system)
        e, f = lj.energy_and_forces(system)
        reference.append((float(e), np.array(f)))
    return lj, systems, reference


def run_serve(spec: ScenarioSpec, workdir: Path, bug: Optional[str] = None) -> Dict:
    """ForceServer traffic under worker crash/stall faults.

    Two variants (``options["variant"]``): the plain ``burst`` (default),
    and ``overload`` — 2× more requests than the queue bound with QoS
    enforced, mixed priority classes and some already-expired deadlines,
    exercising shedding, deadline expiry and the health state machine.

    Extra keys: ``outcomes`` (per request: ``("ok", energy, forces)`` or
    ``("error", exc_type_name, is_serve_error)``), ``reference`` (direct
    eager energy/forces per request), ``metrics`` (snapshot).  The
    overload variant adds ``qos`` (per-request priority/status records),
    ``n_admitted``, ``health_state`` and ``health_transitions``.
    """
    if bug is not None:
        raise ValueError(f"unknown planted bug {bug!r} for serve")
    if spec.options.get("variant", "burst") == "overload":
        return _run_serve_overload(spec, workdir)
    return _run_serve_burst(spec, workdir)


def _run_serve_burst(spec: ScenarioSpec, workdir: Path) -> Dict:
    from ..serve import ForceServer, ServeError

    opts = spec.options
    n_requests = int(opts.get("n_requests", 12))
    max_batch = int(opts.get("max_batch", 4))
    lj, systems, reference = _serve_systems(n_requests)

    plan = spec.fault_plan()
    metrics = Registry()
    # One worker keeps the plan's draw order single-threaded (the plan's
    # counters are not synchronized); the batching/retry/metrics paths are
    # exercised identically.
    server = ForceServer(
        lj,
        n_workers=1,
        max_batch=max_batch,
        batch_wait=1e-3,
        engine="eager",
        metrics=metrics,
        retry_policy=RetryPolicy(
            max_retries=2, base_delay=1e-4, max_delay=1e-3, seed=spec.seed
        ),
        fault_plan=plan,
        stall_time=2e-3,
        drain_timeout=30.0,
    )
    futures = [server.submit(s) for s in systems]
    outcomes = []
    for fut in futures:
        try:
            e, f = fut.result(timeout=60.0)
            outcomes.append(("ok", float(e), np.array(f)))
        except Exception as exc:
            outcomes.append(
                ("error", type(exc).__name__, isinstance(exc, ServeError))
            )
    server.stop(drain=True)

    return {
        "plan": plan,
        "registry": metrics,
        "outcomes": outcomes,
        "reference": reference,
        "metrics": metrics.snapshot(),
    }


#: Overload variant: priority class per request index (cycled) and which
#: indices carry an already-expired deadline (0.0 s).
_OVERLOAD_PRIORITIES = ("interactive", "batch", "background")


def _run_serve_overload(spec: ScenarioSpec, workdir: Path) -> Dict:
    from ..serve import (
        DeadlineExceeded,
        ForceServer,
        HealthMonitor,
        HealthThresholds,
        LoadShed,
        QoSPolicy,
        ServeError,
    )

    opts = spec.options
    n_requests = int(opts.get("n_requests", 16))
    max_batch = int(opts.get("max_batch", 2))
    max_queue = int(opts.get("max_queue", 6))
    lj, systems, reference = _serve_systems(n_requests)

    plan = spec.fault_plan()
    metrics = Registry()
    # Deterministic by construction: the server starts with no workers,
    # so the whole admission sequence (class bounds, health transitions,
    # evictions, pre-expired deadlines) is a pure function of the
    # submission order; the p99 health signal stays disabled and the
    # down-dwell is too long for wall-clock timing to move the machine.
    qos = QoSPolicy()
    health = HealthMonitor(
        thresholds=HealthThresholds(queue_degraded=0.3, queue_shedding=0.65),
        dwell_up=2,
        dwell_down=10_000,
    )
    server = ForceServer(
        lj,
        n_workers=1,
        max_batch=max_batch,
        max_queue=max_queue,
        batch_wait=1e-3,
        engine="eager",
        metrics=metrics,
        retry_policy=RetryPolicy(
            max_retries=2, base_delay=1e-4, max_delay=1e-3, seed=spec.seed
        ),
        fault_plan=plan,
        stall_time=2e-3,
        drain_timeout=30.0,
        start=False,
        qos=qos,
        health=health,
    )

    server.start(workers=False)  # admit deterministically, workers later
    futures: Dict[int, object] = {}
    records = []
    for k, system in enumerate(systems):
        priority = _OVERLOAD_PRIORITIES[k % len(_OVERLOAD_PRIORITIES)]
        # Every 5th-ish request arrives already expired (deadline 0):
        # the deterministic seed set for the deadline-shed path.
        deadline = 0.0 if k % 5 == 3 else None
        pending = server.stats()["qos"]["pending_by_class"]
        weaker = sum(
            n for p, n in pending.items()
            if _OVERLOAD_PRIORITIES.index(p) > _OVERLOAD_PRIORITIES.index(priority)
        )
        record = {
            "priority": priority,
            "deadline": deadline,
            "pending_weaker_at_submit": weaker,
            "pending_background_at_submit": pending.get("background", 0),
        }
        try:
            futures[k] = server.submit(system, priority=priority, deadline=deadline)
            record["admitted"] = True
        except Exception as exc:
            record["admitted"] = False
            record["status"] = "shed"
            record["error"] = type(exc).__name__
            record["typed"] = isinstance(exc, ServeError)
        records.append(record)

    server.start()
    outcomes = []
    for k in range(n_requests):
        fut = futures.get(k)
        record = records[k]
        if fut is None:
            outcomes.append(("error", record["error"], record["typed"]))
            continue
        try:
            e, f = fut.result(timeout=60.0)
            outcomes.append(("ok", float(e), np.array(f)))
            record["status"] = "ok"
            record["error"] = None
        except Exception as exc:
            outcomes.append(
                ("error", type(exc).__name__, isinstance(exc, ServeError))
            )
            if isinstance(exc, DeadlineExceeded):
                record["status"] = "expired"
            elif isinstance(exc, LoadShed):
                record["status"] = "shed"
            else:
                record["status"] = "error"
            record["error"] = type(exc).__name__
            record["typed"] = isinstance(exc, ServeError)
    health_state = server.health.state
    health_transitions = len(server.health.history())
    server.stop(drain=True)

    return {
        "plan": plan,
        "registry": metrics,
        "outcomes": outcomes,
        "reference": reference,
        "metrics": metrics.snapshot(),
        "qos": records,
        "n_admitted": sum(1 for r in records if r["admitted"]),
        "health_state": health_state,
        "health_transitions": health_transitions,
    }


# ---------------------------------------------------------------------------
# train
# ---------------------------------------------------------------------------
def run_train(spec: ScenarioSpec, workdir: Path, bug: Optional[str] = None) -> Dict:
    """Checkpointed ``Trainer.fit`` under step-failure / label-corruption /
    torn-checkpoint faults.

    The clean reference trains the *same materialized frames* (label
    corruption included) with no step/torn faults: step-failure retry is
    bitwise and torn checkpoints never touch the optimizer path, so the
    faulted model must match the reference bitwise, while the corrupted
    frames themselves must land in quarantine (``corrupted`` ⊆
    ``quarantined``).

    Extra keys: ``model_state``/``ref_model_state``, ``losses``,
    ``corrupted_indices``, ``quarantined_indices``, ``manager``.
    """
    from ..data import conformation_dataset, label_frames
    from ..models import ClassicalConfig, ClassicalForceField
    from ..nn import TrainConfig, Trainer

    if bug is not None:
        raise ValueError(f"unknown planted bug {bug!r} for train")
    opts = spec.options
    epochs = int(opts.get("epochs", 3))
    batch_size = int(opts.get("batch_size", 4))
    every = int(opts.get("checkpoint_every", 1))

    frames = label_frames(conformation_dataset(12, n_heavy=4, seed=11, sigma=0.06))
    train_frames, val_frames = frames[:8], frames[8:]

    plan = spec.fault_plan()
    corrupted_indices = []
    if TRAIN_LABEL_CORRUPTION in spec.channels():
        corrupter = CorruptedFrames(train_frames, plan, mode="nan")
        train_frames = corrupter.materialize()
        corrupted_indices = list(corrupter.corrupted_indices)

    def config():
        return TrainConfig(
            lr=5e-3,
            batch_size=batch_size,
            max_epochs=epochs,
            data_policy="quarantine",
            max_step_retries=3,
        )

    def model():
        return ClassicalForceField(ClassicalConfig(n_species=4, r_cut=3.5))

    reference = Trainer(model(), train_frames, val_frames, config())
    ref_stats = reference.fit(epochs)

    registry = Registry()
    manager = CheckpointManager(
        workdir / "train-ckpt", fault_plan=plan, registry=registry
    )
    faulted = Trainer(
        model(), train_frames, val_frames, config(),
        fault_plan=plan, registry=registry,
    )
    stats = faulted.fit(epochs, checkpoint_every=every, checkpoint_manager=manager)

    report = faulted.dataset_report
    quarantined = sorted(report.flagged_indices(include_soft=True)) if report else []

    return {
        "plan": plan,
        "registry": registry,
        "manager": manager,
        "model_state": faulted.model.state_dict(),
        "ref_model_state": reference.model.state_dict(),
        "losses": [s.train_loss for s in stats],
        "ref_losses": [s.train_loss for s in ref_stats],
        "corrupted_indices": corrupted_indices,
        "quarantined_indices": quarantined,
    }


WORKLOAD_RUNNERS = {
    "md": run_md,
    "parallel": run_parallel,
    "serve": run_serve,
    "train": run_train,
}


def run_workload(spec: ScenarioSpec, workdir: Path, bug: Optional[str] = None) -> Dict:
    """Dispatch ``spec`` to its workload runner."""
    return WORKLOAD_RUNNERS[spec.workload](spec, Path(workdir), bug=bug)
