"""The soak runner: execute scenarios, check invariants, shrink failures.

``run_scenario`` executes one :class:`ScenarioSpec` in a watchdog thread
(the liveness invariant is enforced here: a workload that hangs past its
deadline is a violation, not a stuck harness) and evaluates every
registered invariant against the observations.

``soak`` samples N seeded scenarios — rotating through all four workload
families — under a wall-clock budget.  Any violation triggers the
delta-debugging shrinker, and the minimized schedule is emitted as a
**reproducer artifact**: byte-deterministic JSON (``obs.jsonio``) holding
the shrunken spec, the violations it still produces, and the planted-bug
tag if one was active.  ``replay`` runs such an artifact back.

Everything in a soak report is derived from seeds and schedules — no
wall-clock values are recorded — so two same-seed soaks produce
byte-identical reports (the CI job ``cmp``-s them).
"""

from __future__ import annotations

import json
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..obs import to_json, write_json
from .invariants import Violation, check_all, registered_invariants
from .scenarios import WORKLOADS, ScenarioSpec, sample_scenario
from .shrink import ddmin
from .workloads import run_workload

__all__ = [
    "ScenarioOutcome",
    "run_scenario",
    "shrink_failure",
    "soak",
    "replay",
]

#: Spread scenario seeds apart so neighboring soak indices do not produce
#: correlated numpy substreams.
_SEED_STRIDE = 1_000_003


@dataclass
class ScenarioOutcome:
    """One executed scenario: its spec, violations, and raw observations."""

    spec: ScenarioSpec
    violations: List[Violation]
    obs: Dict = field(repr=False, default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict:
        return {
            "spec": self.spec.to_dict(),
            "status": "ok" if self.ok else "violated",
            "violations": [v.to_dict() for v in self.violations],
        }


def run_scenario(spec: ScenarioSpec, bug: Optional[str] = None) -> ScenarioOutcome:
    """Execute one scenario and evaluate every applicable invariant.

    The workload runs in a daemon thread joined against the spec's
    deadline; checkpoints live in a private temp directory cleaned up
    afterwards (kept alive only as long as the invariants need it).
    """
    workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    obs: Dict = {"workload": spec.workload, "error": None, "timed_out": False}
    done = threading.Event()

    def target() -> None:
        try:
            obs.update(run_workload(spec, workdir, bug=bug))
        except Exception as exc:
            obs["error"] = f"{type(exc).__name__}: {exc}"
        finally:
            done.set()

    thread = threading.Thread(target=target, name="chaos-workload", daemon=True)
    thread.start()
    if not done.wait(timeout=spec.deadline_s):
        obs["timed_out"] = True
    violations = check_all(obs)
    shutil.rmtree(workdir, ignore_errors=True)
    return ScenarioOutcome(spec=spec, violations=violations, obs=obs)


def shrink_failure(
    spec: ScenarioSpec, bug: Optional[str] = None, max_tests: int = 64
) -> Dict:
    """Delta-debug a failing scenario down to a minimal reproducer dict.

    Re-runs the scenario under event subsets (``ddmin``); an event
    survives only if the failure needs it.  The returned dict is the
    reproducer artifact payload — serialize it with ``obs.jsonio`` for a
    byte-deterministic, ``chaos replay``-able file.
    """

    def still_fails(events) -> bool:
        return not run_scenario(spec.with_events(events), bug=bug).ok

    minimal_events = ddmin(list(spec.events), still_fails, max_tests=max_tests)
    minimal = spec.with_events(minimal_events)
    outcome = run_scenario(minimal, bug=bug)
    return {
        "kind": "chaos-reproducer",
        "original_events": [e.to_list() for e in spec.events],
        "spec": minimal.to_dict(),
        "violations": [v.to_dict() for v in outcome.violations],
        "bug": bug,
    }


def soak(
    n: int,
    seed: int = 0,
    budget_s: Optional[float] = None,
    workloads=WORKLOADS,
    deadline_s: Optional[float] = None,
    bug: Optional[str] = None,
    shrink: bool = True,
    reproducer_dir=None,
    progress=None,
) -> Dict:
    """Run ``n`` seeded composed-fault scenarios; shrink any failure.

    Scenario ``i`` is ``sample_scenario(seed * stride + i)`` pinned to
    ``workloads[i % len(workloads)]`` — deterministic coverage of every
    family.  ``budget_s`` bounds wall-clock: remaining scenarios are
    skipped (and counted as skipped) once it is exhausted.  The report
    contains no wall-clock values, so same-seed runs that complete the
    same scenarios are byte-identical.
    """
    t0 = time.monotonic()
    entries: List[Dict] = []
    outcomes: List[ScenarioOutcome] = []
    n_violated = 0
    skipped = 0
    for i in range(int(n)):
        if budget_s is not None and time.monotonic() - t0 > budget_s:
            skipped = int(n) - i
            break
        spec = sample_scenario(
            int(seed) * _SEED_STRIDE + i, workload=workloads[i % len(workloads)]
        )
        if deadline_s is not None:
            spec.deadline_s = float(deadline_s)
        outcome = run_scenario(spec, bug=bug)
        outcomes.append(outcome)
        entry = outcome.to_dict()
        if not outcome.ok:
            n_violated += 1
            if shrink:
                reproducer = shrink_failure(spec, bug=bug)
                entry["reproducer"] = reproducer
                if reproducer_dir is not None:
                    path = Path(reproducer_dir) / f"reproducer-{i:04d}.json"
                    write_json(path, reproducer)
        entries.append(entry)
        if progress is not None:
            progress(i, outcome)
    report = {
        "kind": "chaos-soak",
        "seed": int(seed),
        "n_requested": int(n),
        "n_run": len(entries),
        "n_skipped_budget": skipped,
        "workloads": list(workloads),
        "invariants": registered_invariants(),
        "summary": {"passed": len(entries) - n_violated, "violated": n_violated},
        "scenarios": entries,
    }
    return report


def replay(source, bug: Optional[str] = None) -> ScenarioOutcome:
    """Re-run a reproducer artifact (path, JSON string, or dict).

    Accepts either a bare spec dict or a full reproducer artifact (uses
    its ``spec`` and, unless overridden, its recorded ``bug`` tag).
    """
    if isinstance(source, (str, Path)) and Path(str(source)).exists():
        raw = json.loads(Path(source).read_text())
    elif isinstance(source, str):
        raw = json.loads(source)
    else:
        raw = dict(source)
    if "spec" in raw:
        if bug is None:
            bug = raw.get("bug")
        raw = raw["spec"]
    spec = ScenarioSpec.from_dict(raw)
    return run_scenario(spec, bug=bug)


def report_json(report: Dict) -> str:
    """Deterministic JSON for a soak report or reproducer artifact."""
    return to_json(report)
