"""Scenario specs: seeded, composed, replayable multi-fault schedules.

A :class:`ScenarioSpec` is the unit of chaos testing: one workload (an MD
ensemble, a 4-rank parallel run, a burst of ForceServer traffic, or a
``Trainer.fit``) plus an **explicit schedule** of fault events — pairs of
``(channel, draw index)`` interpreted by :class:`repro.resilience.FaultPlan`
in exact-``at`` mode.  Explicit events (rather than rates) are what make
the schedule shrinkable: the delta-debugging minimizer subsets the event
list and re-runs, and the surviving events *are* the reproducer.

Because a channel's draw counter advances deterministically with the
workload (one draw per force call / message send / batch attempt / frame /
checkpoint save — see the fault-channel table in the README), the same
spec replays the same faults, including faults whose draw index lands
*inside a recovery replay* — the second-order paths single-fault unit
tests never reach.

:func:`sample_scenario` derives a composed scenario (always ≥ 2 fault
channels) deterministically from an integer seed, so a soak run is fully
described by ``(seed, n)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..resilience import (
    COMM_DELAY,
    COMM_DROP,
    POTENTIAL_CORRUPT,
    RANK_FAIL,
    REPLAY_FAIL,
    TORN_WRITE,
    TRAJ_TORN_CHUNK,
    TRAIN_LABEL_CORRUPTION,
    TRAIN_STEP_FAILURE,
    WORKER_CRASH,
    WORKER_STALL,
    FaultPlan,
)

__all__ = [
    "WORKLOADS",
    "CHANNELS_BY_WORKLOAD",
    "FaultEvent",
    "ScenarioSpec",
    "sample_scenario",
]

#: The four workload families every soak must cover.
WORKLOADS = ("md", "parallel", "serve", "train")

#: Which fault channels compose with which workload.  (``md`` splits
#: further by engine: ``potential.corrupt`` needs the eager wrapper,
#: ``engine.replay_fail`` needs the compiled evaluator.)
CHANNELS_BY_WORKLOAD = {
    "md": (POTENTIAL_CORRUPT, REPLAY_FAIL, TORN_WRITE, TRAJ_TORN_CHUNK),
    "parallel": (COMM_DROP, COMM_DELAY, RANK_FAIL, TRAJ_TORN_CHUNK),
    "serve": (WORKER_CRASH, WORKER_STALL),
    "train": (TRAIN_STEP_FAILURE, TRAIN_LABEL_CORRUPTION, TORN_WRITE),
}

#: Draw-index sampling window and max events per channel:
#: ``channel -> (lo, hi, max_events)``.  Bounds are chosen so events land
#: inside the workload's actual draw horizon, stay clear of draw 0 where
#: a fault is unsurvivable by design (the initial force evaluation, the
#: anchor checkpoint), and never exceed the relevant retry budget with a
#: consecutive run (e.g. ≤ 2 consecutive ``train.step_failure`` events
#: vs. ``max_step_retries=3``).
_EVENT_WINDOWS: Dict[Tuple[str, str], Tuple[int, int, int]] = {
    ("md", POTENTIAL_CORRUPT): (1, 22, 3),
    ("md", REPLAY_FAIL): (1, 20, 3),
    ("md", TORN_WRITE): (1, 4, 2),
    # One draw per chunk commit (barrier/close included): 24 steps at
    # dump_every=3 with checkpoint-pinned chunks lands ~5 commits.
    ("md", TRAJ_TORN_CHUNK): (0, 5, 2),
    ("parallel", COMM_DROP): (0, 150, 3),
    ("parallel", COMM_DELAY): (0, 150, 3),
    ("parallel", RANK_FAIL): (0, 8, 2),
    ("parallel", TRAJ_TORN_CHUNK): (0, 3, 1),
    ("serve", WORKER_CRASH): (0, 4, 2),
    ("serve", WORKER_STALL): (0, 4, 2),
    ("train", TRAIN_STEP_FAILURE): (0, 5, 2),
    ("train", TRAIN_LABEL_CORRUPTION): (0, 8, 2),
    ("train", TORN_WRITE): (1, 3, 1),
}

_MD_KINDS = ("nve", "nvt_langevin", "nvt_nosehoover", "npt")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled injection: the ``index``-th draw on ``channel`` fires."""

    channel: str
    index: int

    def to_list(self) -> List:
        return [self.channel, int(self.index)]

    @classmethod
    def from_list(cls, raw: Iterable) -> "FaultEvent":
        channel, index = raw
        return cls(str(channel), int(index))


@dataclass
class ScenarioSpec:
    """A deterministic, replayable chaos scenario.

    ``events`` fully determines the fault schedule; ``seed`` additionally
    seeds workload-internal randomness (retry jitter).  ``options`` holds
    the workload knobs (ensemble kind, step/epoch counts, engine) — the
    spec round-trips through :meth:`to_dict` byte-deterministically via
    ``obs.jsonio``, which is what makes a reproducer artifact replayable.
    """

    workload: str
    seed: int
    events: Tuple[FaultEvent, ...]
    options: Dict = field(default_factory=dict)
    deadline_s: float = 120.0

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(f"unknown workload {self.workload!r} {WORKLOADS}")
        self.events = tuple(
            e if isinstance(e, FaultEvent) else FaultEvent.from_list(e)
            for e in self.events
        )

    # -- derived views ---------------------------------------------------------
    def channels(self) -> List[str]:
        return sorted({e.channel for e in self.events})

    def fault_plan(self) -> FaultPlan:
        """A fresh exact-schedule :class:`FaultPlan` for one run of the spec."""
        at: Dict[str, List[int]] = {}
        for e in self.events:
            at.setdefault(e.channel, []).append(int(e.index))
        return FaultPlan(seed=self.seed, at=at)

    def with_events(self, events: Iterable[FaultEvent]) -> "ScenarioSpec":
        """The same scenario under a (typically shrunken) sub-schedule."""
        return ScenarioSpec(
            workload=self.workload,
            seed=self.seed,
            events=tuple(events),
            options=dict(self.options),
            deadline_s=self.deadline_s,
        )

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "workload": self.workload,
            "seed": int(self.seed),
            "events": [e.to_list() for e in self.events],
            "options": dict(self.options),
            "deadline_s": float(self.deadline_s),
        }

    @classmethod
    def from_dict(cls, raw: Dict) -> "ScenarioSpec":
        return cls(
            workload=str(raw["workload"]),
            seed=int(raw["seed"]),
            events=tuple(FaultEvent.from_list(e) for e in raw.get("events", [])),
            options=dict(raw.get("options", {})),
            deadline_s=float(raw.get("deadline_s", 120.0)),
        )


def _sample_events(
    rng: np.random.Generator, workload: str, channels: Iterable[str]
) -> Tuple[FaultEvent, ...]:
    events: List[FaultEvent] = []
    for channel in channels:
        lo, hi, max_events = _EVENT_WINDOWS[(workload, channel)]
        k = min(1 + int(rng.integers(max_events)), hi - lo)
        idx = rng.choice(np.arange(lo, hi), size=k, replace=False)
        events.extend(FaultEvent(channel, int(i)) for i in sorted(idx))
    return tuple(events)


def sample_scenario(seed: int, workload: Optional[str] = None) -> ScenarioSpec:
    """Derive a composed (≥ 2 channel) scenario deterministically from ``seed``.

    The same seed always yields the same spec; passing ``workload`` pins
    the family (the soak runner rotates through all four).
    """
    rng = np.random.default_rng(int(seed))
    if workload is None:
        workload = WORKLOADS[int(rng.integers(len(WORKLOADS)))]
    if workload == "md":
        # potential.corrupt needs the eager FaultyPotential wrapper,
        # engine.replay_fail needs the compiled evaluator — each engine
        # variant composes its force-path channel with torn checkpoints.
        engine = "eager" if rng.uniform() < 0.6 else "compiled"
        force_channel = POTENTIAL_CORRUPT if engine == "eager" else REPLAY_FAIL
        channels = (force_channel, TORN_WRITE, TRAJ_TORN_CHUNK)
        options = {
            "kind": _MD_KINDS[int(rng.integers(len(_MD_KINDS)))],
            "engine": engine,
            "steps": 24,
            "checkpoint_every": 6,
        }
    elif workload == "parallel":
        pool = [COMM_DROP, COMM_DELAY, RANK_FAIL]
        m = 2 + int(rng.integers(2))
        picked = rng.choice(len(pool), size=m, replace=False)
        channels = tuple(pool[int(i)] for i in sorted(picked)) + (
            TRAJ_TORN_CHUNK,
        )
        options = {"steps": 8, "n_ranks": 4}
    elif workload == "serve":
        channels = CHANNELS_BY_WORKLOAD["serve"]
        # Two variants: the plain burst, and an overload burst (2× the
        # queue bound, QoS enforced, mixed priorities, some requests
        # pre-expired) that exercises shedding/deadline/health paths.
        if rng.uniform() < 0.5:
            options = {
                "variant": "overload",
                "n_requests": 16,
                "max_batch": 2,
                "max_queue": 6,
            }
        else:
            options = {"n_requests": 12, "max_batch": 4}
    else:  # train
        pool = list(CHANNELS_BY_WORKLOAD["train"])
        m = 2 + int(rng.integers(2))
        picked = rng.choice(len(pool), size=m, replace=False)
        channels = tuple(pool[int(i)] for i in sorted(picked))
        options = {"epochs": 3, "batch_size": 4, "checkpoint_every": 1}
    return ScenarioSpec(
        workload=workload,
        seed=int(seed),
        events=_sample_events(rng, workload, channels),
        options=options,
    )
