"""System invariant checkers: what must hold after *any* fault schedule.

A chaos campaign is only as strong as its oracle.  Each checker below
states one cross-cutting guarantee of the stack and verifies it against a
workload observation dict (:mod:`repro.chaos.workloads`); the soak runner
evaluates **every applicable checker after every scenario**.  A fault
schedule that breaks any of them is a real bug (or a planted one), and
the schedule is handed to the shrinker.

The registry is open: ``@invariant("name", workloads=(...))`` registers a
checker returning a list of human-readable violation messages (empty =
holds).  A checker that itself crashes is reported as a violation — the
oracle failing silently would defeat the harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..resilience import (
    RANK_FAIL,
    TORN_WRITE,
    TRAJ_TORN_CHUNK,
    TRAIN_STEP_FAILURE,
)

__all__ = ["Violation", "invariant", "registered_invariants", "check_all"]


@dataclass(frozen=True)
class Violation:
    """One broken invariant: which checker, and what it observed."""

    invariant: str
    message: str

    def to_dict(self) -> Dict[str, str]:
        return {"invariant": self.invariant, "message": self.message}


@dataclass(frozen=True)
class _Checker:
    name: str
    workloads: Optional[Tuple[str, ...]]
    fn: Callable[[dict], List[str]]


_REGISTRY: Dict[str, _Checker] = {}


def invariant(name: str, workloads: Optional[Sequence[str]] = None):
    """Register a checker; ``workloads=None`` applies it to every scenario."""

    def wrap(fn: Callable[[dict], List[str]]):
        _REGISTRY[name] = _Checker(
            name, tuple(workloads) if workloads else None, fn
        )
        return fn

    return wrap


def registered_invariants() -> List[str]:
    return list(_REGISTRY)


def check_all(obs: dict) -> List[Violation]:
    """Evaluate every applicable invariant against one observation dict.

    Liveness and crash-freedom gate the rest: a hung or crashed workload
    produces no meaningful state to inspect, so only their violations are
    reported in that case.
    """
    gate: List[Violation] = []
    if obs.get("timed_out"):
        gate.append(
            Violation("liveness", "workload exceeded its deadline (hang)")
        )
    if obs.get("error") is not None:
        gate.append(
            Violation(
                "no_crash",
                f"workload raised instead of degrading: {obs['error']}",
            )
        )
    if gate:
        return gate

    out: List[Violation] = []
    for checker in _REGISTRY.values():
        if checker.workloads and obs.get("workload") not in checker.workloads:
            continue
        try:
            messages = checker.fn(obs)
        except Exception as exc:  # the oracle must never fail silently
            messages = [f"checker crashed: {type(exc).__name__}: {exc}"]
        out.extend(Violation(checker.name, m) for m in messages)
    return out


# ---------------------------------------------------------------------------
# Checkers
# ---------------------------------------------------------------------------
def _bitwise(a: np.ndarray, b: np.ndarray) -> bool:
    return a.shape == b.shape and bool(np.array_equal(a, b))


@invariant("md_bitwise_vs_clean", workloads=("md",))
def _md_bitwise(obs: dict) -> List[str]:
    """Faulted-but-recovered MD equals the clean run bitwise.

    Watchdog rollback replays from a checkpoint; torn checkpoints are
    skipped to an older one and replayed further — either way the final
    phase-space point and the recorded series must be *bitwise* those of
    the fault-free trajectory."""
    out = []
    for key in ("positions", "velocities"):
        if not _bitwise(obs["final"][key], obs["reference"][key]):
            out.append(f"final {key} differ from the clean run (not bitwise)")
    if not _bitwise(obs["series"], obs["ref_series"]):
        out.append("recorded potential-energy series differs from the clean run")
    return out


@invariant("train_bitwise_vs_clean", workloads=("train",))
def _train_bitwise(obs: dict) -> List[str]:
    """Step-failure retry and torn checkpoints never perturb training math."""
    out = []
    state, ref = obs["model_state"], obs["ref_model_state"]
    if sorted(state) != sorted(ref):
        return ["model state keys differ from the clean run"]
    for key in sorted(state):
        if not _bitwise(np.asarray(state[key]), np.asarray(ref[key])):
            out.append(f"model param {key!r} differs from the clean run")
    if list(obs["losses"]) != list(obs["ref_losses"]):
        out.append("per-epoch training losses differ from the clean run")
    return out


@invariant("force_sanity")
def _force_sanity(obs: dict) -> List[str]:
    """No non-finite value may survive to an observable output."""
    out = []
    for key in ("series", "losses"):
        values = obs.get(key)
        if values is not None and not np.all(np.isfinite(np.asarray(values))):
            out.append(f"non-finite values leaked into {key}")
    final = obs.get("final") or {}
    for key, arr in final.items():
        if not np.all(np.isfinite(arr)):
            out.append(f"non-finite values leaked into final {key}")
    for o in obs.get("outcomes") or []:
        if o[0] == "ok" and not (
            np.isfinite(o[1]) and np.all(np.isfinite(o[2]))
        ):
            out.append("a served result contains non-finite values")
    return out


@invariant("parallel_matches_reference", workloads=("parallel",))
def _parallel_reference(obs: dict) -> List[str]:
    """Retransmission and rank-failure recovery are transparent.

    Rank rebuild may reorder the force reduction (tight tolerance rather
    than bitwise equality) and recovery may re-wrap positions into the
    box, so the comparison is under the minimum-image convention."""
    a, b = obs["final"]["positions"], obs["reference"]["positions"]
    if a.shape != b.shape:
        return ["faulted run lost/gained atoms vs the clean run"]
    delta = a - b
    length = obs.get("box_length")
    if length:
        delta -= length * np.round(delta / length)
    err = float(np.max(np.abs(delta))) if delta.size else 0.0
    if err > 1e-8:
        return [f"positions drifted from the clean run (max |Δ| = {err:.3e})"]
    return []


@invariant("serve_no_silent_drop", workloads=("serve",))
def _serve_no_silent_drop(obs: dict) -> List[str]:
    """Every admitted request completes correctly-or-explicitly.

    A success must be bitwise the direct eager result; a failure must be
    an explicit ServeError subclass — never a bare exception, never a
    forever-pending future (those surface as gather timeouts)."""
    out = []
    for k, o in enumerate(obs["outcomes"]):
        if o[0] == "ok":
            e_ref, f_ref = obs["reference"][k]
            if o[1] != e_ref or not _bitwise(o[2], f_ref):
                out.append(f"request {k}: served result is not bitwise eager")
        elif not o[2]:
            out.append(
                f"request {k}: failed with non-ServeError {o[1]} "
                "(implicit failure)"
            )
    return out


@invariant("metrics_consistency")
def _metrics_consistency(obs: dict) -> List[str]:
    """obs counters must sum to the events that actually happened."""
    out = []
    plan = obs.get("plan")
    registry = obs.get("registry")
    if plan is None or registry is None:
        return out
    snap = registry.snapshot()
    counters = snap.get("counters", {})
    workload = obs.get("workload")

    manager = obs.get("manager")
    if manager is not None:
        if counters.get("checkpoint.torn_writes", 0) != plan.fired(TORN_WRITE):
            out.append(
                "checkpoint.torn_writes counter "
                f"({counters.get('checkpoint.torn_writes', 0)}) != "
                f"plan firings ({plan.fired(TORN_WRITE)})"
            )
        if manager.n_torn != plan.fired(TORN_WRITE):
            out.append("manager.n_torn disagrees with the fault plan")

    if workload == "md":
        if counters.get("md.recoveries", 0) != obs["n_recoveries"]:
            out.append("md.recoveries counter disagrees with the simulation")
        if obs["watchdog_trips"] != obs["n_recoveries"]:
            out.append("watchdog trips != recoveries (a trip was not recovered)")
    elif workload == "parallel":
        comm = obs["comm"]
        if comm["n_retransmits"] < comm["n_dropped"]:
            out.append("dropped messages not all retransmitted")
        if comm["pending"] != 0:
            out.append(f"{comm['pending']} messages still pending after the run")
        if obs["n_recoveries"] != plan.fired(RANK_FAIL):
            out.append("rank-failure recoveries != injected rank failures")
    elif workload == "serve":
        m = obs["metrics"].get("counters", obs["metrics"])
        admitted = m.get("requests_admitted", 0)
        resolved = (
            m.get("requests_served", 0)
            + m.get("requests_failed", 0)
            + m.get("requests_timeout", 0)
            + m.get("requests_expired", 0)
        )
        if admitted != resolved:
            out.append(
                f"admitted ({admitted}) != served+failed+timeout+expired "
                f"({resolved})"
            )
        # The overload variant sheds some submissions at the door, so the
        # admitted counter tracks its own tally rather than the request
        # count; the plain burst admits everything.
        expect = obs.get("n_admitted", len(obs["outcomes"]))
        if admitted != expect:
            out.append(
                f"admitted counter ({admitted}) != admitted submissions "
                f"({expect})"
            )
    elif workload == "train":
        if counters.get("train.step_failures", 0) != plan.fired(
            TRAIN_STEP_FAILURE
        ):
            out.append("train.step_failures counter != injected step failures")
    return out


def _labeled_sum(counters: Dict, prefix: str) -> int:
    """Sum a labeled counter family, e.g. ``serve.shed.load{class=...}``."""
    return sum(
        int(v) for k, v in counters.items() if k.startswith(prefix + "{")
    )


@invariant("serve_shed_typed", workloads=("serve",))
def _serve_shed_typed(obs: dict) -> List[str]:
    """Every shed or expired request got a typed error and was never evaluated.

    Only the QoS overload variant records per-request ``qos`` dicts; the
    checker also cross-foots the ``serve.shed.*`` counters against the
    recorded outcomes — a shed the metrics missed (or vice versa) is a
    violation."""
    records = obs.get("qos")
    if records is None:
        return []
    out = []
    outcomes = obs["outcomes"]
    for k, rec in enumerate(records):
        status = rec.get("status")
        if status in ("shed", "expired"):
            if not rec.get("typed"):
                out.append(
                    f"request {k}: {status} with non-ServeError "
                    f"{rec.get('error')}"
                )
            if outcomes[k][0] == "ok":
                out.append(f"request {k}: {status} yet evaluated (leaked)")
            if status == "expired" and rec.get("error") != "DeadlineExceeded":
                out.append(
                    f"request {k}: expired with {rec.get('error')} "
                    "instead of DeadlineExceeded"
                )
        elif not rec.get("admitted"):
            out.append(f"request {k}: rejected without a shed record")
    counters = obs["metrics"].get("counters", obs["metrics"])
    n_shed = sum(1 for r in records if r.get("status") == "shed")
    n_expired = sum(1 for r in records if r.get("status") == "expired")
    n_ok = sum(1 for r in records if r.get("status") == "ok")
    if _labeled_sum(counters, "serve.shed.load") != n_shed:
        out.append(
            f"serve.shed.load counters sum to "
            f"{_labeled_sum(counters, 'serve.shed.load')} but {n_shed} "
            "requests were shed"
        )
    if _labeled_sum(counters, "serve.shed.deadline") != n_expired:
        out.append(
            f"serve.shed.deadline counters sum to "
            f"{_labeled_sum(counters, 'serve.shed.deadline')} but "
            f"{n_expired} requests expired"
        )
    if counters.get("requests_served", 0) != n_ok:
        out.append(
            f"requests_served ({counters.get('requests_served', 0)}) != "
            f"ok outcomes ({n_ok})"
        )
    return out


@invariant("serve_no_priority_inversion", workloads=("serve",))
def _serve_no_priority_inversion(obs: dict) -> List[str]:
    """No interactive request is shed while background work is queued.

    Strict-priority admission must never sacrifice the top class for a
    weaker one: an interactive shed with background requests pending at
    that instant — or an admitted interactive request later evicted —
    is a priority inversion."""
    records = obs.get("qos")
    if records is None:
        return []
    out = []
    for k, rec in enumerate(records):
        if rec.get("priority") != "interactive" or rec.get("status") != "shed":
            continue
        if rec.get("admitted"):
            out.append(
                f"request {k}: admitted interactive request was evicted "
                "(inversion: only weaker classes may be displaced)"
            )
        elif rec.get("pending_background_at_submit", 0) > 0:
            out.append(
                f"request {k}: interactive shed while "
                f"{rec['pending_background_at_submit']} background "
                "request(s) were queued"
            )
    return out


@invariant("train_no_silent_poison", workloads=("train",))
def _train_quarantine(obs: dict) -> List[str]:
    """Every corrupted frame must land in quarantine before training."""
    missed = set(obs["corrupted_indices"]) - set(obs["quarantined_indices"])
    if missed:
        return [f"corrupted frames {sorted(missed)} escaped quarantine"]
    return []


@invariant("traj_integrity", workloads=("md", "parallel"))
def _traj_integrity(obs: dict) -> List[str]:
    """The trajectory reader never surfaces a corrupt frame, and accounts.

    Under ``traj.torn_chunk`` every durable frame must be either readable
    (CRC-verified, all values finite) or quarantined — reading must never
    raise mid-iteration, and ``frames_durable == frames_readable +
    frames_quarantined`` must cross-foot exactly, counters included."""
    traj = obs.get("traj")
    if traj is None:
        return []
    from ..traj import TrajectoryReader

    out = []
    plan = obs.get("plan")
    stats = traj["stats"]
    with TrajectoryReader(traj["faulted_path"]) as reader:
        n_readable = 0
        for frame in reader.frames():  # must never raise
            n_readable += 1
            if not (
                np.all(np.isfinite(frame.positions))
                and np.all(np.isfinite(frame.velocities))
            ):
                out.append(
                    f"frame at step {frame.step} passed its CRC yet holds "
                    "non-finite values"
                )
        quarantined = reader.frames_quarantined
    if stats["frames_durable"] != n_readable + quarantined:
        out.append(
            f"frame accounting broken: {stats['frames_durable']} durable != "
            f"{n_readable} readable + {quarantined} quarantined"
        )
    if plan is not None:
        fired = plan.fired(TRAJ_TORN_CHUNK)
        if fired == 0 and quarantined:
            out.append(
                f"{quarantined} frames quarantined with no torn chunk injected"
            )
        if stats.get("torn_chunks", 0) != fired:
            out.append(
                f"store torn_chunks ({stats.get('torn_chunks', 0)}) != plan "
                f"firings ({fired})"
            )
    return out


@invariant("traj_matches_clean", workloads=("md", "parallel"))
def _traj_matches_clean(obs: dict) -> List[str]:
    """Dumped frames under faults match the fault-free trajectory.

    For md: with no torn chunk injected the faulted file is **bitwise**
    the clean file (watchdog rollback + replay re-dump identical bytes,
    chunk boundaries pinned by checkpoint barriers); with torn chunks,
    every *readable* frame must still match the clean frame at the same
    step bitwise.  For parallel: rank-failure recovery may reorder the
    force reduction, so frames compare under the minimum-image convention
    at tight tolerance instead."""
    traj = obs.get("traj")
    if traj is None:
        return []
    from pathlib import Path

    from ..traj import TrajectoryReader

    plan = obs.get("plan")
    workload = obs.get("workload")
    torn = plan.fired(TRAJ_TORN_CHUNK) if plan is not None else 0
    if workload == "md" and torn == 0:
        a = Path(traj["faulted_path"]).read_bytes()
        b = Path(traj["clean_path"]).read_bytes()
        if a != b:
            return [
                "faulted trajectory file is not bitwise the clean file "
                "(no torn chunk was injected)"
            ]
        return []

    out = []
    with TrajectoryReader(traj["clean_path"]) as reader:
        clean = {f.step: f for f in reader.frames()}
    length = obs.get("box_length")
    with TrajectoryReader(traj["faulted_path"]) as reader:
        for frame in reader.frames():
            ref = clean.get(frame.step)
            if ref is None:
                out.append(
                    f"faulted run dumped step {frame.step}, absent from "
                    "the clean trajectory"
                )
                continue
            if workload == "md":
                if not (
                    _bitwise(frame.positions, ref.positions)
                    and _bitwise(frame.velocities, ref.velocities)
                ):
                    out.append(
                        f"readable frame at step {frame.step} differs from "
                        "the clean run (not bitwise)"
                    )
            else:
                delta = frame.positions - ref.positions
                if length:
                    delta -= length * np.round(delta / length)
                err = float(np.max(np.abs(delta))) if delta.size else 0.0
                if err > 1e-8:
                    out.append(
                        f"frame at step {frame.step} drifted from the clean "
                        f"run (max |Δ| = {err:.3e})"
                    )
    return out


@invariant("checkpoint_chain")
def _checkpoint_chain(obs: dict) -> List[str]:
    """Retained checkpoints form a loadable, ascending chain.

    Torn files may linger on disk, but (a) they can never outnumber the
    injected torn writes still retained, (b) the newest *verifiable*
    checkpoint must load, and (c) the skip counter must record every file
    walked past."""
    manager = obs.get("manager")
    if manager is None:
        return []
    out = []
    steps = manager.steps()
    if steps != sorted(steps):
        out.append("retained checkpoint steps are not ascending")
    unloadable = 0
    for step in steps:
        try:
            manager.load_step(step)
        except Exception:
            unloadable += 1
    if unloadable > manager.n_torn:
        out.append(
            f"{unloadable} retained checkpoints unloadable but only "
            f"{manager.n_torn} torn writes were injected"
        )
    if steps:
        if unloadable == len(steps):
            out.append("every retained checkpoint is unloadable")
        else:
            try:
                manager.load_latest()
            except Exception as exc:
                out.append(
                    "load_latest failed despite a verifiable checkpoint: "
                    f"{type(exc).__name__}: {exc}"
                )
    registry = obs.get("registry")
    if registry is not None:
        snap = registry.snapshot().get("counters", {})
        skipped = snap.get("checkpoint.skipped_corrupt", 0)
        if skipped and manager.n_torn == 0:
            # No torn write was injected, yet recovery walked past a file:
            # something corrupted a checkpoint silently.
            out.append(
                f"{skipped} checkpoints skipped as corrupt with no torn "
                "write injected"
            )
    return out
