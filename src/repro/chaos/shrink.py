"""Delta-debugging shrinker for fault schedules.

When a soak scenario violates an invariant, the raw failing schedule can
contain many injected events that have nothing to do with the defect.
:func:`ddmin` is Zeller's classic delta-debugging minimization applied to
the event list: it repeatedly re-runs the scenario with subsets of the
schedule, keeping any subset that still fails, until the result is
**1-minimal** — removing any single remaining event makes the scenario
pass.  The minimal schedule is what lands in the reproducer artifact.

The algorithm is fully deterministic given a deterministic ``test``
predicate and input order (chunk boundaries depend only on list length),
so two shrinks of the same failure produce byte-identical reproducers —
the property the CI soak job pins down with ``cmp``.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

__all__ = ["ddmin"]

T = TypeVar("T")


def _chunks(items: List[T], n: int) -> List[List[T]]:
    """Split ``items`` into ``n`` contiguous chunks of near-equal size."""
    out, start = [], 0
    for k in range(n):
        end = start + (len(items) - start) // (n - k)
        if end > start:
            out.append(items[start:end])
        start = end
    return out


def ddmin(
    events: Sequence[T],
    test: Callable[[List[T]], bool],
    max_tests: int = 256,
) -> List[T]:
    """Minimize ``events`` to a 1-minimal subset for which ``test`` is True.

    Parameters
    ----------
    events:
        The failing schedule.  ``test(list(events))`` is assumed True (the
        caller observed the failure); it is not re-checked here.
    test:
        Deterministic predicate: True when the subset still reproduces the
        failure.  Order of surviving events is preserved.
    max_tests:
        Hard bound on predicate invocations — shrinking trades a handful
        of scenario re-runs for a small reproducer, never an unbounded
        search.
    """
    current = list(events)
    if not current:
        return current
    budget = [int(max_tests)]

    def run(subset: List[T]) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        return bool(test(subset))

    # A defect that fires with no faults at all shrinks to the empty
    # schedule — the strongest possible reproducer.
    if run([]):
        return []

    n = 2
    while len(current) >= 2:
        chunks = _chunks(current, n)
        reduced = False
        # Try each chunk alone (subset), then each complement.
        for chunk in chunks:
            if len(chunk) < len(current) and run(chunk):
                current = chunk
                n = 2
                reduced = True
                break
        if not reduced:
            for i in range(len(chunks)):
                complement = [e for j, c in enumerate(chunks) for e in c if j != i]
                if complement and len(complement) < len(current) and run(complement):
                    current = complement
                    n = max(n - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if n >= len(current):
                break
            n = min(len(current), 2 * n)
    return current
