"""repro.chaos — deterministic chaos harness over the whole stack.

The resilience layer (checkpoints, watchdogs, retries, breakers,
retransmission) is validated unit-by-unit elsewhere; this package is its
adversarial counterpart: **composed, randomized-but-seeded multi-fault
campaigns** with system-level oracles, the verification shape large-scale
MD and serving deployments rely on to trust long runs on failure-prone
hardware.

Three layers:

* **Scenarios** (:mod:`~repro.chaos.scenarios`) — a
  :class:`ScenarioSpec` composes an explicit, seeded schedule of fault
  events (≥ 2 channels: comm drop/delay, rank failure, worker
  crash/stall, replay failure, potential/label corruption, torn
  checkpoint writes) over one of four workloads: guarded MD, 4-rank
  parallel MD, ForceServer traffic, ``Trainer.fit``.  Draw-indexed
  schedules land faults *inside recovery replays* too — the second-order
  paths single-fault tests never reach.
* **Invariants** (:mod:`~repro.chaos.invariants`) — registered system
  oracles evaluated after every scenario: bitwise resume identity,
  force/energy sanity, liveness, serve correctly-or-explicitly,
  metrics/trace consistency, checkpoint-chain integrity.
* **Soak + shrink** (:mod:`~repro.chaos.runner`,
  :mod:`~repro.chaos.shrink`) — ``soak(n, seed)`` runs N scenarios under
  a wall-clock budget; any violation is delta-debugged (``ddmin``) to a
  1-minimal fault schedule and emitted as a byte-deterministic JSON
  reproducer, replayable via ``repro.cli chaos replay``.

CLI: ``python -m repro.cli chaos {run,soak,replay}``.
"""

from .invariants import Violation, check_all, invariant, registered_invariants
from .runner import (
    ScenarioOutcome,
    replay,
    report_json,
    run_scenario,
    shrink_failure,
    soak,
)
from .scenarios import (
    CHANNELS_BY_WORKLOAD,
    WORKLOADS,
    FaultEvent,
    ScenarioSpec,
    sample_scenario,
)
from .shrink import ddmin
from .workloads import WORKLOAD_RUNNERS, run_workload

__all__ = [
    "CHANNELS_BY_WORKLOAD",
    "FaultEvent",
    "ScenarioOutcome",
    "ScenarioSpec",
    "Violation",
    "WORKLOADS",
    "WORKLOAD_RUNNERS",
    "check_all",
    "ddmin",
    "invariant",
    "registered_invariants",
    "replay",
    "report_json",
    "run_scenario",
    "run_workload",
    "sample_scenario",
    "shrink_failure",
    "soak",
]
