"""Named, versioned potentials with lazily built, LRU-bounded plan caches.

A serving process typically hosts several potentials at once — production
and candidate versions of a model, plus cheap baselines — but compiled
plans (buffer arenas, captured kernel lists) are the expensive part, not
the weights.  The registry therefore separates identity from hot state:

* every ``register()``-ed potential stays resolvable by ``"name"`` (latest
  version) or ``"name:version"`` (pinned) for the life of the process;
* each entry's :class:`~repro.serve.plancache.PlanCache` is created on
  first use and counts against ``max_compiled``; exceeding the bound
  evicts the least-recently-*used* entry's plans (its arenas and captured
  graphs), which are transparently rebuilt if that model is used again.

This is the same capture-state-is-a-cache stance as
``CompiledPotential.invalidate()``: weights updated in place call
:meth:`ModelRegistry.invalidate` to drop the stale plans.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional

from ..resilience.retry import CircuitBreaker
from .plancache import PlanCache

__all__ = ["ModelRegistry", "ModelEntry", "UnknownModelError", "EAGER_FALLBACK"]


class UnknownModelError(KeyError):
    """Raised when a request names a model the registry does not hold."""


#: Fallback sentinel: serve the *same* model through the eager engine
#: (no plan capture, no compiled state) when degraded.
EAGER_FALLBACK = "eager"


class ModelEntry:
    """One registered (name, version) with its lazily built plan cache."""

    __slots__ = (
        "name", "version", "potential", "plan_cache", "breaker",
        "fallback", "_cache_opts",
    )

    def __init__(
        self,
        name: str,
        version: str,
        potential,
        cache_opts: dict,
        breaker_opts: Optional[dict] = None,
        fallback: Optional[str] = None,
    ) -> None:
        self.name = name
        self.version = version
        self.potential = potential
        self.plan_cache: Optional[PlanCache] = None
        # Per-model circuit breaker: one misbehaving model must not take
        # down requests against the healthy ones it shares a server with.
        self.breaker = CircuitBreaker(**(breaker_opts or {}))
        # Degraded-mode fallback: another model key, EAGER_FALLBACK, or
        # None (no fallback; the primary serves even when degraded).
        self.fallback = fallback
        self._cache_opts = cache_opts

    @property
    def key(self) -> str:
        return f"{self.name}:{self.version}"

    @property
    def compiled(self) -> bool:
        """Whether this entry currently holds live compiled state."""
        return self.plan_cache is not None

    def ensure_cache(self) -> PlanCache:
        """The entry's plan cache, building it on first use."""
        if self.plan_cache is None:
            self.plan_cache = PlanCache(self.potential, **self._cache_opts)
        return self.plan_cache

    def invalidate(self) -> None:
        """Drop compiled state (e.g. after an in-place weight update)."""
        self.plan_cache = None


class ModelRegistry:
    """Resolve model keys to entries; bound the number of compiled ones.

    Parameters
    ----------
    max_compiled:
        How many entries may hold live compiled plans at once.  Identity is
        never evicted — only the expensive capture state is, LRU-first.
    plan_cache_opts:
        Keyword arguments forwarded to each entry's :class:`PlanCache`
        (``max_plans``, ``growth``, floors).
    """

    def __init__(
        self,
        max_compiled: int = 4,
        plan_cache_opts: Optional[dict] = None,
        breaker_opts: Optional[dict] = None,
    ) -> None:
        if max_compiled < 1:
            raise ValueError("max_compiled must be >= 1")
        self.max_compiled = int(max_compiled)
        self._cache_opts = dict(plan_cache_opts or {})
        self._breaker_opts = dict(breaker_opts or {})
        self._lock = threading.RLock()
        self._entries: Dict[str, ModelEntry] = {}
        self._latest: Dict[str, str] = {}
        # LRU order over entries that currently hold compiled state.
        self._hot: "OrderedDict[str, ModelEntry]" = OrderedDict()
        self._default: Optional[str] = None
        self.n_evictions = 0

    def register(
        self, name: str, potential, version: str = "v1",
        fallback: Optional[str] = None,
    ) -> ModelEntry:
        """Register (or replace) ``name:version``; first model is the default.

        ``fallback`` names the degraded-mode substitute: another model
        key (possibly registered later), or ``"eager"`` to serve this
        model through the eager engine while degraded.
        """
        if ":" in name:
            raise ValueError("model name must not contain ':'")
        with self._lock:
            entry = ModelEntry(
                name, str(version), potential, self._cache_opts,
                breaker_opts=self._breaker_opts, fallback=fallback,
            )
            self._entries[entry.key] = entry
            self._latest[name] = entry.version
            self._hot.pop(entry.key, None)  # replacing drops stale plans
            if self._default is None:
                self._default = name
            return entry

    @property
    def default_model(self) -> Optional[str]:
        """The model name used when a request does not specify one."""
        return self._default

    def resolve_key(self, key: Optional[str]) -> str:
        """Normalize ``None`` / ``"name"`` / ``"name:version"`` to a full key."""
        with self._lock:
            if key is None:
                key = self._default
            if key is None:
                raise UnknownModelError("registry is empty")
            if ":" not in key:
                version = self._latest.get(key)
                if version is None:
                    raise UnknownModelError(key)
                key = f"{key}:{version}"
            if key not in self._entries:
                raise UnknownModelError(key)
            return key

    def get(self, key: Optional[str] = None) -> ModelEntry:
        """The entry for ``key``, with compiled state ready and touched.

        Building or touching an entry's plan cache moves it to the MRU end;
        if more than ``max_compiled`` entries hold plans, the LRU entry's
        plans are dropped (the entry itself stays registered).
        """
        with self._lock:
            entry = self._entries[self.resolve_key(key)]
            entry.ensure_cache()
            self._hot[entry.key] = entry
            self._hot.move_to_end(entry.key)
            while len(self._hot) > self.max_compiled:
                _, cold = self._hot.popitem(last=False)
                cold.invalidate()
                self.n_evictions += 1
            return entry

    def peek(self, key: Optional[str] = None) -> ModelEntry:
        """The entry for ``key`` without building plans or touching LRU."""
        with self._lock:
            return self._entries[self.resolve_key(key)]

    def invalidate(self, key: Optional[str] = None) -> None:
        """Drop a model's compiled plans (call after updating its weights)."""
        with self._lock:
            entry = self._entries[self.resolve_key(key)]
            entry.invalidate()
            self._hot.pop(entry.key, None)

    def set_fallback(self, key: Optional[str], fallback: Optional[str]) -> None:
        """Set (or clear) a model's degraded-mode fallback target."""
        if fallback is not None and fallback != EAGER_FALLBACK:
            # Validate eagerly when the target already exists; targets
            # registered later are re-checked at resolve time.
            if ":" in fallback or fallback in self._latest:
                self.resolve_key(fallback)
        with self._lock:
            self._entries[self.resolve_key(key)].fallback = fallback

    def resolve_degraded(self, key: Optional[str]):
        """Degraded-serving target for ``key``: ``(entry, eager)``.

        Follows the fallback chain from the entry for ``key`` to its
        end.  ``eager`` is True when the chain ends in the ``"eager"``
        sentinel (same model, eager engine).  Chains are cycle-safe; an
        unresolvable link stops at the last resolvable entry rather than
        failing the request — degraded mode must never be the reason a
        request dies.
        """
        with self._lock:
            entry = self._entries[self.resolve_key(key)]
            seen = {entry.key}
            while entry.fallback is not None:
                if entry.fallback == EAGER_FALLBACK:
                    return entry, True
                try:
                    nxt = self._entries[self.resolve_key(entry.fallback)]
                except UnknownModelError:
                    break
                if nxt.key in seen:
                    break
                seen.add(nxt.key)
                entry = nxt
            return entry, False

    def breaker(self, key: Optional[str] = None) -> CircuitBreaker:
        """The circuit breaker guarding ``key`` (no LRU touch)."""
        with self._lock:
            return self._entries[self.resolve_key(key)].breaker

    def any_breaker_open(self) -> bool:
        """Whether any registered model's circuit breaker is open.

        Cheap enough for the health monitor to poll per tick (no plan
        cache stats, no LRU touches).
        """
        with self._lock:
            return any(e.breaker.state == "open" for e in self._entries.values())

    def names(self) -> List[str]:
        """Registered model names (without versions)."""
        with self._lock:
            return sorted(self._latest)

    def keys(self) -> List[str]:
        """Every registered ``name:version`` key."""
        with self._lock:
            return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        """Registry occupancy plus per-compiled-entry plan-cache stats."""
        with self._lock:
            hot = list(self._hot.values())
            out = {
                "n_registered": len(self._entries),
                "n_compiled": len(hot),
                "max_compiled": self.max_compiled,
                "evictions": self.n_evictions,
                "default_model": self._default,
            }
        out["models"] = {
            e.key: e.plan_cache.stats() for e in hot if e.plan_cache is not None
        }
        with self._lock:
            out["breakers"] = {
                e.key: e.breaker.state for e in self._entries.values()
            }
            out["fallbacks"] = {
                e.key: e.fallback
                for e in self._entries.values()
                if e.fallback is not None
            }
        return out
