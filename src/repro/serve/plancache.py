"""Capacity-bucketed cache of compiled plans for heterogeneous requests.

A :class:`~repro.engine.CompiledPotential` replays for free only while the
incoming atom/pair counts fit its captured capacity; MD gets that from the
5% padding because consecutive steps are nearly the same size.  A *service*
sees no such locality — requests arrive with arbitrary sizes, and naively
compiling per exact size would recapture constantly (the serving analogue
of Fig. 5's unpadded baseline).

:class:`PlanCache` fixes this the way sizing works in every caching
allocator: incoming ``(n_atoms, n_pairs)`` are rounded **up** to a small
geometric ladder of size classes (default growth 1.5×), and one compiled
plan is kept per occupied ``(atom_class, pair_class)`` bucket.  Any request
stream whose sizes span a bounded range then touches a bounded set of
buckets, so after warmup every evaluation is a plan replay — the ≥95%
replay-rate target — at the cost of evaluating with at most ~50% padding
overhead (pad rows are exact zeros, so only throughput, never physics, is
affected).

Buckets are LRU-bounded (``max_plans``); each entry carries its own lock
so workers can attribute capture/replay counter deltas to a single batch
and funnel same-bucket batches through one evaluation state (the compiled
potential itself is safe for concurrent callers).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple

__all__ = ["SizeClasses", "PlanCache", "PlanEntry"]


class SizeClasses:
    """A geometric ladder of capacities: round_up(n) = smallest class ≥ n.

    ``floor`` is the smallest class; successive classes grow by
    ``growth`` (ceil-ed, strictly increasing).  The ladder is deterministic,
    so the same request size always lands in the same bucket.
    """

    def __init__(self, floor: int = 16, growth: float = 1.5) -> None:
        if floor < 1:
            raise ValueError("floor must be >= 1")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.floor = int(floor)
        self.growth = float(growth)

    def round_up(self, n: int) -> int:
        """The smallest ladder class that holds ``n``."""
        c = self.floor
        n = int(n)
        while c < n:
            c = max(c + 1, int(-(-c * self.growth // 1)))  # ceil, always grows
        return c


class PlanEntry:
    """One bucket: a compiled plan at fixed capacity plus its flight lock."""

    __slots__ = ("key", "compiled", "lock")

    def __init__(self, key: Tuple[int, int], compiled) -> None:
        self.key = key
        self.compiled = compiled
        # A plan binds inputs into shared buffers before replaying, so one
        # evaluation at a time per bucket; distinct buckets run in parallel.
        self.lock = threading.Lock()


class PlanCache:
    """LRU cache of :class:`~repro.engine.CompiledPotential` by size class.

    Parameters
    ----------
    potential:
        The eager potential to compile (must implement ``traced_energies``).
    max_plans:
        LRU bound on live buckets; evicting a bucket drops its plan and
        buffer arena (it is rebuilt on the next request that needs it).
    atom_floor / pair_floor / growth:
        Ladder parameters for the atom and pair size classes.  Pair counts
        fluctuate more than atom counts, so their floor is higher.
    """

    def __init__(
        self,
        potential,
        max_plans: int = 8,
        atom_floor: int = 16,
        pair_floor: int = 64,
        growth: float = 1.5,
    ) -> None:
        if max_plans < 1:
            raise ValueError("max_plans must be >= 1")
        self.potential = potential
        self.max_plans = int(max_plans)
        self.atom_classes = SizeClasses(atom_floor, growth)
        self.pair_classes = SizeClasses(pair_floor, growth)
        self._entries: "OrderedDict[Tuple[int, int], PlanEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.n_hits = 0
        self.n_misses = 0
        self.n_evictions = 0

    def bucket_key(self, n_atoms: int, n_pairs: int) -> Tuple[int, int]:
        """The (atom-capacity, pair-capacity) class for a request size."""
        # +1 atom slot for the engine's pad atom.
        return (
            self.atom_classes.round_up(int(n_atoms) + 1),
            self.pair_classes.round_up(max(int(n_pairs), 1)),
        )

    def acquire(self, n_atoms: int, n_pairs: int) -> PlanEntry:
        """The bucket entry covering ``(n_atoms, n_pairs)``; builds on miss.

        Marks the bucket most-recently-used and evicts the LRU bucket when
        the bound is exceeded.  Hold the returned entry's ``lock`` around
        ``entry.compiled.evaluate(...)`` when capture/replay accounting
        must be attributable to one caller.
        """
        key = self.bucket_key(n_atoms, n_pairs)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.n_hits += 1
                return entry
            self.n_misses += 1
            compiled = self.potential.compile(
                capacity=key[0], pair_capacity=key[1]
            )
            entry = PlanEntry(key, compiled)
            self._entries[key] = entry
            while len(self._entries) > self.max_plans:
                self._entries.popitem(last=False)
                self.n_evictions += 1
            return entry

    @property
    def n_plans(self) -> int:
        return len(self._entries)

    def keys(self):
        """Live bucket keys, LRU → MRU."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict:
        """Hit/miss/eviction counts plus aggregated engine counters."""
        with self._lock:
            entries = list(self._entries.values())
            out = {
                "n_plans": len(entries),
                "hits": self.n_hits,
                "misses": self.n_misses,
                "evictions": self.n_evictions,
            }
        captures = sum(e.compiled.n_captures for e in entries)
        replays = sum(e.compiled.n_replays for e in entries)
        out["n_captures"] = captures
        out["n_replays"] = replays
        # Every evaluate() replays; a capture is the slow variant of one.
        out["replay_rate"] = (replays - captures) / replays if replays else 0.0
        total = self.n_hits + self.n_misses
        out["hit_rate"] = self.n_hits / total if total else 0.0
        return out

    def clear(self) -> None:
        """Drop every bucket (used when a model's weights change)."""
        with self._lock:
            self.n_evictions += len(self._entries)
            self._entries.clear()


def padded_overhead(cache: Optional[PlanCache], n_atoms: int, n_pairs: int) -> float:
    """Fractional padding waste the bucket ladder adds for a request size.

    Diagnostic helper for capacity planning: 0.0 means an exact fit,
    0.5 means half the padded rows are dead weight.
    """
    if cache is None:
        return 0.0
    cap_a, cap_p = cache.bucket_key(n_atoms, n_pairs)
    real = n_atoms + max(n_pairs, 1)
    return 1.0 - real / float(cap_a + cap_p)
