"""Micro-batching: coalesce single-structure requests into padded batches.

Independent structures concatenated along the atom axis (edges offset
per-structure) evaluate in one force call that is *bitwise identical* to
evaluating each structure alone: every kernel on the path is row-local in
the leading dimension — elementwise ops, gathers, per-edge scatter-adds,
and the engine's fixed-block matmul whose row results depend only on the
row itself (``autodiff.kernels._blocked_matmul``).  Batching therefore
changes throughput, never physics, which is the property the serving tests
pin down against direct eager evaluation.

:class:`MicroBatcher` implements the coalescing policy: requests are
grouped per model key in FIFO order, and a batch is released when it
reaches ``max_batch`` or when its oldest request has waited out the
current window.  The window is *adaptive*: an EWMA of inter-arrival gaps
estimates how long filling a batch will take, so heavy traffic pays almost
no added latency (the batch fills instantly) while trickle traffic waits
at most ``max_wait``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..md.neighborlist import NeighborList
from .qos import DEFAULT_PRIORITY, PRIORITIES, priority_level

__all__ = ["ForceRequest", "MicroBatcher", "concatenate_structures"]


@dataclass
class ForceRequest:
    """One queued energy/force evaluation for a single structure.

    ``deadline`` is an *absolute* end-to-end deadline (monotonic-clock
    seconds): past it the request is shed before batch assembly with a
    typed ``DeadlineExceeded``.  ``timeout_at`` is the legacy queue-wait
    budget checked at batch pickup (``RequestTimeout``).  ``priority``
    names the QoS class the batcher queues and schedules by.
    """

    system: object
    model: str
    future: object
    nl: Optional[NeighborList] = None
    t_enqueue: float = 0.0
    deadline: Optional[float] = None
    meta: dict = field(default_factory=dict)
    priority: str = DEFAULT_PRIORITY
    timeout_at: Optional[float] = None

    @property
    def n_atoms(self) -> int:
        return int(self.system.n_atoms)

    @property
    def priority_level(self) -> int:
        return priority_level(self.priority)


def concatenate_structures(systems, neighbor_lists):
    """Concatenate structures into one evaluation-ready super-structure.

    Returns ``(positions, species, nl, offsets)`` where ``offsets`` has
    ``len(systems) + 1`` entries: structure ``k`` owns atom rows
    ``offsets[k]:offsets[k+1]``.  Edges are shifted by each structure's
    atom offset so the graphs stay disjoint — no cross-structure
    interaction exists, which is what makes batched evaluation exact.
    """
    if len(systems) != len(neighbor_lists):
        raise ValueError("one neighbor list per structure required")
    offsets = np.zeros(len(systems) + 1, dtype=np.int64)
    for k, s in enumerate(systems):
        offsets[k + 1] = offsets[k] + s.n_atoms
    positions = np.concatenate([np.asarray(s.positions) for s in systems])
    species = np.concatenate([np.asarray(s.species) for s in systems])
    edge_index = np.concatenate(
        [nl.edge_index + off for nl, off in zip(neighbor_lists, offsets[:-1])],
        axis=1,
    )
    shifts = np.concatenate([nl.shifts for nl in neighbor_lists])
    return positions, species, NeighborList(edge_index, shifts), offsets


class MicroBatcher:
    """Group pending requests into per-model batches under a time window.

    Parameters
    ----------
    max_batch:
        Hard cap on structures per batch (a full batch releases instantly).
    max_wait:
        Upper bound in seconds on how long the oldest request of a partial
        batch may wait before release.
    adaptive:
        When True, the effective window is
        ``min(max_wait, ewma_gap * (max_batch - 1))`` — the estimated time
        to fill the batch at the observed arrival rate — so batching adds
        negligible latency under load and bounded latency when idle.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        max_batch: int = 8,
        max_wait: float = 2e-3,
        adaptive: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.adaptive = bool(adaptive)
        self._clock = clock
        self._cv = threading.Condition()
        # Queues are keyed (model, priority level): batches never mix
        # models *or* classes, and scheduling is strict priority — a
        # ready lower-level (stronger) queue always dispatches first.
        self._queues: "OrderedDict[tuple, deque]" = OrderedDict()
        self._n_pending = 0
        self._pending_by_level = [0] * len(PRIORITIES)
        self._closed = False
        self._ewma_gap: Optional[float] = None
        self._last_arrival: Optional[float] = None
        self.n_batches = 0
        self.n_coalesced = 0
        self.n_expired = 0
        #: Called (outside the batcher lock) with requests whose deadline
        #: passed while queued; the server fails them with a typed error.
        self.on_expire: Optional[Callable[[List[ForceRequest]], None]] = None

    # -- producer side --------------------------------------------------------
    def put(self, request: ForceRequest) -> None:
        """Enqueue a request (raises RuntimeError after close())."""
        now = self._clock()
        with self._cv:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            if self._last_arrival is not None:
                gap = max(now - self._last_arrival, 0.0)
                self._ewma_gap = (
                    gap if self._ewma_gap is None else 0.8 * self._ewma_gap + 0.2 * gap
                )
            self._last_arrival = now
            if not request.t_enqueue:
                request.t_enqueue = now
            level = request.priority_level
            self._queues.setdefault((request.model, level), deque()).append(request)
            self._n_pending += 1
            self._pending_by_level[level] += 1
            self._cv.notify()

    def window(self) -> float:
        """Current coalescing window in seconds."""
        if not self.adaptive or self._ewma_gap is None or self.max_batch == 1:
            return self.max_wait if self.max_batch > 1 else 0.0
        return min(self.max_wait, self._ewma_gap * (self.max_batch - 1))

    def pending(self) -> int:
        """Requests currently queued (all models)."""
        return self._n_pending

    def pending_by_class(self) -> dict:
        """Currently queued requests per priority class name."""
        with self._cv:
            return {
                name: self._pending_by_level[level]
                for level, name in enumerate(PRIORITIES)
            }

    def evict_newest_below(self, level: int) -> Optional[ForceRequest]:
        """Pop the newest request of the *weakest* class weaker than
        ``level``, or None when no such request is queued.

        This is the admission side of strict priority: an arriving
        request of class ``level`` displaces lower-priority queued work
        instead of being shed itself.  Newest-first eviction preserves
        FIFO fairness inside the victim class (the oldest queued request
        has waited longest and keeps its slot).
        """
        with self._cv:
            victim_key = None
            victim_level = -1
            for key, q in self._queues.items():
                if q and key[1] > level and key[1] > victim_level:
                    victim_key, victim_level = key, key[1]
            if victim_key is None:
                return None
            victim = self._queues[victim_key].pop()
            self._n_pending -= 1
            self._pending_by_level[victim_level] -= 1
            return victim

    # -- consumer side --------------------------------------------------------
    def _purge_expired(self, now: float) -> List[ForceRequest]:
        """Remove queued requests whose deadline passed (caller holds lock)."""
        expired: List[ForceRequest] = []
        for key, q in list(self._queues.items()):
            if not q:
                continue
            if not any(r.deadline is not None and now > r.deadline for r in q):
                continue
            keep: deque = deque()
            for r in q:
                if r.deadline is not None and now > r.deadline:
                    expired.append(r)
                    self._pending_by_level[key[1]] -= 1
                else:
                    keep.append(r)
            self._queues[key] = keep
        if expired:
            self._n_pending -= len(expired)
            self.n_expired += len(expired)
        return expired

    def get_batch(self, timeout: Optional[float] = None) -> Optional[List[ForceRequest]]:
        """Next batch (same model and class, FIFO), or None on timeout.

        Blocks until some queue's batch is *ready* — full, its oldest
        request older than the window, or the tightest deadline among
        its members reached (a partial batch is never held past the
        deadline of any request in it).  Among ready queues the
        strongest priority class wins; age breaks ties.  Requests whose
        deadline has already passed are purged before assembly and
        handed to ``on_expire`` (outside the lock) — they never reach a
        force call.
        """
        outer = None if timeout is None else self._clock() + timeout
        expired: List[ForceRequest] = []
        try:
            with self._cv:
                while True:
                    now = self._clock()
                    expired.extend(self._purge_expired(now))
                    # After close() everything pending is ready: drain
                    # promptly instead of waiting out coalescing windows.
                    window = 0.0 if self._closed else self.window()
                    best_key = None
                    best_rank = None
                    next_ready = None
                    for key, q in self._queues.items():
                        if not q:
                            continue
                        age = now - q[0].t_enqueue
                        tightest = min(
                            (r.deadline for r in q if r.deadline is not None),
                            default=None,
                        )
                        ready = (
                            len(q) >= self.max_batch
                            or age >= window
                            or (tightest is not None and now >= tightest)
                        )
                        if ready:
                            rank = (key[1], -age)
                            if best_rank is None or rank < best_rank:
                                best_key, best_rank = key, rank
                        else:
                            ready_in = window - age
                            if tightest is not None:
                                ready_in = min(ready_in, tightest - now)
                            if next_ready is None or ready_in < next_ready:
                                next_ready = ready_in
                    if best_key is not None:
                        q = self._queues[best_key]
                        batch = [
                            q.popleft()
                            for _ in range(min(self.max_batch, len(q)))
                        ]
                        self._n_pending -= len(batch)
                        self._pending_by_level[best_key[1]] -= len(batch)
                        self.n_batches += 1
                        self.n_coalesced += len(batch)
                        return batch
                    if expired:
                        # Expired requests must fail promptly; hand them
                        # to on_expire (in the finally) instead of
                        # sleeping out a window with dead futures queued.
                        return None
                    if self._closed and self._n_pending == 0:
                        return None
                    wait = next_ready
                    if outer is not None:
                        remaining = outer - now
                        if remaining <= 0:
                            return None
                        wait = remaining if wait is None else min(wait, remaining)
                    self._cv.wait(wait)
        finally:
            # Deliver outside the lock: the callback re-enters the server
            # (fail futures, bump counters) and must not nest under the
            # batcher condition variable.
            if expired and self.on_expire is not None:
                self.on_expire(expired)

    def close(self) -> None:
        """Stop accepting; blocked consumers drain the backlog then get None."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()

    def stats(self) -> dict:
        """Coalescing statistics (batches, mean occupancy, current window)."""
        with self._cv:
            return {
                "n_batches": self.n_batches,
                "n_coalesced": self.n_coalesced,
                "mean_occupancy": (
                    self.n_coalesced / self.n_batches if self.n_batches else 0.0
                ),
                "pending": self._n_pending,
                "pending_by_class": {
                    name: self._pending_by_level[level]
                    for level, name in enumerate(PRIORITIES)
                },
                "n_expired": self.n_expired,
                "window_s": self.window(),
            }
