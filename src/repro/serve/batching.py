"""Micro-batching: coalesce single-structure requests into padded batches.

Independent structures concatenated along the atom axis (edges offset
per-structure) evaluate in one force call that is *bitwise identical* to
evaluating each structure alone: every kernel on the path is row-local in
the leading dimension — elementwise ops, gathers, per-edge scatter-adds,
and the engine's fixed-block matmul whose row results depend only on the
row itself (``autodiff.kernels._blocked_matmul``).  Batching therefore
changes throughput, never physics, which is the property the serving tests
pin down against direct eager evaluation.

:class:`MicroBatcher` implements the coalescing policy: requests are
grouped per model key in FIFO order, and a batch is released when it
reaches ``max_batch`` or when its oldest request has waited out the
current window.  The window is *adaptive*: an EWMA of inter-arrival gaps
estimates how long filling a batch will take, so heavy traffic pays almost
no added latency (the batch fills instantly) while trickle traffic waits
at most ``max_wait``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..md.neighborlist import NeighborList

__all__ = ["ForceRequest", "MicroBatcher", "concatenate_structures"]


@dataclass
class ForceRequest:
    """One queued energy/force evaluation for a single structure."""

    system: object
    model: str
    future: object
    nl: Optional[NeighborList] = None
    t_enqueue: float = 0.0
    deadline: Optional[float] = None
    meta: dict = field(default_factory=dict)

    @property
    def n_atoms(self) -> int:
        return int(self.system.n_atoms)


def concatenate_structures(systems, neighbor_lists):
    """Concatenate structures into one evaluation-ready super-structure.

    Returns ``(positions, species, nl, offsets)`` where ``offsets`` has
    ``len(systems) + 1`` entries: structure ``k`` owns atom rows
    ``offsets[k]:offsets[k+1]``.  Edges are shifted by each structure's
    atom offset so the graphs stay disjoint — no cross-structure
    interaction exists, which is what makes batched evaluation exact.
    """
    if len(systems) != len(neighbor_lists):
        raise ValueError("one neighbor list per structure required")
    offsets = np.zeros(len(systems) + 1, dtype=np.int64)
    for k, s in enumerate(systems):
        offsets[k + 1] = offsets[k] + s.n_atoms
    positions = np.concatenate([np.asarray(s.positions) for s in systems])
    species = np.concatenate([np.asarray(s.species) for s in systems])
    edge_index = np.concatenate(
        [nl.edge_index + off for nl, off in zip(neighbor_lists, offsets[:-1])],
        axis=1,
    )
    shifts = np.concatenate([nl.shifts for nl in neighbor_lists])
    return positions, species, NeighborList(edge_index, shifts), offsets


class MicroBatcher:
    """Group pending requests into per-model batches under a time window.

    Parameters
    ----------
    max_batch:
        Hard cap on structures per batch (a full batch releases instantly).
    max_wait:
        Upper bound in seconds on how long the oldest request of a partial
        batch may wait before release.
    adaptive:
        When True, the effective window is
        ``min(max_wait, ewma_gap * (max_batch - 1))`` — the estimated time
        to fill the batch at the observed arrival rate — so batching adds
        negligible latency under load and bounded latency when idle.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        max_batch: int = 8,
        max_wait: float = 2e-3,
        adaptive: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.adaptive = bool(adaptive)
        self._clock = clock
        self._cv = threading.Condition()
        self._queues: "OrderedDict[str, deque]" = OrderedDict()
        self._n_pending = 0
        self._closed = False
        self._ewma_gap: Optional[float] = None
        self._last_arrival: Optional[float] = None
        self.n_batches = 0
        self.n_coalesced = 0

    # -- producer side --------------------------------------------------------
    def put(self, request: ForceRequest) -> None:
        """Enqueue a request (raises RuntimeError after close())."""
        now = self._clock()
        with self._cv:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            if self._last_arrival is not None:
                gap = max(now - self._last_arrival, 0.0)
                self._ewma_gap = (
                    gap if self._ewma_gap is None else 0.8 * self._ewma_gap + 0.2 * gap
                )
            self._last_arrival = now
            if not request.t_enqueue:
                request.t_enqueue = now
            self._queues.setdefault(request.model, deque()).append(request)
            self._n_pending += 1
            self._cv.notify()

    def window(self) -> float:
        """Current coalescing window in seconds."""
        if not self.adaptive or self._ewma_gap is None or self.max_batch == 1:
            return self.max_wait if self.max_batch > 1 else 0.0
        return min(self.max_wait, self._ewma_gap * (self.max_batch - 1))

    def pending(self) -> int:
        """Requests currently queued (all models)."""
        return self._n_pending

    # -- consumer side --------------------------------------------------------
    def get_batch(self, timeout: Optional[float] = None) -> Optional[List[ForceRequest]]:
        """Next batch (same model, FIFO), or None on timeout / closed-empty.

        Blocks until some model's batch is *ready* — full, or its oldest
        request older than the window — then pops up to ``max_batch``
        requests for the model with the oldest waiting request.
        """
        outer = None if timeout is None else self._clock() + timeout
        with self._cv:
            while True:
                now = self._clock()
                # After close() everything pending is ready: drain promptly
                # instead of waiting out coalescing windows.
                window = 0.0 if self._closed else self.window()
                best_key = None
                best_age = -1.0
                next_ready = None
                for key, q in self._queues.items():
                    if not q:
                        continue
                    age = now - q[0].t_enqueue
                    if len(q) >= self.max_batch or age >= window:
                        if age > best_age:
                            best_key, best_age = key, age
                    else:
                        ready_in = window - age
                        if next_ready is None or ready_in < next_ready:
                            next_ready = ready_in
                if best_key is not None:
                    q = self._queues[best_key]
                    batch = [q.popleft() for _ in range(min(self.max_batch, len(q)))]
                    self._n_pending -= len(batch)
                    self.n_batches += 1
                    self.n_coalesced += len(batch)
                    return batch
                if self._closed and self._n_pending == 0:
                    return None
                wait = next_ready
                if outer is not None:
                    remaining = outer - now
                    if remaining <= 0:
                        return None
                    wait = remaining if wait is None else min(wait, remaining)
                self._cv.wait(wait)

    def close(self) -> None:
        """Stop accepting; blocked consumers drain the backlog then get None."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()

    def stats(self) -> dict:
        """Coalescing statistics (batches, mean occupancy, current window)."""
        with self._cv:
            return {
                "n_batches": self.n_batches,
                "n_coalesced": self.n_coalesced,
                "mean_occupancy": (
                    self.n_coalesced / self.n_batches if self.n_batches else 0.0
                ),
                "pending": self._n_pending,
                "window_s": self.window(),
            }
