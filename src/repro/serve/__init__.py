"""repro.serve — a batched force-evaluation service on the compiled engine.

The paper's deployment story (§V-C) is capture-once/replay-many inference
with padded buffers; ``repro.engine`` reproduces that for a single MD
stream.  This package is the layer that turns the engine into a *service*
able to take heterogeneous concurrent traffic — the serving-side scaling
follow-up to the kernel work (cf. Tan et al. 2025, high-performance
inference for deep equivariant potentials):

* :class:`ModelRegistry` — named/versioned potentials; compiled state is
  built lazily and LRU-evicted, identity never is.
* :class:`PlanCache` — maps arbitrary request sizes onto a geometric
  ladder of padded plan capacities, so replay hit-rate stays near 100%
  across mixed-size request streams.
* :class:`MicroBatcher` — coalesces single-structure requests into padded
  batches under an adaptive time window; batching is bitwise-exact
  because structure graphs stay disjoint.
* :class:`ForceServer` / :class:`Client` — worker pool, bounded admission
  with shed-on-overload, per-request timeouts, graceful drain, and a
  :class:`Metrics` registry (counters, latency/queue/occupancy
  histograms, capture-vs-replay rates, JSON export).

Quickstart::

    from repro.serve import ForceServer, Client

    with ForceServer(model, n_workers=2, max_batch=8) as server:
        client = Client(server)
        energy, forces = client.evaluate(system)
        results = client.evaluate_many(systems)   # coalesced into batches
        print(server.stats()["replay_rate"])
"""

from .batching import ForceRequest, MicroBatcher, concatenate_structures
from .metrics import Counter, Gauge, Histogram, Metrics, Registry
from .plancache import PlanCache, SizeClasses
from .registry import ModelEntry, ModelRegistry, UnknownModelError
from .server import (
    CircuitOpen,
    Client,
    DrainTimeout,
    ForceServer,
    ModelFailure,
    RequestTimeout,
    ServeError,
    ServerOverloaded,
    WorkerCrash,
)

__all__ = [
    "CircuitOpen",
    "Client",
    "Counter",
    "DrainTimeout",
    "ForceRequest",
    "ForceServer",
    "Gauge",
    "Histogram",
    "Metrics",
    "MicroBatcher",
    "ModelEntry",
    "ModelFailure",
    "ModelRegistry",
    "PlanCache",
    "Registry",
    "RequestTimeout",
    "ServeError",
    "ServerOverloaded",
    "SizeClasses",
    "UnknownModelError",
    "WorkerCrash",
    "concatenate_structures",
]
