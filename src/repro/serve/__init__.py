"""repro.serve — a batched force-evaluation service on the compiled engine.

The paper's deployment story (§V-C) is capture-once/replay-many inference
with padded buffers; ``repro.engine`` reproduces that for a single MD
stream.  This package is the layer that turns the engine into a *service*
able to take heterogeneous concurrent traffic — the serving-side scaling
follow-up to the kernel work (cf. Tan et al. 2025, high-performance
inference for deep equivariant potentials):

* :class:`ModelRegistry` — named/versioned potentials; compiled state is
  built lazily and LRU-evicted, identity never is.
* :class:`PlanCache` — maps arbitrary request sizes onto a geometric
  ladder of padded plan capacities, so replay hit-rate stays near 100%
  across mixed-size request streams.
* :class:`MicroBatcher` — coalesces single-structure requests into padded
  batches under an adaptive time window; batching is bitwise-exact
  because structure graphs stay disjoint.
* :class:`ForceServer` / :class:`Client` — worker pool, bounded admission
  with shed-on-overload, per-request timeouts, graceful drain, and a
  :class:`Metrics` registry (counters, latency/queue/occupancy
  histograms, capture-vs-replay rates, JSON export).
* :class:`QoSPolicy` / :class:`~repro.health.HealthMonitor` — graceful
  degradation under overload: per-request deadlines
  (:class:`DeadlineExceeded`), priority classes with
  lowest-class-first shedding (:class:`LoadShed`), a
  ``HEALTHY → DEGRADED → SHEDDING → DRAINING`` health state machine,
  and per-model degraded fallback chains (``degraded=True`` stamped on
  :class:`ServeResult`).

Quickstart::

    from repro.serve import ForceServer, Client, QoSPolicy

    with ForceServer(model, n_workers=2, max_batch=8, qos=QoSPolicy()) as server:
        client = Client(server, priority="interactive", deadline=0.05)
        energy, forces = client.evaluate(system)
        results = client.evaluate_many(systems)   # coalesced into batches
        print(server.stats()["replay_rate"], server.stats()["health"]["state"])
"""

from ..health import HEALTH_STATES, HealthMonitor, HealthThresholds
from .batching import ForceRequest, MicroBatcher, concatenate_structures
from .metrics import Counter, Gauge, Histogram, Metrics, Registry
from .plancache import PlanCache, SizeClasses
from .qos import (
    DEFAULT_PRIORITY,
    PRIORITIES,
    QoSPolicy,
    ServeResult,
    priority_level,
    qos_from_config,
)
from .registry import EAGER_FALLBACK, ModelEntry, ModelRegistry, UnknownModelError
from .server import (
    CircuitOpen,
    Client,
    DeadlineExceeded,
    DrainTimeout,
    ForceServer,
    LoadShed,
    ModelFailure,
    RequestTimeout,
    ServeError,
    ServerOverloaded,
    ServerStopped,
    WorkerCrash,
)

__all__ = [
    "CircuitOpen",
    "Client",
    "Counter",
    "DEFAULT_PRIORITY",
    "DeadlineExceeded",
    "DrainTimeout",
    "EAGER_FALLBACK",
    "ForceRequest",
    "ForceServer",
    "Gauge",
    "HEALTH_STATES",
    "HealthMonitor",
    "HealthThresholds",
    "Histogram",
    "LoadShed",
    "Metrics",
    "MicroBatcher",
    "ModelEntry",
    "ModelFailure",
    "ModelRegistry",
    "PRIORITIES",
    "PlanCache",
    "QoSPolicy",
    "Registry",
    "RequestTimeout",
    "ServeError",
    "ServeResult",
    "ServerOverloaded",
    "ServerStopped",
    "SizeClasses",
    "UnknownModelError",
    "WorkerCrash",
    "concatenate_structures",
    "priority_level",
    "qos_from_config",
]
