"""Thread-safe serving metrics: counters, histograms, JSON snapshots.

The serving layer is the first part of the stack that runs under real
concurrency, so its health cannot be read off a single evaluate() call —
it lives in distributions: request latency, queue depth at admission,
batch occupancy, and the capture-vs-replay split of the compiled engine.
This module provides the minimal instrument set for that:

* :class:`Counter` — monotonically increasing event counts (requests
  served/shed/timed out, plan-cache hits/misses, captures/replays).
* :class:`Histogram` — fixed-bucket histograms with count/sum/min/max and
  bucket-interpolated percentile estimates (p50/p99 latency without
  retaining per-request samples).
* :class:`Metrics` — a named registry of both, with a consistent
  :meth:`~Metrics.snapshot` and JSON export for offline analysis (the
  serving analogue of ``benchmarks/results/*_data.json``).

Every mutation takes a single registry-wide lock; observations are a few
dict/array updates, so contention stays negligible next to a force call.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Optional, Sequence, Tuple

__all__ = ["Counter", "Histogram", "Metrics", "LATENCY_BUCKETS"]

#: Geometric latency buckets from 10 µs to ~100 s — wide enough for eager
#: protein evaluations, fine enough to resolve sub-millisecond replays.
LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    1e-5 * (10 ** 0.25) ** k for k in range(29)
)

#: Small-integer buckets for queue depth / batch occupancy.
OCCUPANCY_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0
        self._lock = lock

    def inc(self, n: int = 1) -> None:
        """Add ``n`` events (n may be any non-negative integer)."""
        with self._lock:
            self._value += int(n)

    @property
    def value(self) -> int:
        return self._value


class Histogram:
    """Fixed-bucket histogram with interpolated percentiles.

    ``buckets`` are ascending upper bounds; an implicit overflow bucket
    catches everything beyond the last bound.  Percentiles interpolate
    linearly inside the containing bucket — accurate to a bucket width,
    which is all a latency SLO needs — so memory stays O(buckets)
    regardless of traffic.
    """

    __slots__ = ("name", "bounds", "_counts", "count", "sum", "min", "max", "_lock")

    def __init__(
        self, name: str, buckets: Sequence[float], lock: threading.Lock
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly ascending")
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 overflow
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = lock

    def observe(self, x: float) -> None:
        """Record one sample."""
        x = float(x)
        with self._lock:
            idx = self._bucket_index(x)
            self._counts[idx] += 1
            self.count += 1
            self.sum += x
            if x < self.min:
                self.min = x
            if x > self.max:
                self.max = x

    def _bucket_index(self, x: float) -> int:
        # Linear scan: bucket lists are short (tens) and this avoids an
        # import of bisect semantics into the hot-ish path documentation.
        for i, b in enumerate(self.bounds):
            if x <= b:
                return i
        return len(self.bounds)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the q-quantile (q in [0, 1]) by bucket interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            if self.count == 0:
                return 0.0
            target = q * self.count
            cum = 0
            for i, c in enumerate(self._counts):
                if c == 0:
                    continue
                lo = self.bounds[i - 1] if i > 0 else min(self.min, self.bounds[0])
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if cum + c >= target:
                    frac = (target - cum) / c
                    return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
                cum += c
            return self.max

    def snapshot(self) -> dict:
        """A JSON-able view: moments plus the common latency quantiles."""
        with self._lock:
            counts = list(self._counts)
            count, total = self.count, self.sum
        out = {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
            "min": self.min if count else None,
            "max": self.max if count else None,
            "buckets": {
                **{f"le_{b:g}": c for b, c in zip(self.bounds, counts)},
                "overflow": counts[-1],
            },
        }
        if count:
            out["p50"] = self.percentile(0.50)
            out["p90"] = self.percentile(0.90)
            out["p99"] = self.percentile(0.99)
        return out


class Metrics:
    """A named registry of counters and histograms with JSON export.

    ``counter(name)`` / ``histogram(name)`` get-or-create, so producers
    never need registration ceremony; :meth:`snapshot` returns a plain
    dict (written by the CLI's ``--stats-json``) and :meth:`delta_since`
    subtracts a previous snapshot's counters — how the benchmarks compute
    post-warmup replay rates without resetting live metrics.
    """

    def __init__(self) -> None:
        # Reentrant: snapshot() holds the lock while reading each
        # histogram, which re-acquires it for a consistent percentile.
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name, self._lock)
            return c

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """Get or create the histogram ``name`` (default: latency buckets)."""
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(
                    name, buckets or LATENCY_BUCKETS, self._lock
                )
            return h

    def snapshot(self) -> dict:
        """Consistent JSON-able view of every counter and histogram.

        Counters following the ``errors_<class>`` convention are also
        aggregated into an ``errors`` breakdown (class → count, plus a
        ``total``) so degradation is visible at a glance in
        ``--stats-json`` output without scanning the flat counter list.
        """
        with self._lock:
            counters = {name: c._value for name, c in self._counters.items()}
            hists = list(self._histograms.values())
        errors = {
            name[len("errors_"):]: value
            for name, value in counters.items()
            if name.startswith("errors_")
        }
        errors["total"] = sum(errors.values())
        return {
            "counters": counters,
            "errors": errors,
            "histograms": {h.name: h.snapshot() for h in hists},
        }

    @staticmethod
    def delta_since(before: dict, after: dict) -> dict:
        """Counter differences between two :meth:`snapshot` results."""
        b = before.get("counters", {})
        return {
            name: value - b.get(name, 0)
            for name, value in after.get("counters", {}).items()
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize :meth:`snapshot` as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, default=float)

    def write_json(self, path) -> None:
        """Write the snapshot to ``path`` (the ``--stats-json`` target)."""
        from pathlib import Path

        Path(path).write_text(self.to_json() + "\n")
