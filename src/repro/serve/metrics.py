"""Compatibility re-export: the serving instruments moved to :mod:`repro.obs`.

The counters/histograms/registry that grew up here are now the
stack-wide observability primitives (``repro.obs.metrics``), shared by
the engine, MD drivers, parallel comm, and trainer.  Existing imports —
``from repro.serve.metrics import Metrics`` — keep working unchanged;
``Metrics`` is an alias of :class:`repro.obs.Registry`.
"""

from ..obs.metrics import (  # noqa: F401
    LATENCY_BUCKETS,
    OCCUPANCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metrics,
    Registry,
    labeled_name,
)
# QoS metric names: sheds are counted per priority class under
# ``serve.shed.load{class=...}`` / ``serve.shed.deadline{class=...}``,
# degraded serves under ``serve.degraded``, and the health state machine
# exports the ``health.state`` gauge (0=HEALTHY … 3=DRAINING).
from .qos import DEGRADED_SERVED, SHED_DEADLINE, SHED_LOAD  # noqa: F401

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "Registry",
    "LATENCY_BUCKETS",
    "OCCUPANCY_BUCKETS",
    "labeled_name",
    "SHED_LOAD",
    "SHED_DEADLINE",
    "DEGRADED_SERVED",
]
