"""The force-evaluation service: worker pool, admission control, batching.

:class:`ForceServer` is the concurrency layer around the compiled engine —
the in-process analogue of the serving stack a production potential runs
behind.  The dataflow per request is::

    Client.submit ──▶ admission (bounded queue, shed-with-error)
                  ──▶ MicroBatcher (per-model coalescing window)
                  ──▶ worker pool ──▶ ModelRegistry ──▶ PlanCache bucket
                  ──▶ CompiledPotential.evaluate (one padded batch replay)
                  ──▶ per-structure energy/forces on each request's Future

Guarantees:

* **Exactness** — served energies and forces are bitwise-identical (in
  float64) to direct eager evaluation of each structure, because batching
  concatenates disjoint graphs and every kernel is row-local (see
  ``serve.batching``).  Zero-edge structures short-circuit through the
  eager path so model-specific empty-graph energies stay exact too.
* **Backpressure** — admission beyond ``max_queue`` pending requests
  raises :class:`ServerOverloaded` immediately (shed-with-error; the
  caller retries or degrades, the server never builds unbounded backlog).
* **Timeouts** — a request whose queue wait exceeds its budget fails with
  :class:`RequestTimeout` at pickup instead of wasting a force call.
* **Graceful drain** — :meth:`ForceServer.stop` stops admission, lets the
  workers finish every admitted request, then joins the pool.  The drain
  has a deadline (``drain_timeout``): shutdown cannot hang forever on a
  stalled worker — requests still pending past the deadline fail with an
  explicit :class:`DrainTimeout`.
* **No silent garbage** — every batch result is validated (finite energy
  and forces) before any future resolves; a bad evaluation is retried
  with backoff and, if it keeps failing, surfaces as an explicit
  :class:`ModelFailure`.  Models that fail repeatedly trip a per-model
  circuit breaker so one broken model cannot monopolize the workers
  (requests against it shed immediately with :class:`CircuitOpen` until
  a half-open probe succeeds).
* **Graceful degradation** — with a :class:`~repro.serve.qos.QoSPolicy`
  (or explicit :class:`~repro.health.HealthMonitor`) the server enforces
  deadline-aware QoS: per-request end-to-end deadlines shed expired work
  *before* any force call (:class:`DeadlineExceeded`), priority classes
  (``interactive``/``batch``/``background``) shed lowest-class-first
  under pressure (:class:`LoadShed`), and the health state machine
  (``HEALTHY → DEGRADED → SHEDDING → DRAINING``) switches models to
  their registered fallback chain while ``DEGRADED`` (results carry
  ``degraded=True``), admits only the strongest class while
  ``SHEDDING``, and freezes the tune controllers whenever not
  ``HEALTHY``.  Without a policy the monitor still observes and exports
  ``health.state`` but never sheds — existing behavior is unchanged.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, InvalidStateError
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import autodiff as ad
from ..health import HealthMonitor
from ..md.neighborlist import neighbor_list
from ..obs import OCCUPANCY_BUCKETS, Metrics, span
from ..resilience.guards import NumericalInstabilityError, validate_energy_forces
from ..resilience.retry import RetryPolicy
from .batching import ForceRequest, MicroBatcher, concatenate_structures
from .qos import (
    DEFAULT_PRIORITY,
    DEGRADED_SERVED,
    SHED_DEADLINE,
    SHED_LOAD,
    PRIORITIES,
    QoSPolicy,
    ServeResult,
    priority_level,
)
from .registry import ModelRegistry

__all__ = [
    "ForceServer",
    "Client",
    "ServeError",
    "ServerOverloaded",
    "RequestTimeout",
    "ModelFailure",
    "CircuitOpen",
    "WorkerCrash",
    "DrainTimeout",
    "LoadShed",
    "DeadlineExceeded",
    "ServerStopped",
]


class ServeError(RuntimeError):
    """Base class for serving-layer failures."""


class ServerOverloaded(ServeError):
    """Admission rejected: the bounded request queue is full (shed)."""


class LoadShed(ServerOverloaded):
    """QoS shed: dropped by priority/health admission policy (class ``shed``).

    Subclasses :class:`ServerOverloaded` so callers handling the legacy
    queue-full error transparently handle policy sheds too.
    """


class RequestTimeout(ServeError):
    """The request waited in queue past its deadline and was dropped."""


class DeadlineExceeded(ServeError):
    """The request's end-to-end deadline passed before evaluation
    (error class ``deadline``); it was shed without a force call."""


class ServerStopped(ServeError):
    """Submission after ``stop()``: the server no longer accepts work
    (error class ``shutdown``)."""


class ModelFailure(ServeError):
    """Evaluation kept failing (exception or non-finite output) after retries."""


class CircuitOpen(ServeError):
    """The model's circuit breaker is open; request shed without evaluation."""


class WorkerCrash(ServeError):
    """An injected (or real) worker crash during batch evaluation."""


class DrainTimeout(ServeError):
    """The shutdown drain deadline expired with this request still pending."""


def _build_nl(potential, system):
    """Model-prepared neighbor list when available, plain cutoff list else."""
    prepare = getattr(potential, "prepare_neighbors", None)
    if prepare is not None:
        return prepare(system)
    return neighbor_list(system, potential.cutoff)


class ForceServer:
    """Concurrent batched energy/force evaluation over registered models.

    Parameters
    ----------
    models:
        A :class:`ModelRegistry`, or a single potential (auto-registered as
        ``"default"``).
    n_workers:
        Worker threads.  Distinct models / size buckets evaluate in
        parallel; one bucket's plan is single-flight (its entry lock).
    max_queue:
        Pending-request bound; admission beyond it sheds with
        :class:`ServerOverloaded`.
    max_batch / batch_wait:
        Micro-batching knobs (see :class:`~repro.serve.batching.MicroBatcher`).
    adaptive:
        When True (default) the batcher shrinks its coalescing window to
        the observed arrival cadence:  the effective window is
        ``min(batch_wait, ewma_gap * (max_batch - 1))``, where
        ``ewma_gap`` is an exponential moving average of inter-arrival
        gaps (coefficient 0.2) — under a fast burst the batcher waits just
        long enough for a full batch to form instead of the whole
        ``batch_wait``.  When False the window is always ``batch_wait``.
    plan_cache_opts:
        Plan-cache ladder options (``atom_floor``, ``pair_floor``,
        ``growth``, ``max_plans``) used when ``models`` is a bare
        potential; forwarded to the auto-created
        :class:`~repro.serve.registry.ModelRegistry`.  Ignored (with the
        registry's own options winning) when a registry is passed in.
    controllers:
        Optional :class:`~repro.tune.ControllerSet` (off by default).
        Bound to this server's metrics registry and ticked after each
        processed batch.  Frozen (via ``notify_health``) whenever the
        health monitor reports a non-``HEALTHY`` state.
    qos:
        Optional :class:`~repro.serve.qos.QoSPolicy`.  Passing one turns
        on QoS *enforcement*: per-class queue bounds, lowest-class-first
        shedding under pressure, health-gated admission and degraded
        fallbacks.  Without it priorities/deadlines are still accepted
        and deadline expiry still sheds (an expired request is useless
        work), but class bounds and health states never reject anything.
    health:
        Optional :class:`~repro.health.HealthMonitor`.  One is always
        created (observe-only unless ``qos``/``health`` was passed);
        pass your own to pick thresholds and dwell times.  Exported
        under ``stats()["health"]`` and the ``health.state`` gauge.
    engine:
        ``"compiled"`` (plan-cache replay, the production path) or
        ``"eager"`` (tape per batch; the baseline the benchmarks compare
        against).
    default_timeout:
        Per-request queue-wait budget in seconds (None = unbounded).
    retry_policy:
        :class:`~repro.resilience.RetryPolicy` applied around each batch
        evaluation (worker crashes and non-finite output are retried with
        seeded-jitter backoff).  Default: 2 retries, millisecond delays.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan`; consulted per batch
        on the ``serve.worker_crash`` / ``serve.worker_stall`` channels.
    stall_time:
        How long an injected worker stall sleeps (seconds).
    drain_timeout:
        Default drain deadline for ``stop(drain=True)`` in seconds.  Past
        it, still-pending futures fail with :class:`DrainTimeout` (an
        explicit :class:`ServeError`, counted under
        ``errors_drain_timeout``) instead of shutdown hanging forever on a
        stalled worker.  ``None`` restores the unbounded wait.
    """

    def __init__(
        self,
        models,
        n_workers: int = 2,
        max_queue: int = 64,
        max_batch: int = 8,
        batch_wait: float = 2e-3,
        engine: str = "compiled",
        default_timeout: Optional[float] = None,
        metrics: Optional[Metrics] = None,
        retry_policy: Optional[RetryPolicy] = None,
        fault_plan=None,
        stall_time: float = 0.01,
        drain_timeout: Optional[float] = 30.0,
        start: bool = True,
        adaptive: bool = True,
        plan_cache_opts: Optional[dict] = None,
        controllers=None,
        qos: Optional[QoSPolicy] = None,
        health: Optional[HealthMonitor] = None,
    ) -> None:
        if engine not in ("compiled", "eager"):
            raise ValueError(f"unknown engine {engine!r} (compiled|eager)")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if isinstance(models, ModelRegistry):
            self.registry = models
        else:
            self.registry = ModelRegistry(plan_cache_opts=plan_cache_opts)
            self.registry.register("default", models)
        self.engine = engine
        self.max_queue = int(max_queue)
        self.default_timeout = default_timeout
        self.metrics = metrics or Metrics()
        self.retry_policy = retry_policy or RetryPolicy(
            max_retries=2, base_delay=1e-3, max_delay=0.02
        )
        self.fault_plan = fault_plan
        self.stall_time = float(stall_time)
        self.drain_timeout = None if drain_timeout is None else float(drain_timeout)
        self._batcher = MicroBatcher(
            max_batch=max_batch, max_wait=batch_wait, adaptive=adaptive
        )
        self._batcher.on_expire = self._expire_requests
        self.controllers = controllers
        if controllers is not None:
            controllers.bind(self.metrics)
        # QoS enforcement is opt-in: passing a policy (or an explicit
        # monitor) turns on priority shedding, health-gated admission and
        # degraded fallbacks.  Without either, the monitor still observes
        # and exports state, but admission behaves exactly as before.
        self.qos = qos
        self._enforce_qos = qos is not None or health is not None
        self._class_bounds = (
            qos.bounds_for(max_queue)
            if qos is not None
            else {p: int(max_queue) for p in PRIORITIES}
        )
        self.health = health if health is not None else HealthMonitor()
        self.health.attach(self._health_signals)
        self.health.bind(self.metrics)
        self.health.on_transition = self._on_health_transition
        # EWMA of batch evaluation seconds: the feasibility check sheds a
        # deadline request whose remaining budget cannot cover one eval.
        self._eval_ewma: Optional[float] = None
        self._lock = threading.Lock()
        self._done_cv = threading.Condition(self._lock)
        self._accepting = False
        self._closed = False
        self._aborting = False
        self._admitted = 0
        self._completed = 0
        self._inflight: Dict[int, ForceRequest] = {}
        self._workers: List[threading.Thread] = []
        self._n_workers = int(n_workers)
        if start:
            self.start()

    # -- lifecycle ------------------------------------------------------------
    def start(self, workers: bool = True) -> "ForceServer":
        """Spawn the worker pool and open admission (idempotent).

        ``workers=False`` opens admission *without* spawning the pool —
        requests queue (and the QoS admission path runs) until a later
        ``start()`` brings up the workers.  Tests and the chaos harness
        use this to drive a deterministic admission sequence.
        """
        with self._lock:
            if self._closed:
                raise ServeError("server already stopped")
            self._accepting = True
            if not workers or self._workers:
                return self
            for k in range(self._n_workers):
                t = threading.Thread(
                    target=self._worker_loop, name=f"force-worker-{k}", daemon=True
                )
                t.start()
                self._workers.append(t)
        return self

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every admitted request has completed.

        Returns False if ``timeout`` expired with work still in flight.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._done_cv:
            while self._completed < self._admitted:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._done_cv.wait(remaining)
        return True

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop admission, optionally drain the backlog, join the workers.

        With ``drain=False``, batches still queued are *failed*, never
        dropped: workers switch to abort mode (any batch they pick up is
        completed with :class:`ServeError`), and whatever remains after
        the pool joins is failed here — every admitted future resolves.

        With ``drain=True`` the drain waits at most ``timeout`` seconds
        (default: the server's ``drain_timeout``).  Past the deadline the
        server switches to abort mode and every still-pending future —
        queued or in flight on a stalled worker — fails with an explicit
        :class:`DrainTimeout` (error class ``drain_timeout``), so shutdown
        is bounded even when a worker never comes back.
        """
        with self._lock:
            self._accepting = False
            if not drain:
                self._aborting = True
        # Shutdown is a health state, not just a flag: the monitor walks
        # to DRAINING (recording each intermediate transition) so stats
        # and the gauge show the terminal state.
        self.health.begin_drain()
        drained = True
        if drain:
            if timeout is None:
                timeout = self.drain_timeout
            drained = self.drain(timeout=timeout)
            if not drained:
                with self._lock:
                    self._aborting = True
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._batcher.close()
        # After a failed drain the deadline has already expired: grant the
        # workers only a drain-timeout-sized grace instead of the full
        # cooperative join budget, so shutdown stays bounded end to end.
        join_budget = 5.0
        if drain and not drained and timeout is not None:
            join_budget = min(5.0, max(0.05, float(timeout)))
        for t in self._workers:
            t.join(timeout=join_budget)
        if drain and not drained:
            exc_factory = lambda: DrainTimeout(  # noqa: E731
                f"drain deadline ({timeout}s) expired with requests pending"
            )
            err_class = "drain_timeout"
        else:
            exc_factory = lambda: ServeError("server stopped")  # noqa: E731
            err_class = "shutdown"
        # Anything still queued after an aborted stop is failed, not lost.
        leftover = self._batcher.get_batch(timeout=0.0)
        while leftover:
            for req in leftover:
                self._fail(req, exc_factory(), "requests_failed", err_class)
            leftover = self._batcher.get_batch(timeout=0.0)
        # Requests held by a worker that never finished (e.g. a stall
        # longer than the join budget): fail them explicitly here.  The
        # completion paths are InvalidStateError-safe, so a worker waking
        # up later cannot double-complete or double-count them.
        with self._lock:
            stuck = list(self._inflight.values())
        for req in stuck:
            self._fail(req, exc_factory(), "requests_failed", err_class)

    def __enter__(self) -> "ForceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # -- request side ---------------------------------------------------------
    def _shed_counter(self, name: str, priority: str) -> None:
        self.metrics.counter(name, {"class": priority}).inc()

    def submit(
        self,
        system,
        model: Optional[str] = None,
        nl=None,
        timeout: Optional[float] = None,
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> Future:
        """Queue one structure; returns a Future of ``(energy, forces)``.

        ``priority`` names a QoS class (``interactive``/``batch``/
        ``background``; default ``batch`` or the policy's default);
        ``deadline`` is an end-to-end budget in seconds — past it the
        request is shed before evaluation with
        :class:`DeadlineExceeded`.  ``timeout`` remains the legacy
        queue-wait budget (:class:`RequestTimeout` at pickup).

        Raises :class:`ServerOverloaded` (or its subclass
        :class:`LoadShed` for policy sheds) when admission rejects,
        :class:`ServerStopped` after ``stop()``, and
        :class:`~repro.serve.registry.UnknownModelError` for unknown
        model keys — all synchronously, so callers can react without
        touching the future.
        """
        key = self.registry.resolve_key(model)
        if priority is None:
            priority = (
                self.qos.default_priority if self.qos is not None
                else DEFAULT_PRIORITY
            )
        level = priority_level(priority)
        if deadline is None and self.qos is not None:
            deadline = self.qos.default_deadline(priority)
        now = time.monotonic()
        timeout = self.default_timeout if timeout is None else timeout
        self.health.tick()
        victim: Optional[ForceRequest] = None
        with self._lock:
            if not self._accepting:
                self.metrics.counter("errors_shutdown").inc()
                raise ServerStopped("server is not accepting requests")
            if self._enforce_qos and self.health.level >= 2:
                # SHEDDING (or DRAINING): only the strongest classes are
                # admitted until the monitor steps back down.
                admit_level = (
                    self.qos.shed_admit_level if self.qos is not None else 0
                )
                if self.health.level >= 3 or level > admit_level:
                    self.metrics.counter("requests_shed").inc()
                    self.metrics.counter("errors_shed").inc()
                    self._shed_counter(SHED_LOAD, priority)
                    raise LoadShed(
                        f"health state {self.health.state}: "
                        f"{priority} requests are shed"
                    )
            depth = self._batcher.pending()
            if self._enforce_qos:
                by_class = self._batcher.pending_by_class()
                bound = self._class_bounds.get(priority, self.max_queue)
                if by_class.get(priority, 0) >= bound:
                    self.metrics.counter("requests_shed").inc()
                    self.metrics.counter("errors_shed").inc()
                    self._shed_counter(SHED_LOAD, priority)
                    raise LoadShed(
                        f"{priority} queue share full "
                        f"({by_class[priority]}/{bound} pending)"
                    )
            if depth >= self.max_queue:
                # Strict-priority admission: displace the newest request
                # of a strictly weaker class before shedding the arrival.
                victim = self._batcher.evict_newest_below(level)
                if victim is None:
                    self.metrics.counter("requests_shed").inc()
                    self.metrics.counter("errors_overload").inc()
                    self._shed_counter(SHED_LOAD, priority)
                    raise LoadShed(
                        f"queue full ({depth}/{self.max_queue} pending)"
                    )
            fut: Future = Future()
            req = ForceRequest(
                system=system,
                model=key,
                future=fut,
                nl=nl,
                t_enqueue=now,
                deadline=None if deadline is None else now + float(deadline),
                priority=priority,
                timeout_at=None if timeout is None else now + float(timeout),
            )
            self._admitted += 1
            self._batcher.put(req)
        if victim is not None:
            self._shed_counter(SHED_LOAD, victim.priority)
            self._fail(
                victim,
                LoadShed(
                    f"evicted by an arriving {priority} request "
                    f"(queue full at {self.max_queue})"
                ),
                "requests_failed",
                "shed",
            )
        self.metrics.counter("requests_admitted").inc()
        self.metrics.histogram("queue_depth", OCCUPANCY_BUCKETS).observe(depth + 1)
        return fut

    def evaluate(
        self,
        system,
        model: Optional[str] = None,
        nl=None,
        timeout: Optional[float] = None,
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> Tuple[float, np.ndarray]:
        """Blocking single-structure evaluation: ``(energy, forces)``."""
        return self.submit(
            system, model=model, nl=nl, timeout=timeout,
            priority=priority, deadline=deadline,
        ).result()

    def evaluate_many(
        self,
        systems: Sequence,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> List[Tuple[float, np.ndarray]]:
        """Submit a burst of structures, gather results in order.

        Submitting everything before gathering is what lets the
        micro-batcher coalesce the burst into padded batches.
        """
        futures = [
            self.submit(
                s, model=model, timeout=timeout,
                priority=priority, deadline=deadline,
            )
            for s in systems
        ]
        return [f.result() for f in futures]

    # -- worker side ----------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            batch = self._batcher.get_batch(timeout=0.05)
            if batch is None:
                if self._closed:
                    return
                continue
            try:
                self._process(batch)
            except Exception as exc:  # defensive: a bug must not kill the pool
                for req in batch:
                    if not req.future.done():
                        self._fail(req, exc, "requests_failed", "model_failure")

    def _finish(self, req: ForceRequest, result) -> None:
        try:
            req.future.set_result(result)
        except InvalidStateError:
            # Lost the race against stop()'s drain-deadline failure: that
            # path already counted and completed this request.
            return
        self.metrics.counter("requests_served").inc()
        self.metrics.histogram("latency_s").observe(time.monotonic() - req.t_enqueue)
        self._mark_completed(req)

    def _fail(
        self,
        req: ForceRequest,
        exc: Exception,
        counter: str,
        err_class: Optional[str] = None,
    ) -> None:
        try:
            req.future.set_exception(exc)
        except InvalidStateError:
            return
        self.metrics.counter(counter).inc()
        if err_class is not None:
            self.metrics.counter(f"errors_{err_class}").inc()
        self._mark_completed(req)

    def _mark_completed(self, req: ForceRequest) -> None:
        with self._done_cv:
            self._completed += 1
            self._inflight.pop(id(req), None)
            self._done_cv.notify_all()

    def _expire_requests(self, expired: List[ForceRequest]) -> None:
        """Fail requests whose deadline passed while queued.

        Called by the batcher *outside* its lock, before batch assembly:
        an expired request never reaches a force call.
        """
        for req in expired:
            self._shed_counter(SHED_DEADLINE, req.priority)
            self._fail(
                req,
                DeadlineExceeded(
                    f"deadline passed after "
                    f"{time.monotonic() - req.t_enqueue:.3f}s in queue"
                ),
                "requests_expired",
                "deadline",
            )

    # -- health ---------------------------------------------------------------
    def _health_signals(self) -> dict:
        """Signal snapshot for the health monitor's tick."""
        return {
            "queue_frac": self._batcher.pending() / self.max_queue,
            "p99_s": self.metrics.histogram("latency_s").percentile(0.99),
            "breaker_open": self.registry.any_breaker_open(),
        }

    def _on_health_transition(self, old: str, new: str) -> None:
        if self.controllers is not None:
            self.controllers.notify_health(new)

    def _process(self, batch: List[ForceRequest]) -> None:
        with self._lock:
            # Once a batch leaves the queue its requests are in flight;
            # stop()'s drain-deadline path fails whatever is still here.
            self._inflight.update((id(req), req) for req in batch)
        if self._aborting:
            for req in batch:
                self._fail(
                    req, ServeError("server stopped"), "requests_failed",
                    "shutdown",
                )
            return
        now = time.monotonic()
        for req in batch:
            self.metrics.histogram("queue_wait_s").observe(now - req.t_enqueue)
        live: List[ForceRequest] = []
        for req in batch:
            if req.timeout_at is not None and now > req.timeout_at:
                self._fail(
                    req,
                    RequestTimeout(
                        f"request waited {now - req.t_enqueue:.3f}s in queue"
                    ),
                    "requests_timeout",
                    "timeout",
                )
            elif req.deadline is not None and (
                now > req.deadline
                or (
                    # Feasibility: shed when the remaining budget cannot
                    # cover one batch evaluation — a force call that
                    # finishes past the deadline is pure waste.
                    self._eval_ewma is not None
                    and now + self._eval_ewma > req.deadline
                )
            ):
                self._shed_counter(SHED_DEADLINE, req.priority)
                self._fail(
                    req,
                    DeadlineExceeded(
                        f"deadline unmeetable at pickup after "
                        f"{now - req.t_enqueue:.3f}s in queue"
                    ),
                    "requests_expired",
                    "deadline",
                )
            else:
                live.append(req)
        if not live:
            self._health_tick()
            return
        self.metrics.counter("batches").inc()
        self.metrics.histogram("batch_occupancy", OCCUPANCY_BUCKETS).observe(len(live))
        with span("serve.batch") as sp:
            sp.add("requests", len(live))
            self._process_live(live)
        self._health_tick()
        if self.controllers is not None:
            # Per-batch cadence; ControllerSet.tick() is try-lock guarded,
            # so concurrent workers never queue on controller decisions.
            self.controllers.tick()

    def _health_tick(self) -> None:
        """Advance the health monitor and keep controllers frozen while
        the server is not HEALTHY (repeated calls extend the freeze)."""
        state = self.health.tick()
        if self.controllers is not None and state != "HEALTHY":
            self.controllers.notify_health(state)

    def _process_live(self, live: List[ForceRequest]) -> None:
        key = live[0].model
        eager = self.engine == "eager"
        degraded = False
        if self._enforce_qos and self.health.level >= 1:
            # DEGRADED (or worse): serve through the model's fallback
            # chain — a cheaper registered model, or the same model on
            # the eager engine (no compiled state churn while stressed).
            fb_entry, fb_eager = self.registry.resolve_degraded(key)
            if fb_entry.key != key or (fb_eager and not eager):
                degraded = True
                eager = eager or fb_eager
                key = fb_entry.key
        entry = self.registry.peek(key) if eager else self.registry.get(key)
        if not entry.breaker.allow():
            # Fail fast: the model has been failing consistently; shedding
            # here protects the workers for healthy models.  A half-open
            # probe batch is admitted once per reset window.
            for req in live:
                self._fail(
                    req,
                    CircuitOpen(f"circuit open for model {key}"),
                    "requests_failed",
                    "circuit_open",
                )
            return
        # The service-time estimate must cover everything a batch costs —
        # neighbor-list builds included — or the deadline feasibility
        # check undershoots and admits requests that cannot finish.
        t_service = time.monotonic()
        nls = [
            req.nl if req.nl is not None else _build_nl(entry.potential, req.system)
            for req in live
        ]
        try:
            results = self.retry_policy.call(
                lambda: self._evaluate_batch(entry, live, nls, eager),
                retry_on=(WorkerCrash, NumericalInstabilityError),
                on_retry=lambda attempt, exc: (
                    entry.breaker.record_failure(),
                    self.metrics.counter("batch_retries").inc(),
                ),
            )
        except Exception as exc:
            entry.breaker.record_failure()
            wrapped = exc if isinstance(exc, ServeError) else ModelFailure(str(exc))
            for req in live:
                self._fail(req, wrapped, "requests_failed", "model_failure")
            return
        elapsed = time.monotonic() - t_service
        self._eval_ewma = (
            elapsed if self._eval_ewma is None
            else 0.8 * self._eval_ewma + 0.2 * elapsed
        )
        entry.breaker.record_success()
        if degraded:
            self.metrics.counter(DEGRADED_SERVED).inc(len(live))
        # Futures resolve only after the WHOLE batch computed and validated
        # — a retry can therefore never double-resolve a future, and no
        # caller ever observes a non-finite result.
        for req, (e, f) in zip(live, results):
            self._finish(
                req,
                ServeResult(
                    e, f, degraded=degraded, model=entry.key,
                    priority=req.priority,
                ),
            )

    def _evaluate_batch(
        self, entry, live: List[ForceRequest], nls: List, eager: Optional[bool] = None
    ) -> List[Tuple[float, np.ndarray]]:
        """Results for every request in order; finishes no futures.

        Raises on any evaluation failure or non-finite output — the caller
        owns retry/shed policy.
        """
        if self.fault_plan is not None:
            from ..resilience.faults import WORKER_CRASH, WORKER_STALL

            if self.fault_plan.fires(WORKER_STALL):
                time.sleep(self.stall_time)
            if self.fault_plan.fires(WORKER_CRASH):
                raise WorkerCrash("injected worker crash")
        with span("serve.eval"):
            return self._evaluate_batch_inner(entry, live, nls, eager)

    def _evaluate_batch_inner(
        self, entry, live: List[ForceRequest], nls: List, eager: Optional[bool] = None
    ) -> List[Tuple[float, np.ndarray]]:
        potential = entry.potential
        results: List = [None] * len(live)
        # Zero-edge structures take the eager path: models may define a
        # non-trivial empty-graph energy (e.g. Wolf self-interaction) that
        # the traced graph cannot express, and exactness beats batching.
        dense = [i for i, nl in enumerate(nls) if nl.n_edges > 0]
        for i, nl in enumerate(nls):
            if nl.n_edges == 0:
                e, f = potential.energy_and_forces(live[i].system, nl)
                results[i] = (float(e), f)
        if eager is None:
            eager = self.engine == "eager"
        if dense:
            systems = [live[i].system for i in dense]
            positions, species, nl_cat, offsets = concatenate_structures(
                systems, [nls[i] for i in dense]
            )
            if not eager:
                cache = entry.ensure_cache()
                pentry = cache.acquire(len(species), nl_cat.n_edges)
                with pentry.lock:
                    # evaluate() itself is safe for concurrent callers
                    # (private per-caller evaluation states); the lock makes
                    # the before/after capture-counter delta attributable to
                    # THIS batch, and funnels same-bucket batches through
                    # one state instead of growing the clone pool per worker.
                    captures_before = pentry.compiled.n_captures
                    e_atoms, forces = pentry.compiled.evaluate(
                        positions, species, nl_cat
                    )
                    split = self._split(e_atoms, forces, offsets)
                    captured = pentry.compiled.n_captures - captures_before
                self.metrics.counter("plan_captures").inc(captured)
                self.metrics.counter("plan_replays").inc(1 - captured)
            else:
                pos_t = ad.Tensor(positions, requires_grad=True)
                e_atoms = potential.atomic_energies(pos_t, species, nl_cat)
                e_atoms.sum().backward()
                grad = pos_t.grad
                forces = -grad.data if grad is not None else np.zeros_like(positions)
                split = self._split(e_atoms.data, forces, offsets)
            for i, result in zip(dense, split):
                results[i] = result
        for (e, f) in results:
            validate_energy_forces(e, f, context=f"model {entry.key}")
        return results

    @staticmethod
    def _split(e_atoms, forces, offsets) -> List[Tuple[float, np.ndarray]]:
        """Per-structure ``(energy, forces)`` copies from batched arrays."""
        out = []
        for a, b in zip(offsets[:-1], offsets[1:]):
            out.append((float(np.sum(e_atoms[a:b])), np.array(forces[a:b])))
        return out

    # -- observability --------------------------------------------------------
    def stats(self) -> dict:
        """Metrics snapshot merged with registry/batcher state.

        ``replay_rate`` is the capture-vs-replay split of every batch
        evaluation since start — the serving-level Fig. 5 counter.
        """
        snap = self.metrics.snapshot()
        snap["registry"] = self.registry.stats()
        snap["batcher"] = self._batcher.stats()
        counters = snap["counters"]
        replays = counters.get("plan_replays", 0)
        captures = counters.get("plan_captures", 0)
        total = replays + captures
        snap["replay_rate"] = replays / total if total else 0.0
        snap["engine"] = self.engine
        snap["health"] = self.health.stats()
        snap["qos"] = {
            "enforced": self._enforce_qos,
            "class_bounds": dict(self._class_bounds),
            "pending_by_class": self._batcher.pending_by_class(),
        }
        if self.controllers is not None:
            snap["controllers"] = self.controllers.stats()
        return snap


class Client:
    """Thin in-process client bound to a server and (optionally) a model.

    The client is the integration point user code sees: ``evaluate`` for
    one structure, ``evaluate_many`` for a burst (which the server
    coalesces into padded batches), ``submit`` for explicit futures.
    """

    def __init__(
        self,
        server: ForceServer,
        model: Optional[str] = None,
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> None:
        self.server = server
        self.model = model
        # Client-level QoS defaults: every call inherits them unless the
        # call site overrides (an MD driver binds priority="interactive"
        # once instead of threading it through every evaluate()).
        self.priority = priority
        self.deadline = deadline

    def submit(
        self,
        system,
        nl=None,
        timeout: Optional[float] = None,
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> Future:
        """Queue one structure; returns a Future of ``(energy, forces)``."""
        return self.server.submit(
            system, model=self.model, nl=nl, timeout=timeout,
            priority=priority if priority is not None else self.priority,
            deadline=deadline if deadline is not None else self.deadline,
        )

    def evaluate(
        self,
        system,
        nl=None,
        timeout: Optional[float] = None,
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> Tuple[float, np.ndarray]:
        """Blocking evaluation of one structure."""
        return self.submit(
            system, nl=nl, timeout=timeout, priority=priority, deadline=deadline
        ).result()

    def evaluate_many(
        self,
        systems: Sequence,
        timeout: Optional[float] = None,
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> List[Tuple[float, np.ndarray]]:
        """Evaluate a burst of structures (batched server-side)."""
        return self.server.evaluate_many(
            systems, model=self.model, timeout=timeout,
            priority=priority if priority is not None else self.priority,
            deadline=deadline if deadline is not None else self.deadline,
        )
