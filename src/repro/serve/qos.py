"""Quality-of-service policy: priority classes, deadlines, load shedding.

Under overload a force server has to decide *which* work to drop, not
just *whether* to drop it.  This module holds the policy vocabulary the
server enforces:

* **Priority classes** — every request belongs to one of three classes,
  ordered strongest-first::

      interactive (0)  >  batch (1)  >  background (2)

  Scheduling is strict: a ready higher-class batch always dispatches
  before a ready lower-class one.  Admission is strict-then-weighted:
  an arriving request is never shed while a strictly lower class holds
  queue slots (the newest lowest-class request is evicted instead), and
  the class ``weights`` partition queue capacity so a flood of one
  non-top class cannot monopolize the queue.

* **Deadlines** — a per-request end-to-end budget.  Requests that expire
  while queued are shed *before* batch assembly (no force call is
  wasted) with a typed ``DeadlineExceeded``; the micro-batcher never
  holds a partial batch past the tightest deadline in its window.

* **Shed accounting** — every QoS shed is counted under the
  ``serve.shed.*`` metrics (labelled by class) so the chaos harness can
  prove "every shed request got a typed error, none evaluated".

The policy object is deliberately inert — pure data plus arithmetic —
so property tests can exercise admission logic without a server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = [
    "PRIORITIES",
    "PRIORITY_LEVELS",
    "DEFAULT_PRIORITY",
    "QoSPolicy",
    "ServeResult",
    "priority_level",
    "qos_from_config",
    "SHED_LOAD",
    "SHED_DEADLINE",
    "DEGRADED_SERVED",
]

#: Priority classes, strongest first.  The tuple index is the level:
#: lower level = higher priority.
PRIORITIES = ("interactive", "batch", "background")

PRIORITY_LEVELS: Dict[str, int] = {name: i for i, name in enumerate(PRIORITIES)}

DEFAULT_PRIORITY = "batch"

#: Counter names for QoS sheds (labelled ``{class=...}``) and degraded
#: serves; the chaos obs-consistency invariant sums these.
SHED_LOAD = "serve.shed.load"
SHED_DEADLINE = "serve.shed.deadline"
DEGRADED_SERVED = "serve.degraded"


def priority_level(priority: str) -> int:
    """Validated numeric level for a priority class name (lower = stronger)."""
    try:
        return PRIORITY_LEVELS[priority]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown priority {priority!r} (expected one of {PRIORITIES})"
        ) from None


def _default_weights() -> Dict[str, float]:
    return {"interactive": 4.0, "batch": 2.0, "background": 1.0}


@dataclass(frozen=True)
class QoSPolicy:
    """Admission/scheduling policy for a :class:`~repro.serve.ForceServer`.

    Parameters
    ----------
    weights:
        Per-class capacity weights.  When ``queue_bounds`` is not given,
        each non-top class gets a queue share of
        ``max(1, round(max_queue * w / sum(w)))`` slots; the top class
        (``interactive``) is bounded only by the total ``max_queue`` so
        latency-critical work is never starved of admission by its own
        share.
    queue_bounds:
        Explicit per-class pending bounds (overrides the weighted
        shares).  Classes omitted here fall back to ``max_queue``.
    shed_admit_priority:
        In the ``SHEDDING`` health state only classes at least this
        strong are admitted; everything weaker sheds with ``LoadShed``.
    default_priority:
        Class assumed when ``submit`` passes none.
    deadlines:
        Optional per-class default deadline (seconds, end-to-end) applied
        when ``submit`` passes none.  ``None`` entries mean no deadline.
    """

    weights: Mapping[str, float] = field(default_factory=_default_weights)
    queue_bounds: Optional[Mapping[str, int]] = None
    shed_admit_priority: str = "interactive"
    default_priority: str = DEFAULT_PRIORITY
    deadlines: Optional[Mapping[str, Optional[float]]] = None

    def __post_init__(self) -> None:
        for name in self.weights:
            priority_level(name)
        for name, w in self.weights.items():
            if not (float(w) > 0):
                raise ValueError(f"weight for {name!r} must be > 0, got {w!r}")
        missing = [p for p in PRIORITIES if p not in self.weights]
        if missing:
            raise ValueError(f"weights missing classes: {missing}")
        if self.queue_bounds is not None:
            for name, bound in self.queue_bounds.items():
                priority_level(name)
                if int(bound) < 1:
                    raise ValueError(
                        f"queue bound for {name!r} must be >= 1, got {bound!r}"
                    )
        priority_level(self.shed_admit_priority)
        priority_level(self.default_priority)
        if self.deadlines is not None:
            for name, dl in self.deadlines.items():
                priority_level(name)
                if dl is not None and not (float(dl) > 0):
                    raise ValueError(
                        f"deadline for {name!r} must be > 0 or None, got {dl!r}"
                    )

    @property
    def shed_admit_level(self) -> int:
        """Strongest level still admitted while the server is SHEDDING."""
        return priority_level(self.shed_admit_priority)

    def bounds_for(self, max_queue: int) -> Dict[str, int]:
        """Per-class pending bounds given the server's total queue bound.

        Explicit ``queue_bounds`` win; otherwise non-top classes get
        weighted shares of ``max_queue`` and the top class the full
        queue.  Every bound is capped at ``max_queue``.
        """
        max_queue = int(max_queue)
        total_w = sum(float(self.weights[p]) for p in PRIORITIES)
        out: Dict[str, int] = {}
        for level, name in enumerate(PRIORITIES):
            if self.queue_bounds is not None and name in self.queue_bounds:
                bound = int(self.queue_bounds[name])
            elif level == 0:
                bound = max_queue
            else:
                share = max_queue * float(self.weights[name]) / total_w
                bound = max(1, int(round(share)))
            out[name] = min(bound, max_queue)
        return out

    def default_deadline(self, priority: str) -> Optional[float]:
        """Default end-to-end deadline (seconds) for a class, or None."""
        if self.deadlines is None:
            return None
        dl = self.deadlines.get(priority)
        return None if dl is None else float(dl)


class ServeResult(tuple):
    """An ``(energy, forces)`` pair with serving metadata attached.

    Unpacks exactly like the plain tuple the server has always returned
    (``e, f = result``) while exposing ``result.degraded`` (whether a
    fallback model or engine served it), ``result.model`` (the entry key
    that actually evaluated) and ``result.priority``.
    """

    def __new__(cls, energy, forces, degraded=False, model=None, priority=None):
        self = super().__new__(cls, (energy, forces))
        self.degraded = bool(degraded)
        self.model = model
        self.priority = priority
        return self

    @property
    def energy(self):
        return self[0]

    @property
    def forces(self):
        return self[1]


def qos_from_config(cfg: Mapping) -> QoSPolicy:
    """Build a validated :class:`QoSPolicy` from a JSON config mapping.

    Recognized keys: ``weights``, ``queue_bounds``, ``shed_admit_priority``,
    ``default_priority``, ``deadlines``.  Unknown keys raise ``ValueError``
    so config typos fail loudly instead of silently doing nothing.
    """
    known = {
        "weights", "queue_bounds", "shed_admit_priority",
        "default_priority", "deadlines", "health",
    }
    unknown = set(cfg) - known
    if unknown:
        raise ValueError(
            f"unknown qos config keys: {sorted(unknown)} (expected {sorted(known)})"
        )
    kwargs: Dict = {}
    if "weights" in cfg:
        kwargs["weights"] = {str(k): float(v) for k, v in cfg["weights"].items()}
    if "queue_bounds" in cfg and cfg["queue_bounds"] is not None:
        kwargs["queue_bounds"] = {
            str(k): int(v) for k, v in cfg["queue_bounds"].items()
        }
    if "shed_admit_priority" in cfg:
        kwargs["shed_admit_priority"] = str(cfg["shed_admit_priority"])
    if "default_priority" in cfg:
        kwargs["default_priority"] = str(cfg["default_priority"])
    if "deadlines" in cfg and cfg["deadlines"] is not None:
        kwargs["deadlines"] = {
            str(k): (None if v is None else float(v))
            for k, v in cfg["deadlines"].items()
        }
    return QoSPolicy(**kwargs)
