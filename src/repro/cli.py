"""Command-line MD runner: the LAMMPS-input-script analogue.

A JSON config fully describes a run — system, potential, thermodynamics,
output — so simulations are reproducible artifacts rather than ad-hoc
scripts (the role LAMMPS input files play in the paper's workflow):

    python -m repro.cli run config.json [--stats-json stats.json]
    python -m repro.cli example-config > config.json

A second subcommand drives the batched force-evaluation service
(:mod:`repro.serve`) with a synthetic mixed-size request stream::

    python -m repro.cli serve serve.json [--stats-json metrics.json]
    python -m repro.cli example-serve-config > serve.json

Runs configured with ``"md": {"checkpoint_dir": ...}`` persist verified
checkpoints (and a copy of their config) as they go, and can be picked
up after a crash exactly where they left off::

    python -m repro.cli resume ckpts/ [--steps N] [--stats-json stats.json]

A third subcommand drives the force-matching trainer
(:mod:`repro.nn.training`) on a synthetic labeled dataset, with the same
checkpoint/resume discipline — a killed training run picked up with
``--resume`` reproduces the uninterrupted run bitwise::

    python -m repro.cli train train.json [--resume] [--stats-json stats.json]
    python -m repro.cli example-train-config > train.json

Observability: every subcommand takes ``--trace-json PATH`` (enable the
global span tracer for the run, export the phase table + span trees), and
``profile`` runs a traced MD segment and prints where the time goes::

    python -m repro.cli profile config.json [--steps N] [--trace-json t.json]

Autotuning (:mod:`repro.tune`): ``tune`` runs a deterministic measured
search for one target and writes a ``TuningProfile``; ``--profile`` on
``run``/``resume``/``serve`` applies it::

    python -m repro.cli tune --target serve serve.json --out profile.json
    python -m repro.cli serve serve.json --profile profile.json

Config schema (all lengths Å, times fs, temperatures K)::

    {
      "system":    {"kind": "water", "n_grid": 3, "seed": 0}
                 | {"kind": "water_box", "reps": 2}
                 | {"kind": "molecule", "n_heavy": 6}
                 | {"kind": "protein", "n_residues": 4},
      "potential": {"kind": "reference"}
                 | {"kind": "lennard_jones", "epsilon": .., "sigma": .., "cutoff": ..}
                 | {"kind": "allegro", "checkpoint": "model.npz", "config": {...}},
      "md": {"steps": 100, "dt": 0.5, "temperature": 300.0,
             "thermostat": "langevin" | "berendsen" | null,
             "friction": 0.02, "seed": 0, "minimize_first": true,
             "engine": "eager" | "compiled",
             "skin": 0.4, "neighbor_every": 1, "padding": 0.05,
             "checkpoint_dir": "ckpts/", "checkpoint_every": 100},
      "output": {"trajectory": "traj.xyz", "every": 10}
    }

``output.trajectory`` picks the dump path by extension: ``.rtrj`` uses
the binary chunked store with the asynchronous off-hot-path writer
(:mod:`repro.traj` — crash-atomic, resumable bitwise), anything else the
synchronous extended-XYZ recorder.  The ``traj`` subcommand inspects,
verifies, converts, and stream-analyzes binary trajectories::

    python -m repro.cli traj info run.rtrj
    python -m repro.cli traj verify run.rtrj          # exit 1 on damage
    python -m repro.cli traj convert run.rtrj run.xyz # either direction
    python -m repro.cli traj analyze run.rtrj --out report.json

Training config schema::

    {
      "data":  {"kind": "conformations", "n_frames": 20, "n_heavy": 4,
                "seed": 11, "sigma": 0.06, "val_fraction": 0.2}
             | {"kind": "water", "n_frames": 16, "seed": 0, "sigma": 0.05,
                "n_grid": 2, "val_fraction": 0.2},
      "model": {"kind": "allegro", "config": {...}}
             | {"kind": "classical", "n_species": 4, "r_cut": 3.5},
      "train": {"epochs": 5, "lr": 1e-3, "batch_size": 8, "seed": 0,
                "ema_decay": 0.99, "grad_clip_norm": null,
                "data_policy": "reject" | "quarantine" | "off",
                "watchdog": null | "abort" | "recover",
                "checkpoint_dir": "ckpts/", "checkpoint_every": 1,
                "save_model": "model.npz"}
    }
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from pathlib import Path
from typing import Optional

import numpy as np

EXAMPLE_CONFIG = {
    "system": {"kind": "water", "n_grid": 3, "seed": 0},
    "potential": {"kind": "reference"},
    "md": {
        "steps": 50,
        "dt": 0.5,
        "temperature": 300.0,
        "thermostat": "langevin",
        "friction": 0.02,
        "seed": 0,
        "minimize_first": False,
        "skin": 0.4,
    },
    "output": {"trajectory": None, "every": 10},
}

EXAMPLE_SERVE_CONFIG = {
    "potential": {"kind": "lennard_jones", "epsilon": 0.8, "sigma": 1.1, "cutoff": 3.0},
    "serve": {
        "n_workers": 2,
        "max_batch": 8,
        "max_queue": 64,
        "batch_wait": 0.002,
        "adaptive": True,
        "engine": "compiled",
        "qos": {
            "weights": {"interactive": 4, "batch": 2, "background": 1},
            "queue_bounds": {"batch": 64, "background": 16},
            "shed_admit_priority": "interactive",
            "default_priority": "batch",
            "deadlines": {"interactive": 0.25},
            "health": {
                "queue_degraded": 0.75,
                "queue_shedding": 0.95,
                "hysteresis": 0.6,
                "dwell_up": 3,
                "dwell_down": 12,
            },
        },
    },
    "workload": {
        "n_requests": 32,
        "seed": 0,
        "priority": None,
        "deadline_s": None,
        "systems": [
            {"kind": "molecule", "n_heavy": 3},
            {"kind": "molecule", "n_heavy": 4},
            {"kind": "molecule", "n_heavy": 5},
        ],
    },
}


EXAMPLE_TRAIN_CONFIG = {
    "data": {
        "kind": "conformations",
        "n_frames": 20,
        "n_heavy": 4,
        "seed": 11,
        "sigma": 0.06,
        "val_fraction": 0.2,
    },
    "model": {"kind": "classical", "n_species": 4, "r_cut": 3.5},
    "train": {
        "epochs": 5,
        "lr": 1e-2,
        "batch_size": 8,
        "seed": 0,
        "checkpoint_dir": None,
        "checkpoint_every": 1,
        "save_model": None,
    },
}


def build_system(spec: dict):
    from .data import random_molecule, solvated_protein, water_box, water_unit_cell

    kind = spec.get("kind")
    if kind == "water":
        return water_unit_cell(seed=spec.get("seed", 0), n_grid=spec.get("n_grid", 4))
    if kind == "water_box":
        return water_box(reps=spec.get("reps", 1), seed=spec.get("seed", 0))
    if kind == "molecule":
        return random_molecule(n_heavy=spec.get("n_heavy", 6), seed=spec.get("seed", 0))
    if kind == "protein":
        return solvated_protein(
            n_residues=spec.get("n_residues", 4), seed=spec.get("seed", 0)
        ).system
    raise ValueError(f"unknown system kind {kind!r}")


def build_potential(spec: dict):
    from .data import ReferencePotential
    from .models import AllegroConfig, AllegroModel, LennardJones

    kind = spec.get("kind")
    if kind == "reference":
        return ReferencePotential()
    if kind == "lennard_jones":
        return LennardJones(
            epsilon=spec.get("epsilon", 0.01),
            sigma=spec.get("sigma", 2.0),
            cutoff=spec.get("cutoff", 4.0),
            n_species=spec.get("n_species", 4),
        )
    if kind == "allegro":
        cfg_dict = dict(spec.get("config", {}))
        for key in ("per_pair_cutoffs", "atomic_numbers"):
            if key in cfg_dict and cfg_dict[key] is not None:
                cfg_dict[key] = np.asarray(cfg_dict[key], dtype=np.float64)
        for key in ("two_body_hidden", "latent_hidden", "edge_energy_hidden"):
            if key in cfg_dict:
                cfg_dict[key] = tuple(cfg_dict[key])
        model = AllegroModel(AllegroConfig(**cfg_dict))
        ckpt = spec.get("checkpoint")
        if ckpt:
            model.load_state_dict(dict(np.load(ckpt)))
        return model
    raise ValueError(f"unknown potential kind {kind!r}")


def build_training_model(spec: dict):
    """A trainable model from a config ``model`` section."""
    from .models import ClassicalConfig, ClassicalForceField

    kind = spec.get("kind")
    if kind == "classical":
        return ClassicalForceField(
            ClassicalConfig(
                n_species=spec.get("n_species", 4), r_cut=spec.get("r_cut", 3.5)
            )
        )
    if kind == "allegro":
        return build_potential(spec)
    raise ValueError(f"unknown trainable model kind {kind!r} (allegro|classical)")


def build_training_frames(spec: dict):
    """``(train_frames, val_frames)`` from a config ``data`` section."""
    from .data import (
        conformation_dataset,
        label_frames,
        perturbed_water_frames,
        split_frames,
    )

    kind = spec.get("kind")
    seed = int(spec.get("seed", 0))
    n_frames = int(spec.get("n_frames", 20))
    if kind == "conformations":
        systems = conformation_dataset(
            n_frames,
            n_heavy=spec.get("n_heavy", 4),
            seed=seed,
            sigma=spec.get("sigma", 0.06),
        )
    elif kind == "water":
        systems = perturbed_water_frames(
            n_frames,
            seed=seed,
            sigma=spec.get("sigma", 0.05),
            n_grid=spec.get("n_grid", 2),
        )
    else:
        raise ValueError(f"unknown data kind {kind!r} (conformations|water)")
    frames = label_frames(systems, max_force=spec.get("max_force"))
    val_fraction = float(spec.get("val_fraction", 0.0))
    if val_fraction > 0.0:
        train, val = split_frames(
            frames, fractions=(1.0 - val_fraction, val_fraction), seed=seed
        )
        return train, val
    return frames, []


def train_config(
    config: dict, resume: bool = False, quiet: bool = False, stats_json=None
):
    """Execute (or resume) one configured training run; returns the Trainer.

    With ``"train": {"checkpoint_dir": ...}`` the full training state is
    checkpointed as the run goes (and the config is copied next to the
    checkpoints); ``resume=True`` restores the newest verified snapshot
    and finishes the configured epoch budget — bitwise-identically to a
    run that was never interrupted.
    """
    from .nn import TrainConfig, Trainer
    from .resilience import TrainingWatchdog

    def log(msg: str) -> None:
        if not quiet:
            print(msg)

    tr_spec = config.get("train", {})
    epochs = int(tr_spec.get("epochs", 5))
    cfg = TrainConfig(
        lr=float(tr_spec.get("lr", 1e-3)),
        batch_size=int(tr_spec.get("batch_size", 16)),
        max_epochs=epochs,
        ema_decay=float(tr_spec.get("ema_decay", 0.99)),
        seed=int(tr_spec.get("seed", 0)),
        grad_clip_norm=tr_spec.get("grad_clip_norm"),
        data_policy=tr_spec.get("data_policy", "reject"),
    )
    watchdog_policy = tr_spec.get("watchdog")
    watchdog = (
        TrainingWatchdog(policy=watchdog_policy) if watchdog_policy else None
    )

    train_frames, val_frames = build_training_frames(config["data"])
    model = build_training_model(config["model"])
    trainer = Trainer(model, train_frames, val_frames, cfg, watchdog=watchdog)
    log(
        f"training {config['model']['kind']} on {len(train_frames)} frames "
        f"({len(val_frames)} validation)"
    )

    ckpt_dir = tr_spec.get("checkpoint_dir")
    if ckpt_dir is not None:
        ckpt_dir = Path(ckpt_dir)
        ckpt_dir.mkdir(parents=True, exist_ok=True)
        (ckpt_dir / "config.json").write_text(json.dumps(config, indent=2) + "\n")
    if resume:
        if ckpt_dir is None:
            raise ValueError("--resume needs 'train.checkpoint_dir' in the config")
        epoch = trainer.resume(ckpt_dir)
        log(f"resumed from checkpoint at epoch {epoch}")
    remaining = max(0, epochs - trainer.epochs_completed)
    trainer.fit(
        remaining,
        verbose=not quiet,
        checkpoint_every=tr_spec.get("checkpoint_every") if ckpt_dir else None,
        checkpoint_dir=ckpt_dir,
    )

    save_model = tr_spec.get("save_model")
    if save_model:
        np.savez(save_model, **trainer.model.state_dict())
        log(f"model saved to {save_model}")
    final = trainer.history[-1] if trainer.history else None
    if final is not None:
        log(f"final train loss {final.train_loss:.5f}")
    if stats_json is not None:
        payload = dict(trainer.stats())
        payload["history"] = [
            {
                "epoch": s.epoch,
                "train_loss": s.train_loss,
                "val_force_mae": s.val_force_mae,
                "val_force_rmse": s.val_force_rmse,
            }
            for s in trainer.history
        ]
        write_stats_json(stats_json, payload)
    return trainer


def write_stats_json(path, payload: dict) -> None:
    """Write a machine-readable stats payload (the ``--stats-json`` target).

    Deterministic by construction (sorted keys, stable float formatting,
    ``schema_version`` field) — two identical runs produce byte-identical
    files, so the artifacts diff cleanly in CI.
    """
    from .obs import write_json

    write_json(path, payload)


@contextlib.contextmanager
def _tracing(trace_json):
    """Enable global span tracing for one command; export on exit."""
    if trace_json is None:
        yield
        return
    from .obs import disable, enable, get_tracer

    tracer = enable()
    tracer.clear()
    try:
        yield
    finally:
        disable()
        get_tracer().write_json(trace_json)


def build_thermostat(md: dict):
    """The configured thermostat instance (or None)."""
    from .md import BerendsenThermostat, LangevinThermostat

    kind = md.get("thermostat")
    temperature = float(md.get("temperature", 300.0))
    if kind == "langevin":
        return LangevinThermostat(
            temperature, friction=md.get("friction", 0.02), seed=md.get("seed", 0)
        )
    if kind == "berendsen":
        return BerendsenThermostat(temperature, tau=md.get("tau", 100.0))
    if kind is None:
        return None
    raise ValueError(f"unknown thermostat {kind!r}")


def _is_binary_traj(path) -> bool:
    return path is not None and str(path).endswith(".rtrj")


def _dump_args(config: dict) -> dict:
    """``dump_path``/``dump_every`` kwargs for ``Simulation.run`` (or {})."""
    out = config.get("output", {})
    traj = out.get("trajectory")
    if not _is_binary_traj(traj):
        return {}
    return {"dump_path": traj, "dump_every": int(out.get("every", 10))}


def build_simulation(config: dict, registry=None):
    """``(sim, recorder, md_section)`` from a config.

    No minimization or velocity seeding happens here — ``run`` does both
    before integrating, ``resume`` overwrites all dynamic state from the
    checkpoint anyway.  Both subcommands therefore share one builder, so
    a resumed simulation is structurally identical to the original.
    ``registry`` routes the simulation's (and compiled engine's) counters
    into a shared :class:`repro.obs.Registry` tree.
    """
    from .md import Simulation, TrajectoryRecorder

    system = build_system(config["system"])
    potential = build_potential(config["potential"])
    md = config.get("md", {})
    out = config.get("output", {})
    skin = float(md.get("skin", 0.4))
    if skin < 0:
        raise ValueError(
            f"md.skin must be >= 0 (got {skin}); the Verlet skin is a buffer "
            "radius added to the cutoff, not an offset"
        )
    neighbor_every = int(md.get("neighbor_every", 1))
    if neighbor_every < 1:
        raise ValueError(
            f"md.neighbor_every must be >= 1 (got {neighbor_every})"
        )
    # A .rtrj trajectory routes to the binary data plane (async writer in
    # Simulation.run) instead of the synchronous XYZ recorder.
    traj_path = out.get("trajectory")
    xyz_path = None if _is_binary_traj(traj_path) else traj_path
    recorder = TrajectoryRecorder(
        path=xyz_path, every=int(out.get("every", 10))
    )
    sim = Simulation(
        system,
        potential,
        dt=float(md.get("dt", 0.5)),
        thermostat=build_thermostat(md),
        skin=skin,
        recorder=recorder,
        engine=md.get("engine", "eager"),
        registry=registry,
        neighbor_every=neighbor_every,
        padding=md.get("padding", 0.05),
    )
    return sim, recorder, md


def _finish_run(sim, recorder, result, md, quiet, stats_json, extra=None):
    """Shared run/resume epilogue: report, engine stats, JSON payload."""
    from .md import stability_report

    def log(msg: str) -> None:
        if not quiet:
            print(msg)

    recorder.close()
    report = stability_report(result, frames=recorder.frames or None)
    log(str(report))
    log(f"{result.n_steps} steps at {result.timesteps_per_second:.2f} timesteps/s")
    stats = sim.engine_stats()
    if stats is not None:
        log(
            f"engine: {stats['n_captures']} captures, {stats['n_replays']} replays,"
            f" {stats['recaptures']} recaptures"
        )
    if sim.n_recoveries:
        log(f"watchdog: recovered from {sim.n_recoveries} instability event(s)")
    if stats_json is not None:
        payload = {
            "engine": md.get("engine", "eager"),
            "n_steps": result.n_steps,
            "timesteps_per_second": result.timesteps_per_second,
            "n_recoveries": sim.n_recoveries,
            "engine_stats": stats,
        }
        payload.update(extra or {})
        write_stats_json(stats_json, payload)
    return result


def run_config(config: dict, quiet: bool = False, stats_json=None):
    """Execute one configured MD run; returns the MDResult."""
    from .md import minimize

    def log(msg: str) -> None:
        if not quiet:
            print(msg)

    sim, recorder, md = build_simulation(config)
    system = sim.system

    log(f"system: {system.n_atoms} atoms; potential: {config['potential']['kind']}")
    if md.get("minimize_first"):
        res = minimize(system, sim.potential, max_steps=md.get("minimize_steps", 100))
        log(f"minimized: {res.n_iterations} iterations, max|F| = {res.max_force:.3f}")

    temperature = float(md.get("temperature", 300.0))
    system.seed_velocities(temperature, np.random.default_rng(md.get("seed", 0)))

    ckpt_dir = md.get("checkpoint_dir")
    extra = {}
    if ckpt_dir is not None:
        # Persist the config next to the checkpoints so ``resume`` can
        # rebuild an identical simulation without the original file.
        ckpt_dir = Path(ckpt_dir)
        ckpt_dir.mkdir(parents=True, exist_ok=True)
        (ckpt_dir / "config.json").write_text(json.dumps(config, indent=2) + "\n")
        extra["checkpoint_dir"] = str(ckpt_dir)
    result = sim.run(
        int(md.get("steps", 100)),
        checkpoint_every=md.get("checkpoint_every"),
        checkpoint_dir=ckpt_dir,
        **_dump_args(config),
    )
    return _finish_run(sim, recorder, result, md, quiet, stats_json, extra)


def resume_config(
    ckpt_dir,
    steps: Optional[int] = None,
    quiet: bool = False,
    stats_json=None,
    tuning_profile=None,
):
    """Resume an interrupted checkpointed run; returns the MDResult.

    Rebuilds the simulation from ``<ckpt_dir>/config.json``, restores the
    newest verified checkpoint (corrupt files are skipped), and continues
    — by default to the step count the original config asked for, or for
    ``steps`` more steps when given.
    """
    from .resilience import CheckpointManager

    def log(msg: str) -> None:
        if not quiet:
            print(msg)

    ckpt_dir = Path(ckpt_dir)
    config_path = ckpt_dir / "config.json"
    if not config_path.exists():
        raise FileNotFoundError(
            f"{config_path} not found — was this run started with "
            "'md.checkpoint_dir' set?"
        )
    config = json.loads(config_path.read_text())
    # Note: tuned structural knobs (skin, cadence) change the rebuild
    # schedule going forward — the continuation is valid MD but no longer
    # bitwise-identical to an uninterrupted untuned run.
    config = apply_profile_path(config, tuning_profile)
    manager = CheckpointManager(ckpt_dir)
    step, state = manager.load_latest()
    sim, recorder, md = build_simulation(config)
    sim.set_state(state)
    if steps is None:
        n = max(0, int(md.get("steps", 100)) - sim.step_count)
    else:
        n = int(steps)
    log(f"resumed from checkpoint at step {step}; running {n} more step(s)")
    # A binary dump appends from the restored step (Simulation.run sees
    # step_count > 0 and an existing file): the finished trajectory is
    # byte-identical to an uninterrupted run's.
    result = sim.run(
        n,
        checkpoint_every=md.get("checkpoint_every"),
        checkpoint_manager=manager,
        **_dump_args(config),
    )
    extra = {"resumed_from_step": step, "checkpoint_dir": str(ckpt_dir)}
    return _finish_run(sim, recorder, result, md, quiet, stats_json, extra)


def serve_config(config: dict, quiet: bool = False, stats_json=None) -> dict:
    """Run the configured serving workload; returns the server stats dict.

    Builds the potential, starts a :class:`repro.serve.ForceServer`, drives
    it with a mixed-size synthetic request stream (cycling the ``workload``
    system specs with varying seeds), and reports throughput, latency
    percentiles, and the plan-cache replay rate.
    """
    import time as _time

    from .health import health_from_config
    from .serve import Client, ForceServer, qos_from_config

    def log(msg: str) -> None:
        if not quiet:
            print(msg)

    potential = build_potential(config["potential"])
    serve = config.get("serve", {})
    workload = config.get("workload", {})
    # Validated QoS section: class weights, queue bounds and health
    # thresholds all fail loudly on typos (see qos_from_config).
    qos = health = None
    if serve.get("qos"):
        qos_cfg = dict(serve["qos"])
        qos = qos_from_config(qos_cfg)
        if qos_cfg.get("health"):
            health = health_from_config(qos_cfg["health"])
    specs = workload.get("systems") or [{"kind": "molecule", "n_heavy": 4}]
    n_requests = int(workload.get("n_requests", 32))
    seed = int(workload.get("seed", 0))
    systems = []
    for k in range(n_requests):
        spec = dict(specs[k % len(specs)])
        spec.setdefault("seed", seed + k)
        systems.append(build_system(spec))

    plan_cache_opts = None
    if "plan_floor" in serve or "plan_growth" in serve:
        floor = int(serve.get("plan_floor", 16))
        plan_cache_opts = {
            "atom_floor": floor,
            "pair_floor": 4 * floor,
            "growth": float(serve.get("plan_growth", 1.5)),
        }
    server = ForceServer(
        potential,
        n_workers=int(serve.get("n_workers", 2)),
        max_queue=int(serve.get("max_queue", 64)),
        max_batch=int(serve.get("max_batch", 8)),
        batch_wait=float(serve.get("batch_wait", 2e-3)),
        adaptive=bool(serve.get("adaptive", True)),
        plan_cache_opts=plan_cache_opts,
        engine=serve.get("engine", "compiled"),
        default_timeout=serve.get("timeout"),
        qos=qos,
        health=health,
    )
    with server:
        client = Client(
            server,
            priority=workload.get("priority"),
            deadline=workload.get("deadline_s"),
        )
        log(
            f"serving {n_requests} requests "
            f"({min(s.n_atoms for s in systems)}-{max(s.n_atoms for s in systems)}"
            f" atoms) on {server.engine} engine ..."
        )
        t0 = _time.perf_counter()
        client.evaluate_many(systems)
        elapsed = _time.perf_counter() - t0
        server.drain()
        stats = server.stats()

    latency = stats["histograms"].get("latency_s", {})
    log(
        f"{n_requests / elapsed:.1f} requests/s; latency p50 "
        f"{latency.get('p50', 0.0) * 1e3:.2f} ms, p99 "
        f"{latency.get('p99', 0.0) * 1e3:.2f} ms"
    )
    log(
        f"batches: {stats['counters'].get('batches', 0)} "
        f"(mean occupancy {stats['batcher']['mean_occupancy']:.1f}); "
        f"plan replay rate {stats['replay_rate']:.1%}"
    )
    errors = stats.get("errors", {})
    log(
        f"health: {stats['health']['state']} "
        f"({stats['health']['transitions']} transitions); "
        f"qos {'enforced' if stats['qos']['enforced'] else 'observe-only'}; "
        f"shed {errors.get('shed', 0)}, deadline-expired "
        f"{stats['counters'].get('requests_expired', 0)}"
    )
    stats["requests_per_second"] = n_requests / elapsed
    if stats_json is not None:
        write_stats_json(stats_json, stats)
    return stats


def apply_profile_path(config: dict, profile_path) -> dict:
    """A config with a saved :class:`TuningProfile`'s winners folded in."""
    from .tune import TuningProfile, apply_profile

    if profile_path is None:
        return config
    return apply_profile(config, TuningProfile.load(profile_path))


def tune_config(
    config: Optional[dict],
    target: str,
    out=None,
    seed: int = 0,
    repeats: int = 1,
    warmup: int = 0,
    steps: Optional[int] = None,
    quiet: bool = False,
):
    """Run one offline tuning target; returns the TuningProfile.

    The search objective is fully deterministic (counter-derived modeled
    costs; see :mod:`repro.tune.targets`), so for a given config + seed
    the emitted profile is byte-identical across runs.  Wall-clock
    metrics gathered along the way are printed but never persisted.
    """
    from .tune import TuningProfile, run_target

    def log(msg: str) -> None:
        if not quiet:
            print(msg)

    kwargs = {"seed": seed, "repeats": repeats, "warmup": warmup}
    if steps is not None and target in ("md", "engine"):
        kwargs["steps"] = steps
    report = run_target(target, config, **kwargs)
    profile = TuningProfile.from_reports(
        [report],
        provenance={
            "seed": seed,
            "warmup": warmup,
            "repeats": repeats,
            "objective": "modeled",
            "targets": [target],
        },
    )
    best = report["best"]
    log(
        f"tuned target {target!r}: {report['n_evaluations']} configurations "
        f"over {report['n_sweeps']} sweep(s)"
    )
    log(f"best: {json.dumps(best, sort_keys=True)}")
    log(f"modeled score: {report['score']:.6g} (lower is better)")
    if out is not None:
        profile.save(out)
        log(f"profile written to {out}")
    return profile


def profile_config(
    config: dict,
    steps: Optional[int] = None,
    quiet: bool = False,
    trace_json=None,
    stats_json=None,
):
    """Run a traced MD segment and print the per-phase time table.

    Builds the configured simulation with one shared
    :class:`repro.obs.Registry` (MD counters and the compiled engine's
    capture/replay/arena instruments land in a single tree), enables the
    global span tracer, runs ``steps`` steps, and prints where the wall
    time went: neighbor rebuilds vs. force evaluation vs. integration vs.
    thermostatting vs. checkpointing.  Returns ``(tracer, sim)``.
    """
    from .obs import Registry, disable, enable, get_tracer

    def log(msg: str) -> None:
        if not quiet:
            print(msg)

    registry = Registry()
    sim, recorder, md = build_simulation(config, registry=registry)
    temperature = float(md.get("temperature", 300.0))
    sim.system.seed_velocities(
        temperature, np.random.default_rng(md.get("seed", 0))
    )
    n = int(steps) if steps is not None else int(md.get("steps", 50))
    tracer = enable()
    tracer.clear()
    try:
        result = sim.run(n)
    finally:
        disable()
        recorder.close()
    log(
        f"profiled {n} steps of {sim.system.n_atoms} atoms on "
        f"{md.get('engine', 'eager')} engine: "
        f"{result.timesteps_per_second:.2f} timesteps/s"
    )
    log("")
    log(tracer.format_phases("md."))
    engine_stats = sim.engine_stats()
    if engine_stats is not None:
        log("")
        log(
            f"engine: {engine_stats['n_captures']} captures, "
            f"{engine_stats['n_replays']} replays, "
            f"{engine_stats['recaptures']} recaptures"
        )
    if trace_json is not None:
        get_tracer().write_json(trace_json)
    if stats_json is not None:
        payload = sim.stats()
        payload["timesteps_per_second"] = result.timesteps_per_second
        write_stats_json(stats_json, payload)
    return tracer, sim


def chaos_command(args) -> int:
    """Dispatch ``chaos {run,soak,replay}``.  Returns a process exit code."""
    from .chaos import replay, report_json, run_scenario, sample_scenario, soak
    from .obs import write_json

    quiet = getattr(args, "quiet", False)

    def log(msg: str) -> None:
        if not quiet:
            print(msg)

    if args.chaos_command == "run":
        spec = sample_scenario(args.seed, workload=args.workload)
        if args.deadline is not None:
            spec.deadline_s = float(args.deadline)
        outcome = run_scenario(spec)
        log(report_json(outcome.to_dict()))
        return 0 if outcome.ok else 1

    if args.chaos_command == "replay":
        outcome = replay(args.artifact)
        log(report_json(outcome.to_dict()))
        if outcome.ok:
            log("replay: all invariants hold")
            return 0
        log(f"replay: {len(outcome.violations)} invariant violation(s)")
        return 1

    # soak
    if args.reproducer_dir is not None:
        args.reproducer_dir.mkdir(parents=True, exist_ok=True)

    def progress(i, outcome) -> None:
        status = "ok" if outcome.ok else "VIOLATED"
        log(
            f"[{i + 1}/{args.n}] {outcome.spec.workload} "
            f"seed={outcome.spec.seed} "
            f"events={len(outcome.spec.events)}: {status}"
        )

    report = soak(
        args.n,
        seed=args.seed,
        budget_s=args.budget,
        deadline_s=args.deadline,
        reproducer_dir=args.reproducer_dir,
        progress=progress,
    )
    if args.report is not None:
        write_json(args.report, report)
        log(f"wrote soak report to {args.report}")
    summary = report["summary"]
    log(
        f"soak: {report['n_run']}/{report['n_requested']} scenarios run, "
        f"{summary['passed']} passed, {summary['violated']} violated, "
        f"{report['n_skipped_budget']} skipped (budget)"
    )
    return 0 if summary["violated"] == 0 else 1


def traj_command(args) -> int:
    """Dispatch ``traj {info,verify,convert,analyze}``; returns exit code.

    All reports are byte-deterministic (``obs.jsonio`` serialization, no
    wall-clock fields): running the same subcommand twice on the same file
    produces identical bytes — CI ``cmp``s them.
    """
    from .obs import to_json, write_json
    from .traj import TrajectoryReader

    quiet = getattr(args, "quiet", False)

    def emit(payload: dict, out) -> None:
        if out is not None:
            write_json(out, payload)
            if not quiet:
                print(f"wrote report to {out}")
        elif not quiet:
            print(to_json(payload))

    if args.traj_command == "info":
        with TrajectoryReader(args.file) as reader:
            h = reader.header
            emit(
                {
                    "path": Path(args.file).name,
                    "n_atoms": h.n_atoms,
                    "species_names": list(h.species_names),
                    "frames_per_chunk": h.frames_per_chunk,
                    "compressed": h.compressed,
                    "pbc": list(h.pbc),
                    "n_frames": len(reader),
                    "n_chunks": reader.n_chunks,
                    "index_source": reader.index_source,
                    "torn_tail": reader.torn_tail,
                    "file_bytes": os.path.getsize(args.file),
                },
                args.out,
            )
        return 0

    if args.traj_command == "verify":
        with TrajectoryReader(args.file) as reader:
            report = reader.verify()
        emit(report, args.out)
        damaged = report["frames_quarantined"] > 0 or report["torn_tail"]
        return 1 if damaged else 0

    if args.traj_command == "convert":
        return _traj_convert(args, quiet)

    # analyze
    with TrajectoryReader(args.file) as reader:
        from .traj import analyze_stream

        report = analyze_stream(
            reader,
            msd_window=args.msd_window,
            vacf_window=args.msd_window,
            rdf_bins=args.rdf_bins,
            every=args.every,
        )
    emit(report, args.out)
    return 0


def _traj_convert(args, quiet: bool) -> int:
    """``traj convert SRC DST`` — direction chosen by file extension."""
    from .md.trajectory import read_xyz, write_xyz_frame
    from .traj import Frame, TrajectoryReader, TrajectoryStore

    src, dst = Path(args.src), Path(args.dst)

    def log(msg: str) -> None:
        if not quiet:
            print(msg)

    if src.suffix == ".rtrj" and dst.suffix == ".xyz":
        from .md import System
        from .md.cell import Cell

        with TrajectoryReader(src) as reader, open(dst, "w") as fh:
            h = reader.header
            n = 0
            for frame in reader.frames():
                system = System(
                    frame.positions,
                    h.species,
                    None
                    if frame.cell_lengths is None
                    else Cell(frame.cell_lengths, pbc=tuple(h.pbc)),
                    species_names=list(h.species_names),
                )
                system.velocities = frame.velocities
                fields = {"step": frame.step, "time_fs": f"{frame.time_fs:.3f}"}
                if frame.pe == frame.pe:  # not NaN
                    fields["pe"] = repr(frame.pe)
                write_xyz_frame(fh, system, fields)
                n += 1
        log(f"converted {n} frame(s) -> {dst}")
        return 0

    if src.suffix == ".xyz" and dst.suffix == ".rtrj":
        frames = read_xyz(src)
        if not frames:
            raise ValueError(f"{src} holds no frames")
        # XYZ carries no step/time metadata per atom row; synthesize
        # frame indices (the comment line is tool-specific free text).
        store = TrajectoryStore(dst, system=frames[0])
        try:
            for k, system in enumerate(frames):
                store.append(
                    Frame(
                        step=k,
                        time_fs=float(k),
                        pe=float("nan"),
                        cell_lengths=(
                            None
                            if system.cell is None
                            else np.asarray(system.cell.lengths, dtype=np.float64)
                        ),
                        positions=np.asarray(system.positions, dtype=np.float64),
                        velocities=np.asarray(system.velocities, dtype=np.float64),
                    )
                )
        finally:
            store.close()
        log(f"converted {len(frames)} frame(s) -> {dst}")
        return 0

    raise ValueError(
        f"unsupported conversion {src.suffix!r} -> {dst.suffix!r} "
        "(supported: .rtrj -> .xyz, .xyz -> .rtrj)"
    )


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="Run MD from a JSON config."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_flag(p):
        p.add_argument(
            "--trace-json",
            type=Path,
            default=None,
            help="enable span tracing and write the phase table plus "
            "buffered span trees as JSON to this path",
        )

    def add_profile_flag(p):
        p.add_argument(
            "--profile",
            type=Path,
            default=None,
            dest="tuning_profile",
            help="apply a TuningProfile (from 'tune --out') to the config "
            "before running",
        )

    run_p = sub.add_parser("run", help="execute a config")
    run_p.add_argument("config", type=Path)
    run_p.add_argument("--quiet", action="store_true")
    run_p.add_argument(
        "--stats-json",
        type=Path,
        default=None,
        help="write engine_stats() as machine-readable JSON to this path",
    )
    add_trace_flag(run_p)
    add_profile_flag(run_p)
    resume_p = sub.add_parser(
        "resume", help="resume an interrupted run from its checkpoint directory"
    )
    resume_p.add_argument("checkpoint_dir", type=Path)
    resume_p.add_argument(
        "--steps",
        type=int,
        default=None,
        help="run this many more steps (default: finish the configured total)",
    )
    resume_p.add_argument("--quiet", action="store_true")
    resume_p.add_argument(
        "--stats-json",
        type=Path,
        default=None,
        help="write engine_stats() as machine-readable JSON to this path",
    )
    add_trace_flag(resume_p)
    add_profile_flag(resume_p)
    serve_p = sub.add_parser(
        "serve", help="run a batched force-serving workload from a config"
    )
    serve_p.add_argument("config", type=Path)
    serve_p.add_argument("--quiet", action="store_true")
    serve_p.add_argument(
        "--stats-json",
        type=Path,
        default=None,
        help="write the server metrics snapshot as JSON to this path",
    )
    add_trace_flag(serve_p)
    add_profile_flag(serve_p)
    train_p = sub.add_parser(
        "train", help="run a force-matching training job from a config"
    )
    train_p.add_argument("config", type=Path)
    train_p.add_argument(
        "--resume",
        action="store_true",
        help="restore the newest checkpoint under 'train.checkpoint_dir' "
        "and finish the configured epoch budget",
    )
    train_p.add_argument("--quiet", action="store_true")
    train_p.add_argument(
        "--stats-json",
        type=Path,
        default=None,
        help="write trainer stats and epoch history as JSON to this path",
    )
    add_trace_flag(train_p)
    profile_p = sub.add_parser(
        "profile", help="run a traced MD segment and print a phase-time table"
    )
    profile_p.add_argument("config", type=Path)
    profile_p.add_argument(
        "--steps",
        type=int,
        default=None,
        help="steps to profile (default: the config's md.steps)",
    )
    profile_p.add_argument("--quiet", action="store_true")
    profile_p.add_argument(
        "--trace-json",
        type=Path,
        default=None,
        help="also write the trace document as JSON to this path",
    )
    profile_p.add_argument(
        "--stats-json",
        type=Path,
        default=None,
        help="write the unified registry snapshot as JSON to this path",
    )
    tune_p = sub.add_parser(
        "tune",
        help="run a deterministic offline tuning search and write a profile",
    )
    tune_p.add_argument(
        "--target",
        required=True,
        choices=["md", "serve", "engine", "parallel"],
        help="which subsystem to tune",
    )
    tune_p.add_argument(
        "config",
        type=Path,
        nargs="?",
        default=None,
        help="workload config (default: the quickstart example for the target)",
    )
    tune_p.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the TuningProfile JSON here (byte-deterministic per seed)",
    )
    tune_p.add_argument("--seed", type=int, default=0)
    tune_p.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="measured repeats per configuration (median is kept)",
    )
    tune_p.add_argument(
        "--warmup", type=int, default=0, help="discarded warmup runs per config"
    )
    tune_p.add_argument(
        "--steps",
        type=int,
        default=None,
        help="MD steps per trial (md/engine targets only)",
    )
    tune_p.add_argument("--quiet", action="store_true")
    chaos_p = sub.add_parser(
        "chaos",
        help="deterministic chaos harness: composed-fault scenarios, "
        "invariant checks, failure shrinking",
    )
    chaos_sub = chaos_p.add_subparsers(dest="chaos_command", required=True)
    chaos_run_p = chaos_sub.add_parser(
        "run", help="run one seeded composed-fault scenario"
    )
    chaos_run_p.add_argument("--seed", type=int, default=0)
    chaos_run_p.add_argument(
        "--workload",
        choices=["md", "parallel", "serve", "train"],
        default=None,
        help="pin the workload family (default: derived from the seed)",
    )
    chaos_run_p.add_argument("--deadline", type=float, default=None)
    chaos_run_p.add_argument("--quiet", action="store_true")
    chaos_soak_p = chaos_sub.add_parser(
        "soak",
        help="run N seeded scenarios under a wall-clock budget; shrink "
        "any invariant violation to a minimal reproducer",
    )
    chaos_soak_p.add_argument("--n", type=int, default=40)
    chaos_soak_p.add_argument("--seed", type=int, default=0)
    chaos_soak_p.add_argument(
        "--budget",
        type=float,
        default=None,
        help="wall-clock budget in seconds (remaining scenarios are skipped)",
    )
    chaos_soak_p.add_argument("--deadline", type=float, default=None)
    chaos_soak_p.add_argument(
        "--report",
        type=Path,
        default=None,
        help="write the soak report as byte-deterministic JSON here",
    )
    chaos_soak_p.add_argument(
        "--reproducer-dir",
        type=Path,
        default=None,
        help="write shrunken minimal-reproducer JSON artifacts here",
    )
    chaos_soak_p.add_argument("--quiet", action="store_true")
    chaos_replay_p = chaos_sub.add_parser(
        "replay", help="re-run a reproducer artifact (or bare spec) JSON"
    )
    chaos_replay_p.add_argument("artifact", type=Path)
    chaos_replay_p.add_argument("--quiet", action="store_true")
    traj_p = sub.add_parser(
        "traj",
        help="binary trajectory tools: inspect, verify, convert, "
        "streaming analysis",
    )
    traj_sub = traj_p.add_subparsers(dest="traj_command", required=True)

    def add_out_flag(p):
        p.add_argument(
            "--out",
            type=Path,
            default=None,
            help="write the report as byte-deterministic JSON here "
            "(default: stdout)",
        )

    traj_info_p = traj_sub.add_parser(
        "info", help="print header and index summary of a .rtrj file"
    )
    traj_info_p.add_argument("file", type=Path)
    traj_info_p.add_argument("--quiet", action="store_true")
    add_out_flag(traj_info_p)
    traj_verify_p = traj_sub.add_parser(
        "verify",
        help="checksum every chunk; exit 1 if any frame is quarantined",
    )
    traj_verify_p.add_argument("file", type=Path)
    traj_verify_p.add_argument("--quiet", action="store_true")
    add_out_flag(traj_verify_p)
    traj_convert_p = traj_sub.add_parser(
        "convert", help="convert .rtrj <-> .xyz (direction from extensions)"
    )
    traj_convert_p.add_argument("src", type=Path)
    traj_convert_p.add_argument("dst", type=Path)
    traj_convert_p.add_argument("--quiet", action="store_true")
    traj_analyze_p = traj_sub.add_parser(
        "analyze",
        help="single-pass streaming MSD/VACF/RDF/thermo report",
    )
    traj_analyze_p.add_argument("file", type=Path)
    traj_analyze_p.add_argument("--msd-window", type=int, default=50)
    traj_analyze_p.add_argument("--rdf-bins", type=int, default=50)
    traj_analyze_p.add_argument(
        "--every", type=int, default=1, help="analyze every k-th frame"
    )
    traj_analyze_p.add_argument("--quiet", action="store_true")
    add_out_flag(traj_analyze_p)
    sub.add_parser("example-config", help="print a starter MD config to stdout")
    sub.add_parser(
        "example-serve-config", help="print a starter serving config to stdout"
    )
    sub.add_parser(
        "example-train-config", help="print a starter training config to stdout"
    )

    args = parser.parse_args(argv)
    if args.command == "example-config":
        json.dump(EXAMPLE_CONFIG, sys.stdout, indent=2)
        print()
        return 0
    if args.command == "example-serve-config":
        json.dump(EXAMPLE_SERVE_CONFIG, sys.stdout, indent=2)
        print()
        return 0
    if args.command == "example-train-config":
        json.dump(EXAMPLE_TRAIN_CONFIG, sys.stdout, indent=2)
        print()
        return 0
    if args.command == "resume":
        with _tracing(args.trace_json):
            resume_config(
                args.checkpoint_dir,
                steps=args.steps,
                quiet=args.quiet,
                stats_json=args.stats_json,
                tuning_profile=args.tuning_profile,
            )
        return 0
    if args.command == "tune":
        config = (
            json.loads(args.config.read_text())
            if args.config is not None
            else None
        )
        tune_config(
            config,
            args.target,
            out=args.out,
            seed=args.seed,
            repeats=args.repeats,
            warmup=args.warmup,
            steps=args.steps,
            quiet=args.quiet,
        )
        return 0
    if args.command == "chaos":
        return chaos_command(args)
    if args.command == "traj":
        return traj_command(args)
    config = json.loads(args.config.read_text())
    if getattr(args, "tuning_profile", None) is not None:
        config = apply_profile_path(config, args.tuning_profile)
    if args.command == "profile":
        profile_config(
            config,
            steps=args.steps,
            quiet=args.quiet,
            trace_json=args.trace_json,
            stats_json=args.stats_json,
        )
        return 0
    with _tracing(args.trace_json):
        if args.command == "serve":
            serve_config(config, quiet=args.quiet, stats_json=args.stats_json)
        elif args.command == "train":
            train_config(
                config,
                resume=args.resume,
                quiet=args.quiet,
                stats_json=args.stats_json,
            )
        else:
            run_config(config, quiet=args.quiet, stats_json=args.stats_json)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
