"""Streaming trajectory analysis: single-pass folds over a reader.

The in-memory analysis helpers (:mod:`repro.md.analysis`) materialize the
whole trajectory; at production scale (the paper's 44M-atom capsid runs)
that is exactly what a data plane must avoid.  Each fold below consumes
one frame at a time in O(window · N) work and O(window · N) memory:

* :class:`StreamingMSD` — MSD over a windowed ring buffer of unwrapped
  positions (incremental minimum-image unwrapping, so wrapped dumps are
  handled without a second pass).  Equals the materialized
  :func:`repro.md.analysis.mean_squared_displacement` exactly when the
  window covers the trajectory (pinned by tests).
* :class:`StreamingVACF` — normalized velocity autocorrelation over the
  same ring-buffer scheme.
* :class:`StreamingRDF` — g(r) accumulated per frame under the
  minimum-image convention, normalized like
  :func:`repro.md.observables.radial_distribution`.
* :class:`StreamingThermo` — temperature mean/drift and the NVE energy
  drift per atom from the per-frame ``pe`` the binary format stores.

:func:`analyze_stream` drives all folds in one pass over a
:class:`~repro.traj.store.TrajectoryReader` and returns a plain dict that
``obs.jsonio`` serializes byte-deterministically — the payload of the
``traj analyze`` CLI subcommand.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Optional

import numpy as np

from ..md.system import ACCEL_CONV, KB_EV

__all__ = [
    "StreamingMSD",
    "StreamingVACF",
    "StreamingRDF",
    "StreamingThermo",
    "analyze_stream",
]


class StreamingMSD:
    """MSD(τ) for τ ≤ window, averaged over atoms and all time origins.

    Positions are unwrapped incrementally: each new frame's displacement
    from the previous one is reduced to its minimum image before being
    accumulated, so periodic wrapping in the dump never corrupts the MSD
    (the standard no-atom-moves-more-than-L/2-per-frame requirement).
    """

    def __init__(
        self, window: int, atom_indices: Optional[np.ndarray] = None
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self.atom_indices = (
            None if atom_indices is None else np.asarray(atom_indices)
        )
        self._ring: deque = deque(maxlen=self.window + 1)
        self._prev_raw: Optional[np.ndarray] = None
        self._unwrapped: Optional[np.ndarray] = None
        self._sums = np.zeros(self.window + 1)
        self._counts = np.zeros(self.window + 1, dtype=np.int64)
        self.n_frames = 0

    def update(
        self, positions: np.ndarray, cell_lengths: Optional[np.ndarray] = None
    ) -> None:
        pos = np.asarray(positions, dtype=np.float64)
        if self.atom_indices is not None:
            pos = pos[self.atom_indices]
        if self._unwrapped is None:
            self._unwrapped = pos.copy()
        else:
            jump = pos - self._prev_raw
            if cell_lengths is not None:
                L = np.asarray(cell_lengths, dtype=np.float64)
                jump = jump - L * np.round(jump / L)
            self._unwrapped = self._unwrapped + jump
        self._prev_raw = pos.copy()
        self._ring.append(self._unwrapped)
        self.n_frames += 1
        cur = self._unwrapped
        for lag in range(1, len(self._ring)):
            past = self._ring[len(self._ring) - 1 - lag]
            disp = cur - past
            self._sums[lag] += float((disp**2).sum(axis=-1).mean())
            self._counts[lag] += 1

    def result(self) -> np.ndarray:
        """MSD for lags 0..min(window, n_frames-1), in Å²."""
        max_lag = min(self.window, max(self.n_frames - 1, 0))
        out = np.zeros(max_lag + 1)
        for lag in range(1, max_lag + 1):
            out[lag] = self._sums[lag] / self._counts[lag]
        return out


class StreamingVACF:
    """Normalized VACF(τ) = ⟨v(0)·v(τ)⟩ / ⟨v²⟩ for τ ≤ window."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self._ring: deque = deque(maxlen=self.window + 1)
        self._sums = np.zeros(self.window + 1)
        self._counts = np.zeros(self.window + 1, dtype=np.int64)
        self._vsq_sum = 0.0
        self.n_frames = 0

    def update(self, velocities: np.ndarray) -> None:
        v = np.asarray(velocities, dtype=np.float64)
        self._ring.append(v.copy())
        self.n_frames += 1
        self._vsq_sum += float((v * v).sum(axis=-1).mean())
        for lag in range(1, len(self._ring)):
            past = self._ring[len(self._ring) - 1 - lag]
            self._sums[lag] += float((past * v).sum(axis=-1).mean())
            self._counts[lag] += 1

    def result(self) -> np.ndarray:
        max_lag = min(self.window, max(self.n_frames - 1, 0))
        out = np.zeros(max_lag + 1)
        if self.n_frames == 0:
            return out
        out[0] = 1.0
        norm = self._vsq_sum / self.n_frames
        if norm == 0.0:
            return out
        for lag in range(1, max_lag + 1):
            out[lag] = (self._sums[lag] / self._counts[lag]) / norm
        return out


class StreamingRDF:
    """g(r) accumulated frame by frame (ordered pairs, minimum image).

    Brute-force O(N²) distances per frame — the streaming property is
    about *frames*, not pairs; for the system sizes the analysis CLI
    targets this is the robust choice (no skin, no rebuild schedule).
    """

    def __init__(self, r_max: float, n_bins: int = 100) -> None:
        if r_max <= 0:
            raise ValueError("r_max must be positive")
        if n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        self.r_max = float(r_max)
        self.n_bins = int(n_bins)
        self._edges = np.linspace(0.0, self.r_max, self.n_bins + 1)
        self._hist = np.zeros(self.n_bins, dtype=np.int64)
        self._expected = np.zeros(self.n_bins)
        self.n_frames = 0

    def update(
        self, positions: np.ndarray, cell_lengths: Optional[np.ndarray] = None
    ) -> None:
        pos = np.asarray(positions, dtype=np.float64)
        n = len(pos)
        if n < 2:
            return
        delta = pos[:, None, :] - pos[None, :, :]
        if cell_lengths is not None:
            L = np.asarray(cell_lengths, dtype=np.float64)
            delta = delta - L * np.round(delta / L)
            volume = float(np.prod(L))
        else:
            span = pos.max(axis=0) - pos.min(axis=0)
            volume = float(np.prod(np.maximum(span, 1e-12)))
        r = np.sqrt((delta**2).sum(axis=-1))
        iu = ~np.eye(n, dtype=bool)
        dists = r[iu]
        hist, _ = np.histogram(dists[dists <= self.r_max], bins=self._edges)
        self._hist += hist
        shell = 4.0 / 3.0 * np.pi * (self._edges[1:] ** 3 - self._edges[:-1] ** 3)
        self._expected += (n / volume) * shell * n
        self.n_frames += 1

    def result(self) -> Dict[str, np.ndarray]:
        centers = 0.5 * (self._edges[:-1] + self._edges[1:])
        with np.errstate(divide="ignore", invalid="ignore"):
            g = np.where(self._expected > 0, self._hist / self._expected, 0.0)
        return {"r": centers, "g": g}


class StreamingThermo:
    """Temperature mean/drift + energy drift from per-frame pe snapshots.

    ``masses`` come from the trajectory file header, so the fold needs
    nothing beyond the frame stream itself.
    """

    def __init__(self, masses: np.ndarray) -> None:
        self.masses = np.asarray(masses, dtype=np.float64)
        self.n_frames = 0
        self._t_sum = 0.0
        self._t_sq_sum = 0.0
        self._xt_sum = 0.0
        self._x_sum = 0.0
        self._x_sq_sum = 0.0
        self._first_total_e: Optional[float] = None
        self._last_total_e: Optional[float] = None
        self._has_pe = True

    def update(self, velocities: np.ndarray, pe: float) -> None:
        v = np.asarray(velocities, dtype=np.float64)
        ke = float(0.5 * np.sum(self.masses * (v**2).sum(axis=-1)) / ACCEL_CONV)
        dof = 3 * len(v)
        temp = 2.0 * ke / (dof * KB_EV) if dof else 0.0
        x = float(self.n_frames)
        self._t_sum += temp
        self._t_sq_sum += temp * temp
        self._xt_sum += x * temp
        self._x_sum += x
        self._x_sq_sum += x * x
        if np.isfinite(pe):
            total = pe + ke
            if self._first_total_e is None:
                self._first_total_e = total
            self._last_total_e = total
        else:
            self._has_pe = False
        self.n_frames += 1

    def result(self) -> Dict[str, float]:
        n = self.n_frames
        mean_t = self._t_sum / n if n else 0.0
        if n > 1:
            denom = n * self._x_sq_sum - self._x_sum**2
            drift = (
                (n * self._xt_sum - self._x_sum * self._t_sum) / denom
                if denom
                else 0.0
            )
        else:
            drift = 0.0
        e_drift = 0.0
        if (
            self._has_pe
            and self._first_total_e is not None
            and len(self.masses)
        ):
            e_drift = abs(self._last_total_e - self._first_total_e) / len(
                self.masses
            )
        return {
            "n_frames": n,
            "mean_temperature": mean_t,
            "temperature_drift_per_frame": drift,
            "energy_drift_per_atom": e_drift,
        }


def analyze_stream(
    reader,
    msd_window: int = 50,
    vacf_window: int = 50,
    rdf_r_max: Optional[float] = None,
    rdf_bins: int = 50,
    every: int = 1,
) -> Dict:
    """One pass over ``reader`` feeding every fold; returns the report dict.

    The report contains only values derived from the file's bytes (no
    wall clock, no paths beyond the basename), so serializing it through
    :func:`repro.obs.write_json` is byte-deterministic — rerunning
    ``traj analyze`` on the same file yields an identical report.
    """
    if every < 1:
        raise ValueError("every must be >= 1")
    header = reader.header
    msd = StreamingMSD(msd_window)
    vacf = StreamingVACF(vacf_window)
    thermo = StreamingThermo(header.masses)
    rdf: Optional[StreamingRDF] = None
    times = []
    steps = []
    n_seen = 0
    for k, frame in enumerate(reader.frames()):
        if k % every:
            continue
        cell = frame.cell_lengths
        if rdf is None and cell is not None:
            r_max = (
                float(rdf_r_max)
                if rdf_r_max is not None
                else float(cell.min()) / 2.0
            )
            rdf = StreamingRDF(r_max, n_bins=rdf_bins)
        msd.update(frame.positions, cell)
        vacf.update(frame.velocities)
        thermo.update(frame.velocities, frame.pe)
        if rdf is not None:
            rdf.update(frame.positions, cell)
        times.append(frame.time_fs)
        steps.append(frame.step)
        n_seen += 1

    report: Dict = {
        "n_atoms": header.n_atoms,
        "n_frames_analyzed": n_seen,
        "n_frames_quarantined": reader.frames_quarantined,
        "first_step": steps[0] if steps else None,
        "last_step": steps[-1] if steps else None,
        "msd": list(msd.result()),
        "vacf": list(vacf.result()),
        "thermo": thermo.result(),
    }
    if rdf is not None and rdf.n_frames:
        res = rdf.result()
        report["rdf"] = {"r": list(res["r"]), "g": list(res["g"])}
    if len(times) > 1:
        dt = times[1] - times[0]
        report["dt_between_frames_fs"] = dt
        msd_arr = np.asarray(report["msd"])
        if len(msd_arr) >= 4 and dt > 0:
            from ..md.analysis import diffusion_coefficient

            report["diffusion_coefficient"] = diffusion_coefficient(msd_arr, dt)
    return report


def fold_frames(frames: Iterable, *folds) -> None:
    """Feed an iterable of frames through position/velocity folds (helper)."""
    for frame in frames:
        for fold in folds:
            if isinstance(fold, (StreamingMSD, StreamingRDF)):
                fold.update(frame.positions, frame.cell_lengths)
            elif isinstance(fold, StreamingVACF):
                fold.update(frame.velocities)
            elif isinstance(fold, StreamingThermo):
                fold.update(frame.velocities, frame.pe)
