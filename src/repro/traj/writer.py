"""Asynchronous double-buffered trajectory writer: dumps off the hot path.

The MD step loop must never block on encode/compress/fsync — the paper's
throughput numbers account the *whole application including I/O*
(§VII-B), and a synchronous text dump is exactly the overhead they avoid.
:class:`TrajectoryWriter` therefore splits the dump into two buffers:

1. the **hot-path snapshot** (`span("md.dump")`): copy positions,
   velocities, and cell into a :class:`~repro.traj.format.Frame` and push
   it onto a bounded queue — O(N) memcpy, no I/O;
2. the **background worker thread**, which drains the queue into the
   chunk buffer of a :class:`~repro.traj.store.TrajectoryStore`
   (`span("traj.encode")` / `span("traj.flush")`).

Backpressure policy when the queue is full: ``"block"`` (default — the
producer waits, nothing is ever lost, and the file stays a deterministic
function of the step sequence) or ``"drop"`` (the frame is discarded and
``traj.frames_dropped`` counts it — for runs where steady throughput
matters more than a complete trajectory).

Determinism contract (the kill-and-resume guarantee): :meth:`barrier`
drains the queue *and commits the open partial chunk*; the MD driver
calls it immediately before every checkpoint save, which pins chunk
boundaries to the checkpoint schedule.  A run resumed from a checkpoint
(``append_from=``) therefore appends exactly the missing frames and the
file ends up byte-identical to an uninterrupted run.  :meth:`abort` is
the crash-shaped close (buffer dropped, no footer); :meth:`rollback`
truncates past-the-restore frames when the watchdog recovers in-process.
"""

from __future__ import annotations

import queue
import threading
from typing import Optional

import numpy as np

from ..obs import span
from .format import Frame, TrajError
from .store import DEFAULT_FRAMES_PER_CHUNK, TrajectoryStore

__all__ = ["TrajectoryWriter", "DEFAULT_QUEUE_SIZE"]

DEFAULT_QUEUE_SIZE = 64

_CLOSE = object()  # sentinel: drain and stop the worker


class _Barrier:
    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event = threading.Event()


class _Rollback:
    __slots__ = ("max_step", "event")

    def __init__(self, max_step: int) -> None:
        self.max_step = max_step
        self.event = threading.Event()


class TrajectoryWriter:
    """Bounded-queue async facade over :class:`TrajectoryStore`.

    Parameters
    ----------
    system:
        Source of the file header tables (required unless appending).
    append_from:
        Resume mode — truncate an existing file to ``step <= append_from``
        and continue (see :class:`TrajectoryStore`).
    policy:
        ``"block"`` or ``"drop"`` — what a full queue does to the
        producer.
    queue_size:
        Bound on in-flight snapshots (each holds 2 × [N, 3] float64).
    """

    def __init__(
        self,
        path,
        system=None,
        frames_per_chunk: int = DEFAULT_FRAMES_PER_CHUNK,
        compression: bool = True,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        policy: str = "block",
        append_from: Optional[int] = None,
        registry=None,
        fault_plan=None,
    ) -> None:
        if policy not in ("block", "drop"):
            raise ValueError(f"unknown backpressure policy {policy!r} (block|drop)")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.policy = policy
        self._store = TrajectoryStore(
            path,
            system=system,
            frames_per_chunk=frames_per_chunk,
            compression=compression,
            append_from=append_from,
            registry=registry,
            fault_plan=fault_plan,
        )
        self._q: queue.Queue = queue.Queue(maxsize=queue_size)
        self._error: Optional[BaseException] = None
        self._aborting = False
        self.closed = False
        self.frames_recorded = 0
        self.frames_dropped = 0
        if registry is not None:
            self._c_recorded = registry.counter("traj.frames_recorded")
            self._c_dropped = registry.counter("traj.frames_dropped")
            self._g_depth = registry.gauge("traj.queue_depth")
        else:
            self._c_recorded = self._c_dropped = self._g_depth = None
        self._worker = threading.Thread(
            target=self._drain, name="traj-writer", daemon=True
        )
        self._worker.start()

    @property
    def path(self):
        return self._store.path

    @property
    def store(self) -> TrajectoryStore:
        return self._store

    # -- hot path -------------------------------------------------------------
    def record(
        self,
        step: int,
        time_fs: float,
        system,
        pe: float = float("nan"),
    ) -> None:
        """Snapshot the system and enqueue it; returns before any I/O."""
        self._raise_pending()
        if self.closed:
            raise TrajError("trajectory writer is closed")
        with span("md.dump") as sp:
            frame = Frame(
                step=int(step),
                time_fs=float(time_fs),
                pe=float(pe),
                cell_lengths=(
                    None
                    if system.cell is None
                    else np.array(system.cell.lengths, dtype=np.float64)
                ),
                positions=np.array(system.positions, dtype=np.float64),
                velocities=np.array(system.velocities, dtype=np.float64),
            )
            if self.policy == "block":
                self._q.put(frame)
            else:
                try:
                    self._q.put_nowait(frame)
                except queue.Full:
                    self.frames_dropped += 1
                    if self._c_dropped is not None:
                        self._c_dropped.inc()
                    sp.add("dropped", 1)
                    return
            self.frames_recorded += 1
            if self._c_recorded is not None:
                self._c_recorded.inc()
            if self._g_depth is not None:
                self._g_depth.set(self._q.qsize())

    # -- synchronization ------------------------------------------------------
    def barrier(self) -> None:
        """Block until every queued frame is durable (partial chunk committed).

        Called by the MD driver right before each checkpoint save: chunk
        boundaries become a function of the checkpoint schedule, which is
        what makes kill-and-resume trajectories byte-identical.
        """
        self._raise_pending()
        if self.closed:
            return
        b = _Barrier()
        self._q.put(b)
        b.event.wait()
        self._raise_pending()

    def rollback(self, max_step: int) -> None:
        """Truncate every frame with ``step > max_step`` (queued or on disk).

        The trajectory half of watchdog recovery: the replayed steps
        re-dump their frames, so after rollback the file evolves exactly
        as if the instability never happened.
        """
        self._raise_pending()
        if self.closed:
            raise TrajError("trajectory writer is closed")
        r = _Rollback(int(max_step))
        self._q.put(r)
        r.event.wait()
        self._raise_pending()

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Drain, commit, write the footer index, and stop the worker."""
        if self.closed:
            return
        self._q.put(_CLOSE)
        self._worker.join()
        self.closed = True
        if not self._store.closed:
            self._store.close()
        self._raise_pending()

    def abort(self) -> None:
        """Crash-shaped stop: queued + buffered frames are dropped, no footer.

        Deterministic stand-in for a kill: everything past the last
        committed chunk is lost, exactly what a dead process leaves
        behind.  Used by the MD driver when the run raises.
        """
        if self.closed:
            return
        self._aborting = True
        self._q.put(_CLOSE)
        self._worker.join()
        self.closed = True
        self._store.abort()

    def stats(self) -> dict:
        out = self._store.stats()
        out.update(
            {
                "frames_recorded": self.frames_recorded,
                "frames_dropped": self.frames_dropped,
                "policy": self.policy,
                "queue_depth": self._q.qsize(),
            }
        )
        return out

    def __enter__(self) -> "TrajectoryWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()

    # -- worker ---------------------------------------------------------------
    def _raise_pending(self) -> None:
        if self._error is not None:
            err, self._error = self._error, None
            raise TrajError(f"trajectory worker failed: {err}") from err

    def _drain(self) -> None:
        while True:
            item = self._q.get()
            try:
                if item is _CLOSE:
                    return
                if isinstance(item, _Barrier):
                    if self._error is None and not self._aborting:
                        self._store.commit()
                    item.event.set()
                elif isinstance(item, _Rollback):
                    if self._error is None and not self._aborting:
                        self._store.truncate(item.max_step)
                    item.event.set()
                elif self._error is None and not self._aborting:
                    self._store.append(item)
                if self._g_depth is not None:
                    self._g_depth.set(self._q.qsize())
            except BaseException as exc:  # surfaced on the next producer call
                self._error = exc
                if isinstance(item, (_Barrier, _Rollback)):
                    item.event.set()
