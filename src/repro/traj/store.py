"""Crash-atomic chunk commits and the lazy, self-repairing reader.

Writer discipline (mirrors :class:`repro.resilience.CheckpointManager`):

* A chunk commit **appends + fsyncs** the chunk to the data file, then
  atomically replaces the sidecar index (``<path>.idx``) via the same
  tmp-file + fsync + ``os.replace`` sequence the checkpoint manager uses.
  A kill between the two leaves a valid data file whose last chunk the
  sidecar merely does not know about — the reader scans past the sidecar
  end and finds it.
* The embedded footer index is written only on clean :meth:`close`; its
  absence is the reliable signal of an unclean shutdown.
* A kill mid-append leaves a torn tail; the reader detects it from the
  chunk CRCs and stops cleanly instead of failing (a simulated torn
  chunk can be injected deterministically via the ``traj.torn_chunk``
  fault channel).

Reader index preference: embedded footer → sidecar (+ scan of anything
past its end) → full sequential scan with ``CHNK``-magic resynchronization
across damaged regions.  Chunks are decoded lazily; a chunk that fails its
CRC is **quarantined** — counted, never yielded — so the reader's contract
is "never return a corrupt frame".
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from bisect import bisect_right
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..obs import span
from .format import (
    CHUNK_HEADER_SIZE,
    CHUNK_MAGIC,
    FileHeader,
    Frame,
    IndexEntry,
    TrajError,
    TrajFormatError,
    decode_chunk_header,
    decode_payload,
    encode_chunk,
    encode_footer,
    encode_header,
    read_footer,
    read_header,
)

__all__ = [
    "DEFAULT_FRAMES_PER_CHUNK",
    "FrameQuarantinedError",
    "TrajectoryStore",
    "TrajectoryReader",
    "sidecar_path",
]

DEFAULT_FRAMES_PER_CHUNK = 16

#: Fault channel consulted once per chunk commit (kept in sync with
#: :data:`repro.resilience.TRAJ_TORN_CHUNK`; redefined here so the traj
#: layer has no import dependency on resilience).
TRAJ_TORN_CHUNK = "traj.torn_chunk"


class FrameQuarantinedError(TrajError):
    """Random access into a chunk that failed its checksum."""


def sidecar_path(path: Union[str, Path]) -> Path:
    return Path(str(path) + ".idx")


def _write_sidecar(path: Path, entries: List[IndexEntry], total_frames: int) -> None:
    """Atomically replace the sidecar index (tmp + fsync + rename)."""
    doc = {
        "version": 1,
        "total_frames": int(total_frames),
        "entries": [
            [e.offset, e.first_frame, e.n_frames, e.first_step, e.last_step]
            for e in entries
        ],
    }
    side = sidecar_path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=side.parent, prefix=f".{side.name}-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, side)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _read_sidecar(path: Path) -> Optional[Tuple[List[IndexEntry], int]]:
    side = sidecar_path(path)
    try:
        doc = json.loads(side.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(doc, dict) or doc.get("version") != 1:
        return None
    try:
        entries = [
            IndexEntry(int(o), int(ff), int(nf), int(fs), int(ls))
            for o, ff, nf, fs, ls in doc["entries"]
        ]
        return entries, int(doc["total_frames"])
    except (KeyError, TypeError, ValueError):
        return None


def _scan_chunks(
    fh, file_size: int, start: int
) -> Tuple[List[IndexEntry], int, bool]:
    """Sequential chunk discovery with magic-based resync.

    Walks chunks from ``start``, CRC-verifying each payload.  A damaged
    chunk (bad header *or* bad payload) triggers a forward search for the
    next verifying ``CHNK`` magic, so one corrupt region never hides the
    rest of the file — crucially, a *torn* chunk whose declared payload
    length overshoots the next chunk's actual start is resynced from just
    past its header, not from its (fictional) declared end.  Damaged
    chunks keep an index entry (their header says how many frames they
    held, which the quarantine accounting needs); the reader re-fails
    their CRC on decode.  Returns ``(entries, data_end, torn_tail)``.
    Steps in scan-built entries are unknown (-1).
    """
    entries: List[IndexEntry] = []
    pos = start
    data_end = start
    torn_tail = False
    while pos + CHUNK_HEADER_SIZE <= file_size:
        fh.seek(pos)
        head = fh.read(CHUNK_HEADER_SIZE)
        try:
            ch = decode_chunk_header(head)
        except TrajFormatError:
            # Damaged header: resync on the next verifying CHNK magic.
            nxt = _find_next_chunk(fh, pos + 1, file_size)
            if nxt is None:
                torn_tail = torn_tail or pos < file_size
                break
            pos = nxt
            continue
        end = pos + CHUNK_HEADER_SIZE + ch.payload_len
        if end > file_size:
            # Torn tail: the header landed but the payload did not.
            entries.append(IndexEntry(pos, ch.first_frame, ch.n_frames))
            torn_tail = True
            break
        payload = fh.read(ch.payload_len)
        entries.append(IndexEntry(pos, ch.first_frame, ch.n_frames))
        if zlib.crc32(payload) == ch.payload_crc:
            data_end = end
            pos = end
        else:
            # Torn/corrupt payload: the next chunk may start anywhere
            # after this header (a torn write is shorter than declared).
            nxt = _find_next_chunk(fh, pos + CHUNK_HEADER_SIZE, file_size)
            if nxt is None:
                torn_tail = True
                break
            pos = nxt
    if not torn_tail and 0 < file_size - pos < CHUNK_HEADER_SIZE:
        torn_tail = True
    return entries, data_end, torn_tail


def _entry_span(fh, entry: IndexEntry) -> int:
    fh.seek(entry.offset)
    ch = decode_chunk_header(fh.read(CHUNK_HEADER_SIZE))
    return CHUNK_HEADER_SIZE + ch.payload_len


def _find_next_chunk(fh, start: int, file_size: int) -> Optional[int]:
    """Next offset >= start holding a verifying chunk header, if any."""
    block = 1 << 20
    pos = start
    carry = b""
    carry_base = start
    while pos < file_size:
        fh.seek(pos)
        buf = carry + fh.read(min(block, file_size - pos))
        base = carry_base
        at = 0
        while True:
            hit = buf.find(CHUNK_MAGIC, at)
            if hit < 0:
                break
            cand = base + hit
            fh.seek(cand)
            try:
                decode_chunk_header(fh.read(CHUNK_HEADER_SIZE))
                return cand
            except TrajFormatError:
                at = hit + 1
        pos += len(buf) - len(carry)
        carry = buf[-(len(CHUNK_MAGIC) - 1) :]
        carry_base = pos - len(carry)
    return None


def _header_from_system(
    system, frames_per_chunk: int, compressed: bool
) -> FileHeader:
    pbc = (
        tuple(bool(b) for b in system.cell.pbc)
        if system.cell is not None
        else (False, False, False)
    )
    return FileHeader(
        n_atoms=system.n_atoms,
        species=np.asarray(system.species, dtype=np.int64),
        masses=np.asarray(system.masses, dtype=np.float64),
        species_names=tuple(system.species_names or ()),
        pbc=pbc,
        frames_per_chunk=int(frames_per_chunk),
        compressed=bool(compressed),
    )


class TrajectoryStore:
    """Synchronous chunked writer with crash-atomic commits.

    Parameters
    ----------
    system:
        Source of the per-file tables (species, masses, names, pbc).
        Required when creating a new file; optional on append.
    append_from:
        Resume mode: open an existing file and truncate it to frames with
        ``step <= append_from`` before appending (a chunk straddling the
        cut is decoded and its prefix re-buffered).  The result is as if
        the original run had simply continued — the ingredient for
        bitwise kill-and-resume trajectories.
    fault_plan:
        Optional :class:`repro.resilience.FaultPlan`; the
        ``traj.torn_chunk`` channel is consulted once per commit, and a
        firing writes a truncated chunk (header intact, payload cut) —
        what a kill mid-append leaves behind.
    """

    def __init__(
        self,
        path: Union[str, Path],
        system=None,
        frames_per_chunk: int = DEFAULT_FRAMES_PER_CHUNK,
        compression: bool = True,
        append_from: Optional[int] = None,
        registry=None,
        fault_plan=None,
    ) -> None:
        if frames_per_chunk < 1:
            raise ValueError("frames_per_chunk must be >= 1")
        self.path = Path(path)
        self.fault_plan = fault_plan
        self._buffer: List[Frame] = []
        self._entries: List[IndexEntry] = []
        self.frames_durable = 0  # frames the writer committed (torn included)
        self.n_torn = 0
        self.closed = False
        self._registry = registry
        if registry is not None:
            self._c_frames = registry.counter("traj.frames_written")
            self._c_chunks = registry.counter("traj.chunks_committed")
            self._c_bytes = registry.counter("traj.bytes_written")
            self._c_torn = registry.counter("traj.torn_chunks")
        else:
            self._c_frames = self._c_chunks = self._c_bytes = self._c_torn = None

        if append_from is not None and self.path.exists():
            self._open_append(append_from)
        else:
            if system is None:
                raise ValueError("a System is required to create a new trajectory")
            self.header = _header_from_system(system, frames_per_chunk, compression)
            self._fh = open(self.path, "w+b")
            self._fh.write(encode_header(self.header))
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._data_start = self._fh.tell()
            self._data_end = self._data_start

    # -- resume-append --------------------------------------------------------
    def _open_append(self, append_from: int) -> None:
        self._fh = open(self.path, "r+b")
        self._fh.seek(0)
        self.header, self._data_start = read_header(self._fh)
        size = os.path.getsize(self.path)
        entries, _, _ = _scan_chunks(self._fh, size, self._data_start)
        # Re-verify every chunk (payload CRC + decode for steps); the
        # resumed file must be prefix-valid, so everything from the first
        # damaged chunk onward is dropped and re-dumped by the replay.
        kept: List[IndexEntry] = []
        first_frame = 0
        for e in entries:
            try:
                frames = self._load_entry(e)
            except TrajFormatError:
                break
            if frames[0].step > append_from:
                break
            if frames[-1].step > append_from:
                # Straddling chunk: keep the prefix in the open buffer.
                self._buffer = [f for f in frames if f.step <= append_from]
                break
            kept.append(
                IndexEntry(
                    e.offset, first_frame, e.n_frames,
                    frames[0].step, frames[-1].step,
                )
            )
            first_frame += e.n_frames
        self._entries = kept
        self.frames_durable = first_frame
        self._data_end = (
            kept[-1].offset + _entry_span(self._fh, kept[-1])
            if kept
            else self._data_start
        )
        self._fh.truncate(self._data_end)
        self._fh.seek(self._data_end)

    def _load_entry(self, entry: IndexEntry) -> List[Frame]:
        self._fh.seek(entry.offset)
        ch = decode_chunk_header(self._fh.read(CHUNK_HEADER_SIZE))
        payload = self._fh.read(ch.payload_len)
        return decode_payload(ch, payload, self.header.n_atoms)

    # -- the write path -------------------------------------------------------
    def append(self, frame: Frame) -> None:
        if self.closed:
            raise TrajError("trajectory store is closed")
        self._buffer.append(frame)
        if len(self._buffer) >= self.header.frames_per_chunk:
            self.commit()

    def commit(self) -> None:
        """Flush the open buffer as one chunk (no-op when empty)."""
        if not self._buffer:
            return
        frames = self._buffer
        self._buffer = []
        first_frame = self.frames_durable
        with span("traj.encode") as sp:
            blob = encode_chunk(
                frames, first_frame, self.header.n_atoms, self.header.compressed
            )
            sp.add("frames", len(frames))
        torn = self.fault_plan is not None and self.fault_plan.fires(TRAJ_TORN_CHUNK)
        if torn:
            # Header lands, payload is cut in half: starts like a real
            # chunk, fails the payload CRC — the worst torn shape.
            payload_len = len(blob) - CHUNK_HEADER_SIZE
            blob = blob[: CHUNK_HEADER_SIZE + max(1, payload_len // 2)]
            self.n_torn += 1
            if self._c_torn is not None:
                self._c_torn.inc()
        with span("traj.flush") as sp:
            self._fh.seek(self._data_end)
            self._fh.write(blob)
            self._fh.flush()
            os.fsync(self._fh.fileno())
            sp.add("bytes", len(blob))
        self._entries.append(
            IndexEntry(
                self._data_end,
                first_frame,
                len(frames),
                frames[0].step,
                frames[-1].step,
            )
        )
        self._data_end += len(blob)
        self.frames_durable += len(frames)
        if self._c_frames is not None:
            self._c_frames.inc(len(frames))
            self._c_chunks.inc()
            self._c_bytes.inc(len(blob))
        _write_sidecar(self.path, self._entries, self.frames_durable)

    def truncate(self, max_step: int) -> None:
        """Drop every frame (buffered or committed) with ``step > max_step``.

        The rollback half of watchdog recovery: after the simulation
        restores a checkpoint at ``max_step``, frames dumped past it must
        vanish so the replay re-appends them deterministically.  A
        committed chunk straddling the cut is decoded and its prefix
        re-buffered; an undecodable (torn) straddling chunk is dropped
        whole — its surviving frames are re-dumped by the replay anyway.
        """
        self._buffer = [f for f in self._buffer if f.step <= max_step]
        changed = False
        while self._entries and self._entries[-1].first_step > max_step:
            e = self._entries.pop()
            self.frames_durable -= e.n_frames
            self._data_end = e.offset
            changed = True
        if self._entries and self._entries[-1].last_step > max_step:
            e = self._entries.pop()
            self.frames_durable -= e.n_frames
            self._data_end = e.offset
            changed = True
            try:
                frames = self._load_entry(e)
            except TrajFormatError:
                frames = []
            self._buffer = [f for f in frames if f.step <= max_step] + self._buffer
        if changed:
            self._fh.truncate(self._data_end)
            self._fh.seek(self._data_end)
            _write_sidecar(self.path, self._entries, self.frames_durable)

    def close(self) -> None:
        """Commit the open buffer, embed the footer index, fsync, close."""
        if self.closed:
            return
        self.commit()
        self._fh.seek(self._data_end)
        self._fh.write(encode_footer(self._entries, self.frames_durable))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self.closed = True

    def abort(self) -> None:
        """Close without committing the buffer or writing a footer.

        Deterministic crash semantics: the file is left exactly as a kill
        at this moment would — committed chunks durable, open buffer
        lost, no footer.
        """
        if self.closed:
            return
        self._buffer = []
        self._fh.close()
        self.closed = True

    def stats(self) -> Dict:
        return {
            "path": str(self.path),
            "frames_durable": self.frames_durable,
            "frames_buffered": len(self._buffer),
            "chunks_committed": len(self._entries),
            "torn_chunks": self.n_torn,
            "bytes": self._data_end,
        }


class TrajectoryReader:
    """Lazy random-access reader that quarantines damage instead of failing.

    Opening reads only the file header and an index (footer → sidecar →
    scan); chunks are decoded on demand with CRC verification and a
    one-chunk LRU.  Iteration skips corrupt chunks (counting their frames
    as quarantined); random access into one raises
    :class:`FrameQuarantinedError` — either way, a corrupt frame is never
    returned.
    """

    def __init__(self, path: Union[str, Path], registry=None) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "rb")
        self.header, self._data_start = read_header(self._fh)
        self._size = os.path.getsize(self.path)
        self.index_source = "scan"
        self.torn_tail = False
        self._build_index()
        self._starts = [e.first_frame for e in self._index]
        self._cache: Tuple[int, Optional[List[Frame]]] = (-1, None)
        self.frames_quarantined = 0
        self._quarantined_chunks: set = set()
        self._registry = registry
        if registry is not None:
            self._c_quarantined = registry.counter("traj.frames_quarantined")
        else:
            self._c_quarantined = None

    # -- index ----------------------------------------------------------------
    def _build_index(self) -> None:
        footer = read_footer(self._fh, self._size)
        if footer is not None:
            self._index, self._total, _ = footer
            self.index_source = "footer"
            return
        side = _read_sidecar(self.path)
        if side is not None:
            entries, total = side
            # Entries past EOF cannot exist; anything between the sidecar's
            # notion of the end and the file's actual end is scanned (a
            # kill between chunk append and sidecar replace leaves exactly
            # one such chunk).
            entries = [e for e in entries if e.offset + CHUNK_HEADER_SIZE <= self._size]
            end = self._data_start
            if entries:
                try:
                    end = entries[-1].offset + _entry_span(self._fh, entries[-1])
                except TrajFormatError:
                    end = self._size
            if end < self._size:
                extra, _, torn = _scan_chunks(self._fh, self._size, end)
                first = entries[-1].first_frame + entries[-1].n_frames if entries else 0
                for e in extra:
                    entries.append(
                        IndexEntry(e.offset, first, e.n_frames, -1, -1)
                    )
                    first += e.n_frames
                self.torn_tail = torn
            self._index = entries
            self._total = sum(e.n_frames for e in entries)
            self.index_source = "sidecar"
            return
        self._index, _, self.torn_tail = _scan_chunks(
            self._fh, self._size, self._data_start
        )
        self._total = sum(e.n_frames for e in self._index)
        self.index_source = "scan"

    # -- access ---------------------------------------------------------------
    def __len__(self) -> int:
        """Nominal frame count (includes frames later found quarantined)."""
        return self._total

    @property
    def n_chunks(self) -> int:
        return len(self._index)

    def _load_chunk(self, k: int) -> Optional[List[Frame]]:
        if self._cache[0] == k:
            return self._cache[1]
        e = self._index[k]
        try:
            self._fh.seek(e.offset)
            ch = decode_chunk_header(self._fh.read(CHUNK_HEADER_SIZE))
            payload = self._fh.read(ch.payload_len)
            frames = decode_payload(ch, payload, self.header.n_atoms)
        except TrajFormatError:
            if k not in self._quarantined_chunks:
                self._quarantined_chunks.add(k)
                self.frames_quarantined += e.n_frames
                if self._c_quarantined is not None:
                    self._c_quarantined.inc(e.n_frames)
            frames = None
        self._cache = (k, frames)
        return frames

    def read(self, i: int) -> Frame:
        """Frame ``i`` by absolute frame number (O(1) via the index)."""
        if not 0 <= i < self._total:
            raise IndexError(f"frame {i} out of range [0, {self._total})")
        k = bisect_right(self._starts, i) - 1
        e = self._index[k]
        frames = self._load_chunk(k)
        if frames is None:
            raise FrameQuarantinedError(
                f"frame {i} lies in chunk {k} (offset {e.offset}), which "
                "failed its checksum and was quarantined"
            )
        return frames[i - e.first_frame]

    def __getitem__(self, i: int) -> Frame:
        return self.read(i)

    def frames(self) -> Iterator[Frame]:
        """Sequential scan, silently skipping quarantined chunks."""
        for k in range(len(self._index)):
            frames = self._load_chunk(k)
            if frames is None:
                continue
            yield from frames

    def __iter__(self) -> Iterator[Frame]:
        return self.frames()

    def verify(self) -> Dict:
        """Decode every chunk; full integrity accounting for ``traj verify``."""
        chunks = []
        frames_readable = 0
        for k, e in enumerate(self._index):
            frames = self._load_chunk(k)
            ok = frames is not None
            chunks.append(
                {
                    "offset": e.offset,
                    "first_frame": e.first_frame,
                    "n_frames": e.n_frames,
                    "ok": ok,
                }
            )
            if ok:
                frames_readable += e.n_frames
        return {
            "path": self.path.name,
            "n_atoms": self.header.n_atoms,
            "compressed": self.header.compressed,
            "index_source": self.index_source,
            "torn_tail": self.torn_tail,
            "n_chunks": len(self._index),
            "n_frames": self._total,
            "frames_readable": frames_readable,
            "frames_quarantined": self._total - frames_readable,
            "chunks": chunks,
        }

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "TrajectoryReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
