"""On-disk layout of the binary chunked trajectory format (``.rtrj``).

The paper benchmarks the *whole application including I/O* (§VII-B), so
the dump path gets a real wire format instead of formatted text: a fixed
file header (species, masses, names — everything per-frame records would
otherwise repeat), a stream of self-delimiting chunks of K frames each,
and an optional footer index for O(1) random access.  Every chunk carries
CRC32 checksums over its header and payload, so a torn or bit-rotted
chunk is *detected and quarantined* rather than silently decoded.

Layout (all integers little-endian)::

    File   := FileHeader Chunk* [Footer]
    Chunk  := "CHNK" first_frame:u64 n_frames:u32 flags:u32
              payload_len:u64 payload_crc:u32 header_crc:u32 payload
    Footer := "FOOT" total_frames:u64 n_chunks:u32 IndexEntry*
              footer_crc:u32 footer_len:u64 "RTRJEND\\n"

A frame record is fixed-size (``step:u64 time_fs:f64 pe:f64 cell:3f64
positions:Nx3 f64 velocities:Nx3 f64``), so a chunk payload is a dense
[K, record] block.  Compression (per-file flag) XORs each record with the
previous one *on the raw float64 bit patterns* — exactly invertible,
unlike floating-point subtraction — then deflates with zlib: consecutive
MD frames share exponent/high-mantissa bytes, which deflate removes.

The footer is written only on clean close; readers that find no footer
fall back to the sidecar index or a sequential scan (:mod:`.store`).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FILE_MAGIC",
    "CHUNK_MAGIC",
    "FOOTER_MAGIC",
    "END_MAGIC",
    "FORMAT_VERSION",
    "TrajError",
    "TrajFormatError",
    "Frame",
    "FileHeader",
    "ChunkHeader",
    "IndexEntry",
    "frame_nbytes",
    "encode_header",
    "read_header",
    "encode_frames",
    "decode_frames",
    "encode_chunk",
    "decode_chunk_header",
    "decode_payload",
    "encode_footer",
    "read_footer",
    "CHUNK_HEADER_SIZE",
]

FILE_MAGIC = b"RPRTRJ1\n"
CHUNK_MAGIC = b"CHNK"
FOOTER_MAGIC = b"FOOT"
END_MAGIC = b"RTRJEND\n"
FORMAT_VERSION = 1

#: File-header flag bits.
FLAG_COMPRESSED = 1 << 0

_HEADER_FIXED = struct.Struct("<8sIIQII3sx")  # magic ver flags n_atoms fpc n_names pbc
_CHUNK_HEADER = struct.Struct("<4sQIIQII")  # magic first nf flags plen pcrc hcrc
_FOOTER_HEAD = struct.Struct("<4sQI")  # magic total_frames n_chunks
_INDEX_ENTRY = struct.Struct("<QQIQQ")  # offset first_frame n_frames first/last step
_FOOTER_TAIL = struct.Struct("<IQ8s")  # footer_crc footer_len end_magic

CHUNK_HEADER_SIZE = _CHUNK_HEADER.size  # 36


class TrajError(Exception):
    """Base error for the binary trajectory layer."""


class TrajFormatError(TrajError):
    """The bytes on disk do not parse as a valid trajectory structure."""


def frame_nbytes(n_atoms: int) -> int:
    """Fixed record size: step + time + pe + cell + positions + velocities."""
    return 8 + 8 + 8 + 24 + 2 * (8 * 3 * n_atoms)


@dataclass
class Frame:
    """One decoded trajectory frame (float64 throughout, bitwise faithful)."""

    step: int
    time_fs: float
    pe: float  # potential energy in eV; NaN when the producer had none
    cell_lengths: Optional[np.ndarray]  # [3] or None for open boundaries
    positions: np.ndarray  # [N, 3]
    velocities: np.ndarray  # [N, 3]


@dataclass
class FileHeader:
    """Per-file invariants: everything per-frame records would repeat."""

    n_atoms: int
    species: np.ndarray  # [N] int64 type indices
    masses: np.ndarray  # [N] float64 AMU
    species_names: Tuple[str, ...]  # may be empty
    pbc: Tuple[bool, bool, bool]
    frames_per_chunk: int
    compressed: bool

    @property
    def frame_nbytes(self) -> int:
        return frame_nbytes(self.n_atoms)


@dataclass(frozen=True)
class ChunkHeader:
    """Parsed chunk header (CRC over its own bytes already verified)."""

    first_frame: int
    n_frames: int
    flags: int
    payload_len: int
    payload_crc: int


@dataclass(frozen=True)
class IndexEntry:
    """One chunk's position in the file, for random access and truncation.

    ``first_step``/``last_step`` are -1 when unknown (index rebuilt from a
    raw scan, where only the chunk headers were read).
    """

    offset: int
    first_frame: int
    n_frames: int
    first_step: int = -1
    last_step: int = -1


# ---------------------------------------------------------------------------
# File header
# ---------------------------------------------------------------------------
def encode_header(header: FileHeader) -> bytes:
    flags = FLAG_COMPRESSED if header.compressed else 0
    pbc = bytes(1 if b else 0 for b in header.pbc)
    parts = [
        _HEADER_FIXED.pack(
            FILE_MAGIC,
            FORMAT_VERSION,
            flags,
            header.n_atoms,
            header.frames_per_chunk,
            len(header.species_names),
            pbc,
        ),
        np.ascontiguousarray(header.species, dtype="<i8").tobytes(),
        np.ascontiguousarray(header.masses, dtype="<f8").tobytes(),
    ]
    for name in header.species_names:
        raw = name.encode("utf-8")
        parts.append(struct.pack("<H", len(raw)) + raw)
    body = b"".join(parts)
    return body + struct.pack("<I", zlib.crc32(body))


def read_header(fh: BinaryIO) -> Tuple[FileHeader, int]:
    """Parse the file header at the current position; returns (header, size).

    Raises :class:`TrajFormatError` with a descriptive message on any
    malformed or truncated header — a file this short never held a frame,
    so there is nothing to salvage.
    """
    fixed = fh.read(_HEADER_FIXED.size)
    if len(fixed) < _HEADER_FIXED.size:
        raise TrajFormatError(
            f"file too short for a trajectory header "
            f"({len(fixed)} < {_HEADER_FIXED.size} bytes)"
        )
    magic, version, flags, n_atoms, fpc, n_names, pbc = _HEADER_FIXED.unpack(fixed)
    if magic != FILE_MAGIC:
        raise TrajFormatError(
            f"bad magic {magic!r}: not a binary trajectory file "
            f"(expected {FILE_MAGIC!r})"
        )
    if version != FORMAT_VERSION:
        raise TrajFormatError(f"unsupported trajectory format version {version}")
    species_raw = fh.read(8 * n_atoms)
    masses_raw = fh.read(8 * n_atoms)
    if len(species_raw) < 8 * n_atoms or len(masses_raw) < 8 * n_atoms:
        raise TrajFormatError("truncated header: species/masses tables cut short")
    names: List[str] = []
    name_bytes = b""
    for _ in range(n_names):
        ln_raw = fh.read(2)
        if len(ln_raw) < 2:
            raise TrajFormatError("truncated header: species-name table cut short")
        (ln,) = struct.unpack("<H", ln_raw)
        raw = fh.read(ln)
        if len(raw) < ln:
            raise TrajFormatError("truncated header: species-name table cut short")
        names.append(raw.decode("utf-8"))
        name_bytes += ln_raw + raw
    crc_raw = fh.read(4)
    if len(crc_raw) < 4:
        raise TrajFormatError("truncated header: checksum missing")
    body = fixed + species_raw + masses_raw + name_bytes
    (crc,) = struct.unpack("<I", crc_raw)
    if crc != zlib.crc32(body):
        raise TrajFormatError("header checksum mismatch: header is corrupt")
    header = FileHeader(
        n_atoms=int(n_atoms),
        species=np.frombuffer(species_raw, dtype="<i8").astype(np.int64),
        masses=np.frombuffer(masses_raw, dtype="<f8").astype(np.float64),
        species_names=tuple(names),
        pbc=tuple(bool(b) for b in pbc),
        frames_per_chunk=int(fpc),
        compressed=bool(flags & FLAG_COMPRESSED),
    )
    return header, len(body) + 4


# ---------------------------------------------------------------------------
# Frame records
# ---------------------------------------------------------------------------
def encode_frames(frames: Sequence[Frame], n_atoms: int) -> bytes:
    """Dense [K, record] block of fixed-size frame records."""
    nb = frame_nbytes(n_atoms)
    out = np.empty(len(frames) * nb, dtype=np.uint8)
    for k, f in enumerate(frames):
        rec = out[k * nb : (k + 1) * nb]
        rec[:8] = np.frombuffer(struct.pack("<Q", f.step), dtype=np.uint8)
        scalars = np.array([f.time_fs, f.pe], dtype="<f8")
        rec[8:24] = scalars.view(np.uint8)
        cell = (
            np.full(3, np.nan) if f.cell_lengths is None else f.cell_lengths
        )
        rec[24:48] = np.ascontiguousarray(cell, dtype="<f8").view(np.uint8)
        pv = 48 + 24 * n_atoms
        rec[48:pv] = np.ascontiguousarray(f.positions, dtype="<f8").reshape(-1).view(
            np.uint8
        )
        rec[pv:] = np.ascontiguousarray(f.velocities, dtype="<f8").reshape(-1).view(
            np.uint8
        )
    return out.tobytes()


def decode_frames(raw: bytes, n_atoms: int) -> List[Frame]:
    nb = frame_nbytes(n_atoms)
    if len(raw) % nb != 0:
        raise TrajFormatError(
            f"payload length {len(raw)} is not a multiple of the "
            f"{nb}-byte frame record"
        )
    frames: List[Frame] = []
    for k in range(len(raw) // nb):
        rec = raw[k * nb : (k + 1) * nb]
        (step,) = struct.unpack_from("<Q", rec, 0)
        time_fs, pe = struct.unpack_from("<dd", rec, 8)
        cell = np.frombuffer(rec, dtype="<f8", count=3, offset=24).astype(np.float64)
        pos = (
            np.frombuffer(rec, dtype="<f8", count=3 * n_atoms, offset=48)
            .astype(np.float64)
            .reshape(n_atoms, 3)
        )
        vel = (
            np.frombuffer(
                rec, dtype="<f8", count=3 * n_atoms, offset=48 + 24 * n_atoms
            )
            .astype(np.float64)
            .reshape(n_atoms, 3)
        )
        frames.append(
            Frame(
                step=int(step),
                time_fs=float(time_fs),
                pe=float(pe),
                cell_lengths=None if np.isnan(cell).all() else cell,
                positions=pos,
                velocities=vel,
            )
        )
    return frames


# ---------------------------------------------------------------------------
# XOR-delta + zlib payload transform
# ---------------------------------------------------------------------------
def _delta_encode(raw: bytes, n_frames: int) -> bytes:
    """XOR each record with its predecessor on raw 64-bit words (lossless)."""
    words = np.frombuffer(raw, dtype="<u8").reshape(n_frames, -1)
    delta = words.copy()
    delta[1:] ^= words[:-1]
    return delta.tobytes()


def _delta_decode(raw: bytes, n_frames: int) -> bytes:
    delta = np.frombuffer(raw, dtype="<u8").reshape(n_frames, -1)
    return np.bitwise_xor.accumulate(delta, axis=0).tobytes()


def _compress_payload(raw: bytes, n_frames: int) -> bytes:
    # Fixed level keeps the byte stream deterministic for a given input.
    return zlib.compress(_delta_encode(raw, n_frames), 6)


def _decompress_payload(payload: bytes, n_frames: int) -> bytes:
    try:
        raw = zlib.decompress(payload)
    except zlib.error as exc:
        raise TrajFormatError(f"chunk payload fails to inflate: {exc}") from exc
    return _delta_decode(raw, n_frames)


# ---------------------------------------------------------------------------
# Chunks
# ---------------------------------------------------------------------------
def encode_chunk(
    frames: Sequence[Frame], first_frame: int, n_atoms: int, compressed: bool
) -> bytes:
    """Header + payload bytes for one committed chunk."""
    raw = encode_frames(frames, n_atoms)
    payload = _compress_payload(raw, len(frames)) if compressed else raw
    flags = FLAG_COMPRESSED if compressed else 0
    head = _CHUNK_HEADER.pack(
        CHUNK_MAGIC,
        first_frame,
        len(frames),
        flags,
        len(payload),
        zlib.crc32(payload),
        0,
    )
    # header_crc covers every header byte before itself.
    head = head[:-4] + struct.pack("<I", zlib.crc32(head[:-4]))
    return head + payload


def decode_chunk_header(buf: bytes) -> ChunkHeader:
    """Parse + CRC-verify a 36-byte chunk header; raises on any damage."""
    if len(buf) < CHUNK_HEADER_SIZE:
        raise TrajFormatError(
            f"truncated chunk header ({len(buf)} < {CHUNK_HEADER_SIZE} bytes)"
        )
    magic, first, nf, flags, plen, pcrc, hcrc = _CHUNK_HEADER.unpack(
        buf[:CHUNK_HEADER_SIZE]
    )
    if magic != CHUNK_MAGIC:
        raise TrajFormatError(f"bad chunk magic {magic!r}")
    if hcrc != zlib.crc32(buf[: CHUNK_HEADER_SIZE - 4]):
        raise TrajFormatError("chunk header checksum mismatch")
    return ChunkHeader(
        first_frame=int(first),
        n_frames=int(nf),
        flags=int(flags),
        payload_len=int(plen),
        payload_crc=int(pcrc),
    )


def decode_payload(header: ChunkHeader, payload: bytes, n_atoms: int) -> List[Frame]:
    """CRC-verify and decode one chunk's payload into frames."""
    if len(payload) != header.payload_len:
        raise TrajFormatError(
            f"torn chunk: payload is {len(payload)} of "
            f"{header.payload_len} bytes"
        )
    if zlib.crc32(payload) != header.payload_crc:
        raise TrajFormatError("chunk payload checksum mismatch")
    raw = (
        _decompress_payload(payload, header.n_frames)
        if header.flags & FLAG_COMPRESSED
        else payload
    )
    frames = decode_frames(raw, n_atoms)
    if len(frames) != header.n_frames:
        raise TrajFormatError(
            f"chunk declares {header.n_frames} frames but decodes to {len(frames)}"
        )
    return frames


# ---------------------------------------------------------------------------
# Footer index
# ---------------------------------------------------------------------------
def encode_footer(entries: Sequence[IndexEntry], total_frames: int) -> bytes:
    body = _FOOTER_HEAD.pack(FOOTER_MAGIC, total_frames, len(entries))
    for e in entries:
        body += _INDEX_ENTRY.pack(
            e.offset,
            e.first_frame,
            e.n_frames,
            max(e.first_step, 0),
            max(e.last_step, 0),
        )
    crc = zlib.crc32(body)
    footer_len = len(body) + 4  # through the crc field
    return body + _FOOTER_TAIL.pack(crc, footer_len, END_MAGIC)


def read_footer(
    fh: BinaryIO, file_size: int
) -> Optional[Tuple[List[IndexEntry], int, int]]:
    """Footer index if the file ends with a valid one, else None.

    Returns ``(entries, total_frames, footer_offset)`` — the offset lets
    callers know where the chunk stream ends.  Any damage (missing end
    magic, bad CRC, implausible length) yields None rather than an error:
    a missing footer just means the file was not closed cleanly, and the
    sidecar/scan paths take over.
    """
    tail_size = _FOOTER_TAIL.size
    if file_size < tail_size:
        return None
    fh.seek(file_size - tail_size)
    crc, footer_len, magic = _FOOTER_TAIL.unpack(fh.read(tail_size))
    if magic != END_MAGIC:
        return None
    start = file_size - tail_size - (footer_len - 4)
    if start < 0 or footer_len < _FOOTER_HEAD.size + 4:
        return None
    fh.seek(start)
    body = fh.read(footer_len - 4)
    if len(body) != footer_len - 4 or zlib.crc32(body) != crc:
        return None
    fmagic, total_frames, n_chunks = _FOOTER_HEAD.unpack(
        body[: _FOOTER_HEAD.size]
    )
    if fmagic != FOOTER_MAGIC:
        return None
    want = _FOOTER_HEAD.size + n_chunks * _INDEX_ENTRY.size
    if len(body) != want:
        return None
    entries = []
    off = _FOOTER_HEAD.size
    for _ in range(n_chunks):
        offset, first, nf, fs, ls = _INDEX_ENTRY.unpack_from(body, off)
        off += _INDEX_ENTRY.size
        entries.append(IndexEntry(int(offset), int(first), int(nf), int(fs), int(ls)))
    return entries, int(total_frames), start
