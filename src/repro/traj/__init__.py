"""repro.traj — binary chunked trajectory store with async writer.

The trajectory data plane: a crash-atomic binary on-disk format
(:mod:`repro.traj.format` / :mod:`repro.traj.store`), an asynchronous
double-buffered writer that keeps dumps off the MD hot path
(:mod:`repro.traj.writer`), and single-pass streaming analysis folds
(:mod:`repro.traj.stream`).  See README §"Trajectory data plane" and
DESIGN §16 for the format layout and the determinism contract.
"""

from .format import (
    Frame,
    FileHeader,
    TrajError,
    TrajFormatError,
    frame_nbytes,
)
from .store import (
    DEFAULT_FRAMES_PER_CHUNK,
    TRAJ_TORN_CHUNK,
    FrameQuarantinedError,
    TrajectoryReader,
    TrajectoryStore,
    sidecar_path,
)
from .stream import (
    StreamingMSD,
    StreamingRDF,
    StreamingThermo,
    StreamingVACF,
    analyze_stream,
)
from .writer import DEFAULT_QUEUE_SIZE, TrajectoryWriter

__all__ = [
    "Frame",
    "FileHeader",
    "TrajError",
    "TrajFormatError",
    "FrameQuarantinedError",
    "TrajectoryStore",
    "TrajectoryReader",
    "TrajectoryWriter",
    "StreamingMSD",
    "StreamingVACF",
    "StreamingRDF",
    "StreamingThermo",
    "analyze_stream",
    "frame_nbytes",
    "sidecar_path",
    "DEFAULT_FRAMES_PER_CHUNK",
    "DEFAULT_QUEUE_SIZE",
    "TRAJ_TORN_CHUNK",
]
