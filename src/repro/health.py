"""Server health state machine with hysteresis and dwell times.

``HealthMonitor`` condenses the observability signals the serving stack
already exports — queue depth, p99 latency, circuit-breaker state,
watchdog recoveries — into one four-state machine::

    HEALTHY ──▶ DEGRADED ──▶ SHEDDING ──▶ DRAINING
       ◀──────    ◀──────       (drain is terminal)

* ``HEALTHY``  — normal serving.
* ``DEGRADED`` — pressure building: the server switches models to their
  registered fallback chain (compiled→eager or a cheaper model) and the
  tune controllers freeze (no knob experiments while stressed).
* ``SHEDDING`` — overload: only the strongest priority class is
  admitted; everything else sheds with a typed ``LoadShed``.
* ``DRAINING`` — shutdown in progress: no admission at all.

Two mechanisms keep the machine from flapping:

* **Hysteresis** — the threshold to *leave* an elevated state is the
  entry threshold scaled by ``hysteresis`` (< 1), so a signal hovering
  at the entry threshold does not oscillate.
* **Dwell times** — a transition needs ``dwell_up`` (or ``dwell_down``)
  *consecutive* ticks agreeing on the direction before it happens, and
  the machine always moves one state at a time — it never skips.

The monitor is passive: someone (the server, a test) calls
:meth:`tick` with a signal snapshot; the monitor never samples clocks
itself, which is what keeps chaos-scenario health trajectories
byte-deterministic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "HEALTH_STATES",
    "HealthThresholds",
    "HealthMonitor",
    "health_from_config",
]

#: States weakest-condition first; the tuple index is the severity level.
HEALTH_STATES = ("HEALTHY", "DEGRADED", "SHEDDING", "DRAINING")

_STATE_LEVELS: Dict[str, int] = {s: i for i, s in enumerate(HEALTH_STATES)}


@dataclass(frozen=True)
class HealthThresholds:
    """Entry thresholds for the elevated states.

    ``queue_*`` thresholds are fractions of the server's ``max_queue``;
    ``p99_*`` thresholds are seconds against the latency histogram's p99
    and are disabled (``None``) by default — wall-clock-driven
    transitions would break chaos-report determinism, so scenarios only
    enable the queue signals.

    The *exit* threshold for each state is the entry threshold times
    ``hysteresis`` (0 < h < 1): a signal must drop clearly below where
    it entered before the machine steps back down.
    """

    queue_degraded: float = 0.75
    queue_shedding: float = 0.95
    p99_degraded_s: Optional[float] = None
    p99_shedding_s: Optional[float] = None
    hysteresis: float = 0.6

    def __post_init__(self) -> None:
        if not (0.0 < self.hysteresis < 1.0):
            raise ValueError("hysteresis must be in (0, 1)")
        if not (0.0 < self.queue_degraded <= self.queue_shedding):
            raise ValueError(
                "require 0 < queue_degraded <= queue_shedding, got "
                f"{self.queue_degraded} / {self.queue_shedding}"
            )
        if (self.p99_degraded_s is None) != (self.p99_shedding_s is None):
            raise ValueError("set both p99 thresholds or neither")
        if self.p99_degraded_s is not None:
            if not (0.0 < self.p99_degraded_s <= self.p99_shedding_s):
                raise ValueError(
                    "require 0 < p99_degraded_s <= p99_shedding_s"
                )

    def desired_level(self, signals: Mapping, scale: float = 1.0) -> int:
        """Severity level the raw signals ask for, thresholds scaled.

        ``scale=1.0`` gives entry thresholds; ``scale=hysteresis`` gives
        the (lower) exit thresholds.  A tripped circuit breaker or a
        fresh watchdog recovery floors the level at DEGRADED: the server
        is demonstrably struggling even if the queue looks fine.
        """
        level = 0
        q = float(signals.get("queue_frac", 0.0))
        if q >= self.queue_shedding * scale:
            level = max(level, 2)
        elif q >= self.queue_degraded * scale:
            level = max(level, 1)
        if self.p99_degraded_s is not None:
            p99 = signals.get("p99_s")
            if p99 is not None:
                if p99 >= self.p99_shedding_s * scale:
                    level = max(level, 2)
                elif p99 >= self.p99_degraded_s * scale:
                    level = max(level, 1)
        if signals.get("breaker_open") or signals.get("recoveries"):
            level = max(level, 1)
        return level


class HealthMonitor:
    """Dwell-and-hysteresis state machine over server health signals.

    Parameters
    ----------
    thresholds:
        Entry/exit thresholds (see :class:`HealthThresholds`).
    dwell_up / dwell_down:
        Consecutive ticks a worsening (improving) signal must persist
        before the machine steps one state up (down).  Recovery is
        deliberately slower than degradation by default.
    history:
        Bounded count of retained ``(tick, from, to)`` transitions.
    """

    def __init__(
        self,
        thresholds: Optional[HealthThresholds] = None,
        dwell_up: int = 3,
        dwell_down: int = 12,
        history: int = 128,
    ) -> None:
        if dwell_up < 1 or dwell_down < 1:
            raise ValueError("dwell_up and dwell_down must be >= 1")
        self.thresholds = thresholds or HealthThresholds()
        self.dwell_up = int(dwell_up)
        self.dwell_down = int(dwell_down)
        self._history_bound = int(history)
        self._lock = threading.Lock()
        self._level = 0
        self._ticks = 0
        self._up_streak = 0
        self._down_streak = 0
        self._draining = False
        self._recoveries_pending = 0
        self._history: List[Tuple[int, str, str]] = []
        self._registry = None
        self._source: Optional[Callable[[], Mapping]] = None
        #: Optional callback ``(old_state, new_state)`` fired outside the
        #: monitor lock after every transition.
        self.on_transition: Optional[Callable[[str, str], None]] = None

    # -- wiring ---------------------------------------------------------------
    def bind(self, registry) -> "HealthMonitor":
        """Export state to an obs registry (``health.state`` gauge, levels
        0–3, plus a ``health.transitions`` counter labelled by edge)."""
        self._registry = registry
        registry.gauge("health.state").set(self._level)
        return self

    def attach(self, source: Callable[[], Mapping]) -> "HealthMonitor":
        """Signal source polled when :meth:`tick` is called without one."""
        self._source = source
        return self

    def notify_recovery(self) -> None:
        """Record a watchdog recovery; floors the next tick at DEGRADED."""
        with self._lock:
            self._recoveries_pending += 1

    # -- state ----------------------------------------------------------------
    @property
    def state(self) -> str:
        return HEALTH_STATES[self._level]

    @property
    def level(self) -> int:
        """Numeric severity (0 = HEALTHY … 3 = DRAINING)."""
        return self._level

    @property
    def draining(self) -> bool:
        return self._draining

    def history(self) -> List[Tuple[int, str, str]]:
        """Recorded transitions as ``(tick, from_state, to_state)``."""
        with self._lock:
            return list(self._history)

    # -- transitions ----------------------------------------------------------
    def tick(self, signals: Optional[Mapping] = None) -> str:
        """Advance the machine one observation; returns the new state.

        ``signals`` maps ``queue_frac`` (pending / max_queue), optional
        ``p99_s``, ``breaker_open`` (bool) and ``recoveries`` (count
        since last tick).  When omitted, the attached source is polled.
        """
        if signals is None:
            signals = self._source() if self._source is not None else {}
        callbacks: List[Tuple[str, str]] = []
        with self._lock:
            self._ticks += 1
            if self._recoveries_pending:
                signals = dict(signals)
                signals["recoveries"] = (
                    signals.get("recoveries", 0) + self._recoveries_pending
                )
                self._recoveries_pending = 0
            if self._draining:
                new_level = self._level  # terminal; begin_drain() moved us
            else:
                th = self.thresholds
                enter = th.desired_level(signals, scale=1.0)
                stay = th.desired_level(signals, scale=th.hysteresis)
                if enter > self._level:
                    self._up_streak += 1
                    self._down_streak = 0
                    if self._up_streak >= self.dwell_up:
                        self._record(self._level + 1, callbacks)
                        self._up_streak = 0
                elif stay < self._level:
                    self._down_streak += 1
                    self._up_streak = 0
                    if self._down_streak >= self.dwell_down:
                        self._record(self._level - 1, callbacks)
                        self._down_streak = 0
                else:
                    # Hysteresis band: the signal neither clears the next
                    # entry threshold nor drops below the exit one.
                    self._up_streak = 0
                    self._down_streak = 0
                new_level = self._level
            state = HEALTH_STATES[new_level]
        self._fire(callbacks)
        return state

    def begin_drain(self) -> str:
        """Force the machine to DRAINING, stepping through every
        intermediate state (each adjacent transition is recorded)."""
        callbacks: List[Tuple[str, str]] = []
        with self._lock:
            self._draining = True
            while self._level < _STATE_LEVELS["DRAINING"]:
                self._record(self._level + 1, callbacks)
        self._fire(callbacks)
        return self.state

    def _record(self, new_level: int, callbacks: List[Tuple[str, str]]) -> None:
        """Move to an *adjacent* level, appending history/metrics/callbacks.

        Callers hold the lock; callbacks collected here are fired by the
        caller after release.
        """
        if abs(new_level - self._level) != 1:
            raise AssertionError("health transitions must be adjacent")
        old = HEALTH_STATES[self._level]
        new = HEALTH_STATES[new_level]
        self._level = new_level
        self._history.append((self._ticks, old, new))
        if len(self._history) > self._history_bound:
            del self._history[: len(self._history) - self._history_bound]
        if self._registry is not None:
            self._registry.gauge("health.state").set(new_level)
            self._registry.counter("health.transitions").inc()
            self._registry.counter(
                "health.transitions", {"from": old, "to": new}
            ).inc()
        callbacks.append((old, new))

    def _fire(self, callbacks: List[Tuple[str, str]]) -> None:
        if self.on_transition is None:
            return
        for old, new in callbacks:
            self.on_transition(old, new)

    def stats(self) -> dict:
        """State, level, tick count and recent transitions."""
        with self._lock:
            return {
                "state": HEALTH_STATES[self._level],
                "level": self._level,
                "ticks": self._ticks,
                "draining": self._draining,
                "transitions": len(self._history),
                "history": [
                    {"tick": t, "from": a, "to": b}
                    for t, a, b in self._history[-16:]
                ],
            }


def health_from_config(cfg: Mapping) -> HealthMonitor:
    """Build a validated :class:`HealthMonitor` from a JSON config mapping.

    Recognized keys: ``queue_degraded``, ``queue_shedding``,
    ``p99_degraded_s``, ``p99_shedding_s``, ``hysteresis``, ``dwell_up``,
    ``dwell_down``.  Unknown keys raise ``ValueError``.
    """
    known = {
        "queue_degraded", "queue_shedding", "p99_degraded_s",
        "p99_shedding_s", "hysteresis", "dwell_up", "dwell_down",
    }
    unknown = set(cfg) - known
    if unknown:
        raise ValueError(
            f"unknown health config keys: {sorted(unknown)} "
            f"(expected {sorted(known)})"
        )
    th_kwargs = {}
    for key in (
        "queue_degraded", "queue_shedding", "hysteresis",
    ):
        if key in cfg:
            th_kwargs[key] = float(cfg[key])
    for key in ("p99_degraded_s", "p99_shedding_s"):
        if key in cfg and cfg[key] is not None:
            th_kwargs[key] = float(cfg[key])
    mon_kwargs = {}
    for key in ("dwell_up", "dwell_down"):
        if key in cfg:
            mon_kwargs[key] = int(cfg[key])
    return HealthMonitor(thresholds=HealthThresholds(**th_kwargs), **mon_kwargs)
