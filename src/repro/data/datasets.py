"""Dataset assembly: labeling, splitting, subsampling.

Mirrors the paper's data handling (§VI-D): frames are labeled by the
reference potential (standing in for DFT), split into train/val/test, and
the training subset can be subsampled for sample-efficiency studies
(Table II trains Allegro on 133 frames vs DeepMD's 133,500).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..md.system import System
from ..nn.training import LabeledFrame
from .reference import ReferencePotential


def label_frames(
    systems: Sequence[System],
    reference: Optional[ReferencePotential] = None,
    max_force: Optional[float] = None,
) -> List[LabeledFrame]:
    """Label structures with reference energies/forces.

    ``max_force`` filters out frames containing any force component larger
    than the threshold, as the paper does with SPICE ("filter out all
    structures that contain any force component larger than 0.25 Ha/Bohr").
    """
    reference = reference or ReferencePotential()
    frames = []
    for s in systems:
        e, f = reference.label(s)
        if max_force is not None and np.abs(f).max() > max_force:
            continue
        frames.append(LabeledFrame(system=s, energy=e, forces=f))
    return frames


def split_frames(
    frames: Sequence[LabeledFrame],
    fractions: Tuple[float, ...] = (0.8, 0.1, 0.1),
    seed: int = 0,
) -> Tuple[List[LabeledFrame], ...]:
    """Shuffled split into len(fractions) parts (train/val/test by default)."""
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise ValueError("fractions must sum to 1")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(frames))
    bounds = np.floor(np.cumsum(fractions) * len(frames)).astype(int)
    parts: List[List[LabeledFrame]] = []
    start = 0
    for b in bounds:
        parts.append([frames[k] for k in order[start:b]])
        start = b
    return tuple(parts)


def subsample(
    frames: Sequence[LabeledFrame], n: int, seed: int = 0
) -> List[LabeledFrame]:
    """Random subset of ``n`` frames (sample-efficiency experiments)."""
    if n > len(frames):
        raise ValueError(f"cannot subsample {n} from {len(frames)} frames")
    rng = np.random.default_rng(seed)
    idx = rng.choice(len(frames), size=n, replace=False)
    return [frames[k] for k in idx]
