"""Icosahedral capsid assemblies: the HIV-capsid-like benchmark geometry.

The paper's flagship system is a complete, solvated HIV capsid — a closed
shell assembled from protein subunits, containing and surrounded by water
(fig. 1a).  The real structure (Voth group, 44M atoms) is unavailable, so
this builder produces the same *architecture* at configurable scale: an
icosahedral shell tiled with small protein-like subunits, solvated inside
and out, with the shell/solvent bookkeeping the capsid benchmarks need
(strain analysis needs shell-atom indices; performance modeling needs the
density profile).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..md.cell import Cell
from ..md.system import System
from .reference import SPECIES, SPECIES_INDEX
from .water import _water_molecule

_PHI = (1.0 + np.sqrt(5.0)) / 2.0


def icosahedron_vertices() -> np.ndarray:
    """The 12 unit-sphere vertices of a regular icosahedron."""
    v = []
    for a in (-1.0, 1.0):
        for b in (-_PHI, _PHI):
            v.extend([[0, a, b], [a, b, 0], [b, 0, a]])
    verts = np.array(v)
    return verts / np.linalg.norm(verts[0])


def icosahedron_faces() -> List[Tuple[int, int, int]]:
    """The 20 triangular faces (vertex index triples)."""
    verts = icosahedron_vertices()
    # Faces = triples of mutually nearest vertices (edge length is minimal).
    d = np.linalg.norm(verts[:, None] - verts[None, :], axis=-1)
    edge = np.min(d[d > 1e-9])
    faces = []
    n = len(verts)
    for i in range(n):
        for j in range(i + 1, n):
            for k in range(j + 1, n):
                if (
                    abs(d[i, j] - edge) < 1e-6
                    and abs(d[j, k] - edge) < 1e-6
                    and abs(d[i, k] - edge) < 1e-6
                ):
                    faces.append((i, j, k))
    return faces


def shell_points(radius: float, subdivisions: int = 2) -> np.ndarray:
    """Quasi-uniform points on an icosahedral shell of the given radius.

    Each face is subdivided barycentrically; points are pushed onto the
    sphere.  The subunit placement sites of the capsid proxy.
    """
    verts = icosahedron_vertices()
    faces = icosahedron_faces()
    pts = []
    n = max(1, int(subdivisions))
    for (i, j, k) in faces:
        a, b, c = verts[i], verts[j], verts[k]
        for p in range(n + 1):
            for q in range(n + 1 - p):
                r = n - p - q
                point = (p * a + q * b + r * c) / n
                pts.append(point / np.linalg.norm(point))
    pts = np.unique(np.round(np.asarray(pts), 9), axis=0)
    return pts * radius


@dataclass
class CapsidSystem:
    """A solvated capsid proxy with shell bookkeeping."""

    system: System
    shell_indices: np.ndarray  # atoms belonging to the protein shell
    radius: float

    @property
    def n_shell_atoms(self) -> int:
        return len(self.shell_indices)


def _subunit(center: np.ndarray, normal: np.ndarray, rng) -> Tuple[np.ndarray, np.ndarray]:
    """A small protein-like subunit (C/N/O core + hydrogens) at a site."""
    C, N, O, H = (SPECIES_INDEX[s] for s in ("C", "N", "O", "H"))
    # Local tangent frame.
    t1 = np.cross(normal, [0.0, 0.0, 1.0])
    if np.linalg.norm(t1) < 1e-6:
        t1 = np.cross(normal, [0.0, 1.0, 0.0])
    t1 /= np.linalg.norm(t1)
    t2 = np.cross(normal, t1)
    atoms = [
        (C, center),
        (N, center + 1.47 * t1),
        (C, center - 1.52 * t1),
        (O, center + 1.43 * t2),
        (C, center - 1.52 * t2),
        (H, center + 1.09 * normal),
        (H, center + 1.47 * t1 + 1.01 * normal),
        (H, center - 1.52 * t1 + 1.09 * normal),
    ]
    pos = np.array([p for _, p in atoms])
    spec = np.array([s for s, _ in atoms])
    return pos + 0.05 * rng.normal(size=pos.shape), spec


def capsid_assembly(
    radius: float = 14.0,
    subdivisions: int = 2,
    solvate: bool = True,
    water_spacing: float = 3.2,
    padding: float = 4.0,
    seed: int = 0,
) -> CapsidSystem:
    """Build a solvated icosahedral capsid proxy.

    ``radius`` (Å) sets the shell size — the real capsid is ~500 Å; the
    default builds a runnable few-hundred-atom instance with the same
    closed-shell-in-water architecture.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    rng = np.random.default_rng(seed)
    sites = shell_points(radius, subdivisions)

    positions = []
    species = []
    for site in sites:
        normal = site / np.linalg.norm(site)
        pos, spec = _subunit(site, normal, rng)
        positions.append(pos)
        species.append(spec)
    shell_pos = np.concatenate(positions, axis=0)
    shell_spec = np.concatenate(species)
    n_shell = len(shell_pos)

    box = 2 * (radius + padding + 2.0)
    center_offset = box / 2.0
    shell_pos = shell_pos + center_offset

    all_pos = [shell_pos]
    all_spec = [shell_spec]
    if solvate:
        o_idx, h_idx = SPECIES_INDEX["O"], SPECIES_INDEX["H"]
        counts = max(1, int(box / water_spacing))
        for ix in range(counts):
            for iy in range(counts):
                for iz in range(counts):
                    c = (np.array([ix, iy, iz]) + 0.5) * box / counts
                    # Keep water everywhere except overlapping the shell:
                    # inside the capsid AND outside, like the real system.
                    if np.min(np.linalg.norm(shell_pos - c, axis=1)) < 2.4:
                        continue
                    all_pos.append(_water_molecule(c, rng))
                    all_spec.append(np.array([o_idx, h_idx, h_idx]))

    system = System(
        np.concatenate(all_pos, axis=0),
        np.concatenate(all_spec),
        Cell.cubic(box),
        species_names=SPECIES,
    )
    return CapsidSystem(
        system=system,
        shell_indices=np.arange(n_shell),
        radius=radius,
    )


def shell_strain(capsid: CapsidSystem, positions: np.ndarray) -> float:
    """RMS radial deviation of shell atoms from the reference radius.

    The observable of the capsid-mechanics study the paper's structure
    comes from (Yu et al., "Strain and rupture of HIV-1 capsids during
    uncoating"): how far the shell has deformed from its icosahedral rest
    geometry.
    """
    center = positions[capsid.shell_indices].mean(axis=0)
    radii = np.linalg.norm(positions[capsid.shell_indices] - center, axis=1)
    return float(np.sqrt(np.mean((radii - radii.mean()) ** 2)))
