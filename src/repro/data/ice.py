"""Ice-like polymorphs: three ordered water lattices (Table II / IV rows).

The paper evaluates on liquid water plus three ice Ih cells labeled (b),
(c), (d).  We build three structurally distinct ordered polymorphs — the
point of the rows is that accuracy transfers across *different ordered
phases* of the same chemistry, which these preserve:

* ``b`` — hexagonal-ish: two interpenetrating offset lattices, lowest density.
* ``c`` — cubic (fcc oxygen sublattice).
* ``d`` — layered: compressed in z, expanded in-plane.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..md.cell import Cell
from ..md.system import System
from .reference import SPECIES, SPECIES_INDEX
from .water import _water_molecule

ICE_LABELS = ("b", "c", "d")


def _lattice_points(label: str, n_cells: int) -> tuple[np.ndarray, np.ndarray]:
    """(fractional O positions, box lengths) for ``n_cells³`` conventional cells."""
    if label == "b":
        # Two offset sublattices, low density (ice floats).
        basis = np.array([[0.25, 0.25, 0.25], [0.75, 0.75, 0.60]])
        edge = 4.60
        lengths = np.array([edge, edge, edge * 1.08])
    elif label == "c":
        # fcc oxygen sublattice.
        basis = np.array(
            [[0.0, 0.0, 0.0], [0.0, 0.5, 0.5], [0.5, 0.0, 0.5], [0.5, 0.5, 0.0]]
        )
        edge = 6.36
        lengths = np.array([edge, edge, edge])
    elif label == "d":
        # Layered: compressed stacking axis.
        basis = np.array([[0.25, 0.25, 0.3], [0.75, 0.75, 0.7]])
        edge = 4.9
        lengths = np.array([edge * 1.1, edge * 1.1, edge * 0.85])
    else:
        raise ValueError(f"unknown ice label {label!r}; use one of {ICE_LABELS}")

    cells = np.stack(
        np.meshgrid(np.arange(n_cells), np.arange(n_cells), np.arange(n_cells), indexing="ij"),
        axis=-1,
    ).reshape(-1, 3)
    frac = (cells[:, None, :] + basis[None, :, :]).reshape(-1, 3) / n_cells
    return frac, lengths * n_cells


def ice_polymorph(label: str, n_cells: int = 3, seed: int = 0) -> System:
    """One ordered ice-like phase with full H₂O molecules on the O sites."""
    rng = np.random.default_rng(seed + ord(label))
    frac, lengths = _lattice_points(label, n_cells)
    centers = frac * lengths
    positions = []
    species = []
    o_idx, h_idx = SPECIES_INDEX["O"], SPECIES_INDEX["H"]
    for c in centers:
        positions.append(_water_molecule(c, rng))
        species.extend([o_idx, h_idx, h_idx])
    return System(
        np.concatenate(positions, axis=0),
        np.array(species),
        Cell(lengths),
        species_names=SPECIES,
    )


def ice_frames(
    label: str,
    n_frames: int,
    seed: int = 0,
    sigma: float = 0.05,
    n_cells: int = 3,
) -> List[System]:
    """Thermally perturbed snapshots of one polymorph."""
    rng = np.random.default_rng(seed + 1000 + ord(label))
    base = ice_polymorph(label, n_cells=n_cells, seed=seed)
    frames = []
    for _ in range(n_frames):
        s = base.copy()
        s.positions = s.positions + rng.normal(scale=sigma, size=s.positions.shape)
        s.wrap()
        frames.append(s)
    return frames
