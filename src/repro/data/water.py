"""Water systems: the 192-atom unit cell and its isotropic replications.

The paper's weak/strong-scaling water systems are "replicated isotropically
from a 192-atom unit cell" (§VII-B); we build the same thing: 64 H₂O
molecules (192 atoms) at liquid density in a cubic cell, replicated
``reps×reps×reps`` for larger boxes.  Training/validation frames are
thermally perturbed snapshots labeled by the reference potential.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..md.cell import Cell
from ..md.system import System
from .reference import SPECIES, SPECIES_INDEX

# 64 molecules / (12.42 Å)³ ≈ 33.4 molecules/nm³: liquid water density.
UNIT_CELL_EDGE = 12.42
MOLECULES_PER_CELL = 64
ATOMS_PER_CELL = 3 * MOLECULES_PER_CELL  # 192, as in the paper

_OH_BOND = 0.9572
_HOH_ANGLE = np.deg2rad(104.52)


def _water_molecule(center: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """O + 2 H with the right geometry in a random orientation."""
    # Local frame: O at origin, H's in the xz-plane.
    h1 = np.array([np.sin(_HOH_ANGLE / 2), 0.0, np.cos(_HOH_ANGLE / 2)]) * _OH_BOND
    h2 = np.array([-np.sin(_HOH_ANGLE / 2), 0.0, np.cos(_HOH_ANGLE / 2)]) * _OH_BOND
    # Random rotation via QR.
    A = rng.normal(size=(3, 3))
    Q, R = np.linalg.qr(A)
    Q *= np.sign(np.diag(R))
    if np.linalg.det(Q) < 0:
        Q[:, 0] = -Q[:, 0]
    return np.stack([center, center + h1 @ Q.T, center + h2 @ Q.T])


def water_unit_cell(seed: int = 0, jitter: float = 0.0, n_grid: int = 4) -> System:
    """A 3·n_grid³-atom water cell at liquid density (192 atoms at n_grid=4,
    the paper's unit cell); smaller grids give affordable training cells."""
    rng = np.random.default_rng(seed)
    spacing = UNIT_CELL_EDGE / 4
    positions = []
    species = []
    o_idx = SPECIES_INDEX["O"]
    h_idx = SPECIES_INDEX["H"]
    for ix in range(n_grid):
        for iy in range(n_grid):
            for iz in range(n_grid):
                center = (np.array([ix, iy, iz]) + 0.5) * spacing
                if jitter > 0:
                    center = center + rng.normal(scale=jitter, size=3)
                positions.append(_water_molecule(center, rng))
                species.extend([o_idx, h_idx, h_idx])
    pos = np.concatenate(positions, axis=0)
    return System(
        pos,
        np.array(species),
        Cell.cubic(spacing * n_grid),
        species_names=SPECIES,
    )


def water_box(reps: int = 1, seed: int = 0, jitter: float = 0.05) -> System:
    """Unit cell replicated ``reps`` per axis: 192·reps³ atoms."""
    if reps < 1:
        raise ValueError("reps must be >= 1")
    unit = water_unit_cell(seed=seed, jitter=jitter)
    pos, cell = unit.cell.replicate(unit.positions, (reps, reps, reps))
    species = np.tile(unit.species, reps**3)
    return System(pos, species, cell, species_names=SPECIES)


def water_box_with_atoms(n_atoms: int, seed: int = 0) -> System:
    """Smallest replicated box with at least ``n_atoms`` atoms."""
    reps = max(1, int(np.ceil((n_atoms / ATOMS_PER_CELL) ** (1.0 / 3.0))))
    return water_box(reps=reps, seed=seed)


def perturbed_water_frames(
    n_frames: int,
    seed: int = 0,
    sigma: float = 0.08,
    reps: int = 1,
    n_grid: int = 4,
) -> List[System]:
    """Thermal-like snapshots: independent Gaussian displacements per frame."""
    rng = np.random.default_rng(seed)
    if n_grid == 4:
        base = water_box(reps=reps, seed=seed)
    else:
        if reps != 1:
            raise ValueError("custom n_grid only supports reps=1")
        base = water_unit_cell(seed=seed, jitter=0.05, n_grid=n_grid)
    frames = []
    for _ in range(n_frames):
        s = base.copy()
        s.positions = s.positions + rng.normal(scale=sigma, size=s.positions.shape)
        s.wrap()
        frames.append(s)
    return frames
