"""Drug-like molecule generators: QM9 / rMD17 / SPICE proxies (Table I).

Molecules are grown as random heavy-atom (C/N/O) skeletons with chemically
sensible bond lengths and steric exclusion, then hydrogen-saturated to each
element's valence.  Two dataset flavors mirror the paper's benchmarks:

* :func:`molecule_dataset` — many *different* molecules (QM9/SPICE style:
  generalization across chemical space).
* :func:`conformation_dataset` — many thermally perturbed conformations of
  *one* molecule (rMD17 style: per-molecule force accuracy).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..md.system import System
from .reference import SPECIES, SPECIES_INDEX, default_species_params

_VALENCE = {"H": 1, "C": 4, "N": 3, "O": 2}
_HEAVY = ("C", "N", "O")
_HEAVY_WEIGHTS = np.array([0.7, 0.15, 0.15])
_MIN_DIST = 0.85  # steric exclusion radius during growth, Å


def _random_direction(rng: np.random.Generator) -> np.ndarray:
    v = rng.normal(size=3)
    return v / np.linalg.norm(v)


def _place_bonded(
    anchor: np.ndarray,
    bond_length: float,
    existing: List[np.ndarray],
    rng: np.random.Generator,
    max_tries: int = 60,
) -> Optional[np.ndarray]:
    """A point at ``bond_length`` from anchor, at least _MIN_DIST from others."""
    best, best_score = None, -np.inf
    arr = np.asarray(existing)
    for _ in range(max_tries):
        cand = anchor + bond_length * _random_direction(rng)
        dmin = np.min(np.linalg.norm(arr - cand, axis=1)) if len(arr) else np.inf
        if dmin > best_score:
            best, best_score = cand, dmin
        if dmin >= _MIN_DIST:
            return cand
    # Fall back to the least-clashing candidate (still usable as training
    # data: reference labels are exact whatever the geometry).
    return best


def random_molecule(
    n_heavy: int = 6,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> System:
    """Grow one molecule: heavy skeleton tree, then hydrogen saturation."""
    if n_heavy < 1:
        raise ValueError("n_heavy must be >= 1")
    rng = rng or np.random.default_rng(seed)
    params = default_species_params()
    r0 = params.morse_r0

    names: List[str] = []
    positions: List[np.ndarray] = []
    open_valence: List[int] = []

    first = str(rng.choice(_HEAVY, p=_HEAVY_WEIGHTS))
    names.append(first)
    positions.append(np.zeros(3))
    open_valence.append(_VALENCE[first])

    while sum(1 for nm in names if nm != "H") < n_heavy:
        candidates = [k for k, v in enumerate(open_valence) if v > 0 and names[k] != "H"]
        if not candidates:
            break
        anchor = int(rng.choice(candidates))
        elem = str(rng.choice(_HEAVY, p=_HEAVY_WEIGHTS))
        bl = r0[SPECIES_INDEX[names[anchor]], SPECIES_INDEX[elem]]
        pos = _place_bonded(positions[anchor], bl, positions, rng)
        names.append(elem)
        positions.append(pos)
        open_valence.append(_VALENCE[elem] - 1)
        open_valence[anchor] -= 1

    # Saturate remaining valences with hydrogens.
    n_current = len(names)
    for k in range(n_current):
        while open_valence[k] > 0:
            bl = r0[SPECIES_INDEX[names[k]], SPECIES_INDEX["H"]]
            pos = _place_bonded(positions[k], bl, positions, rng)
            names.append("H")
            positions.append(pos)
            open_valence.append(0)
            open_valence[k] -= 1

    species = np.array([SPECIES_INDEX[nm] for nm in names])
    return System(np.asarray(positions), species, cell=None, species_names=SPECIES)


def molecule_dataset(
    n_molecules: int,
    n_heavy_range: tuple[int, int] = (3, 9),
    seed: int = 0,
    jitter: float = 0.04,
) -> List[System]:
    """Distinct molecules with small conformational jitter (QM9/SPICE proxy)."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n_molecules):
        n_heavy = int(rng.integers(n_heavy_range[0], n_heavy_range[1] + 1))
        mol = random_molecule(n_heavy=n_heavy, rng=rng)
        if jitter > 0:
            mol.positions = mol.positions + rng.normal(
                scale=jitter, size=mol.positions.shape
            )
        out.append(mol)
    return out


def conformation_dataset(
    n_frames: int,
    n_heavy: int = 6,
    seed: int = 0,
    sigma: float = 0.08,
) -> List[System]:
    """Perturbed conformations of a single molecule (rMD17 proxy)."""
    rng = np.random.default_rng(seed)
    base = random_molecule(n_heavy=n_heavy, rng=rng)
    frames = []
    for _ in range(n_frames):
        s = base.copy()
        s.positions = s.positions + rng.normal(scale=sigma, size=s.positions.shape)
        frames.append(s)
    return frames
