"""Cellulose-like polysaccharide fibrils: the fig. 1c benchmark system.

The AMBER20 benchmark's cellulose (409k atoms) is a crystalline bundle of
glucose-chain polymers.  The proxy preserves that architecture: linear
chains of ring monomers (6 heavy atoms per ring, C/O with hydroxyl-like
decorations), packed in a parallel fibril lattice and optionally solvated
— the distinguishing features (dense covalent rings, anisotropic fibril
packing, partial solvation) that make cellulose a distinct workload from
globular proteins or bulk water.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..md.cell import Cell
from ..md.system import System
from .reference import SPECIES, SPECIES_INDEX

_RING_RADIUS = 1.45  # Å, pyranose-like ring
_MONOMER_PITCH = 5.2  # Å along the chain (glucose repeat ≈ 5.2)


def _ring_monomer(
    center: np.ndarray, axis_phase: float, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """One glucose-like monomer: 5 C + 1 ring O, hydroxyl O + H decorations."""
    C, O, H = (SPECIES_INDEX[s] for s in ("C", "O", "H"))
    positions: List[np.ndarray] = []
    species: List[int] = []
    # Ring in the yz-plane (chain along x), slightly puckered.
    for k in range(6):
        theta = axis_phase + k * np.pi / 3.0
        pucker = 0.25 * (-1) ** k
        p = center + np.array(
            [pucker, _RING_RADIUS * np.cos(theta), _RING_RADIUS * np.sin(theta)]
        )
        species.append(O if k == 0 else C)
        positions.append(p)
    # Hydroxyl-like decorations on alternating ring carbons; the hydroxyl
    # hydrogen continues outward with a small deterministic axial tilt so it
    # cannot fold back onto ring atoms or neighboring monomers.
    x_hat = np.array([1.0, 0.0, 0.0])
    for k in (1, 3, 5):
        base = positions[k]
        out = (base - center) / np.linalg.norm(base - center)
        o_pos = base + 1.43 * out
        positions.append(o_pos)
        species.append(O)
        h_dir = out + 0.45 * x_hat * (-1.0) ** k
        positions.append(o_pos + 0.96 * h_dir / np.linalg.norm(h_dir))
        species.append(H)
    # Ring hydrogens on the remaining carbons.
    for k in (2, 4):
        base = positions[k]
        out = (base - center) / np.linalg.norm(base - center)
        positions.append(base + 1.09 * out)
        species.append(H)
    return np.asarray(positions), np.asarray(species)


def _random_unit(rng: np.random.Generator) -> np.ndarray:
    v = rng.normal(size=3)
    return v / np.linalg.norm(v)


def cellulose_chain(
    n_monomers: int = 4, seed: int = 0, origin: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """(positions, species) of one polysaccharide chain along x."""
    if n_monomers < 1:
        raise ValueError("n_monomers must be >= 1")
    rng = np.random.default_rng(seed)
    origin = np.zeros(3) if origin is None else np.asarray(origin, dtype=np.float64)
    all_pos, all_spec = [], []
    for m in range(n_monomers):
        center = origin + np.array([m * _MONOMER_PITCH, 0.0, 0.0])
        # Alternate ring phase (the 2-fold screw of cellulose chains).
        pos, spec = _ring_monomer(center, (m % 2) * np.pi / 6.0, rng)
        all_pos.append(pos)
        all_spec.append(spec)
    return np.concatenate(all_pos, axis=0), np.concatenate(all_spec)


def cellulose_fibril(
    n_monomers: int = 4,
    n_chains: Tuple[int, int] = (2, 2),
    chain_spacing: float = 8.5,
    solvate: bool = False,
    water_spacing: float = 3.2,
    padding: float = 4.0,
    seed: int = 0,
) -> System:
    """A parallel bundle of chains, optionally in explicit water.

    The fig. 1c proxy: ``n_chains`` = (ny, nz) chains on a rectangular
    lattice, each ``n_monomers`` long.
    """
    from .water import _water_molecule

    rng = np.random.default_rng(seed + 101)
    all_pos, all_spec = [], []
    for iy in range(n_chains[0]):
        for iz in range(n_chains[1]):
            origin = np.array([2.0, (iy + 0.5) * chain_spacing, (iz + 0.5) * chain_spacing])
            pos, spec = cellulose_chain(
                n_monomers, seed=seed + iy * 31 + iz * 7, origin=origin
            )
            all_pos.append(pos)
            all_spec.append(spec)
    fibril_pos = np.concatenate(all_pos, axis=0)
    fibril_spec = np.concatenate(all_spec)

    lengths = np.array(
        [
            n_monomers * _MONOMER_PITCH + 4.0,
            n_chains[0] * chain_spacing + 2 * padding,
            n_chains[1] * chain_spacing + 2 * padding,
        ]
    )
    fibril_pos = fibril_pos + np.array([0.0, padding, padding])

    positions = [fibril_pos]
    species = [fibril_spec]
    if solvate:
        o_idx, h_idx = SPECIES_INDEX["O"], SPECIES_INDEX["H"]
        counts = np.maximum((lengths / water_spacing).astype(int), 1)
        for ix in range(counts[0]):
            for iy in range(counts[1]):
                for iz in range(counts[2]):
                    c = (np.array([ix, iy, iz]) + 0.5) * lengths / counts
                    if np.min(np.linalg.norm(fibril_pos - c, axis=1)) < 2.4:
                        continue
                    positions.append(_water_molecule(c, rng))
                    species.append(np.array([o_idx, h_idx, h_idx]))

    return System(
        np.concatenate(positions, axis=0),
        np.concatenate(species),
        Cell(lengths),
        species_names=SPECIES,
    )
