"""Protein-like chains, solvation, and the paper's benchmark-system proxies.

Fig. 1 of the paper benchmarks five explicitly solvated biomolecular
systems (DHFR 23k, factor IX 91k, cellulose 409k, STMV 1M, HIV capsid 44M
atoms).  The structures themselves are unavailable (AMBER20 benchmark
suite + the Voth group capsid), so this module provides:

* :func:`protein_chain` — an α-helix-like backbone (N–CA–C=O per residue
  with CB side groups and hydrogens) whose *backbone atom indices* are
  tracked so the fig. 4 RMSD analysis runs on the same observable as the
  paper.
* :func:`solvated_protein` — the chain in a periodic water box (grid water
  placement with steric carving), matching the "explicit all-atom solvent"
  setup.
* :data:`BENCHMARK_SYSTEMS` / :func:`benchmark_proxy` — the paper's systems
  with their true atom counts (for the performance model) and runnable
  reduced-size instances with the same composition character.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..md.cell import Cell
from ..md.system import System
from .reference import SPECIES, SPECIES_INDEX
from .water import _water_molecule

# Helix parameters (α-helix-like): rise per residue and twist.
_HELIX_RADIUS = 2.3
_HELIX_RISE = 1.5
_HELIX_TWIST = np.deg2rad(100.0)


@dataclass
class ProteinSystem:
    """A solvated protein: the System plus bookkeeping for observables."""

    system: System
    backbone_indices: np.ndarray  # CA-equivalent indices for RMSD
    protein_indices: np.ndarray  # all non-water atoms


def protein_chain(n_residues: int = 8, seed: int = 0) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(positions, species, backbone_indices) of a helical chain."""
    rng = np.random.default_rng(seed)
    C, N, O, H = (SPECIES_INDEX[s] for s in ("C", "N", "O", "H"))
    positions: List[np.ndarray] = []
    species: List[int] = []
    backbone: List[int] = []

    for res in range(n_residues):
        theta = res * _HELIX_TWIST
        z = res * _HELIX_RISE
        ca = np.array(
            [_HELIX_RADIUS * np.cos(theta), _HELIX_RADIUS * np.sin(theta), z]
        )
        outward = np.array([np.cos(theta), np.sin(theta), 0.0])
        along = np.array([-np.sin(theta), np.cos(theta), 0.6])
        along = along / np.linalg.norm(along)

        # Backbone: N, CA, C, O (carbonyl), with H on N and CA.
        n_pos = ca - 1.46 * along
        c_pos = ca + 1.52 * along
        o_pos = c_pos + 1.23 * (outward * 0.4 + np.array([0, 0, -0.9]))
        atoms = [
            (N, n_pos),
            (C, ca),
            (C, c_pos),
            (O, o_pos),
            (H, n_pos + 1.01 * outward),
            (H, ca + 1.09 * np.array([0, 0, 1.0])),
        ]
        backbone.append(len(positions) + 1)  # CA index
        # Side group: CB + hydrogens, pointing outward with some variety.
        cb = ca + 1.53 * (outward + 0.2 * rng.normal(size=3))
        atoms.append((C, cb))
        for _ in range(3):
            d = outward + 0.8 * rng.normal(size=3)
            d /= np.linalg.norm(d)
            atoms.append((H, cb + 1.09 * d))
        for sp, p in atoms:
            species.append(sp)
            positions.append(p)

    return np.asarray(positions), np.asarray(species), np.asarray(backbone)


def solvated_protein(
    n_residues: int = 8,
    padding: float = 5.0,
    seed: int = 0,
    water_spacing: float = 3.1,
) -> ProteinSystem:
    """The chain centered in a periodic box filled with grid water."""
    rng = np.random.default_rng(seed + 7)
    prot_pos, prot_spec, backbone = protein_chain(n_residues, seed=seed)
    lo = prot_pos.min(axis=0) - padding
    hi = prot_pos.max(axis=0) + padding
    lengths = hi - lo
    prot_pos = prot_pos - lo

    counts = np.maximum((lengths / water_spacing).astype(int), 1)
    positions = [prot_pos]
    species = [prot_spec]
    o_idx, h_idx = SPECIES_INDEX["O"], SPECIES_INDEX["H"]
    for ix in range(counts[0]):
        for iy in range(counts[1]):
            for iz in range(counts[2]):
                center = (np.array([ix, iy, iz]) + 0.5) * lengths / counts
                # Carve out the protein: skip waters too close to any atom.
                if np.min(np.linalg.norm(prot_pos - center, axis=1)) < 2.4:
                    continue
                positions.append(_water_molecule(center, rng))
                species.append(np.array([o_idx, h_idx, h_idx]))
    pos = np.concatenate(positions, axis=0)
    spec = np.concatenate(species)
    sys_ = System(pos, spec, Cell(lengths), species_names=SPECIES)
    return ProteinSystem(
        system=sys_,
        backbone_indices=backbone,
        protein_indices=np.arange(len(prot_pos)),
    )


#: The paper's benchmark systems with their published atom counts (fig. 6).
BENCHMARK_SYSTEMS: Dict[str, int] = {
    "dhfr": 23_558,
    "factor_ix": 90_906,
    "cellulose": 408_609,
    "stmv": 1_066_628,
    "stmv10": 10_666_280,
    "capsid": 44_000_000,
}


def benchmark_proxy(name: str, max_atoms: int = 600, seed: int = 0) -> ProteinSystem:
    """A runnable reduced-size instance of a named benchmark system.

    The *composition character* (solvated protein) is preserved; the true
    size lives in :data:`BENCHMARK_SYSTEMS` and drives the performance
    model, while this instance exercises the actual code path.
    """
    if name not in BENCHMARK_SYSTEMS:
        raise KeyError(f"unknown system {name!r}; known: {sorted(BENCHMARK_SYSTEMS)}")
    # Residue count chosen so the solvated instance lands near max_atoms.
    n_res = max(3, int(max_atoms / 120))
    return solvated_protein(n_residues=n_res, seed=seed)
