"""Dataset validation for the force-matching stack.

The paper's training data pipeline filters SPICE structures before a
single gradient step is taken ("filter out all structures that contain
any force component larger than 0.25 Ha/Bohr", §VI-D) — because a model
trained on one corrupted label is corrupted everywhere, and the defect
only surfaces days later as an unstable trajectory.  :func:`validate_frames`
is that discipline generalized into a screening pass the
:class:`~repro.nn.training.Trainer` runs by default:

* **Hard defects** (training on them is never correct): non-finite
  energies or forces, forces whose shape does not match the positions,
  species arrays that are malformed (wrong length, non-integer, negative).
* **Soft defects** (suspicious, policy-dependent): exact duplicate
  structures (which silently overweight one conformation) and σ-outlier
  per-atom energies or peak forces (robust median/MAD screening — a
  mislabeled frame dominates the force-scale normalization otherwise).

The pass reports everything in a :class:`DatasetReport`; what *happens*
is the caller's policy — the trainer rejects hard defects by default and
can quarantine everything flagged (``data_policy="quarantine"``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "HARD_KINDS",
    "SOFT_KINDS",
    "FrameIssue",
    "DatasetReport",
    "DatasetValidationError",
    "validate_frames",
]

#: Defect kinds that make a frame unconditionally untrainable.
HARD_KINDS = frozenset(
    {"nonfinite_energy", "nonfinite_forces", "shape_mismatch", "species_mismatch"}
)
#: Defect kinds that are suspicious but policy-dependent.
SOFT_KINDS = frozenset({"duplicate", "energy_outlier", "force_outlier"})


class DatasetValidationError(ValueError):
    """A dataset failed validation under the active policy."""


@dataclass
class FrameIssue:
    """One defect found on one frame."""

    index: int
    kind: str
    detail: str

    @property
    def hard(self) -> bool:
        return self.kind in HARD_KINDS


@dataclass
class DatasetReport:
    """Outcome of one :func:`validate_frames` pass."""

    n_frames: int
    issues: List[FrameIssue] = field(default_factory=list)

    @property
    def hard_issues(self) -> List[FrameIssue]:
        return [i for i in self.issues if i.hard]

    @property
    def soft_issues(self) -> List[FrameIssue]:
        return [i for i in self.issues if not i.hard]

    def flagged_indices(self, include_soft: bool = True) -> List[int]:
        """Sorted frame indices carrying any (hard, optionally soft) issue."""
        picked = self.issues if include_soft else self.hard_issues
        return sorted({i.index for i in picked})

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for issue in self.issues:
            out[issue.kind] = out.get(issue.kind, 0) + 1
        return out

    @property
    def ok(self) -> bool:
        return not self.issues

    def summary(self) -> str:
        if not self.issues:
            return f"{self.n_frames} frames validated, no issues"
        parts = ", ".join(f"{k}: {n}" for k, n in sorted(self.counts().items()))
        examples = "; ".join(
            f"frame {i.index}: {i.detail}" for i in self.issues[:3]
        )
        more = "" if len(self.issues) <= 3 else f" (+{len(self.issues) - 3} more)"
        return (
            f"{len(self.issues)} issue(s) across {self.n_frames} frames "
            f"[{parts}] — {examples}{more}"
        )


def _structure_key(system) -> bytes:
    """Exact-identity digest of a structure (positions + species + cell)."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(system.positions).tobytes())
    h.update(np.ascontiguousarray(system.species).tobytes())
    cell = getattr(system, "cell", None)
    if cell is not None and getattr(cell, "lengths", None) is not None:
        h.update(np.ascontiguousarray(cell.lengths).tobytes())
    return h.digest()


def _robust_outliers(values: np.ndarray, sigma: float) -> np.ndarray:
    """Indices whose robust z-score |x - median| / (1.4826·MAD) exceeds sigma."""
    median = float(np.median(values))
    mad = float(np.median(np.abs(values - median)))
    scale = max(1.4826 * mad, 1e-12)
    return np.flatnonzero(np.abs(values - median) > sigma * scale)


def validate_frames(
    frames: Sequence,
    energy_sigma: Optional[float] = 6.0,
    force_sigma: Optional[float] = 6.0,
    check_duplicates: bool = True,
    min_outlier_frames: int = 8,
) -> DatasetReport:
    """Screen labeled frames for hard and soft defects.

    Parameters
    ----------
    frames:
        ``LabeledFrame``-like objects (``system``, ``energy``, ``forces``).
    energy_sigma / force_sigma:
        Robust z-score thresholds for per-atom-energy and peak-force
        outlier screening (``None`` disables either).  Statistics need at
        least ``min_outlier_frames`` frames with finite labels — below
        that a median/MAD is meaningless and screening is skipped.
    check_duplicates:
        Flag frames whose structure (positions, species, cell) is byte-
        identical to an earlier frame.

    Returns the full :class:`DatasetReport`; raising/dropping is the
    caller's policy decision.
    """
    report = DatasetReport(n_frames=len(frames))
    finite: List[int] = []
    seen: Dict[bytes, int] = {}

    for k, frame in enumerate(frames):
        system = frame.system
        n_atoms = system.positions.shape[0]
        forces = np.asarray(frame.forces)

        hard = False
        if forces.shape != system.positions.shape:
            report.issues.append(
                FrameIssue(
                    k,
                    "shape_mismatch",
                    f"forces {forces.shape} vs positions {system.positions.shape}",
                )
            )
            hard = True
        species = np.asarray(system.species)
        if (
            species.shape != (n_atoms,)
            or not np.issubdtype(species.dtype, np.integer)
            or (species.size and species.min() < 0)
        ):
            report.issues.append(
                FrameIssue(
                    k,
                    "species_mismatch",
                    f"species shape {species.shape} dtype {species.dtype} "
                    f"for {n_atoms} atoms",
                )
            )
            hard = True
        if not np.isfinite(frame.energy):
            report.issues.append(
                FrameIssue(k, "nonfinite_energy", f"energy = {frame.energy!r}")
            )
            hard = True
        if not np.isfinite(forces).all():
            bad = int(np.count_nonzero(~np.isfinite(forces)))
            report.issues.append(
                FrameIssue(
                    k, "nonfinite_forces", f"{bad} non-finite force component(s)"
                )
            )
            hard = True

        if check_duplicates:
            key = _structure_key(system)
            if key in seen:
                report.issues.append(
                    FrameIssue(k, "duplicate", f"same structure as frame {seen[key]}")
                )
            else:
                seen[key] = k

        if not hard:
            finite.append(k)

    # σ-outlier screening over the frames with clean labels only — a NaN
    # would otherwise poison the very median meant to catch it.
    if len(finite) >= min_outlier_frames:
        if energy_sigma is not None:
            e_per_atom = np.array(
                [frames[k].energy / frames[k].system.positions.shape[0] for k in finite]
            )
            for j in _robust_outliers(e_per_atom, energy_sigma):
                k = finite[int(j)]
                report.issues.append(
                    FrameIssue(
                        k,
                        "energy_outlier",
                        f"per-atom energy {e_per_atom[j]:.6g} is a "
                        f">{energy_sigma:g}σ outlier",
                    )
                )
        if force_sigma is not None:
            f_peak = np.array(
                [np.abs(np.asarray(frames[k].forces)).max() for k in finite]
            )
            for j in _robust_outliers(f_peak, force_sigma):
                k = finite[int(j)]
                report.issues.append(
                    FrameIssue(
                        k,
                        "force_outlier",
                        f"peak |F| {f_peak[j]:.6g} is a >{force_sigma:g}σ outlier",
                    )
                )

    report.issues.sort(key=lambda i: (i.index, i.kind))
    return report
