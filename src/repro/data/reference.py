"""The analytic many-body reference potential that labels synthetic data.

Substitute for the paper's DFT reference calculations (ωB97M-D3(BJ) /
def2-TZVPPD on SPICE; see DESIGN.md).  Requirements for a faithful
substitution:

1. **Exactly evaluable** energies and forces (it is a Potential on the same
   autodiff substrate, so labels are machine-precision consistent).
2. **Many-body angular structure.**  The 3-body Stillinger–Weber-style term
   E₃ = Σ λ(s_i,s_j,s_k)·(cosθ_jik − c₀(s_i))²·f(r_ij)·f(r_ik) cannot be
   represented by any pair-additive form and is only partially captured by
   fixed rotation-invariant descriptors — giving the accuracy hierarchy
   classical < invariant < equivariant that Tables I/II rest on.
3. **Species sensitivity** through per-pair Morse parameters and per-species
   preferred angles (H: terminal, O: bent, C/N: tetrahedral-ish).

Units are eV / Å throughout, with magnitudes tuned to produce force scales
of O(1) eV/Å in equilibrium-ish structures, comparable to DFT forces in
SPICE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .. import autodiff as ad
from ..md.neighborlist import NeighborList, triplet_list
from ..md.system import System
from ..models.base import Potential
from ..nn.radial import PolynomialCutoff

#: canonical species order used by all synthetic generators
SPECIES = ("H", "C", "N", "O")
SPECIES_INDEX: Dict[str, int] = {s: i for i, s in enumerate(SPECIES)}
ATOMIC_NUMBERS = np.array([1.0, 6.0, 7.0, 8.0])


@dataclass
class SpeciesParams:
    """Parameter tables for the reference potential (S species)."""

    morse_D: np.ndarray  # [S, S] well depth, eV
    morse_a: np.ndarray  # [S, S] inverse width, 1/Å
    morse_r0: np.ndarray  # [S, S] equilibrium distance, Å
    three_body_lambda: np.ndarray  # [S] angular strength at center, eV
    cos_theta0: np.ndarray  # [S] preferred cosine at center species
    charges: np.ndarray  # [S] partial charges for the screened Coulomb tail


def default_species_params() -> SpeciesParams:
    """H/C/N/O parameters with chemically sensible orderings."""
    # Pairwise equilibrium distances loosely following covalent radii sums.
    r0 = np.array(
        [  # H     C     N     O
            [0.74, 1.09, 1.01, 0.96],  # H
            [1.09, 1.52, 1.47, 1.43],  # C
            [1.01, 1.47, 1.45, 1.40],  # N
            [0.96, 1.43, 1.40, 1.48],  # O
        ]
    )
    D = np.array(
        [
            [0.18, 0.35, 0.32, 0.38],
            [0.35, 0.30, 0.28, 0.30],
            [0.32, 0.28, 0.25, 0.26],
            [0.38, 0.30, 0.26, 0.22],
        ]
    )
    a = np.array(
        [
            [2.0, 1.9, 1.9, 2.0],
            [1.9, 1.8, 1.8, 1.8],
            [1.9, 1.8, 1.7, 1.7],
            [2.0, 1.8, 1.7, 1.9],
        ]
    )
    lam = np.array([0.0, 0.9, 0.7, 0.6])  # H has no angular preference
    cos0 = np.array([0.0, -1.0 / 3.0, -1.0 / 3.0, -0.27])  # tetrahedral-ish; O bent
    q = np.array([0.25, 0.05, -0.20, -0.45])
    return SpeciesParams(D, a, r0, lam, cos0, q)


class ReferencePotential(Potential):
    """Morse pairs + SW-style 3-body + screened Coulomb tail.

    E = Σ_{pairs} ½[Morse + q_i q_j·g(r)]·u(r/r_c)
      + Σ_i λ(Z_i) Σ_{j≠k} w_jk (cosθ_jik − c₀(Z_i))² f(r_ij) f(r_ik)

    with f a smooth radial weight vanishing at the 3-body cutoff.
    """

    def __init__(
        self,
        params: Optional[SpeciesParams] = None,
        cutoff: float = 4.0,
        three_body_cutoff: float = 2.2,
        coulomb_strength: float = 1.2,
    ) -> None:
        self.params = params or default_species_params()
        self.cutoff = float(cutoff)
        self.three_body_cutoff = float(three_body_cutoff)
        self.coulomb_strength = float(coulomb_strength)
        self.envelope = PolynomialCutoff(6)
        self._n_species = len(self.params.charges)

    def atomic_energies(self, positions, species, nl: NeighborList):
        p = self.params
        species = np.asarray(species)
        n_atoms = positions.shape[0]
        i_idx, j_idx = nl.edge_index
        if nl.n_edges == 0:
            return ad.Tensor(np.zeros(n_atoms))

        positions = ad.astensor(positions)
        disp = ad.gather(positions, j_idx) + ad.Tensor(nl.shifts) - ad.gather(
            positions, i_idx
        )
        r = ad.safe_norm(disp, axis=-1)

        # -- pair part -------------------------------------------------------
        D = ad.Tensor(p.morse_D[species[i_idx], species[j_idx]])
        a = ad.Tensor(p.morse_a[species[i_idx], species[j_idx]])
        r0 = ad.Tensor(p.morse_r0[species[i_idx], species[j_idx]])
        decay = ad.exp(-(a * (r - r0)))
        e_morse = D * ((1.0 - decay) ** 2 - 1.0)
        qq = p.charges[species[i_idx]] * p.charges[species[j_idx]]
        e_coul = ad.Tensor(qq * self.coulomb_strength) / (r + 0.9)
        u = self.envelope(r * (1.0 / self.cutoff))
        e_edge = (e_morse + e_coul) * u * 0.5
        e_atoms = ad.scatter_add(e_edge, i_idx, n_atoms)

        # -- 3-body part -------------------------------------------------------
        f = self.envelope(r * (1.0 / self.three_body_cutoff))
        e1, e2 = triplet_list(nl)
        if len(e1) > 0:
            d1 = ad.gather(disp, e1)
            d2 = ad.gather(disp, e2)
            r1 = ad.gather(r, e1)
            r2 = ad.gather(r, e2)
            cos = (d1 * d2).sum(axis=-1) / (r1 * r2)
            centers = species[i_idx[e1]]
            lam = p.three_body_lambda[centers]
            c0 = p.cos_theta0[centers]
            w = ad.gather(f, e1) * ad.gather(f, e2)
            # ½: each unordered (j, k) appears twice in the ordered triplets.
            e_tri = ad.Tensor(lam * 0.5) * (cos - ad.Tensor(c0)) ** 2 * w
            e_atoms = e_atoms + ad.scatter_add(e_tri, i_idx[e1], n_atoms)
        return e_atoms

    def label(self, system: System, nl: Optional[NeighborList] = None):
        """(energy, forces) labels for a structure (convenience alias)."""
        return self.energy_and_forces(system, nl)
