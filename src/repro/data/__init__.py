"""Synthetic datasets standing in for the paper's quantum reference data.

The paper trains on DFT labels (SPICE for biomolecules, QM9/rMD17 for the
accuracy tables, DFT water/ice for Table II).  None of those are available
offline, so this package provides:

* :mod:`reference` — an analytic many-body "ground truth" potential
  (Morse pairs + Stillinger–Weber-style angular 3-body + species coupling)
  whose exact energies/forces label every synthetic dataset.  Its 3-body
  angular physics is what separates the model classes: pair-additive
  classical forms cannot fit it, invariant descriptors fit it poorly, and
  equivariant models fit it well — the same hierarchy as Tables I/II.
* :mod:`water` / :mod:`ice` — the 192-atom water unit cell replicated
  isotropically (§VII-B) and three ice-like polymorphs (Table II/IV rows).
* :mod:`molecules` — drug-like molecule conformations (QM9/rMD17/SPICE
  proxies for Table I).
* :mod:`proteins` — protein-like solvated chains and the named benchmark
  proxies (DHFR, factor IX, cellulose, STMV, HIV capsid) at true paper
  sizes for scaling studies and reduced sizes for actual dynamics.
* :mod:`datasets` — labeling + split/shuffle helpers producing
  :class:`~repro.nn.training.LabeledFrame` lists.
* :mod:`validate` — dataset screening (non-finite labels, malformed
  shapes/species, duplicates, σ-outliers) run by default in the trainer;
  reports a :class:`DatasetReport`.
"""

from .reference import ReferencePotential, default_species_params
from .water import water_unit_cell, water_box, perturbed_water_frames
from .ice import ice_polymorph, ice_frames, ICE_LABELS
from .molecules import random_molecule, molecule_dataset, conformation_dataset
from .proteins import (
    protein_chain,
    solvated_protein,
    BENCHMARK_SYSTEMS,
    benchmark_proxy,
)
from .capsid import CapsidSystem, capsid_assembly, icosahedron_vertices, shell_points, shell_strain
from .cellulose import cellulose_chain, cellulose_fibril
from .datasets import label_frames, split_frames, subsample
from .validate import (
    DatasetReport,
    DatasetValidationError,
    FrameIssue,
    validate_frames,
)

__all__ = [
    "ReferencePotential",
    "default_species_params",
    "water_unit_cell",
    "water_box",
    "perturbed_water_frames",
    "ice_polymorph",
    "ice_frames",
    "ICE_LABELS",
    "random_molecule",
    "molecule_dataset",
    "conformation_dataset",
    "protein_chain",
    "solvated_protein",
    "BENCHMARK_SYSTEMS",
    "benchmark_proxy",
    "CapsidSystem",
    "capsid_assembly",
    "icosahedron_vertices",
    "shell_points",
    "shell_strain",
    "cellulose_chain",
    "cellulose_fibril",
    "label_frames",
    "split_frames",
    "subsample",
    "DatasetReport",
    "DatasetValidationError",
    "FrameIssue",
    "validate_frames",
]
