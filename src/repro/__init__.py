"""repro — reproduction of "Scaling the Leading Accuracy of Deep Equivariant
Models to Biomolecular Simulations of Realistic Size" (SC '23).

Subpackages
-----------
autodiff
    Reverse-mode automatic differentiation on numpy (PyTorch substitute),
    with Tensor-valued gradients so force-matching double backprop is exact.
equivariant
    O(3) irreps, Wigner 3j, spherical harmonics, the paper's strided layout
    and fused tensor product (e3nn substitute + §V-B kernel innovations).
nn
    MLPs, radial bases, optimizers, EMA, the §VI-D force-matching trainer.
models
    The Allegro potential and its baselines (NequIP-style MPNN,
    DeepMD-style invariant, classical FF, LJ/Morse/ZBL).
md
    Cells, neighbor lists, integrators, thermostats, observables,
    trajectories — the single-process MD engine.
parallel
    Spatial domain decomposition over a byte-counting virtual cluster
    (LAMMPS+MPI substitute) and the calibrated A100 performance model.
perf
    Mixed-precision emulation (Table IV), caching-allocator + padding
    simulation (fig. 5), timing utilities.
data
    Synthetic water/ice/molecule/protein generators and the many-body
    analytic reference potential that labels them (DFT substitute).
serve
    Batched force-evaluation service over the compiled engine: model
    registry, capacity-bucketed plan cache, micro-batching, worker pool
    with backpressure, deadline-aware QoS with priority load shedding,
    degraded-mode fallbacks, and serving metrics.
health
    The serving health state machine (``HEALTHY → DEGRADED → SHEDDING →
    DRAINING``) with hysteresis thresholds and dwell times, driven by
    obs signals and honored by serve admission and the tune controllers.
obs
    Unified observability: the metrics registry (counters, gauges,
    histograms, labeled series), hierarchical span tracing with bounded
    buffers, timing helpers, and deterministic JSON export — the stats
    substrate shared by md, engine, parallel, serve, and training.
tune
    Measured autotuning over the stack's performance knobs: deterministic
    offline searches (skin, padding, batching, plan ladders, process
    grids), persisted ``TuningProfile`` artifacts, and off-by-default
    online hysteresis controllers driven by the obs registry.
traj
    The trajectory data plane: binary chunked store with per-chunk CRCs,
    delta+zlib compression and a footer index; asynchronous off-hot-path
    writer with checkpoint-pinned chunk boundaries (bitwise kill-and-
    resume); single-pass streaming analysis (MSD/VACF/RDF/thermo).
"""

__version__ = "0.1.0"

__all__ = [
    "autodiff",
    "equivariant",
    "nn",
    "models",
    "md",
    "parallel",
    "perf",
    "data",
    "serve",
    "health",
    "obs",
    "tune",
    "traj",
]
