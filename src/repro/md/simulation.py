"""The MD driver: the LAMMPS-equivalent loop at single-process scale.

Sequence per step (velocity Verlet): half kick → drift → neighbor
check/rebuild (Verlet skin; positions are wrapped exactly at rebuilds so
stored shift vectors stay valid) → force call → half kick → thermostat.  The
driver records energies, temperatures, per-step pair counts (which feed the
fig. 5 allocator simulation) and wall-time throughput in timesteps/s — the
paper's primary performance metric.

Multi-rank runs use :mod:`repro.parallel.driver`, which wraps the same
potential in a spatial decomposition; this serial driver is the reference
it is validated against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from .integrators import VelocityVerlet
from .neighborlist import VerletList
from .system import System
from .trajectory import TrajectoryRecorder


@dataclass
class MDResult:
    """Time series from a run; arrays are aligned with ``times``."""

    times: np.ndarray  # fs
    potential_energies: np.ndarray  # eV
    kinetic_energies: np.ndarray  # eV
    temperatures: np.ndarray  # K
    pair_counts: np.ndarray  # neighbor pairs per recorded step
    wall_time: float  # s
    n_steps: int

    @property
    def total_energies(self) -> np.ndarray:
        return self.potential_energies + self.kinetic_energies

    @property
    def timesteps_per_second(self) -> float:
        return self.n_steps / self.wall_time if self.wall_time > 0 else float("inf")


class Simulation:
    """Single-process MD of a :class:`System` under a Potential."""

    def __init__(
        self,
        system: System,
        potential,
        dt: float = 0.5,
        thermostat=None,
        skin: float = 0.4,
        recorder: Optional[TrajectoryRecorder] = None,
        engine: str = "eager",
    ) -> None:
        from ..engine import CompiledPotential

        self.system = system
        if isinstance(potential, CompiledPotential):
            # Accept a pre-compiled evaluator directly; keep the raw model
            # for cutoff / pair-cutoff bookkeeping.
            self.potential = potential.potential
            self._evaluator = potential
            engine = "compiled"
        elif engine == "compiled":
            # Capture-once/replay-many deployment mode (paper §V-C): the
            # hot loop below then replays a fixed kernel plan instead of
            # rebuilding the autodiff tape every step.
            self.potential = potential
            self._evaluator = potential.compile()
        elif engine == "eager":
            self.potential = potential
            self._evaluator = potential
        else:
            raise ValueError(f"unknown engine {engine!r} (use 'eager' or 'compiled')")
        self.engine = engine
        self.integrator = VelocityVerlet(dt)
        self.thermostat = thermostat
        self.verlet = VerletList(self.potential.cutoff, skin=skin)
        self.recorder = recorder
        self.step_count = 0
        self._forces: Optional[np.ndarray] = None
        self._pe: float = 0.0
        self._callbacks: List[Callable[[int, "Simulation"], None]] = []

    def engine_stats(self) -> Optional[dict]:
        """Capture/replay counters when running compiled; None when eager."""
        if self.engine == "compiled":
            return self._evaluator.stats()
        return None

    def add_callback(self, fn: Callable[[int, "Simulation"], None]) -> None:
        """Called after every step with (step index, simulation)."""
        self._callbacks.append(fn)

    def _compute_forces(self) -> tuple[float, np.ndarray, int]:
        nl = self.verlet.get(self.system)
        if hasattr(self.potential, "prepare_neighbors") and not np.allclose(
            getattr(self.potential, "pair_cutoffs", self.potential.cutoff),
            self.potential.cutoff,
        ):
            # Per-species-pair pruning happens on the skinned list; the model
            # envelope zeroes anything between r_c(pair) and the skin anyway,
            # so we prune against the model's own matrix for speed.
            from .neighborlist import filter_by_pair_cutoffs

            nl = filter_by_pair_cutoffs(
                nl,
                self.system.positions,
                self.system.species,
                self.potential.pair_cutoffs + self.verlet.skin,
            )
        e, f = self._evaluator.energy_and_forces(self.system, nl)
        return e, f, nl.n_edges

    def run(self, n_steps: int, record_every: int = 1) -> MDResult:
        """Advance ``n_steps``; returns recorded time series."""
        times, pes, kes, temps, pairs = [], [], [], [], []
        if self._forces is None:
            self._pe, self._forces, n_pairs = self._compute_forces()
        t0 = time.perf_counter()
        for k in range(n_steps):
            self.integrator.half_kick(self.system, self._forces)
            self.integrator.drift(self.system)
            # Positions are wrapped by the Verlet list exactly when it
            # rebuilds (stale shift vectors + wrapping do not mix).
            self._pe, self._forces, n_pairs = self._compute_forces()
            self.integrator.half_kick(self.system, self._forces)
            if self.thermostat is not None:
                self.thermostat.apply(self.system, self.integrator.dt)
            self.step_count += 1
            t_now = self.step_count * self.integrator.dt
            if k % record_every == 0:
                times.append(t_now)
                pes.append(self._pe)
                kes.append(self.system.kinetic_energy())
                temps.append(self.system.temperature())
                pairs.append(n_pairs)
            if self.recorder is not None:
                self.recorder.record(self.step_count, t_now, self.system)
            for cb in self._callbacks:
                cb(self.step_count, self)
        wall = time.perf_counter() - t0
        return MDResult(
            times=np.asarray(times),
            potential_energies=np.asarray(pes),
            kinetic_energies=np.asarray(kes),
            temperatures=np.asarray(temps),
            pair_counts=np.asarray(pairs),
            wall_time=wall,
            n_steps=n_steps,
        )
