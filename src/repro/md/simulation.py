"""The MD driver: the LAMMPS-equivalent loop at single-process scale.

Sequence per step (velocity Verlet): half kick → drift → neighbor
check/rebuild (Verlet skin; positions are wrapped exactly at rebuilds so
stored shift vectors stay valid) → force call → half kick → thermostat →
barostat.  The driver records energies, temperatures, per-step pair counts
(which feed the fig. 5 allocator simulation) and wall-time throughput in
timesteps/s — the paper's primary performance metric.

Resilience (paper §VII-B: 2.5M-step runs on failure-prone hardware):

* Non-finite forces **fail fast** by default — a NaN never propagates
  silently into the recorded trajectory.
* An optional :class:`~repro.resilience.ForceWatchdog` adds energy-spike
  detection and a ``"recover"`` policy that restores the last checkpoint
  and replays instead of aborting.
* ``run(..., checkpoint_every=, checkpoint_dir=)`` streams atomic,
  checksummed snapshots of *complete* state — positions, velocities, cell,
  thermostat/barostat internals (including RNG state), neighbor-list
  bookkeeping, cached forces — so a restored run continues the
  uninterrupted trajectory **bitwise** in float64 (see
  ``tests/test_resilience.py``).

Multi-rank runs use :mod:`repro.parallel.driver`, which wraps the same
potential in a spatial decomposition; this serial driver is the reference
it is validated against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..obs import Registry, get_tracer, span
from ..resilience.guards import NumericalInstabilityError, validate_energy_forces
from .integrators import VelocityVerlet
from .neighborlist import NeighborList, VerletList
from .system import System
from .trajectory import TrajectoryRecorder

#: Default snapshot interval when checkpointing is enabled without an
#: explicit ``checkpoint_every``.
DEFAULT_CHECKPOINT_EVERY = 100

#: Default dump interval when a binary trajectory sink is given without an
#: explicit ``dump_every``.
DEFAULT_DUMP_EVERY = 10


@dataclass
class MDResult:
    """Time series from a run; arrays are aligned with ``times``."""

    times: np.ndarray  # fs
    potential_energies: np.ndarray  # eV
    kinetic_energies: np.ndarray  # eV
    temperatures: np.ndarray  # K
    pair_counts: np.ndarray  # neighbor pairs per recorded step
    wall_time: float  # s
    n_steps: int

    @property
    def total_energies(self) -> np.ndarray:
        return self.potential_energies + self.kinetic_energies

    @property
    def timesteps_per_second(self) -> float:
        return self.n_steps / self.wall_time if self.wall_time > 0 else float("inf")


def _capture_coupling_state(obj) -> Optional[dict]:
    """Thermostat/barostat internals worth checkpointing (duck-typed).

    Covers every coupling object in the tree: Nosé–Hoover's friction
    variable, Langevin's RNG stream, Berendsen barostat's last pressure.
    """
    if obj is None:
        return None
    state: dict = {}
    if hasattr(obj, "xi"):
        state["xi"] = float(obj.xi)
    if hasattr(obj, "rng"):
        state["rng"] = obj.rng.bit_generator.state
    if hasattr(obj, "last_pressure"):
        state["last_pressure"] = obj.last_pressure
    return state


def _restore_coupling_state(obj, state: Optional[dict]) -> None:
    if obj is None or state is None:
        return
    if "xi" in state:
        obj.xi = state["xi"]
    if "rng" in state:
        obj.rng.bit_generator.state = state["rng"]
    if "last_pressure" in state:
        obj.last_pressure = state["last_pressure"]


class Simulation:
    """Single-process MD of a :class:`System` under a Potential.

    Parameters
    ----------
    thermostat:
        Optional NVT coupling, applied once per step after the second
        half-kick.
    barostat:
        Optional NPT coupling (e.g. :class:`~repro.md.BerendsenBarostat`),
        applied after the thermostat with the current forces.
    watchdog:
        Optional :class:`~repro.resilience.ForceWatchdog`.  Without one,
        non-finite forces still abort the run (fail fast); with one, the
        energy-spike detector and the checkpoint-recover policy are active.
    neighbor_every:
        Displacement-check cadence for the Verlet list (LAMMPS
        ``neigh_modify every N``); 1 checks every step.  Values > 1 are
        only sound with a skin generous enough to cover the unchecked
        drift — the ``md`` tuning target searches the two jointly.
    padding:
        Engine capture headroom (paper §V-C) when ``engine="compiled"``;
        forwarded to ``potential.compile(padding=...)``.  Ignored for
        eager runs and pre-compiled evaluators.
    controllers:
        Optional :class:`~repro.tune.ControllerSet` (off by default).
        Bound to this simulation's registry and ticked once per step;
        frozen automatically whenever the watchdog recover policy fires.
    """

    def __init__(
        self,
        system: System,
        potential,
        dt: float = 0.5,
        thermostat=None,
        barostat=None,
        skin: float = 0.4,
        recorder: Optional[TrajectoryRecorder] = None,
        engine: str = "eager",
        watchdog=None,
        registry: Optional[Registry] = None,
        neighbor_every: int = 1,
        padding: Optional[float] = 0.05,
        controllers=None,
    ) -> None:
        from ..engine import CompiledPotential

        self.system = system
        # One obs.Registry per simulation (injectable, e.g. the CLI profile
        # shares a single tree across layers); a compiled evaluator built
        # here records its engine.* counters into the same registry.
        self.obs = registry if registry is not None else Registry()
        if isinstance(potential, CompiledPotential):
            # Accept a pre-compiled evaluator directly; keep the raw model
            # for cutoff / pair-cutoff bookkeeping.
            self.potential = potential.potential
            self._evaluator = potential
            engine = "compiled"
        elif engine == "compiled":
            # Capture-once/replay-many deployment mode (paper §V-C): the
            # hot loop below then replays a fixed kernel plan instead of
            # rebuilding the autodiff tape every step.
            self.potential = potential
            self._evaluator = potential.compile(padding=padding, registry=self.obs)
        elif engine == "eager":
            self.potential = potential
            self._evaluator = potential
        else:
            raise ValueError(f"unknown engine {engine!r} (use 'eager' or 'compiled')")
        self.engine = engine
        self.integrator = VelocityVerlet(dt)
        self.thermostat = thermostat
        self.barostat = barostat
        self.watchdog = watchdog
        self.verlet = VerletList(
            self.potential.cutoff, skin=skin, check_every=neighbor_every
        )
        self.recorder = recorder
        self.controllers = controllers
        if controllers is not None:
            controllers.bind(self.obs)
        self.step_count = 0
        self._forces: Optional[np.ndarray] = None
        self._pe: float = 0.0
        self._callbacks: List[Callable[[int, "Simulation"], None]] = []
        self._c_steps = self.obs.counter("md.steps")
        self._c_rebuilds = self.obs.counter("md.neighbor_rebuilds")
        self._c_recoveries = self.obs.counter("md.recoveries")
        self._c_checkpoints = self.obs.counter("md.checkpoints")
        self._c_pairs = self.obs.counter("md.pairs")
        self._h_force = self.obs.histogram("md.force_seconds")

    @property
    def n_recoveries(self) -> int:
        """Watchdog recover-policy rollbacks performed by :meth:`run`."""
        return self._c_recoveries.value

    def engine_stats(self) -> Optional[dict]:
        """Capture/replay counters when running compiled; None when eager."""
        if self.engine == "compiled":
            return self._evaluator.stats()
        return None

    def stats(self) -> dict:
        """Unified observability view: registry counters + engine + phases.

        ``phases`` is populated when tracing is enabled (``repro.obs``);
        the per-phase wall times cover neighbor rebuild / force eval /
        integrate / thermostat / checkpoint — the Fig. 6/7 time-per-step
        breakdown at single-process scale.
        """
        snap = self.obs.snapshot()
        snap["engine_stats"] = self.engine_stats()
        snap["n_recoveries"] = self.n_recoveries
        snap["neighbor_builds"] = self.verlet.n_builds
        snap["phases"] = get_tracer().phase_totals("md.")
        if self.controllers is not None:
            snap["controllers"] = self.controllers.stats()
        return snap

    def add_callback(self, fn: Callable[[int, "Simulation"], None]) -> None:
        """Called after every step with (step index, simulation)."""
        self._callbacks.append(fn)

    def _compute_forces(self) -> tuple[float, np.ndarray, int]:
        with span("md.neighbor") as sp:
            builds_before = self.verlet.n_builds
            nl = self.verlet.get(self.system)
            if hasattr(self.potential, "prepare_neighbors") and not np.allclose(
                getattr(self.potential, "pair_cutoffs", self.potential.cutoff),
                self.potential.cutoff,
            ):
                # Per-species-pair pruning happens on the skinned list; the
                # model envelope zeroes anything between r_c(pair) and the
                # skin anyway, so we prune against the model's own matrix for
                # speed.
                from .neighborlist import filter_by_pair_cutoffs

                nl = filter_by_pair_cutoffs(
                    nl,
                    self.system.positions,
                    self.system.species,
                    self.potential.pair_cutoffs + self.verlet.skin,
                )
            rebuilt = self.verlet.n_builds - builds_before
            if rebuilt:
                self._c_rebuilds.inc(rebuilt)
                sp.add("rebuilds", rebuilt)
            sp.add("pairs", nl.n_edges)
        self._c_pairs.inc(nl.n_edges)
        with span("md.force"):
            t0 = time.perf_counter()
            e, f = self._evaluator.energy_and_forces(self.system, nl)
            self._h_force.observe(time.perf_counter() - t0)
        return e, f, nl.n_edges

    # -- checkpointable state -------------------------------------------------
    def get_state(self) -> dict:
        """Complete restart state; see :meth:`set_state` for the inverse.

        Captures everything the step loop reads: phase-space coordinates,
        the cell, coupling internals (thermostat RNG stream, Nosé–Hoover
        friction, barostat pressure memory), cached forces/energy, and the
        Verlet-list bookkeeping (reference positions + current list), so a
        restored run follows the *same* rebuild/wrap schedule — the
        ingredient that makes resume bitwise-identical rather than merely
        statistically equivalent.
        """
        verlet_state: dict = {
            "ref_positions": (
                None
                if self.verlet._ref_positions is None
                else self.verlet._ref_positions.copy()
            ),
            "n_builds": self.verlet.n_builds,
            "since_check": self.verlet._since_check,
            "nl": None,
        }
        if self.verlet._nl is not None:
            verlet_state["nl"] = (
                self.verlet._nl.edge_index.copy(),
                self.verlet._nl.shifts.copy(),
            )
        return {
            "format": 1,
            "step_count": self.step_count,
            "positions": self.system.positions.copy(),
            "velocities": self.system.velocities.copy(),
            "cell_lengths": (
                None if self.system.cell is None else self.system.cell.lengths.copy()
            ),
            "pe": float(self._pe),
            "forces": None if self._forces is None else self._forces.copy(),
            "thermostat": _capture_coupling_state(self.thermostat),
            "barostat": _capture_coupling_state(self.barostat),
            "verlet": verlet_state,
        }

    def set_state(self, state: dict) -> None:
        """Restore :meth:`get_state` output (same system size/topology)."""
        if state.get("format") != 1:
            raise ValueError(f"unknown checkpoint format {state.get('format')!r}")
        positions = np.asarray(state["positions"], dtype=np.float64)
        if positions.shape != self.system.positions.shape:
            raise ValueError(
                f"checkpoint holds {positions.shape[0]} atoms, "
                f"simulation has {self.system.n_atoms}"
            )
        self.system.positions[...] = positions
        self.system.velocities[...] = np.asarray(state["velocities"])
        if state["cell_lengths"] is not None:
            if self.system.cell is None:
                raise ValueError("checkpoint has a cell but the system does not")
            self.system.cell.lengths[...] = np.asarray(state["cell_lengths"])
        self.step_count = int(state["step_count"])
        self._pe = float(state["pe"])
        self._forces = None if state["forces"] is None else np.array(state["forces"])
        _restore_coupling_state(self.thermostat, state["thermostat"])
        _restore_coupling_state(self.barostat, state["barostat"])
        verlet_state = state["verlet"]
        self.verlet.n_builds = int(verlet_state["n_builds"])
        # Older checkpoints predate the check-cadence counter; 0 restores
        # the legacy check-every-step schedule for them.
        self.verlet._since_check = int(verlet_state.get("since_check", 0))
        ref = verlet_state["ref_positions"]
        self.verlet._ref_positions = None if ref is None else np.array(ref)
        if verlet_state["nl"] is None:
            self.verlet._nl = None
        else:
            edge_index, shifts = verlet_state["nl"]
            self.verlet._nl = NeighborList(np.array(edge_index), np.array(shifts))

    # -- guarded degradation --------------------------------------------------
    def _check_health(self, manager) -> bool:
        """Watchdog gate after a force call; True = continue the step."""
        if self.watchdog is None:
            # Fail fast: never integrate or record a non-finite force call.
            validate_energy_forces(
                self._pe, self._forces, context=f"step {self.step_count + 1}"
            )
            return True
        if self.watchdog.check(self._pe, self._forces, step=self.step_count + 1):
            return True
        # Recover policy: roll back to the newest verified checkpoint.
        if manager is None:
            raise NumericalInstabilityError(
                f"{self.watchdog.last_error}; recovery requested but no "
                "checkpointing is active (pass checkpoint_dir/checkpoint_every)"
            )
        _, snapshot = manager.load_latest()
        self.set_state(snapshot)
        self.watchdog.reset_history()
        self.watchdog.on_recovered()
        self._c_recoveries.inc()
        if self.controllers is not None:
            # The tuner must not mistake the recovery transient for the
            # effect of its own last move: freeze every controller.
            self.controllers.notify_recovery()
        return False

    def run(
        self,
        n_steps: int,
        record_every: int = 1,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir=None,
        checkpoint_manager=None,
        dump_every: Optional[int] = None,
        dump_path=None,
        dump_writer=None,
    ) -> MDResult:
        """Advance ``n_steps``; returns recorded time series.

        Parameters
        ----------
        checkpoint_every:
            Snapshot interval in steps (defaults to
            ``DEFAULT_CHECKPOINT_EVERY`` when a checkpoint sink is given).
        checkpoint_dir / checkpoint_manager:
            Where snapshots go: a directory (a
            :class:`~repro.resilience.CheckpointManager` is created with
            default retention) or an explicit manager.  An initial snapshot
            is written before the first step if the sink is empty, so the
            recover policy always has a floor to roll back to.
        dump_every / dump_path / dump_writer:
            Binary trajectory dump (``repro.traj``): a frame is snapshotted
            off the hot path whenever the *absolute* step count is a
            multiple of ``dump_every`` (defaults to ``DEFAULT_DUMP_EVERY``
            when a sink is given).  ``dump_path`` creates an async
            :class:`~repro.traj.TrajectoryWriter` owned by this call
            (closed with a footer on success, aborted crash-shaped on
            error); a resumed simulation (``step_count > 0``) appends to an
            existing file so the result is byte-identical to an
            uninterrupted run.  Pass ``dump_writer`` instead to share a
            writer across calls — the caller keeps ownership.

        Watchdog recovery rolls the records back too, so the returned time
        series never contains rolled-back steps; a binary dump writer is
        rolled back the same way (XYZ recorder files are append-only —
        rolled-back frames are re-written on replay; in-memory recorder
        frames are truncated).
        """
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        manager = checkpoint_manager
        if manager is None and checkpoint_dir is not None:
            from ..resilience import CheckpointManager

            manager = CheckpointManager(checkpoint_dir)
        if manager is not None and checkpoint_every is None:
            checkpoint_every = DEFAULT_CHECKPOINT_EVERY
        if checkpoint_every is not None and manager is None:
            raise ValueError(
                "checkpoint_every needs a checkpoint_dir or checkpoint_manager"
            )
        writer = dump_writer
        owns_writer = False
        if writer is None and dump_path is not None:
            from pathlib import Path

            from ..traj import TrajectoryWriter

            resume = self.step_count > 0 and Path(dump_path).exists()
            writer = TrajectoryWriter(
                dump_path,
                system=None if resume else self.system,
                append_from=self.step_count if resume else None,
                registry=self.obs,
            )
            owns_writer = True
        if writer is not None and dump_every is None:
            dump_every = DEFAULT_DUMP_EVERY
        if dump_every is not None and dump_every < 1:
            raise ValueError("dump_every must be >= 1")
        if dump_every is not None and writer is None:
            raise ValueError("dump_every needs a dump_path or dump_writer")

        try:
            result = self._run_loop(
                n_steps, record_every, checkpoint_every, manager,
                dump_every, writer,
            )
        except BaseException:
            # Crash-shaped teardown: drop in-flight frames, no footer —
            # exactly what a killed process leaves behind.
            if owns_writer:
                writer.abort()
            raise
        if owns_writer:
            writer.close()
        return result

    def _run_loop(
        self,
        n_steps: int,
        record_every: int,
        checkpoint_every: Optional[int],
        manager,
        dump_every: Optional[int],
        writer,
    ) -> MDResult:
        rec_steps: List[int] = []
        times, pes, kes, temps, pairs = [], [], [], [], []
        n_pairs = 0
        if self._forces is None:
            self._pe, self._forces, n_pairs = self._compute_forces()
            validate_energy_forces(self._pe, self._forces, context="initial forces")
        if manager is not None and not manager.steps():
            manager.save(self.get_state(), self.step_count)

        start = self.step_count
        target = start + n_steps
        t0 = time.perf_counter()
        while self.step_count < target:
            with span("md.step") as sp:
                with span("md.integrate"):
                    self.integrator.half_kick(self.system, self._forces)
                    self.integrator.drift(self.system)
                # Positions are wrapped by the Verlet list exactly when it
                # rebuilds (stale shift vectors + wrapping do not mix).
                self._pe, self._forces, n_pairs = self._compute_forces()
                if not self._check_health(manager):
                    # Rolled back: drop records newer than the restored step
                    # and replay from there.
                    while rec_steps and rec_steps[-1] > self.step_count:
                        rec_steps.pop()
                        times.pop(), pes.pop(), kes.pop(), temps.pop()
                        pairs.pop()
                    self._truncate_recorder()
                    if writer is not None:
                        # The binary dump rolls back with the state: replayed
                        # steps re-dump, so the file evolves as if the
                        # instability never happened.
                        writer.rollback(self.step_count)
                    continue
                with span("md.integrate"):
                    self.integrator.half_kick(self.system, self._forces)
                if self.thermostat is not None:
                    with span("md.thermostat"):
                        self.thermostat.apply(self.system, self.integrator.dt)
                if self.barostat is not None:
                    with span("md.barostat"):
                        self.barostat.apply(
                            self.system, self._forces, self.integrator.dt
                        )
                self.step_count += 1
                self._c_steps.inc()
                sp.add("pairs", n_pairs)
                t_now = self.step_count * self.integrator.dt
                if (self.step_count - start - 1) % record_every == 0:
                    rec_steps.append(self.step_count)
                    times.append(t_now)
                    pes.append(self._pe)
                    kes.append(self.system.kinetic_energy())
                    temps.append(self.system.temperature())
                    pairs.append(n_pairs)
                if self.recorder is not None:
                    self.recorder.record(self.step_count, t_now, self.system)
                if writer is not None and self.step_count % dump_every == 0:
                    # Absolute-step schedule (not run-relative): a resumed
                    # run dumps at the same steps as an uninterrupted one,
                    # which the byte-identity guarantee depends on.
                    writer.record(self.step_count, t_now, self.system, pe=self._pe)
                for cb in self._callbacks:
                    cb(self.step_count, self)
                if self.controllers is not None:
                    self.controllers.tick()
                if (
                    manager is not None
                    and (self.step_count - start) % checkpoint_every == 0
                ):
                    if writer is not None:
                        # Pin chunk boundaries to the checkpoint schedule:
                        # every frame up to this step becomes durable before
                        # the snapshot that would replay past it.
                        writer.barrier()
                    with span("md.checkpoint"):
                        manager.save(self.get_state(), self.step_count)
                    self._c_checkpoints.inc()
        wall = time.perf_counter() - t0
        return MDResult(
            times=np.asarray(times),
            potential_energies=np.asarray(pes),
            kinetic_energies=np.asarray(kes),
            temperatures=np.asarray(temps),
            pair_counts=np.asarray(pairs),
            wall_time=wall,
            n_steps=n_steps,
        )

    def _truncate_recorder(self) -> None:
        """Drop in-memory recorder frames newer than the restored step."""
        rec = self.recorder
        if rec is None or not rec.keep_in_memory:
            return
        t_now = self.step_count * self.integrator.dt
        while rec.times and rec.times[-1] > t_now:
            rec.times.pop()
            rec.frames.pop()
