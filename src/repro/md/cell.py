"""Orthorhombic periodic simulation cells.

All benchmark systems in the paper (water boxes replicated from a 192-atom
unit cell, solvated proteins, the capsid box) live in orthorhombic cells,
so the cell type is a diagonal box with independent periodic flags per
axis.  Minimum-image displacement and position wrapping are vectorized.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class Cell:
    """Axis-aligned box with per-axis periodicity.

    Parameters
    ----------
    lengths:
        Box edge lengths (Lx, Ly, Lz) in Å.
    pbc:
        Periodicity per axis; scalar bool broadcasts.
    """

    __slots__ = ("lengths", "pbc")

    def __init__(self, lengths: Sequence[float], pbc=True) -> None:
        lengths = np.asarray(lengths, dtype=np.float64)
        if lengths.shape != (3,):
            raise ValueError(f"lengths must have shape (3,), got {lengths.shape}")
        if (lengths <= 0).any():
            raise ValueError(f"box lengths must be positive, got {lengths}")
        if isinstance(pbc, (bool, np.bool_)):
            pbc = (pbc, pbc, pbc)
        self.lengths = lengths
        self.pbc = np.asarray(pbc, dtype=bool)
        if self.pbc.shape != (3,):
            raise ValueError("pbc must be a scalar or length-3 sequence")

    @classmethod
    def cubic(cls, length: float, pbc=True) -> "Cell":
        return cls((length, length, length), pbc)

    @property
    def volume(self) -> float:
        return float(np.prod(self.lengths))

    def wrap(self, positions: np.ndarray) -> np.ndarray:
        """Map positions into [0, L) along periodic axes."""
        pos = np.array(positions, dtype=np.float64, copy=True)
        for ax in range(3):
            if self.pbc[ax]:
                pos[:, ax] %= self.lengths[ax]
        return pos

    def minimum_image(self, disp: np.ndarray) -> np.ndarray:
        """Minimum-image convention displacement vectors."""
        d = np.array(disp, dtype=np.float64, copy=True)
        for ax in range(3):
            if self.pbc[ax]:
                L = self.lengths[ax]
                d[..., ax] -= L * np.round(d[..., ax] / L)
        return d

    def shift_vectors(self, shifts_frac: np.ndarray) -> np.ndarray:
        """Convert integer lattice shifts to cartesian vectors."""
        return np.asarray(shifts_frac, dtype=np.float64) * self.lengths

    def replicate(self, positions: np.ndarray, reps: Sequence[int]):
        """Tile positions ``reps`` times per axis; returns (positions, cell).

        This is how the paper builds weak/strong-scaling water systems:
        "replicated isotropically from a 192-atom unit cell" (§VII-B).
        """
        reps = np.asarray(reps, dtype=int)
        if reps.shape != (3,) or (reps < 1).any():
            raise ValueError("reps must be 3 positive integers")
        offsets = np.stack(
            np.meshgrid(
                np.arange(reps[0]), np.arange(reps[1]), np.arange(reps[2]), indexing="ij"
            ),
            axis=-1,
        ).reshape(-1, 3)
        new_pos = (positions[None, :, :] + (offsets * self.lengths)[:, None, :]).reshape(-1, 3)
        return new_pos, Cell(self.lengths * reps, tuple(self.pbc))

    def __repr__(self) -> str:
        return f"Cell(lengths={self.lengths.tolist()}, pbc={self.pbc.tolist()})"
