"""Time integrators: velocity Verlet (the standard MD propagator).

Forces are in eV/Å, masses in amu, velocities in Å/fs, time in fs; the
conversion constant lives in :mod:`repro.md.system`.  Velocity Verlet is
symplectic, so NVE energy conservation is the canonical correctness check
for any potential's forces (tested for every model in the suite).
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from .system import ACCEL_CONV, System


class VelocityVerlet:
    """Symplectic velocity-Verlet integrator.

    Usage: ``half_kick`` → ``drift`` → (recompute forces) → ``half_kick``.
    The :class:`~repro.md.simulation.Simulation` driver sequences this.
    """

    def __init__(self, dt: float) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.dt = float(dt)

    def half_kick(self, system: System, forces: np.ndarray) -> None:
        """v += (dt/2)·F/m."""
        accel = forces / system.masses[:, None] * ACCEL_CONV
        system.velocities += 0.5 * self.dt * accel

    def drift(self, system: System) -> None:
        """r += dt·v (positions are wrapped by the simulation driver)."""
        system.positions += self.dt * system.velocities

    def step(
        self,
        system: System,
        forces: np.ndarray,
        force_fn: Callable[[System], Tuple[float, np.ndarray]],
    ) -> Tuple[float, np.ndarray]:
        """One full step; returns the new (energy, forces)."""
        self.half_kick(system, forces)
        self.drift(system)
        energy, new_forces = force_fn(system)
        self.half_kick(system, new_forces)
        return energy, new_forces
