"""Molecular dynamics engine: cells, systems, neighbor lists, integrators,
thermostats, observables, and the simulation driver.

The MD loop follows the LAMMPS structure the paper builds on: velocity
Verlet with per-step force calls into a :class:`~repro.models.base.Potential`,
a skin-buffered Verlet neighbor list rebuilt on demand, and thermostats for
NVT biomolecular runs (fig. 4 uses 300 K).
"""

from .cell import Cell
from .system import System, KB_EV, ACCEL_CONV, DEFAULT_MASSES
from .neighborlist import (
    NeighborList,
    VerletList,
    neighbor_list,
    filter_by_pair_cutoffs,
    ordered_pair_counts,
    triplet_list,
)
from .integrators import VelocityVerlet
from .thermostats import LangevinThermostat, BerendsenThermostat, NoseHooverThermostat
from .barostat import BerendsenBarostat, instantaneous_pressure
from .constraints import BondConstraints
from .simulation import Simulation, MDResult
from .minimize import minimize, sample_md_frames, MinimizeResult
from .analysis import (
    StabilityReport,
    diffusion_coefficient,
    mean_squared_displacement,
    stability_report,
    unwrap_trajectory,
    velocity_autocorrelation,
)
from .observables import rmsd, kabsch_align, radial_distribution, energy_drift_per_atom, block_average
from .trajectory import TrajectoryRecorder, write_xyz_frame, read_xyz

__all__ = [
    "Cell",
    "System",
    "KB_EV",
    "ACCEL_CONV",
    "DEFAULT_MASSES",
    "NeighborList",
    "VerletList",
    "neighbor_list",
    "filter_by_pair_cutoffs",
    "ordered_pair_counts",
    "triplet_list",
    "VelocityVerlet",
    "LangevinThermostat",
    "BerendsenThermostat",
    "NoseHooverThermostat",
    "BerendsenBarostat",
    "BondConstraints",
    "instantaneous_pressure",
    "Simulation",
    "MDResult",
    "minimize",
    "sample_md_frames",
    "MinimizeResult",
    "StabilityReport",
    "diffusion_coefficient",
    "mean_squared_displacement",
    "stability_report",
    "unwrap_trajectory",
    "velocity_autocorrelation",
    "rmsd",
    "kabsch_align",
    "radial_distribution",
    "energy_drift_per_atom",
    "block_average",
    "TrajectoryRecorder",
    "write_xyz_frame",
    "read_xyz",
]
