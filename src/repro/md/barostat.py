"""Berendsen barostat: weak pressure coupling for NPT equilibration.

Biomolecular production runs are typically NPT (the AMBER benchmark
systems the paper uses were equilibrated at constant pressure).  The
Berendsen barostat rescales the box and coordinates toward a target
pressure each step — not rigorously isothermal-isobaric, but the standard
robust choice for equilibration phases.

Pressure is the virial expression P = (N·k_B·T + Σᵢ rᵢ·Fᵢ / 3) / V with
the pair-virial computed from the same forces the MD loop already has.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .system import KB_EV, System

# eV/Å³ → bar conversion.
EV_PER_A3_TO_BAR = 1.602176634e6


def instantaneous_pressure(
    system: System, forces: np.ndarray, potential=None
) -> float:
    """Virial pressure in bar (uses Σ r·F; exact for wrapped pair forces
    when positions and forces come from the same minimum-image evaluation).
    """
    if system.cell is None:
        raise ValueError("pressure needs a periodic cell")
    volume = system.cell.volume
    kinetic = system.n_atoms * KB_EV * system.temperature()
    virial = float((system.positions * forces).sum()) / 3.0
    return (kinetic + virial) / volume * EV_PER_A3_TO_BAR


class BerendsenBarostat:
    """Weak-coupling barostat: μ = (1 − dt/τ_p·κ·(P₀ − P))^(1/3).

    Parameters
    ----------
    pressure:
        Target pressure in bar.
    tau:
        Coupling time constant in fs.
    compressibility:
        Isothermal compressibility in 1/bar (water ≈ 4.5e-5).
    max_scaling:
        Per-step |μ − 1| cap for stability.
    """

    def __init__(
        self,
        pressure: float = 1.0,
        tau: float = 500.0,
        compressibility: float = 4.5e-5,
        max_scaling: float = 0.01,
    ) -> None:
        if tau <= 0:
            raise ValueError("tau must be positive")
        if compressibility <= 0:
            raise ValueError("compressibility must be positive")
        self.pressure = float(pressure)
        self.tau = float(tau)
        self.compressibility = float(compressibility)
        self.max_scaling = float(max_scaling)
        self.last_pressure: Optional[float] = None

    def apply(self, system: System, forces: np.ndarray, dt: float) -> float:
        """Rescale box + positions toward the target; returns μ."""
        p_now = instantaneous_pressure(system, forces)
        self.last_pressure = p_now
        mu3 = 1.0 - dt / self.tau * self.compressibility * (self.pressure - p_now)
        mu = float(np.cbrt(np.clip(mu3, 0.5, 2.0)))
        mu = float(np.clip(mu, 1.0 - self.max_scaling, 1.0 + self.max_scaling))
        system.positions *= mu
        system.cell.lengths *= mu
        return mu
