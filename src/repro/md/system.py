"""The :class:`System` container: atoms, species, cell, velocities.

A ``System`` is the unit every other subsystem exchanges: training frames,
MD state, domain-decomposition shards, and benchmark workloads are all
Systems.  Species are small integer type indices (0..S-1) that map
one-to-one to chemical species, exactly as in the paper's model (§VI-D
"atom types in the model correspond one-to-one with chemical species").
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from .cell import Cell

# Masses in AMU for the species used by the synthetic biomolecular systems.
DEFAULT_MASSES: Dict[str, float] = {
    "H": 1.008,
    "C": 12.011,
    "N": 14.007,
    "O": 15.999,
    "S": 32.06,
    "P": 30.974,
}

# Boltzmann constant in eV/K (energies in eV, temperatures in K).
KB_EV = 8.617333262e-5

# Conversion so that (eV / (Å·amu)) integrates with time in femtoseconds:
# acceleration [Å/fs²] = F[eV/Å] / m[amu] · ACCEL_CONV.
ACCEL_CONV = 9.64853321e-3


class System:
    """Mutable collection of atoms with an optional periodic cell.

    Parameters
    ----------
    positions:
        [N, 3] cartesian coordinates in Å.
    species:
        [N] integer type indices.
    cell:
        Periodic box, or None for open boundaries.
    species_names:
        Optional mapping index → chemical symbol (for masses and I/O).
    """

    def __init__(
        self,
        positions: np.ndarray,
        species: np.ndarray,
        cell: Optional[Cell] = None,
        velocities: Optional[np.ndarray] = None,
        masses: Optional[np.ndarray] = None,
        species_names: Optional[Sequence[str]] = None,
    ) -> None:
        self.positions = np.array(positions, dtype=np.float64)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError(f"positions must be [N, 3], got {self.positions.shape}")
        self.species = np.array(species, dtype=np.int64)
        if self.species.shape != (len(self.positions),):
            raise ValueError("species must be a length-N integer array")
        if (self.species < 0).any():
            raise ValueError("species indices must be non-negative")
        self.cell = cell
        self.species_names = list(species_names) if species_names is not None else None
        if velocities is None:
            velocities = np.zeros_like(self.positions)
        self.velocities = np.array(velocities, dtype=np.float64)
        if self.velocities.shape != self.positions.shape:
            raise ValueError("velocities must match positions shape")
        if masses is None:
            if self.species_names is not None:
                table = np.array(
                    [DEFAULT_MASSES.get(nm, 12.0) for nm in self.species_names]
                )
                masses = table[self.species]
            else:
                masses = np.ones(len(self.positions))
        self.masses = np.asarray(masses, dtype=np.float64)
        if self.masses.shape != (len(self.positions),):
            raise ValueError("masses must be a length-N array")

    # -- basic properties ---------------------------------------------------
    @property
    def n_atoms(self) -> int:
        return len(self.positions)

    @property
    def n_species(self) -> int:
        return int(self.species.max()) + 1 if len(self.species) else 0

    def copy(self) -> "System":
        return System(
            self.positions.copy(),
            self.species.copy(),
            self.cell,
            self.velocities.copy(),
            self.masses.copy(),
            self.species_names,
        )

    # -- thermodynamics --------------------------------------------------------
    def kinetic_energy(self) -> float:
        """Total kinetic energy in eV."""
        v2 = np.sum(self.velocities**2, axis=1)
        # v in Å/fs, m in amu: KE[eV] = 0.5 m v² / ACCEL_CONV
        return float(0.5 * np.sum(self.masses * v2) / ACCEL_CONV)

    def temperature(self) -> float:
        """Instantaneous temperature in K (3N degrees of freedom)."""
        dof = 3 * self.n_atoms
        if dof == 0:
            return 0.0
        return 2.0 * self.kinetic_energy() / (dof * KB_EV)

    def seed_velocities(self, temperature: float, rng: np.random.Generator) -> None:
        """Maxwell–Boltzmann velocities at ``temperature`` K, zero net momentum."""
        sigma = np.sqrt(KB_EV * temperature * ACCEL_CONV / self.masses)
        self.velocities = rng.normal(size=(self.n_atoms, 3)) * sigma[:, None]
        # Remove center-of-mass drift.
        p = (self.masses[:, None] * self.velocities).sum(axis=0)
        self.velocities -= p / self.masses.sum()

    def wrap(self) -> None:
        """Wrap positions into the periodic cell (no-op without a cell)."""
        if self.cell is not None:
            self.positions = self.cell.wrap(self.positions)

    def __repr__(self) -> str:
        return (
            f"System(n_atoms={self.n_atoms}, n_species={self.n_species}, "
            f"cell={self.cell})"
        )
