"""Observables: RMSD, RDF, temperature series, energy drift.

Fig. 4 of the paper monitors the backbone RMSD of solvated proteins and the
instantaneous temperature over nanoseconds of dynamics; these are the same
quantities computed here.  RMSD uses the standard Kabsch optimal-alignment
algorithm so rigid-body drift does not register as structural change.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def kabsch_align(P: np.ndarray, Q: np.ndarray) -> np.ndarray:
    """Optimal rotation of P onto Q (both centered); returns rotated P."""
    Pc = P - P.mean(axis=0)
    Qc = Q - Q.mean(axis=0)
    H = Pc.T @ Qc
    U, _S, Vt = np.linalg.svd(H)
    d = np.sign(np.linalg.det(Vt.T @ U.T))
    D = np.diag([1.0, 1.0, d])
    R = Vt.T @ D @ U.T
    return Pc @ R.T


def rmsd(positions: np.ndarray, reference: np.ndarray, align: bool = True) -> float:
    """Root mean squared deviation after optimal superposition (Å)."""
    P = np.asarray(positions, dtype=np.float64)
    Q = np.asarray(reference, dtype=np.float64)
    if P.shape != Q.shape:
        raise ValueError(f"shape mismatch {P.shape} vs {Q.shape}")
    if align:
        P = kabsch_align(P, Q)
        Q = Q - Q.mean(axis=0)
    return float(np.sqrt(np.mean(np.sum((P - Q) ** 2, axis=1))))


def radial_distribution(
    distances: np.ndarray,
    n_atoms: int,
    volume: float,
    r_max: float,
    n_bins: int = 100,
) -> tuple[np.ndarray, np.ndarray]:
    """g(r) from a flat array of pair distances (ordered pairs).

    Returns (bin centers, g values).  Used to choose the per-species-pair
    cutoffs the way the paper did ("chosen based on radial distribution
    functions of the HIV capsid starting structure", §VI-D).
    """
    edges = np.linspace(0.0, r_max, n_bins + 1)
    hist, _ = np.histogram(distances, bins=edges)
    centers = 0.5 * (edges[:-1] + edges[1:])
    shell_vol = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    density = n_atoms / volume
    # ordered pairs: each of the n_atoms has density·shell expected neighbors
    expected = density * shell_vol * n_atoms
    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.where(expected > 0, hist / expected, 0.0)
    return centers, g


def energy_drift_per_atom(energies: Sequence[float], n_atoms: int) -> float:
    """|E_last − E_first| / N: the NVE conservation figure of merit (eV/atom)."""
    e = np.asarray(energies, dtype=np.float64)
    if len(e) < 2:
        return 0.0
    return float(abs(e[-1] - e[0]) / n_atoms)


def block_average(series: Sequence[float], block: int) -> np.ndarray:
    """Block-averaged series (noise reduction for T(t) plots)."""
    arr = np.asarray(series, dtype=np.float64)
    n = (len(arr) // block) * block
    if n == 0:
        return arr.copy()
    return arr[:n].reshape(-1, block).mean(axis=1)
