"""Neighbor lists: O(N) cell binning, Verlet skins, per-species-pair cutoffs.

Allegro is linear-scaling in the number of *ordered* neighbor pairs, so the
neighbor list is the contract between geometry and model: ``edge_index[0]``
is the center atom i, ``edge_index[1]`` the neighbor j, and ``shifts`` the
cartesian lattice offset such that ``r_ij = pos[j] + shift - pos[i]``.
Every ordered pair within the cutoff appears exactly once.

§V-B4 of the paper prunes pairs with per-*ordered*-species-pair cutoffs
(H→C at 1.25 Å while C→H keeps 4.0 Å), cutting ordered pairs ~3× in water;
:func:`filter_by_pair_cutoffs` implements that pruning and the ablation
benchmark measures the reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .cell import Cell
from .system import System


@dataclass
class NeighborList:
    """Ordered neighbor pairs with periodic shift vectors."""

    edge_index: np.ndarray  # [2, E] int64: row 0 = center i, row 1 = neighbor j
    shifts: np.ndarray  # [E, 3] float64 cartesian shifts

    @property
    def n_edges(self) -> int:
        return self.edge_index.shape[1]

    def displacements(self, positions: np.ndarray) -> np.ndarray:
        """r_ij vectors [E, 3] for the given positions."""
        i, j = self.edge_index
        return positions[j] + self.shifts - positions[i]

    def distances(self, positions: np.ndarray) -> np.ndarray:
        return np.linalg.norm(self.displacements(positions), axis=1)

    def sorted_by_center(self) -> "NeighborList":
        """Stable sort edges by center atom (grouping for env sums)."""
        order = np.argsort(self.edge_index[0], kind="stable")
        return NeighborList(self.edge_index[:, order], self.shifts[order])


def neighbor_list(
    system: System,
    cutoff: float,
    method: str = "auto",
) -> NeighborList:
    """All ordered pairs with |r_ij| < cutoff.

    ``method``: 'auto' picks cell binning when the box supports ≥3 bins per
    periodic axis and the system is large, otherwise chunked brute force
    with the minimum-image convention.
    """
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    pos = system.positions
    n = len(pos)
    if n == 0:
        return NeighborList(np.zeros((2, 0), dtype=np.int64), np.zeros((0, 3)))
    cell = system.cell
    if method == "auto":
        if cell is None:
            method = "brute" if n < 2000 else "cells"
        else:
            nbins = np.floor(cell.lengths / cutoff).astype(int)
            ok = all((not cell.pbc[ax]) or nbins[ax] >= 3 for ax in range(3))
            method = "cells" if (ok and n >= 256) else "brute"
    if method == "cells":
        return _cell_list(pos, system.cell, cutoff)
    if method == "brute":
        return _brute_force(pos, system.cell, cutoff)
    raise ValueError(f"unknown method {method!r}")


def _brute_force(pos: np.ndarray, cell: Optional[Cell], cutoff: float) -> NeighborList:
    """Chunked O(N²) with minimum image (requires cutoff ≤ L/2 on pbc axes)."""
    n = len(pos)
    if cell is not None:
        for ax in range(3):
            if cell.pbc[ax] and cutoff > cell.lengths[ax] / 2 + 1e-9:
                raise ValueError(
                    f"brute-force minimum image needs cutoff <= L/2; "
                    f"cutoff={cutoff}, L[{ax}]={cell.lengths[ax]}"
                )
    chunk = max(1, int(4e6 // max(n, 1)))
    rows_i, rows_j, rows_s = [], [], []
    cut2 = cutoff * cutoff
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        disp = pos[None, start:stop, :] - pos[:, None, :]  # [n, c, 3]: j - i
        shift = np.zeros_like(disp)
        if cell is not None:
            for ax in range(3):
                if cell.pbc[ax]:
                    L = cell.lengths[ax]
                    s = -L * np.round(disp[..., ax] / L)
                    shift[..., ax] = s
            disp = disp + shift
        d2 = np.sum(disp * disp, axis=-1)
        ii, jj = np.nonzero(d2 < cut2)
        jj_global = jj + start
        keep = ii != jj_global
        rows_i.append(ii[keep])
        rows_j.append(jj_global[keep])
        rows_s.append(shift[ii[keep], jj[keep]])
    edge_index = np.stack(
        [np.concatenate(rows_i).astype(np.int64), np.concatenate(rows_j).astype(np.int64)]
    )
    shifts = np.concatenate(rows_s, axis=0)
    return NeighborList(edge_index, shifts)


def _cell_list(pos: np.ndarray, cell: Optional[Cell], cutoff: float) -> NeighborList:
    """O(N) binned neighbor search, fully vectorized (no Python per-atom loop)."""
    n = len(pos)
    if cell is not None:
        orig = pos
        pos = cell.wrap(pos)
        # Shifts are computed in the wrapped frame; wrap_offset converts
        # them back so r_ij = pos_orig[j] + shift - pos_orig[i] holds for
        # the caller's (possibly slightly out-of-box) positions.
        wrap_offset = pos - orig
        lengths = cell.lengths
        pbc = cell.pbc
    else:
        lo = pos.min(axis=0) - 1e-9
        pos = pos - lo
        wrap_offset = None
        lengths = pos.max(axis=0) + 1e-6
        pbc = np.zeros(3, dtype=bool)

    nbins = np.maximum(np.floor(lengths / cutoff).astype(int), 1)
    for ax in range(3):
        if pbc[ax] and nbins[ax] < 3:
            raise ValueError("cell list needs >= 3 bins per periodic axis")
    bin_size = lengths / nbins
    coords = np.minimum((pos / bin_size).astype(int), nbins - 1)
    flat = (coords[:, 0] * nbins[1] + coords[:, 1]) * nbins[2] + coords[:, 2]
    total_bins = int(np.prod(nbins))

    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]
    counts = np.bincount(sorted_flat, minlength=total_bins)
    offsets = np.concatenate([[0], np.cumsum(counts)])

    # Precompute per-bin 3D coordinates once.
    bx, by, bz = np.meshgrid(
        np.arange(nbins[0]), np.arange(nbins[1]), np.arange(nbins[2]), indexing="ij"
    )
    bin_coords = np.stack([bx.ravel(), by.ravel(), bz.ravel()], axis=1)  # [B, 3]

    cut2 = cutoff * cutoff
    all_i, all_j, all_s = [], [], []
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dz in (-1, 0, 1):
                d = np.array([dx, dy, dz])
                ncoords = bin_coords + d
                wrap_shift = np.zeros((total_bins, 3))
                valid = np.ones(total_bins, dtype=bool)
                for ax in range(3):
                    over = ncoords[:, ax] >= nbins[ax]
                    under = ncoords[:, ax] < 0
                    if pbc[ax]:
                        # Neighbor bin wraps; record the cartesian image shift.
                        wrap_shift[over, ax] = lengths[ax]
                        wrap_shift[under, ax] = -lengths[ax]
                        ncoords[over, ax] -= nbins[ax]
                        ncoords[under, ax] += nbins[ax]
                    else:
                        valid &= ~(over | under)
                nflat = (ncoords[:, 0] * nbins[1] + ncoords[:, 1]) * nbins[2] + ncoords[:, 2]
                nflat = np.where(valid, nflat, 0)

                # For every atom i: candidates are atoms in bin nflat[bin(i)].
                nb_of_atom = nflat[sorted_flat]
                cand_count = np.where(valid[sorted_flat], counts[nb_of_atom], 0)
                total = int(cand_count.sum())
                if total == 0:
                    continue
                i_rep_sorted = np.repeat(np.arange(n), cand_count)
                starts = offsets[nb_of_atom]
                cum = np.cumsum(cand_count)
                ragged = np.arange(total) - np.repeat(cum - cand_count, cand_count)
                j_sorted_idx = ragged + np.repeat(starts, cand_count)

                i_atoms = order[i_rep_sorted]
                j_atoms = order[j_sorted_idx]
                shift = (wrap_shift[sorted_flat])[i_rep_sorted]

                disp = pos[j_atoms] + shift - pos[i_atoms]
                d2 = np.sum(disp * disp, axis=1)
                keep = d2 < cut2
                if dx == 0 and dy == 0 and dz == 0:
                    keep &= i_atoms != j_atoms
                i_k, j_k = i_atoms[keep], j_atoms[keep]
                s_k = shift[keep]
                if wrap_offset is not None:
                    s_k = s_k + wrap_offset[j_k] - wrap_offset[i_k]
                all_i.append(i_k)
                all_j.append(j_k)
                all_s.append(s_k)

    if not all_i:
        return NeighborList(np.zeros((2, 0), dtype=np.int64), np.zeros((0, 3)))
    edge_index = np.stack(
        [np.concatenate(all_i).astype(np.int64), np.concatenate(all_j).astype(np.int64)]
    )
    shifts = np.concatenate(all_s, axis=0)
    return NeighborList(edge_index, shifts)


def filter_by_pair_cutoffs(
    nl: NeighborList,
    positions: np.ndarray,
    species: np.ndarray,
    cutoff_matrix: np.ndarray,
) -> NeighborList:
    """Keep edge (i→j) only if |r_ij| < cutoff_matrix[Z_i, Z_j] (§V-B4).

    The matrix is *ordered*: cutoff_matrix[H, C] may be smaller than
    cutoff_matrix[C, H].  The input list must have been built with the
    maximum entry of the matrix.
    """
    cutoff_matrix = np.asarray(cutoff_matrix)
    i, j = nl.edge_index
    rc = cutoff_matrix[species[i], species[j]]
    dist = nl.distances(positions)
    keep = dist < rc
    return NeighborList(nl.edge_index[:, keep], nl.shifts[keep])


def ordered_pair_counts(
    system: System, cutoff_matrix: np.ndarray
) -> Tuple[int, int]:
    """(pairs at max uniform cutoff, pairs with per-pair cutoffs).

    Feeds the §V-B4 ablation: the paper reports ~3× fewer ordered pairs in
    liquid water with the selected per-species-pair cutoffs.
    """
    rmax = float(np.max(cutoff_matrix))
    nl = neighbor_list(system, rmax)
    filtered = filter_by_pair_cutoffs(
        nl, system.positions, system.species, cutoff_matrix
    )
    return nl.n_edges, filtered.n_edges


class VerletList:
    """Skin-buffered neighbor list: rebuild only after atoms move enough.

    Built at ``cutoff + skin``; reused until some atom has moved more than
    skin/2 since the last build (the classic safety criterion), then
    rebuilt.  This is the same strategy LAMMPS uses between reneighboring
    steps.

    ``check_every`` thins the displacement *check* itself (LAMMPS
    ``neigh_modify every N``): the max-displacement scan is O(n_atoms)
    per step, and with a generous skin it almost never trips, so checking
    every step is wasted work.  Skipped steps reuse the list untested —
    sound only when the skin comfortably covers ``check_every`` steps of
    drift, which is exactly the coupling the ``md`` tuning target
    searches over.
    """

    def __init__(self, cutoff: float, skin: float = 0.5, check_every: int = 1):
        if skin < 0:
            raise ValueError("skin must be non-negative")
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self.cutoff = float(cutoff)
        self.skin = float(skin)
        self.check_every = int(check_every)
        self._nl: Optional[NeighborList] = None
        self._ref_positions: Optional[np.ndarray] = None
        self.n_builds = 0
        self._since_check = 0

    def get(self, system: System) -> NeighborList:
        if self._nl is not None and self.check_every > 1:
            self._since_check += 1
            if self._since_check < self.check_every:
                # Structural changes must never be skipped past.
                if (
                    self._ref_positions is not None
                    and len(self._ref_positions) == system.n_atoms
                ):
                    return self._nl
            self._since_check = 0
        if self._needs_rebuild(system):
            # Wrapping must coincide with rebuilding: stored shift vectors
            # are only valid for the positions they were computed against,
            # so positions are folded into the box exactly here (the same
            # reason LAMMPS remaps atoms at reneighboring time).
            system.wrap()
            self._nl = neighbor_list(system, self.cutoff + self.skin)
            self._ref_positions = system.positions.copy()
            self.n_builds += 1
            self._since_check = 0
        return self._nl

    def _needs_rebuild(self, system: System) -> bool:
        if self._nl is None or self._ref_positions is None:
            return True
        if len(self._ref_positions) != system.n_atoms:
            return True
        disp = system.positions - self._ref_positions
        if system.cell is not None:
            disp = system.cell.minimum_image(disp)
        max_disp = np.sqrt((disp * disp).sum(axis=1).max())
        return bool(max_disp > self.skin / 2)


def triplet_list(nl: NeighborList) -> Tuple[np.ndarray, np.ndarray]:
    """Pairs of edge indices sharing a center atom: (e1, e2) with e1 ≠ e2.

    For every center i, every ordered pair of its neighbor edges appears
    once.  This is the angular-term expansion used by the many-body
    reference potential (Stillinger–Weber-style 3-body sums).
    """
    centers = nl.edge_index[0]
    order = np.argsort(centers, kind="stable")
    sorted_centers = centers[order]
    n_edges = nl.n_edges
    if n_edges == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    counts = np.bincount(sorted_centers)
    counts = counts[counts > 0]
    group_starts = np.concatenate([[0], np.cumsum(counts)[:-1]])

    # Each edge pairs with every edge in its center group.
    per_edge_count = np.repeat(counts, counts)  # group size for each sorted edge
    per_edge_start = np.repeat(group_starts, counts)
    total = int(per_edge_count.sum())
    e1_sorted = np.repeat(np.arange(n_edges), per_edge_count)
    cum = np.cumsum(per_edge_count)
    ragged = np.arange(total) - np.repeat(cum - per_edge_count, per_edge_count)
    e2_sorted = ragged + np.repeat(per_edge_start, per_edge_count)

    e1 = order[e1_sorted]
    e2 = order[e2_sorted]
    keep = e1 != e2
    return e1[keep], e2[keep]
