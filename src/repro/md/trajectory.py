"""Trajectory I/O: extended-XYZ writing/reading and in-memory recording.

The paper measures "whole application including I/O"; the simulation driver
can stream frames to an extended-XYZ file (the lingua franca of atomistic
tools) at a configurable interval, and the benchmarks account dump time the
same way LAMMPS profiling does.

This is the *text* path — human-readable, interoperable, and lossy only up
to its fixed decimal precision.  The binary data plane lives in
:mod:`repro.traj` (chunked, checksummed, async); ``repro traj convert``
bridges the two formats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, TextIO, Union

import numpy as np

from .cell import Cell
from .system import System


class XYZFormatError(ValueError):
    """A malformed or unsupported extended-XYZ file."""


def write_xyz_frame(
    fh: TextIO,
    system: System,
    comment_fields: Optional[dict] = None,
) -> None:
    """Append one extended-XYZ frame (species, positions, velocities).

    The comment line carries a full ``Properties=`` declaration plus an
    orthorhombic ``Lattice=`` so the frame round-trips losslessly (up to
    the 8-decimal text precision) through :func:`read_xyz` and external
    tools alike.
    """
    names = system.species_names or [str(i) for i in range(system.n_species)]
    fields = dict(comment_fields or {})
    if system.cell is not None:
        L = system.cell.lengths
        fields["Lattice"] = f'"{L[0]} 0 0 0 {L[1]} 0 0 0 {L[2]}"'
    fields.setdefault("Properties", "species:S:1:pos:R:3:vel:R:3")
    comment = " ".join(f"{k}={v}" for k, v in fields.items())
    fh.write(f"{system.n_atoms}\n{comment}\n")
    for sp, (x, y, z), (vx, vy, vz) in zip(
        system.species, system.positions, system.velocities
    ):
        fh.write(
            f"{names[sp]} {x:.8f} {y:.8f} {z:.8f} "
            f"{vx:.8f} {vy:.8f} {vz:.8f}\n"
        )


def _parse_lattice(comment: str) -> Optional[Cell]:
    if "Lattice=" not in comment:
        return None
    lat = comment.split('Lattice="')[1].split('"')[0].split()
    vals = [float(v) for v in lat]
    if len(vals) != 9:
        raise XYZFormatError(
            f"Lattice= needs 9 components, got {len(vals)}: {lat}"
        )
    off_diagonal = [vals[i] for i in (1, 2, 3, 5, 6, 7)]
    if any(v != 0.0 for v in off_diagonal):
        raise XYZFormatError(
            "non-orthorhombic Lattice is not supported (off-diagonal "
            f"components {off_diagonal} are non-zero); this reader handles "
            "diagonal cells only and refuses to silently drop the tilt"
        )
    return Cell((vals[0], vals[4], vals[8]))


def read_xyz(
    path: Union[str, Path], species_names: Optional[Sequence[str]] = None
) -> List[System]:
    """Read all frames of an (extended-)XYZ file written by this module.

    ``species_names`` fixes the species index mapping; when omitted, names
    are assigned indices in order of first appearance.  Trailing blank
    lines are tolerated; a file that ends mid-frame raises
    :class:`XYZFormatError` naming the offending frame.
    """
    fixed_names = species_names is not None
    name_to_idx = (
        {nm: i for i, nm in enumerate(species_names)} if fixed_names else {}
    )
    frames: List[System] = []
    with open(path) as fh:
        while True:
            header = fh.readline()
            if not header:  # clean EOF
                break
            if not header.strip():  # tolerate trailing blank lines
                continue
            try:
                n = int(header)
            except ValueError:
                raise XYZFormatError(
                    f"frame {len(frames)}: expected an atom count, got "
                    f"{header.strip()!r}"
                ) from None
            comment = fh.readline()
            if not comment:
                raise XYZFormatError(
                    f"frame {len(frames)}: EOF after the atom count "
                    "(comment line missing)"
                )
            cell = _parse_lattice(comment)
            pos = np.zeros((n, 3))
            vel = np.zeros((n, 3))
            spec = np.zeros(n, dtype=np.int64)
            has_vel = False
            for k in range(n):
                line = fh.readline()
                if not line or not line.split():
                    raise XYZFormatError(
                        f"frame {len(frames)}: EOF mid-frame (atom {k} of "
                        f"{n} missing)"
                    )
                parts = line.split()
                name = parts[0]
                if name not in name_to_idx:
                    if fixed_names:
                        raise XYZFormatError(
                            f"frame {len(frames)}: unknown species "
                            f"{name!r} (known: {sorted(name_to_idx)})"
                        )
                    name_to_idx[name] = len(name_to_idx)
                spec[k] = name_to_idx[name]
                pos[k] = [float(v) for v in parts[1:4]]
                if len(parts) >= 7:
                    vel[k] = [float(v) for v in parts[4:7]]
                    has_vel = True
            names = (
                list(species_names)
                if fixed_names
                else [nm for nm, _ in sorted(name_to_idx.items(), key=lambda kv: kv[1])]
            )
            system = System(pos, spec, cell, species_names=names)
            if has_vel:
                system.velocities = vel
            frames.append(system)
    return frames


@dataclass
class TrajectoryRecorder:
    """In-memory and/or on-disk trajectory sink for the MD driver."""

    path: Optional[Union[str, Path]] = None
    every: int = 1
    keep_in_memory: bool = True
    frames: List[np.ndarray] = field(default_factory=list)
    times: List[float] = field(default_factory=list)
    _fh: Optional[TextIO] = None

    def open(self) -> None:
        if self.path is not None and self._fh is None:
            self._fh = open(self.path, "w")

    def record(self, step: int, time_fs: float, system: System) -> None:
        if step % self.every != 0:
            return
        if self.keep_in_memory:
            self.frames.append(system.positions.copy())
            self.times.append(time_fs)
        if self.path is not None:
            self.open()
            write_xyz_frame(self._fh, system, {"time_fs": f"{time_fs:.3f}"})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
