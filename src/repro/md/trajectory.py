"""Trajectory I/O: extended-XYZ writing/reading and in-memory recording.

The paper measures "whole application including I/O"; the simulation driver
can stream frames to an extended-XYZ file (the lingua franca of atomistic
tools) at a configurable interval, and the benchmarks account dump time the
same way LAMMPS profiling does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, TextIO, Union

import numpy as np

from .cell import Cell
from .system import System


def write_xyz_frame(
    fh: TextIO,
    system: System,
    comment_fields: Optional[dict] = None,
) -> None:
    """Append one extended-XYZ frame."""
    names = system.species_names or [str(i) for i in range(system.n_species)]
    fields = dict(comment_fields or {})
    if system.cell is not None:
        L = system.cell.lengths
        fields["Lattice"] = f'"{L[0]} 0 0 0 {L[1]} 0 0 0 {L[2]}"'
    comment = " ".join(f"{k}={v}" for k, v in fields.items())
    fh.write(f"{system.n_atoms}\n{comment}\n")
    for sp, (x, y, z) in zip(system.species, system.positions):
        fh.write(f"{names[sp]} {x:.8f} {y:.8f} {z:.8f}\n")


def read_xyz(path: Union[str, Path], species_names: Sequence[str]) -> List[System]:
    """Read all frames of an (extended-)XYZ file written by this module."""
    name_to_idx = {nm: i for i, nm in enumerate(species_names)}
    frames: List[System] = []
    with open(path) as fh:
        while True:
            header = fh.readline()
            if not header.strip():
                break
            n = int(header)
            comment = fh.readline()
            cell = None
            if "Lattice=" in comment:
                lat = comment.split('Lattice="')[1].split('"')[0].split()
                vals = [float(v) for v in lat]
                cell = Cell((vals[0], vals[4], vals[8]))
            pos = np.zeros((n, 3))
            spec = np.zeros(n, dtype=np.int64)
            for k in range(n):
                parts = fh.readline().split()
                spec[k] = name_to_idx[parts[0]]
                pos[k] = [float(v) for v in parts[1:4]]
            frames.append(System(pos, spec, cell, species_names=list(species_names)))
    return frames


@dataclass
class TrajectoryRecorder:
    """In-memory and/or on-disk trajectory sink for the MD driver."""

    path: Optional[Union[str, Path]] = None
    every: int = 1
    keep_in_memory: bool = True
    frames: List[np.ndarray] = field(default_factory=list)
    times: List[float] = field(default_factory=list)
    _fh: Optional[TextIO] = None

    def open(self) -> None:
        if self.path is not None and self._fh is None:
            self._fh = open(self.path, "w")

    def record(self, step: int, time_fs: float, system: System) -> None:
        if step % self.every != 0:
            return
        if self.keep_in_memory:
            self.frames.append(system.positions.copy())
            self.times.append(time_fs)
        if self.path is not None:
            self.open()
            write_xyz_frame(self._fh, system, {"time_fs": f"{time_fs:.3f}"})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
