"""Energy minimization: damped descent with displacement capping.

Structure preparation for MD: generated structures (grid-solvated
proteins, jittered lattices) carry strain that would otherwise be released
as heat at step 0.  The minimizer is a FIRE-flavored steepest descent —
adaptive step size, per-atom displacement cap, backtracking on energy
increase — robust for the stiff short-range forces of molecular systems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .neighborlist import VerletList
from .system import System


@dataclass
class MinimizeResult:
    energies: np.ndarray  # energy per accepted iteration
    n_iterations: int
    converged: bool
    max_force: float  # final max |F| component (eV/Å)


def minimize(
    system: System,
    potential,
    max_steps: int = 200,
    force_tol: float = 0.05,
    max_disp: float = 0.05,
    initial_step: float = 0.01,
    skin: float = 0.4,
) -> MinimizeResult:
    """Relax ``system`` in place; returns the convergence record.

    Parameters
    ----------
    force_tol:
        Converged when max |F| component falls below this (eV/Å).
    max_disp:
        Per-iteration displacement cap in Å (stability for stiff cores).
    """
    if max_steps < 1:
        raise ValueError("max_steps must be >= 1")
    verlet = VerletList(potential.cutoff, skin=skin)
    step = float(initial_step)
    energies = []
    e, forces = potential.energy_and_forces(system, verlet.get(system))
    energies.append(e)
    converged = False
    for _ in range(max_steps):
        fmax = np.abs(forces).max()
        if fmax < force_tol:
            converged = True
            break
        disp = step * forces
        norm = np.abs(disp).max()
        if norm > max_disp:
            disp *= max_disp / norm
        trial = system.positions + disp
        old = system.positions
        system.positions = trial
        e_new, f_new = potential.energy_and_forces(system, verlet.get(system))
        if e_new < e:
            e, forces = e_new, f_new
            energies.append(e)
            step *= 1.2
        else:
            # Backtrack: restore and shrink the step.
            system.positions = old
            step *= 0.5
            if step < 1e-6:
                break
    return MinimizeResult(
        energies=np.asarray(energies),
        n_iterations=len(energies) - 1,
        converged=converged,
        max_force=float(np.abs(forces).max()),
    )


def sample_md_frames(
    system: System,
    potential,
    n_frames: int,
    spacing_steps: int = 10,
    temperature: float = 300.0,
    dt: float = 0.5,
    friction: float = 0.05,
    seed: int = 0,
    equilibration_steps: int = 20,
) -> list:
    """Thermal training frames from MD with ``potential`` (AIMD-style).

    This is how MLIP training sets are actually sampled (the paper's SPICE
    frames are thermal ensembles): run thermostatted dynamics under the
    reference potential and snapshot every ``spacing_steps``.  Gaussian
    jitter, by contrast, produces unphysical stiff-bond strains.
    """
    from .simulation import Simulation
    from .thermostats import LangevinThermostat

    work = system.copy()
    work.seed_velocities(temperature, np.random.default_rng(seed))
    sim = Simulation(
        work,
        potential,
        dt=dt,
        thermostat=LangevinThermostat(temperature, friction=friction, seed=seed + 1),
    )
    if equilibration_steps:
        sim.run(equilibration_steps)
    frames = []
    for _ in range(n_frames):
        sim.run(spacing_steps)
        frames.append(work.copy())
    return frames
