"""Thermostats for NVT dynamics.

The paper's stability runs (fig. 4) hold solvated proteins at 300 K; we
provide the two standard weak-coupling choices:

* :class:`LangevinThermostat` — stochastic friction + noise (correct
  canonical sampling; used for the fig. 4 reproduction).
* :class:`BerendsenThermostat` — velocity rescaling toward the target
  (fast equilibration; not canonical, kept for equilibration phases).
"""

from __future__ import annotations


import numpy as np

from .system import ACCEL_CONV, KB_EV, System


class LangevinThermostat:
    """BAOAB-style Ornstein–Uhlenbeck velocity update.

    Applied once per step after the integrator: v ← c·v + √(1−c²)·σ·ξ with
    c = exp(−γ·dt) and σ the Maxwell–Boltzmann width per atom.
    """

    def __init__(
        self,
        temperature: float,
        friction: float = 0.01,
        seed: int = 0,
    ) -> None:
        if temperature < 0:
            raise ValueError("temperature must be non-negative")
        if friction <= 0:
            raise ValueError("friction must be positive (1/fs)")
        self.temperature = float(temperature)
        self.friction = float(friction)
        self.rng = np.random.default_rng(seed)

    def apply(self, system: System, dt: float) -> None:
        c = np.exp(-self.friction * dt)
        sigma = np.sqrt(KB_EV * self.temperature * ACCEL_CONV / system.masses)
        noise = self.rng.normal(size=system.velocities.shape) * sigma[:, None]
        system.velocities *= c
        system.velocities += np.sqrt(1.0 - c * c) * noise


class BerendsenThermostat:
    """Weak-coupling velocity rescaling: λ = √(1 + dt/τ·(T₀/T − 1))."""

    def __init__(self, temperature: float, tau: float = 100.0) -> None:
        if tau <= 0:
            raise ValueError("tau must be positive (fs)")
        self.temperature = float(temperature)
        self.tau = float(tau)

    def apply(self, system: System, dt: float) -> None:
        t_now = system.temperature()
        if t_now <= 0:
            return
        lam2 = 1.0 + dt / self.tau * (self.temperature / t_now - 1.0)
        system.velocities *= np.sqrt(max(lam2, 0.0))


class NoseHooverThermostat:
    """Single Nosé–Hoover thermostat (deterministic canonical sampling).

    The friction variable ξ follows dξ/dt = (2·KE − g·k_B·T₀)/Q with
    g = 3N degrees of freedom and coupling mass Q = g·k_B·T₀·τ²; velocities
    are damped/boosted by exp(−ξ·dt) each step.  Unlike Langevin it is
    deterministic and time-reversible (the production choice when dynamics
    must not be stochastically perturbed); unlike Berendsen it samples the
    true canonical ensemble.
    """

    def __init__(self, temperature: float, tau: float = 50.0) -> None:
        if temperature < 0:
            raise ValueError("temperature must be non-negative")
        if tau <= 0:
            raise ValueError("tau must be positive (fs)")
        self.temperature = float(temperature)
        self.tau = float(tau)
        self.xi = 0.0

    def apply(self, system: System, dt: float) -> None:
        g = 3 * system.n_atoms
        kt = KB_EV * self.temperature
        q = g * kt * self.tau**2
        ke = system.kinetic_energy()
        self.xi += dt * (2.0 * ke - g * kt) / q
        system.velocities *= np.exp(-self.xi * dt)
