"""Holonomic bond constraints: SHAKE / RATTLE.

Biomolecular production MD (including the AMBER benchmark systems the
paper measures on) constrains bonds to hydrogen so the integration step
can be 2 fs instead of 0.5 fs — a 4x throughput factor that the paper's
timesteps/s numbers inherit.  SHAKE iteratively corrects positions after
the drift to restore bond lengths; RATTLE projects the constraint
components out of velocities.
"""

from __future__ import annotations


import numpy as np

from .system import System


class BondConstraints:
    """Fixed-length bond constraints solved by SHAKE/RATTLE iterations.

    Parameters
    ----------
    pairs:
        [M, 2] atom-index pairs to constrain.
    lengths:
        [M] target bond lengths in Å.
    tol:
        Relative length tolerance for convergence.
    """

    def __init__(
        self,
        pairs: np.ndarray,
        lengths: np.ndarray,
        tol: float = 1e-8,
        max_iterations: int = 200,
    ) -> None:
        self.pairs = np.asarray(pairs, dtype=np.int64)
        self.lengths = np.asarray(lengths, dtype=np.float64)
        if self.pairs.ndim != 2 or self.pairs.shape[1] != 2:
            raise ValueError("pairs must be [M, 2]")
        if self.lengths.shape != (len(self.pairs),):
            raise ValueError("one length per pair required")
        if (self.lengths <= 0).any():
            raise ValueError("bond lengths must be positive")
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)

    @classmethod
    def rigid_water(cls, species: np.ndarray, o_index: int, h_index: int,
                    oh: float = 0.9572, hh: float = 1.5139) -> "BondConstraints":
        """Constraints for O-H-H ordered water triplets (the generator layout)."""
        species = np.asarray(species)
        pairs = []
        lengths = []
        i = 0
        n = len(species)
        while i < n:
            if (
                i + 2 < n
                and species[i] == o_index
                and species[i + 1] == h_index
                and species[i + 2] == h_index
            ):
                pairs += [[i, i + 1], [i, i + 2], [i + 1, i + 2]]
                lengths += [oh, oh, hh]
                i += 3
            else:
                i += 1
        if not pairs:
            raise ValueError("no O-H-H water triplets found")
        return cls(np.asarray(pairs), np.asarray(lengths))

    # -- SHAKE ----------------------------------------------------------------
    def apply_positions(
        self, system: System, reference_positions: np.ndarray, dt: float
    ) -> int:
        """SHAKE: correct ``system.positions`` so every bond has its target
        length, using constraint directions from ``reference_positions``
        (the pre-drift coordinates).  Velocities receive the matching
        correction (Δr/dt) so the half-kick bookkeeping stays consistent.
        Returns the iteration count.
        """
        pos = system.positions
        ref = np.asarray(reference_positions)
        inv_m = 1.0 / system.masses
        i, j = self.pairs[:, 0], self.pairs[:, 1]
        d_ref = ref[j] - ref[i]
        target2 = self.lengths**2
        for iteration in range(1, self.max_iterations + 1):
            d = pos[j] - pos[i]
            diff = (d * d).sum(axis=1) - target2
            if np.abs(diff).max() < self.tol * target2.min():
                break
            # Gauss-Seidel style vectorized update (Jacobi with damping).
            denom = 2.0 * (d * d_ref).sum(axis=1) * (inv_m[i] + inv_m[j])
            g = np.where(np.abs(denom) > 1e-12, diff / denom, 0.0) * 0.5
            corr = g[:, None] * d_ref
            np.add.at(pos, i, corr * inv_m[i, None])
            np.add.at(pos, j, -corr * inv_m[j, None])
            if dt > 0:
                np.add.at(system.velocities, i, corr * inv_m[i, None] / dt)
                np.add.at(system.velocities, j, -corr * inv_m[j, None] / dt)
        return iteration

    # -- RATTLE -----------------------------------------------------------------
    def apply_velocities(self, system: System) -> int:
        """RATTLE: remove velocity components along constrained bonds."""
        pos = system.positions
        vel = system.velocities
        inv_m = 1.0 / system.masses
        i, j = self.pairs[:, 0], self.pairs[:, 1]
        for iteration in range(1, self.max_iterations + 1):
            d = pos[j] - pos[i]
            rv = (d * (vel[j] - vel[i])).sum(axis=1)
            if np.abs(rv).max() < self.tol:
                break
            denom = (d * d).sum(axis=1) * (inv_m[i] + inv_m[j])
            k = np.where(denom > 1e-12, rv / denom, 0.0) * 0.5
            corr = k[:, None] * d
            np.add.at(vel, i, corr * inv_m[i, None])
            np.add.at(vel, j, -corr * inv_m[j, None])
        return iteration

    def max_violation(self, positions: np.ndarray) -> float:
        """Largest relative bond-length error (diagnostic)."""
        i, j = self.pairs[:, 0], self.pairs[:, 1]
        d = np.linalg.norm(positions[j] - positions[i], axis=1)
        return float(np.abs(d - self.lengths).max() / self.lengths.min())
