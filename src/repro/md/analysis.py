"""Trajectory analysis: MSD, velocity autocorrelation, diffusion, stability.

The observables a biomolecular-MD user computes from production runs (the
paper's fig. 4 uses RMSD + temperature from :mod:`observables`; these are
the standard companions: transport coefficients and drift diagnostics).
All functions operate on in-memory trajectories as produced by
:class:`~repro.md.trajectory.TrajectoryRecorder`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


def mean_squared_displacement(
    frames: Sequence[np.ndarray],
    max_lag: Optional[int] = None,
    atom_indices: Optional[np.ndarray] = None,
) -> np.ndarray:
    """MSD(τ) averaged over atoms and time origins.

    ``frames`` must be *unwrapped* positions ([T] arrays of [N, 3]); feed
    trajectories recorded without wrapping, or unwrap first with
    :func:`unwrap_trajectory`.  Returns MSD for lags 0..max_lag (Å²).

    Uses the FKT decomposition: MSD(τ) = S(τ) − 2·C(τ) per coordinate
    signal, with S(τ) from prefix sums of |x|² and C(τ) (the position
    autocorrelation summed over origins) from one FFT — O(T log T) total
    instead of the naive O(T·τ_max) sweep.  Agrees with
    :func:`_mean_squared_displacement_naive` to float round-off (pinned
    by a regression test).
    """
    traj = np.stack([np.asarray(f, dtype=np.float64) for f in frames])
    if atom_indices is not None:
        traj = traj[:, np.asarray(atom_indices)]
    T = len(traj)
    if T < 2:
        raise ValueError("need at least two frames")
    max_lag = max_lag if max_lag is not None else T - 1
    max_lag = min(max_lag, T - 1)
    X = traj.reshape(T, -1)  # [T, N*3] independent coordinate signals
    # C(τ) = Σ_t x_t·x_{t+τ}, all signals at once via zero-padded FFT.
    F = np.fft.rfft(X, n=2 * T, axis=0)
    corr = np.fft.irfft(F * np.conj(F), n=2 * T, axis=0)[: max_lag + 1]
    # S(τ) = Σ over the τ-overlap window of |x_t|² + |x_{t+τ}|².
    sq = (X**2).sum(axis=1)  # [T], |frame|² summed over atoms/dims
    css = np.concatenate([[0.0], np.cumsum(sq)])
    lags = np.arange(max_lag + 1)
    S = (css[T - lags] - css[0]) + (css[T] - css[lags])
    n_atoms = traj.shape[1]
    out = (S - 2.0 * corr.sum(axis=1).real) / ((T - lags) * n_atoms)
    out[0] = 0.0
    return out


def _mean_squared_displacement_naive(
    frames: Sequence[np.ndarray],
    max_lag: Optional[int] = None,
    atom_indices: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Reference O(T·τ_max) MSD; kept to pin the FFT path in tests."""
    traj = np.stack([np.asarray(f) for f in frames])  # [T, N, 3]
    if atom_indices is not None:
        traj = traj[:, np.asarray(atom_indices)]
    T = len(traj)
    if T < 2:
        raise ValueError("need at least two frames")
    max_lag = max_lag if max_lag is not None else T - 1
    max_lag = min(max_lag, T - 1)
    out = np.zeros(max_lag + 1)
    for lag in range(1, max_lag + 1):
        disp = traj[lag:] - traj[:-lag]
        out[lag] = float((disp**2).sum(axis=-1).mean())
    return out


def unwrap_trajectory(
    frames: Sequence[np.ndarray], box_lengths: np.ndarray
) -> list:
    """Undo periodic wrapping: make positions continuous across frames.

    Assumes no atom moves more than half a box length between consecutive
    frames (standard recording-interval requirement).
    """
    L = np.asarray(box_lengths, dtype=np.float64)
    out = [np.array(frames[0], dtype=np.float64, copy=True)]
    offsets = np.zeros_like(out[0])
    for prev, cur in zip(frames, frames[1:]):
        jump = np.asarray(cur) - np.asarray(prev)
        offsets = offsets - L * np.round(jump / L)
        out.append(np.asarray(cur, dtype=np.float64) + offsets)
    return out


def diffusion_coefficient(
    msd: np.ndarray,
    dt_between_frames_fs: float,
    fit_fraction: tuple[float, float] = (0.3, 0.9),
) -> float:
    """Einstein relation: D = slope(MSD)/6, returned in Å²/fs.

    Fits the linear regime (by default lags 30–90% of the window, skipping
    ballistic onset and noisy tail).
    """
    n = len(msd)
    if n < 4:
        raise ValueError("MSD too short to fit")
    lo = max(1, int(fit_fraction[0] * n))
    hi = max(lo + 2, int(fit_fraction[1] * n))
    lags = np.arange(lo, hi) * dt_between_frames_fs
    slope = np.polyfit(lags, msd[lo:hi], 1)[0]
    return float(slope / 6.0)


def velocity_autocorrelation(
    velocities: Sequence[np.ndarray], max_lag: Optional[int] = None
) -> np.ndarray:
    """Normalized VACF(τ) = ⟨v(0)·v(τ)⟩ / ⟨v²⟩ over atoms and origins."""
    v = np.stack([np.asarray(x) for x in velocities])  # [T, N, 3]
    T = len(v)
    if T < 2:
        raise ValueError("need at least two frames")
    max_lag = min(max_lag if max_lag is not None else T - 1, T - 1)
    norm = float((v * v).sum(axis=-1).mean())
    out = np.zeros(max_lag + 1)
    out[0] = 1.0
    for lag in range(1, max_lag + 1):
        dot = (v[:-lag] * v[lag:]).sum(axis=-1).mean()
        out[lag] = float(dot) / norm
    return out


@dataclass
class StabilityReport:
    """Summary of an MD run's health (the fig. 4 acceptance criteria)."""

    mean_temperature: float
    temperature_drift: float  # K per recorded step, linear fit
    energy_drift_per_atom: float  # eV/atom over the run (NVE figure)
    max_displacement: float  # Å, max per-atom move over the run
    exploded: bool

    def __str__(self) -> str:
        status = "UNSTABLE" if self.exploded else "stable"
        return (
            f"[{status}] <T> = {self.mean_temperature:.0f} K "
            f"(drift {self.temperature_drift:+.2f} K/step), "
            f"|dE|/N = {self.energy_drift_per_atom:.2e} eV, "
            f"max disp = {self.max_displacement:.2f} Å"
        )


def stability_report(
    result,
    frames: Optional[Sequence[np.ndarray]] = None,
    explosion_temperature: float = 5000.0,
) -> StabilityReport:
    """Health summary from an :class:`~repro.md.simulation.MDResult`."""
    temps = np.asarray(result.temperatures, dtype=np.float64)
    drift = float(np.polyfit(np.arange(len(temps)), temps, 1)[0]) if len(temps) > 1 else 0.0
    e = np.asarray(result.total_energies, dtype=np.float64)
    n_atoms = None
    max_disp = 0.0
    if frames is not None and len(frames) > 1:
        first, last = np.asarray(frames[0]), np.asarray(frames[-1])
        n_atoms = len(first)
        max_disp = float(np.linalg.norm(last - first, axis=1).max())
    if n_atoms is None:
        n_atoms = 1
    e_drift = abs(e[-1] - e[0]) / n_atoms if len(e) > 1 else 0.0
    exploded = bool(
        (temps > explosion_temperature).any() or not np.isfinite(e).all()
    )
    return StabilityReport(
        mean_temperature=float(temps.mean()) if len(temps) else 0.0,
        temperature_drift=drift,
        energy_drift_per_atom=float(e_drift),
        max_displacement=max_disp,
        exploded=exploded,
    )
