"""Radial bases: trainable Bessel functions and the polynomial cutoff.

The interatomic distance enters Allegro through a trainable
per-ordered-species-pair basis of 8 Bessel functions multiplied by a
polynomial envelope (paper §VI-D).  The envelope also multiplies the
per-pair energies so the potential goes smoothly to zero at the cutoff —
required for energy conservation in MD.

:class:`PerPairBesselBasis` implements the per-*ordered*-species-pair
version with the per-pair cutoffs of §V-B4 (an H→C pair may use 1.25 Å
while C→H keeps 4.0 Å).
"""

from __future__ import annotations

import math

import numpy as np

from .. import autodiff as ad
from .module import Module


class PolynomialCutoff:
    """Smooth envelope u(x), x = r/r_c, with p−1 vanishing derivatives at 1.

    u(x) = 1 − ((p+1)(p+2)/2)·xᵖ + p(p+2)·xᵖ⁺¹ − (p(p+1)/2)·xᵖ⁺²; 0 for x ≥ 1.
    """

    def __init__(self, p: int = 6) -> None:
        if p < 2:
            raise ValueError("p must be >= 2")
        self.p = p
        self._c0 = (p + 1) * (p + 2) / 2.0
        self._c1 = p * (p + 2)
        self._c2 = p * (p + 1) / 2.0

    def __call__(self, x):
        x = ad.astensor(x)
        p = self.p
        poly = 1.0 - self._c0 * x**p + self._c1 * x ** (p + 1) - self._c2 * x ** (p + 2)
        # Recorded mask op (not a baked array) so compiled replay re-evaluates
        # the inside-cutoff condition on rebound distances.
        inside = ad.less(x, 1.0)
        return ad.where(inside, poly, ad.Tensor(np.zeros_like(poly.data)))

    def numpy(self, x: np.ndarray) -> np.ndarray:
        p = self.p
        poly = 1.0 - self._c0 * x**p + self._c1 * x ** (p + 1) - self._c2 * x ** (p + 2)
        return np.where(x < 1.0, poly, 0.0)


class BesselBasis(Module):
    """b_n(r) = √(2/r_c) · sin(ω_n · r/r_c) / r with trainable ω_n.

    ω_n initialized at nπ (n = 1..num_basis).  Output is multiplied by the
    polynomial cutoff envelope; everything is smooth and differentiable so
    forces are exact.
    """

    def __init__(
        self,
        r_cut: float,
        num_basis: int = 8,
        trainable: bool = True,
        cutoff_p: int = 6,
    ) -> None:
        if r_cut <= 0:
            raise ValueError("r_cut must be positive")
        self.r_cut = float(r_cut)
        self.num_basis = int(num_basis)
        freqs = np.pi * np.arange(1, num_basis + 1, dtype=np.float64)
        self.frequencies = ad.Tensor(freqs, requires_grad=trainable, name="bessel.freqs")
        self.envelope = PolynomialCutoff(cutoff_p)
        self._prefactor = math.sqrt(2.0 / r_cut)

    def __call__(self, r):
        """r: [E] distances → [E, num_basis] basis values (envelope applied)."""
        r = ad.astensor(r)
        x = r * (1.0 / self.r_cut)
        arg = x.expand_dims(-1) * self.frequencies
        # sin(ω x)/x is bounded near 0; divide by x with safety epsilon.
        basis = ad.sin(arg) / (x.expand_dims(-1) + 1e-12)
        u = self.envelope(x).expand_dims(-1)
        return basis * u * (self._prefactor / self.r_cut)


class PerPairBesselBasis(Module):
    """Bessel basis with per-ordered-species-pair frequencies and cutoffs.

    Parameters
    ----------
    cutoffs:
        [S, S] matrix of ordered cutoffs r_c(Z_i → Z_j); asymmetric entries
        are allowed and are the point of §V-B4.
    num_basis:
        Basis size per pair (8 in the paper).

    Call with distances ``r`` [E] and the ordered species-pair index
    ``pair_idx`` [E] (= Z_i·S + Z_j); returns [E, num_basis].
    """

    def __init__(self, cutoffs: np.ndarray, num_basis: int = 8, cutoff_p: int = 6):
        cutoffs = np.asarray(cutoffs, dtype=np.float64)
        if cutoffs.ndim != 2 or cutoffs.shape[0] != cutoffs.shape[1]:
            raise ValueError("cutoffs must be a square [S, S] matrix")
        if (cutoffs <= 0).any():
            raise ValueError("all cutoffs must be positive")
        self.num_species = cutoffs.shape[0]
        self.cutoffs = cutoffs
        self.num_basis = int(num_basis)
        n_pairs = self.num_species**2
        freqs = np.tile(np.pi * np.arange(1, num_basis + 1, dtype=np.float64), (n_pairs, 1))
        self.frequencies = ad.Tensor(freqs, requires_grad=True, name="bessel.pair_freqs")
        self.envelope = PolynomialCutoff(cutoff_p)
        self._flat_cutoffs = cutoffs.reshape(-1)

    def __call__(self, r, pair_idx: np.ndarray):
        r = ad.astensor(r)
        pair_idx = np.asarray(pair_idx)
        # Traced gathers (not numpy fancy indexing) so a captured plan
        # follows the current pair indices when the buffers are rebound.
        rc = ad.gather(ad.Tensor(self._flat_cutoffs), pair_idx)  # [E]
        x = r / rc
        freqs = ad.gather(self.frequencies, pair_idx)  # [E, B]
        arg = x.expand_dims(-1) * freqs
        basis = ad.sin(arg) / (x.expand_dims(-1) + 1e-12)
        u = self.envelope(x).expand_dims(-1)
        pref = ad.sqrt(2.0 / rc) / rc
        return basis * u * pref.expand_dims(-1)

    def envelope_of(self, r, pair_idx: np.ndarray):
        """Just the per-pair envelope u(r / r_c(pair)); multiplies E_ij."""
        r = ad.astensor(r)
        rc = ad.gather(ad.Tensor(self._flat_cutoffs), np.asarray(pair_idx))
        return self.envelope(r / rc)
