"""Neural-network building blocks on the autodiff substrate.

Mirrors the pieces the Allegro training stack takes from PyTorch: linear
layers and MLPs with e3nn-style forward normalization (weights and
activations stay O(1), the property that makes TF32/F32 arithmetic safe,
paper §V-B3), trainable Bessel radial bases with polynomial cutoff
envelopes (§VI-D), Adam, exponential moving averages of weights, and a
force-matching training loop.
"""

from .module import Module, ParameterList
from .mlp import Linear, MLP
from .radial import BesselBasis, PolynomialCutoff, PerPairBesselBasis
from .optim import SGD, Adam, ExponentialMovingAverage
from .loss import mse_force_loss, weighted_energy_force_loss, mae, rmse
from .training import Trainer, TrainConfig, EpochStats

__all__ = [
    "Module",
    "ParameterList",
    "Linear",
    "MLP",
    "BesselBasis",
    "PolynomialCutoff",
    "PerPairBesselBasis",
    "SGD",
    "Adam",
    "ExponentialMovingAverage",
    "mse_force_loss",
    "weighted_energy_force_loss",
    "mae",
    "rmse",
    "Trainer",
    "TrainConfig",
    "EpochStats",
]
