"""Linear layers and MLPs with e3nn-style forward normalization.

The paper's training discipline (§V-B3) keeps every weight and activation
at O(1) magnitude so that float32/TF32 arithmetic loses nothing.  We follow
the e3nn/Allegro convention: weights are drawn from a unit-variance uniform
distribution (§VI-D: "initialized according to a uniform distribution of
unit variance") and the forward pass divides by √fan_in, so unit-variance
inputs produce unit-variance pre-activations at init.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

import numpy as np

from .. import autodiff as ad
from .module import Module

_SQRT3 = math.sqrt(3.0)


def uniform_unit_variance(rng: np.random.Generator, shape) -> np.ndarray:
    """U(-√3, √3): zero mean, unit variance."""
    return rng.uniform(-_SQRT3, _SQRT3, size=shape)


class Linear(Module):
    """y = x @ W / √fan_in (+ b); W entries unit variance at init."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = ad.Tensor(
            uniform_unit_variance(rng, (in_features, out_features)),
            requires_grad=True,
            name="linear.weight",
        )
        self.bias = (
            ad.Tensor(np.zeros(out_features), requires_grad=True, name="linear.bias")
            if bias
            else None
        )
        self._norm = 1.0 / math.sqrt(in_features)

    def __call__(self, x):
        out = ad.matmul(ad.astensor(x), self.weight) * self._norm
        if self.bias is not None:
            out = out + self.bias
        return out


_NONLINEARITIES: dict[str, Callable] = {
    "silu": ad.silu,
    "tanh": ad.tanh,
    "relu": ad.relu,
    "sigmoid": ad.sigmoid,
    "identity": lambda x: x,
}

# Second-moment correction so post-activation variance stays ~1 for
# standard-normal pre-activations (e3nn's `normalize2mom`).
_ACT_GAIN: dict[str, float] = {}


def _act_gain(name: str) -> float:
    if name not in _ACT_GAIN:
        fn = _NONLINEARITIES[name]
        x = np.linspace(-6, 6, 200001)
        w = np.exp(-0.5 * x * x) / math.sqrt(2 * math.pi)
        with ad.no_grad():
            y = fn(ad.Tensor(x)).data
        second = float(np.trapezoid(y * y * w, x))
        _ACT_GAIN[name] = 1.0 / math.sqrt(second) if second > 0 else 1.0
    return _ACT_GAIN[name]


class MLP(Module):
    """Dense network: Linear → act → … → Linear (no final nonlinearity).

    Parameters
    ----------
    dims:
        Layer widths including input and output, e.g. ``[16, 128, 256, 64]``.
    nonlinearity:
        Name of the hidden activation ('silu' throughout Allegro); scaled by
        a second-moment gain so activations keep unit variance.
    bias:
        Biases on every layer (Allegro's latent MLPs use none).
    """

    def __init__(
        self,
        dims: Sequence[int],
        nonlinearity: str = "silu",
        bias: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        rng = rng or np.random.default_rng()
        if nonlinearity not in _NONLINEARITIES:
            raise ValueError(f"unknown nonlinearity {nonlinearity!r}")
        self.dims = tuple(int(d) for d in dims)
        self.layers = [
            Linear(dims[i], dims[i + 1], bias=bias, rng=rng)
            for i in range(len(dims) - 1)
        ]
        self.nonlinearity = nonlinearity
        self._act = _NONLINEARITIES[nonlinearity]
        self._gain = _act_gain(nonlinearity)

    def __call__(self, x):
        h = ad.astensor(x)
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            h = layer(h)
            if i != last:
                h = self._act(h) * self._gain
        return h

    @property
    def in_features(self) -> int:
        return self.dims[0]

    @property
    def out_features(self) -> int:
        return self.dims[-1]
