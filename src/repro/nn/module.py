"""Minimal module system: parameter discovery, state dicts, train/eval mode.

A :class:`Module` owns :class:`~repro.autodiff.Tensor` parameters directly
as attributes and/or child modules; :meth:`Module.parameters` walks the tree.
State dicts are flat ``{dotted.path: ndarray}`` maps so models can be saved
with ``np.savez`` and restored exactly (used by EMA swaps and the precision
ablation, which must evaluate the *same* trained weights under different
compute policies).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from .. import autodiff as ad


class ParameterList:
    """Explicit container for a homogeneous list of parameters/modules."""

    def __init__(self, items=()):
        self.items = list(items)

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, i):
        return self.items[i]

    def append(self, item) -> None:
        self.items.append(item)


class Module:
    """Base class with recursive parameter discovery.

    Subclasses assign parameters (``ad.Tensor`` with ``requires_grad``),
    child Modules, or :class:`ParameterList`s as attributes; no registration
    calls are needed.
    """

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, ad.Tensor]]:
        for name, value in vars(self).items():
            path = f"{prefix}{name}"
            yield from _walk(path, value)

    def parameters(self) -> List[ad.Tensor]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total scalar parameter count (the paper's model has 7.85M)."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def freezable_modules(self) -> List:
        """All reachable objects exposing ``freeze()``/``unfreeze()``.

        Recursively walks the same attribute structures as parameter
        discovery (child modules, ParameterLists, containers), so tensor
        products are found wherever they are stored — not just under a
        conventionally named attribute.
        """
        out: List = []
        seen: set = set()

        def visit(value) -> None:
            if id(value) in seen:
                return
            seen.add(id(value))
            if callable(getattr(value, "freeze", None)) and callable(
                getattr(value, "unfreeze", None)
            ):
                out.append(value)
            if isinstance(value, Module):
                for item in vars(value).values():
                    visit(item)
            elif isinstance(value, (ParameterList, list, tuple)):
                for item in value:
                    visit(item)
            elif isinstance(value, dict):
                for item in value.values():
                    visit(item)

        visit(self)
        return out

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise KeyError(f"state dict mismatch: missing={missing}, extra={extra}")
        for name, p in own.items():
            src = np.asarray(state[name])
            if src.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {src.shape} vs {p.data.shape}"
                )
            p.data = src.astype(p.data.dtype, copy=True)


def _walk(path: str, value) -> Iterator[Tuple[str, ad.Tensor]]:
    if isinstance(value, ad.Tensor):
        if value.requires_grad:
            yield path, value
    elif isinstance(value, Module):
        yield from value.named_parameters(prefix=path + ".")
    elif isinstance(value, ParameterList):
        for i, item in enumerate(value):
            yield from _walk(f"{path}.{i}", item)
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            if isinstance(item, (Module, ad.Tensor, ParameterList)):
                yield from _walk(f"{path}.{i}", item)
    elif isinstance(value, dict):
        for k, item in value.items():
            if isinstance(item, (Module, ad.Tensor, ParameterList)):
                yield from _walk(f"{path}.{k}", item)
    elif hasattr(value, "parameters") and hasattr(value, "weights"):
        # Tensor-product objects expose .parameters() without being Modules.
        for i, p in enumerate(value.parameters()):
            yield f"{path}.p{i}", p
