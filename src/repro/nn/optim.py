"""Optimizers and the exponential moving average used for evaluation.

The paper trains with Adam (default PyTorch settings, lr 1e-3, batch 16)
and keeps an EMA of the weights with decay 0.99 for validation and the
final model (§VI-D).

Optimizers and the EMA expose ``state_dict()``/``load_state_dict()``
round-trips so a training run can be checkpointed and resumed *bitwise*:
the Adam moment vectors and step counter (the bias correction depends on
``t``) and the EMA shadow weights are exactly the state a restart cannot
reconstruct from the model parameters alone.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .. import autodiff as ad


def _load_arrays(target: List[np.ndarray], source, what: str) -> None:
    """Copy a saved list of arrays into ``target`` in place, validating."""
    source = list(source)
    if len(source) != len(target):
        raise ValueError(
            f"{what}: state holds {len(source)} arrays, optimizer has {len(target)}"
        )
    for k, (dst, src) in enumerate(zip(target, source)):
        src = np.asarray(src)
        if src.shape != dst.shape:
            raise ValueError(
                f"{what}[{k}]: shape mismatch {src.shape} vs {dst.shape}"
            )
        dst[...] = src


class SGD:
    """Plain SGD with optional momentum."""

    def __init__(self, params: Sequence[ad.Tensor], lr: float = 1e-2, momentum: float = 0.0):
        self.params = list(params)
        self.lr = float(lr)
        self.momentum = float(momentum)
        self._vel = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._vel):
            if p.grad is None:
                continue
            g = p.grad.data
            if self.momentum:
                v *= self.momentum
                v += g
                p.data -= self.lr * v
            else:
                p.data -= self.lr * g

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def state_dict(self) -> Dict:
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "vel": [v.copy() for v in self._vel],
        }

    def load_state_dict(self, state: Dict) -> None:
        self.lr = float(state["lr"])
        self.momentum = float(state["momentum"])
        _load_arrays(self._vel, state["vel"], "SGD velocity")


class Adam:
    """Adam (Kingma & Ba) with PyTorch default hyperparameters."""

    def __init__(
        self,
        params: Sequence[ad.Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        self.params = list(params)
        self.lr = float(lr)
        self.beta1, self.beta2 = betas
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self.t
        bias2 = 1.0 - b2**self.t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad.data
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def set_lr(self, lr: float) -> None:
        """LR schedule hook (the paper halves lr after 119 epochs)."""
        self.lr = float(lr)

    def state_dict(self) -> Dict:
        """Everything a bitwise resume needs: t, both moments, and lr."""
        return {
            "lr": self.lr,
            "betas": (self.beta1, self.beta2),
            "eps": self.eps,
            "weight_decay": self.weight_decay,
            "t": self.t,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: Dict) -> None:
        self.lr = float(state["lr"])
        self.beta1, self.beta2 = (float(b) for b in state["betas"])
        self.eps = float(state["eps"])
        self.weight_decay = float(state["weight_decay"])
        self.t = int(state["t"])
        _load_arrays(self._m, state["m"], "Adam first moment")
        _load_arrays(self._v, state["v"], "Adam second moment")


class ExponentialMovingAverage:
    """EMA of parameter values; swap in for evaluation, swap out to resume.

    decay 0.99 as in the paper.  ``swap()`` exchanges live weights and the
    average in place, so the same call restores training weights.
    """

    def __init__(self, params: Sequence[ad.Tensor], decay: float = 0.99):
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        self.params = list(params)
        self.decay = float(decay)
        self.shadow = [p.data.copy() for p in self.params]

    def update(self) -> None:
        d = self.decay
        for s, p in zip(self.shadow, self.params):
            s *= d
            s += (1 - d) * p.data

    def swap(self) -> None:
        for s, p in zip(self.shadow, self.params):
            tmp = p.data.copy()
            p.data[...] = s
            s[...] = tmp

    class _SwapContext:
        def __init__(self, ema: "ExponentialMovingAverage"):
            self.ema = ema

        def __enter__(self):
            self.ema.swap()
            return self.ema

        def __exit__(self, *exc):
            self.ema.swap()
            return False

    def average_weights(self) -> "_SwapContext":
        """Context manager: evaluate with the EMA weights, then restore."""
        return ExponentialMovingAverage._SwapContext(self)

    def state_dict(self) -> Dict:
        return {"decay": self.decay, "shadow": [s.copy() for s in self.shadow]}

    def load_state_dict(self, state: Dict) -> None:
        self.decay = float(state["decay"])
        _load_arrays(self.shadow, state["shadow"], "EMA shadow")
