"""Force-matching training loop (paper §VI-D).

The paper trains Allegro with a force-only MSE loss, Adam (lr 1e-3, batch
16, default settings), force targets normalized by the maximum absolute
force component of the training set, an EMA of the weights (decay 0.99)
for evaluation, epoch-wise reshuffling, and a step-down LR schedule.  The
:class:`Trainer` reproduces that loop on any :class:`~repro.models.base.Potential`.

Force loss gradients require double backprop: forces are −∂E/∂r, so
∂loss/∂w goes through the gradient graph — ``ad.grad(..., create_graph=True)``
provides exactly that.

Batches concatenate structures along the atom axis with per-frame neighbor
lists (precomputed once) offset into the combined index space; one backward
pass produces every force in the batch.

Training at paper scale is a multi-day job, so the loop carries the same
failure model as the MD drivers (``repro.resilience``):

* **Resumable** — ``fit(checkpoint_every=, checkpoint_dir=)`` snapshots the
  complete training state (parameters, Adam moments + step counter, EMA
  shadow, epoch cursor, shuffle RNG state, force scale, history) through
  :class:`~repro.resilience.CheckpointManager`; a run killed at an epoch
  boundary and picked up via :meth:`Trainer.resume` reproduces the
  uninterrupted run's parameters and :class:`EpochStats` **bitwise**.
* **Guarded** — non-finite losses/gradients fail fast before the optimizer
  sees them; an optional :class:`~repro.resilience.TrainingWatchdog` adds
  loss-spike detection and a ``recover`` policy that rolls back to the
  last good checkpoint, backs off the learning rate, and replays with a
  reshuffled batch order.
* **Validated** — the training set is screened by
  :func:`repro.data.validate.validate_frames` before the first gradient
  step (``TrainConfig.data_policy``: reject / quarantine / off).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .. import autodiff as ad
from ..md.neighborlist import NeighborList
from ..md.system import System
from ..obs import Registry, get_tracer, span
from ..resilience.checkpoint import CheckpointManager
from ..resilience.faults import TRAIN_STEP_FAILURE, InjectedFault
from ..resilience.guards import NumericalInstabilityError
from .loss import mae, rmse
from .optim import Adam, ExponentialMovingAverage


class _RollbackNeeded(Exception):
    """Internal: the watchdog tripped under the recover policy."""


@dataclass
class LabeledFrame:
    """One training structure with reference labels."""

    system: System
    energy: float
    forces: np.ndarray

    def __post_init__(self) -> None:
        self.forces = np.asarray(self.forces, dtype=np.float64)
        if self.forces.shape != self.system.positions.shape:
            raise ValueError("forces must match positions shape")
        if not np.isfinite(self.energy):
            raise ValueError(
                f"LabeledFrame energy must be finite, got {self.energy!r}"
            )
        if not np.isfinite(self.forces).all():
            bad = int(np.count_nonzero(~np.isfinite(self.forces)))
            raise ValueError(
                f"LabeledFrame forces must be finite "
                f"({bad} non-finite component(s))"
            )


@dataclass
class TrainConfig:
    lr: float = 1e-3
    batch_size: int = 16
    max_epochs: int = 10
    force_weight: float = 1.0
    energy_weight: float = 0.0
    ema_decay: float = 0.99
    #: map epoch -> lr; None keeps lr constant (paper: halve after 119 epochs)
    lr_schedule: Optional[Callable[[int], float]] = None
    shuffle: bool = True
    seed: int = 0
    #: Initialize per-species energy shifts μ_Z by least squares over the
    #: training energies and scales σ_Z by the force RMS — the standard
    #: MLIP normalization that keeps the regression target O(1) (§V-B3).
    init_reference_energies: bool = True
    #: Clip the global gradient L2 norm to this value (None disables).
    grad_clip_norm: Optional[float] = None
    #: Dataset screening policy: "reject" raises on hard defects
    #: (non-finite labels, malformed shapes/species), "quarantine" also
    #: drops duplicates and σ-outliers, "off" skips validation.
    data_policy: str = "reject"
    #: Robust z-score threshold for the σ-outlier screening.
    outlier_sigma: float = 6.0
    #: Multiply the learning rate by this after each watchdog rollback.
    rollback_lr_factor: float = 0.5
    #: Transient step failures (``train.step_failure`` channel) are
    #: retried this many times — a retry recomputes the identical batch,
    #: so recovery is bitwise.
    max_step_retries: int = 2
    #: After retries are exhausted, skip the batch (counted) instead of
    #: re-raising the failure.
    skip_failed_batches: bool = False


@dataclass
class EpochStats:
    epoch: int
    train_loss: float
    val_force_mae: Optional[float] = None
    val_force_rmse: Optional[float] = None


class _Batch:
    """Concatenated structures with a merged neighbor list."""

    __slots__ = (
        "positions",
        "species",
        "nl",
        "batch_index",
        "n_structures",
        "energies",
        "forces",
        "n_atoms_per",
    )

    def __init__(self, frames: Sequence[LabeledFrame], nls: Sequence[NeighborList]):
        pos, spec, bidx, edges, shifts = [], [], [], [], []
        offset = 0
        for k, (f, nl) in enumerate(zip(frames, nls)):
            n = f.system.n_atoms
            pos.append(f.system.positions)
            spec.append(f.system.species)
            bidx.append(np.full(n, k))
            edges.append(nl.edge_index + offset)
            shifts.append(nl.shifts)
            offset += n
        self.positions = np.concatenate(pos, axis=0)
        self.species = np.concatenate(spec)
        self.batch_index = np.concatenate(bidx).astype(np.int64)
        self.nl = NeighborList(
            np.concatenate(edges, axis=1), np.concatenate(shifts, axis=0)
        )
        self.n_structures = len(frames)
        self.energies = np.array([f.energy for f in frames])
        self.forces = np.concatenate([f.forces for f in frames], axis=0)
        self.n_atoms_per = np.array([f.system.n_atoms for f in frames])


class Trainer:
    """Force-matching trainer for any Potential."""

    #: Checkpoint payload version (bumped on layout changes).
    STATE_FORMAT = "trainer-v1"

    def __init__(
        self,
        model,
        train_frames: Sequence[LabeledFrame],
        val_frames: Sequence[LabeledFrame] = (),
        config: Optional[TrainConfig] = None,
        watchdog=None,
        fault_plan=None,
        registry: Optional[Registry] = None,
    ) -> None:
        self.model = model
        self.config = config or TrainConfig()
        self.train_frames = list(train_frames)
        self.val_frames = list(val_frames)
        self.watchdog = watchdog
        self.fault_plan = fault_plan
        if not self.train_frames:
            raise ValueError("need at least one training frame")
        # Resilience counters live in the shared observability registry
        # (named ``train.<event>``); the legacy "n_*" keys are preserved as
        # the view exposed by stats()/state_dict().
        self.obs = registry if registry is not None else Registry()
        self._counters = {
            key: self.obs.counter("train." + key[2:])
            for key in (
                "n_rollbacks",
                "n_skipped_batches",
                "n_clip_events",
                "n_step_failures",
                "n_step_retries",
                "n_checkpoints",
                "n_quarantined_frames",
            )
        }
        self.dataset_report = None
        self._validate_dataset()

        self._train_nls = [self._neighbors(f.system) for f in self.train_frames]
        self._val_nls = [self._neighbors(f.system) for f in self.val_frames]

        # Paper: "normalize the force targets by the maximum absolute force
        # component computed over the training set".
        self.force_scale = max(
            float(np.abs(f.forces).max()) for f in self.train_frames
        )
        if self.force_scale == 0.0:
            self.force_scale = 1.0

        if self.config.init_reference_energies:
            self._init_scale_shift()

        self.optimizer = Adam(self.model.parameters(), lr=self.config.lr)
        self.ema = ExponentialMovingAverage(
            self.model.parameters(), decay=self.config.ema_decay
        )
        self.history: List[EpochStats] = []
        self._rng = np.random.default_rng(self.config.seed)
        #: next epoch index; advances across fit() calls and resume().
        self._epoch_cursor = 0
        #: persistent LR multiplier, halved on each watchdog rollback.
        self._lr_scale = 1.0

    # -- dataset screening ----------------------------------------------------
    def _validate_dataset(self) -> None:
        """Screen train/val frames under ``config.data_policy``.

        Runs *before* neighbor lists and the force-scale normalization —
        one corrupted |F| would otherwise silently poison the scale every
        clean frame is divided by.
        """
        policy = self.config.data_policy
        if policy not in ("reject", "quarantine", "off"):
            raise ValueError(
                f"unknown data_policy {policy!r} (reject|quarantine|off)"
            )
        if policy == "off":
            return
        from ..data.validate import DatasetValidationError, validate_frames

        sigma = self.config.outlier_sigma
        report = validate_frames(
            self.train_frames, energy_sigma=sigma, force_sigma=sigma
        )
        self.dataset_report = report
        if policy == "reject":
            if report.hard_issues:
                raise DatasetValidationError(
                    f"training set rejected: {report.summary()}"
                )
        else:  # quarantine
            drop = set(report.flagged_indices(include_soft=True))
            if drop:
                self._counters["n_quarantined_frames"].inc(len(drop))
                self.train_frames = [
                    f for k, f in enumerate(self.train_frames) if k not in drop
                ]
                if not self.train_frames:
                    raise DatasetValidationError(
                        f"every training frame quarantined: {report.summary()}"
                    )
        # Validation frames: hard defects only — an outlier is a legitimate
        # thing to *evaluate* on, a NaN label is not.
        if self.val_frames:
            val_report = validate_frames(
                self.val_frames,
                energy_sigma=None,
                force_sigma=None,
                check_duplicates=False,
            )
            if val_report.hard_issues:
                if policy == "reject":
                    raise DatasetValidationError(
                        f"validation set rejected: {val_report.summary()}"
                    )
                drop = set(val_report.flagged_indices())
                self._counters["n_quarantined_frames"].inc(len(drop))
                self.val_frames = [
                    f for k, f in enumerate(self.val_frames) if k not in drop
                ]

    def _init_scale_shift(self) -> None:
        """Regress μ_Z (per-species reference energies) and set σ_Z.

        Solves min ‖E_frame − Σ_s n_s(frame)·μ_s‖² over the training set and
        writes the solution into the model's PerSpeciesScaleShift, with
        σ_Z set to the force RMS — so the network only has to learn O(1)
        residuals (the normalization discipline of §V-B3).
        """
        ss = getattr(self.model, "scale_shift", None)
        if ss is None:
            return
        n_species = ss.n_species
        counts = np.zeros((len(self.train_frames), n_species))
        energies = np.zeros(len(self.train_frames))
        for k, f in enumerate(self.train_frames):
            counts[k] = np.bincount(f.system.species, minlength=n_species)
            energies[k] = f.energy
        # Ridge-regularized for species absent from the training set.
        A = counts.T @ counts + 1e-8 * np.eye(n_species)
        mu = np.linalg.solve(A, counts.T @ energies)
        ss.shifts.data = mu
        frms = np.sqrt(
            np.mean(np.concatenate([f.forces.ravel() for f in self.train_frames]) ** 2)
        )
        if frms > 0:
            ss.scales.data = np.full(n_species, frms)

    def _neighbors(self, system: System) -> NeighborList:
        if hasattr(self.model, "prepare_neighbors"):
            return self.model.prepare_neighbors(system)
        from ..md.neighborlist import neighbor_list

        return neighbor_list(system, self.model.cutoff)

    # -- core steps -----------------------------------------------------------
    def _batch_loss(self, batch: _Batch) -> ad.Tensor:
        cfg = self.config
        pos = ad.Tensor(batch.positions, requires_grad=True)
        e_atoms = self.model.atomic_energies(pos, batch.species, batch.nl)
        e_struct = ad.scatter_add(e_atoms, batch.batch_index, batch.n_structures)
        total = e_struct.sum()
        (gpos,) = ad.grad(total, [pos], create_graph=True)
        forces = -gpos

        diff = (forces - ad.Tensor(batch.forces)) * (1.0 / self.force_scale)
        loss = (diff * diff).mean() * cfg.force_weight
        if cfg.energy_weight > 0:
            de = (e_struct - ad.Tensor(batch.energies)) / ad.Tensor(
                batch.n_atoms_per.astype(np.float64)
            )
            loss = loss + (de * de).mean() * cfg.energy_weight
        return loss

    def _train_step(self, batch: _Batch, epoch: int) -> Optional[float]:
        """One guarded optimizer step; None when the batch was skipped.

        Transient step failures (the ``train.step_failure`` fault channel)
        are retried before any state mutates, so a retry recomputes the
        identical batch and recovery is bitwise.  The loss/gradient health
        check runs *before* ``optimizer.step()`` — a NaN never reaches the
        parameters, the EMA shadow, or a checkpoint.
        """
        cfg = self.config
        attempts = 0
        while True:
            try:
                if self.fault_plan is not None:
                    self.fault_plan.raise_if_fires(TRAIN_STEP_FAILURE)
                with span("train.forward"):
                    loss = self._batch_loss(batch)
                with span("train.backward"):
                    self.model.zero_grad()
                    loss.backward()
            except InjectedFault:
                self._counters["n_step_failures"].inc()
                if attempts < cfg.max_step_retries:
                    attempts += 1
                    self._counters["n_step_retries"].inc()
                    continue
                if cfg.skip_failed_batches:
                    self._counters["n_skipped_batches"].inc()
                    return None
                raise
            break

        value = float(loss.data)
        grads = [p.grad.data for p in self.optimizer.params if p.grad is not None]
        if self.watchdog is not None:
            if not self.watchdog.check(value, grads, step=epoch):
                raise _RollbackNeeded(self.watchdog.last_error)
        else:
            if not np.isfinite(value):
                raise NumericalInstabilityError(
                    f"non-finite training loss {value!r} in epoch {epoch}"
                )
            for g in grads:
                if not np.isfinite(g).all():
                    raise NumericalInstabilityError(
                        f"non-finite gradient in epoch {epoch}"
                    )

        if cfg.grad_clip_norm is not None:
            total_norm = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
            if total_norm > cfg.grad_clip_norm:
                scale = cfg.grad_clip_norm / total_norm
                for g in grads:
                    g *= scale
                self._counters["n_clip_events"].inc()

        with span("train.optimizer"):
            self.optimizer.step()
            self.ema.update()
        return value

    def train_epoch(self, epoch: int) -> float:
        cfg = self.config
        base_lr = cfg.lr_schedule(epoch) if cfg.lr_schedule is not None else cfg.lr
        self.optimizer.set_lr(base_lr * self._lr_scale)
        order = np.arange(len(self.train_frames))
        if cfg.shuffle:
            self._rng.shuffle(order)
        losses = []
        with span("train.epoch") as sp:
            for start in range(0, len(order), cfg.batch_size):
                idx = order[start : start + cfg.batch_size]
                with span("train.batch_build"):
                    batch = _Batch(
                        [self.train_frames[k] for k in idx],
                        [self._train_nls[k] for k in idx],
                    )
                value = self._train_step(batch, epoch)
                if value is not None:
                    losses.append(value)
                    sp.add("batches")
        if not losses:
            raise NumericalInstabilityError(
                f"every batch failed or was skipped in epoch {epoch}"
            )
        return float(np.mean(losses))

    def fit(
        self,
        epochs: Optional[int] = None,
        verbose: bool = False,
        *,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir=None,
        checkpoint_manager: Optional[CheckpointManager] = None,
    ) -> List[EpochStats]:
        """Train for ``epochs`` more epochs (default ``config.max_epochs``).

        Epoch numbering continues from the cursor, so a resumed trainer
        sees the same global epoch indices (and LR schedule values) as an
        uninterrupted run.  With a checkpoint sink, the full training
        state is snapshotted every ``checkpoint_every`` epochs (default 1)
        plus an initial anchor — the rollback target for the watchdog's
        ``recover`` policy before the first interval completes.
        """
        epochs = epochs if epochs is not None else self.config.max_epochs
        manager = checkpoint_manager
        if manager is None and checkpoint_dir is not None:
            manager = CheckpointManager(checkpoint_dir)
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if checkpoint_every is not None and manager is None:
            raise ValueError(
                "checkpoint_every needs a checkpoint_dir or checkpoint_manager"
            )
        if manager is not None and checkpoint_every is None:
            checkpoint_every = 1
        if manager is not None and not manager.steps():
            self._save_checkpoint(manager)

        start = self._epoch_cursor
        target = start + int(epochs)
        while self._epoch_cursor < target:
            e = self._epoch_cursor
            try:
                train_loss = self.train_epoch(e)
            except _RollbackNeeded as exc:
                self._rollback(manager, str(exc))
                continue
            stats = EpochStats(epoch=e, train_loss=train_loss)
            if self.val_frames:
                with self.ema.average_weights():
                    metrics = self.evaluate(self.val_frames, self._val_nls)
                stats.val_force_mae = metrics["force_mae"]
                stats.val_force_rmse = metrics["force_rmse"]
            self.history.append(stats)
            self._epoch_cursor = e + 1
            if verbose:
                msg = f"epoch {e}: loss={train_loss:.5f}"
                if stats.val_force_rmse is not None:
                    msg += f" val F rmse={stats.val_force_rmse:.5f}"
                print(msg)
            if manager is not None and (self._epoch_cursor - start) % checkpoint_every == 0:
                self._save_checkpoint(manager)
        return self.history

    def _save_checkpoint(self, manager: CheckpointManager) -> None:
        with span("train.checkpoint"):
            manager.save(self.state_dict(), self._epoch_cursor)
        self._counters["n_checkpoints"].inc()

    def _rollback(self, manager: Optional[CheckpointManager], reason: str) -> None:
        """Recover policy: restore the last good checkpoint, back off LR.

        The shuffle RNG is deliberately *not* restored — it has advanced
        past the order that led to the blow-up, so the replay reshuffles
        (still deterministically).  Watchdog counters are kept, not
        restored, or the escalation budget would reset on every rollback.
        """
        if manager is None:
            raise NumericalInstabilityError(
                f"{reason} — watchdog recover policy needs active "
                "checkpointing (pass checkpoint_dir/checkpoint_manager to fit)"
            )
        _, state = manager.load_latest()
        self.load_state_dict(state, restore_rng=False, restore_watchdog=False)
        self._lr_scale *= self.config.rollback_lr_factor
        self._counters["n_rollbacks"].inc()
        if self.watchdog is not None:
            self.watchdog.on_rollback()
            self.watchdog.reset_history()

    # -- checkpointable state -------------------------------------------------
    def state_dict(self) -> Dict:
        """Complete training state: everything a bitwise resume needs."""
        return {
            "format": self.STATE_FORMAT,
            "epoch": self._epoch_cursor,
            "model": self.model.state_dict(),
            "optimizer": self.optimizer.state_dict(),
            "ema": self.ema.state_dict(),
            "rng": self._rng.bit_generator.state,
            "force_scale": self.force_scale,
            "lr_scale": self._lr_scale,
            "history": [asdict(s) for s in self.history],
            "counters": {k: c.value for k, c in self._counters.items()},
            "watchdog": (
                self.watchdog.state_dict() if self.watchdog is not None else None
            ),
        }

    def load_state_dict(
        self,
        state: Dict,
        restore_rng: bool = True,
        restore_watchdog: bool = True,
    ) -> None:
        if state.get("format") != self.STATE_FORMAT:
            raise ValueError(
                f"unknown trainer checkpoint format {state.get('format')!r}"
            )
        self.model.load_state_dict(state["model"])
        self.optimizer.load_state_dict(state["optimizer"])
        self.ema.load_state_dict(state["ema"])
        self.force_scale = float(state["force_scale"])
        self._lr_scale = float(state["lr_scale"])
        self._epoch_cursor = int(state["epoch"])
        self.history = [EpochStats(**h) for h in state["history"]]
        if restore_rng:
            rng = np.random.default_rng()
            rng.bit_generator.state = state["rng"]
            self._rng = rng
        if restore_watchdog and self.watchdog is not None and state["watchdog"]:
            self.watchdog.load_state_dict(state["watchdog"])

    def resume(self, source) -> int:
        """Restore the newest verified checkpoint; returns its epoch cursor.

        ``source`` is a checkpoint directory or a
        :class:`~repro.resilience.CheckpointManager`.  The trainer must
        have been built with the same model family, frames, and config as
        the original run; the restored run then continues — and matches
        the uninterrupted run — bitwise.
        """
        manager = (
            source
            if isinstance(source, CheckpointManager)
            else CheckpointManager(source)
        )
        epoch, state = manager.load_latest()
        self.load_state_dict(state)
        return epoch

    @property
    def epochs_completed(self) -> int:
        return self._epoch_cursor

    def stats(self) -> Dict:
        """Resilience counters for this trainer instance.

        A view over the trainer's slice of the observability registry
        (``train.*`` counters) plus watchdog/dataset context and — when
        tracing is enabled — per-phase wall times for
        epoch/batch_build/forward/backward/optimizer.
        """
        out = {k: c.value for k, c in self._counters.items()}
        out["epochs_completed"] = self._epoch_cursor
        out["lr_scale"] = self._lr_scale
        out["watchdog"] = self.watchdog.stats() if self.watchdog is not None else None
        out["dataset_issues"] = (
            self.dataset_report.counts() if self.dataset_report is not None else None
        )
        phases = get_tracer().phase_totals("train.")
        if phases:
            out["phases"] = phases
        return out

    # -- evaluation ---------------------------------------------------------------
    def evaluate(
        self,
        frames: Sequence[LabeledFrame],
        nls: Optional[Sequence[NeighborList]] = None,
        use_ema: bool = False,
    ) -> Dict[str, float]:
        """Force/energy MAE & RMSE over frames (units of the labels)."""
        if len(frames) == 0:
            raise ValueError(
                "evaluate() needs at least one frame (got an empty sequence)"
            )
        if nls is None:
            nls = [self._neighbors(f.system) for f in frames]
        if use_ema:
            with self.ema.average_weights():
                return self.evaluate(frames, nls, use_ema=False)
        pf, tf, pe, te = [], [], [], []
        for f, nl in zip(frames, nls):
            e, forces = self.model.energy_and_forces(f.system, nl)
            pf.append(forces)
            tf.append(f.forces)
            pe.append(e / f.system.n_atoms)
            te.append(f.energy / f.system.n_atoms)
        pf = np.concatenate(pf, axis=0)
        tf = np.concatenate(tf, axis=0)
        return {
            "force_mae": mae(pf, tf),
            "force_rmse": rmse(pf, tf),
            "energy_per_atom_mae": mae(np.array(pe), np.array(te)),
            "energy_per_atom_rmse": rmse(np.array(pe), np.array(te)),
        }
