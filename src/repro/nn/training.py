"""Force-matching training loop (paper §VI-D).

The paper trains Allegro with a force-only MSE loss, Adam (lr 1e-3, batch
16, default settings), force targets normalized by the maximum absolute
force component of the training set, an EMA of the weights (decay 0.99)
for evaluation, epoch-wise reshuffling, and a step-down LR schedule.  The
:class:`Trainer` reproduces that loop on any :class:`~repro.models.base.Potential`.

Force loss gradients require double backprop: forces are −∂E/∂r, so
∂loss/∂w goes through the gradient graph — ``ad.grad(..., create_graph=True)``
provides exactly that.

Batches concatenate structures along the atom axis with per-frame neighbor
lists (precomputed once) offset into the combined index space; one backward
pass produces every force in the batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .. import autodiff as ad
from ..md.neighborlist import NeighborList
from ..md.system import System
from .loss import mae, rmse
from .optim import Adam, ExponentialMovingAverage


@dataclass
class LabeledFrame:
    """One training structure with reference labels."""

    system: System
    energy: float
    forces: np.ndarray

    def __post_init__(self) -> None:
        self.forces = np.asarray(self.forces, dtype=np.float64)
        if self.forces.shape != self.system.positions.shape:
            raise ValueError("forces must match positions shape")


@dataclass
class TrainConfig:
    lr: float = 1e-3
    batch_size: int = 16
    max_epochs: int = 10
    force_weight: float = 1.0
    energy_weight: float = 0.0
    ema_decay: float = 0.99
    #: map epoch -> lr; None keeps lr constant (paper: halve after 119 epochs)
    lr_schedule: Optional[Callable[[int], float]] = None
    shuffle: bool = True
    seed: int = 0
    #: Initialize per-species energy shifts μ_Z by least squares over the
    #: training energies and scales σ_Z by the force RMS — the standard
    #: MLIP normalization that keeps the regression target O(1) (§V-B3).
    init_reference_energies: bool = True


@dataclass
class EpochStats:
    epoch: int
    train_loss: float
    val_force_mae: Optional[float] = None
    val_force_rmse: Optional[float] = None


class _Batch:
    """Concatenated structures with a merged neighbor list."""

    __slots__ = (
        "positions",
        "species",
        "nl",
        "batch_index",
        "n_structures",
        "energies",
        "forces",
        "n_atoms_per",
    )

    def __init__(self, frames: Sequence[LabeledFrame], nls: Sequence[NeighborList]):
        pos, spec, bidx, edges, shifts = [], [], [], [], []
        offset = 0
        for k, (f, nl) in enumerate(zip(frames, nls)):
            n = f.system.n_atoms
            pos.append(f.system.positions)
            spec.append(f.system.species)
            bidx.append(np.full(n, k))
            edges.append(nl.edge_index + offset)
            shifts.append(nl.shifts)
            offset += n
        self.positions = np.concatenate(pos, axis=0)
        self.species = np.concatenate(spec)
        self.batch_index = np.concatenate(bidx).astype(np.int64)
        self.nl = NeighborList(
            np.concatenate(edges, axis=1), np.concatenate(shifts, axis=0)
        )
        self.n_structures = len(frames)
        self.energies = np.array([f.energy for f in frames])
        self.forces = np.concatenate([f.forces for f in frames], axis=0)
        self.n_atoms_per = np.array([f.system.n_atoms for f in frames])


class Trainer:
    """Force-matching trainer for any Potential."""

    def __init__(
        self,
        model,
        train_frames: Sequence[LabeledFrame],
        val_frames: Sequence[LabeledFrame] = (),
        config: Optional[TrainConfig] = None,
    ) -> None:
        self.model = model
        self.config = config or TrainConfig()
        self.train_frames = list(train_frames)
        self.val_frames = list(val_frames)
        if not self.train_frames:
            raise ValueError("need at least one training frame")

        self._train_nls = [self._neighbors(f.system) for f in self.train_frames]
        self._val_nls = [self._neighbors(f.system) for f in self.val_frames]

        # Paper: "normalize the force targets by the maximum absolute force
        # component computed over the training set".
        self.force_scale = max(
            float(np.abs(f.forces).max()) for f in self.train_frames
        )
        if self.force_scale == 0.0:
            self.force_scale = 1.0

        if self.config.init_reference_energies:
            self._init_scale_shift()

        self.optimizer = Adam(self.model.parameters(), lr=self.config.lr)
        self.ema = ExponentialMovingAverage(
            self.model.parameters(), decay=self.config.ema_decay
        )
        self.history: List[EpochStats] = []
        self._rng = np.random.default_rng(self.config.seed)

    def _init_scale_shift(self) -> None:
        """Regress μ_Z (per-species reference energies) and set σ_Z.

        Solves min ‖E_frame − Σ_s n_s(frame)·μ_s‖² over the training set and
        writes the solution into the model's PerSpeciesScaleShift, with
        σ_Z set to the force RMS — so the network only has to learn O(1)
        residuals (the normalization discipline of §V-B3).
        """
        ss = getattr(self.model, "scale_shift", None)
        if ss is None:
            return
        n_species = ss.n_species
        counts = np.zeros((len(self.train_frames), n_species))
        energies = np.zeros(len(self.train_frames))
        for k, f in enumerate(self.train_frames):
            counts[k] = np.bincount(f.system.species, minlength=n_species)
            energies[k] = f.energy
        # Ridge-regularized for species absent from the training set.
        A = counts.T @ counts + 1e-8 * np.eye(n_species)
        mu = np.linalg.solve(A, counts.T @ energies)
        ss.shifts.data = mu
        frms = np.sqrt(
            np.mean(np.concatenate([f.forces.ravel() for f in self.train_frames]) ** 2)
        )
        if frms > 0:
            ss.scales.data = np.full(n_species, frms)

    def _neighbors(self, system: System) -> NeighborList:
        if hasattr(self.model, "prepare_neighbors"):
            return self.model.prepare_neighbors(system)
        from ..md.neighborlist import neighbor_list

        return neighbor_list(system, self.model.cutoff)

    # -- core steps -----------------------------------------------------------
    def _batch_loss(self, batch: _Batch) -> ad.Tensor:
        cfg = self.config
        pos = ad.Tensor(batch.positions, requires_grad=True)
        e_atoms = self.model.atomic_energies(pos, batch.species, batch.nl)
        e_struct = ad.scatter_add(e_atoms, batch.batch_index, batch.n_structures)
        total = e_struct.sum()
        (gpos,) = ad.grad(total, [pos], create_graph=True)
        forces = -gpos

        diff = (forces - ad.Tensor(batch.forces)) * (1.0 / self.force_scale)
        loss = (diff * diff).mean() * cfg.force_weight
        if cfg.energy_weight > 0:
            de = (e_struct - ad.Tensor(batch.energies)) / ad.Tensor(
                batch.n_atoms_per.astype(np.float64)
            )
            loss = loss + (de * de).mean() * cfg.energy_weight
        return loss

    def train_epoch(self, epoch: int) -> float:
        cfg = self.config
        if cfg.lr_schedule is not None:
            self.optimizer.set_lr(cfg.lr_schedule(epoch))
        order = np.arange(len(self.train_frames))
        if cfg.shuffle:
            self._rng.shuffle(order)
        losses = []
        for start in range(0, len(order), cfg.batch_size):
            idx = order[start : start + cfg.batch_size]
            batch = _Batch(
                [self.train_frames[k] for k in idx],
                [self._train_nls[k] for k in idx],
            )
            loss = self._batch_loss(batch)
            self.model.zero_grad()
            loss.backward()
            self.optimizer.step()
            self.ema.update()
            losses.append(float(loss.data))
        return float(np.mean(losses))

    def fit(self, epochs: Optional[int] = None, verbose: bool = False) -> List[EpochStats]:
        epochs = epochs if epochs is not None else self.config.max_epochs
        for e in range(epochs):
            train_loss = self.train_epoch(e)
            stats = EpochStats(epoch=e, train_loss=train_loss)
            if self.val_frames:
                with self.ema.average_weights():
                    metrics = self.evaluate(self.val_frames, self._val_nls)
                stats.val_force_mae = metrics["force_mae"]
                stats.val_force_rmse = metrics["force_rmse"]
            self.history.append(stats)
            if verbose:
                msg = f"epoch {e}: loss={train_loss:.5f}"
                if stats.val_force_rmse is not None:
                    msg += f" val F rmse={stats.val_force_rmse:.5f}"
                print(msg)
        return self.history

    # -- evaluation ---------------------------------------------------------------
    def evaluate(
        self,
        frames: Sequence[LabeledFrame],
        nls: Optional[Sequence[NeighborList]] = None,
        use_ema: bool = False,
    ) -> Dict[str, float]:
        """Force/energy MAE & RMSE over frames (units of the labels)."""
        if nls is None:
            nls = [self._neighbors(f.system) for f in frames]
        if use_ema:
            with self.ema.average_weights():
                return self.evaluate(frames, nls, use_ema=False)
        pf, tf, pe, te = [], [], [], []
        for f, nl in zip(frames, nls):
            e, forces = self.model.energy_and_forces(f.system, nl)
            pf.append(forces)
            tf.append(f.forces)
            pe.append(e / f.system.n_atoms)
            te.append(f.energy / f.system.n_atoms)
        pf = np.concatenate(pf, axis=0)
        tf = np.concatenate(tf, axis=0)
        return {
            "force_mae": mae(pf, tf),
            "force_rmse": rmse(pf, tf),
            "energy_per_atom_mae": mae(np.array(pe), np.array(te)),
            "energy_per_atom_rmse": rmse(np.array(pe), np.array(te)),
        }
