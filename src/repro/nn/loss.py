"""Losses and error metrics for force/energy regression.

The paper trains with a *force-only* MSE loss (§VI-D) with force targets
normalized by the maximum absolute force component of the training set.
Energy-and-force weighting is provided for the baselines that need it.
"""

from __future__ import annotations

import numpy as np

from .. import autodiff as ad


def mse_force_loss(pred_forces: ad.Tensor, target_forces: np.ndarray, scale: float = 1.0):
    """Mean squared error over force components, optionally pre-scaled.

    ``scale`` divides both prediction and target (the paper normalizes by
    the max |F| component over the training set so the loss is O(1)).
    """
    target = ad.Tensor(np.asarray(target_forces))
    diff = (pred_forces - target) * (1.0 / scale)
    return (diff * diff).mean()


def weighted_energy_force_loss(
    pred_energy: ad.Tensor,
    pred_forces: ad.Tensor,
    target_energy: float | np.ndarray,
    target_forces: np.ndarray,
    n_atoms: int,
    energy_weight: float = 1.0,
    force_weight: float = 1.0,
):
    """λ_E·MSE(E/N) + λ_F·MSE(F): the standard MLIP loss shape."""
    e_t = ad.Tensor(np.asarray(target_energy, dtype=np.float64))
    de = (pred_energy - e_t) * (1.0 / n_atoms)
    e_term = (de * de).mean()
    f_t = ad.Tensor(np.asarray(target_forces))
    df = pred_forces - f_t
    f_term = (df * df).mean()
    return e_term * energy_weight + f_term * force_weight


def mae(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error over all components."""
    pred = pred.data if isinstance(pred, ad.Tensor) else np.asarray(pred)
    return float(np.mean(np.abs(pred - np.asarray(target))))


def rmse(pred: np.ndarray, target: np.ndarray) -> float:
    """Root mean squared error over all components."""
    pred = pred.data if isinstance(pred, ad.Tensor) else np.asarray(pred)
    return float(np.sqrt(np.mean((pred - np.asarray(target)) ** 2)))
