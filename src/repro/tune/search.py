"""Deterministic measured search: coordinate descent + warmup/repeat/median.

The driver is intentionally boring: coordinate descent over the declared
candidate lists, sweeping parameters in declaration order and moving only
on *strict* score improvement.  With a deterministic objective this makes
the whole search a pure function of (space, objective, start point) — the
property the profile byte-identity guarantee rests on.  Ties keep the
current value, so knobs the objective is indifferent to stay at the
stack's defaults instead of drifting on last-bit noise.

:class:`MeasurementProtocol` wraps a trial function with the classic
benchmarking discipline — ``warmup`` discarded runs, ``repeats`` measured
runs, per-metric medians — so wall-clock metrics a target reports (keys
prefixed ``wall_``) are stabilized the same way the benchmark suite
stabilizes its numbers.  Deterministic counter-derived metrics are
unaffected by the median (every repeat returns the same value).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .space import ParamSpace

__all__ = ["Trial", "SearchResult", "MeasurementProtocol", "coordinate_descent"]

#: Relative score improvement below which a move is treated as a tie.
TIE_TOL = 1e-9


@dataclass
class Trial:
    """One evaluated configuration."""

    params: dict
    score: float
    metrics: dict = field(default_factory=dict)


@dataclass
class SearchResult:
    """Outcome of a search: the winner plus the full tried table."""

    best: dict
    best_score: float
    best_metrics: dict
    trials: List[Trial]
    n_evaluations: int
    n_sweeps: int


class MeasurementProtocol:
    """warmup/repeat/median wrapper around an objective function.

    ``objective(params)`` returns ``(score, metrics)``.  The protocol runs
    it ``warmup`` times discarding the result, then ``repeats`` times,
    and reports the median score and the per-key median of every numeric
    metric (non-numeric metrics keep the last observed value).
    """

    def __init__(
        self,
        objective: Callable[[dict], Tuple[float, dict]],
        warmup: int = 0,
        repeats: int = 1,
    ) -> None:
        if warmup < 0 or repeats < 1:
            raise ValueError("warmup must be >= 0 and repeats >= 1")
        self.objective = objective
        self.warmup = int(warmup)
        self.repeats = int(repeats)

    def __call__(self, params: dict) -> Tuple[float, dict]:
        for _ in range(self.warmup):
            self.objective(params)
        scores: List[float] = []
        metric_series: Dict[str, list] = {}
        metrics_last: dict = {}
        for _ in range(self.repeats):
            score, metrics = self.objective(params)
            scores.append(float(score))
            for key, value in metrics.items():
                metrics_last[key] = value
                if isinstance(value, bool):
                    continue
                if isinstance(value, (int, float)):
                    metric_series.setdefault(key, []).append(value)
        merged = dict(metrics_last)
        for key, series in metric_series.items():
            merged[key] = statistics.median(series)
        return statistics.median(scores), merged


def _key(params: dict) -> tuple:
    return tuple(sorted(params.items()))


def coordinate_descent(
    space: ParamSpace,
    evaluate: Callable[[dict], Tuple[float, dict]],
    start: Optional[dict] = None,
    max_sweeps: int = 4,
) -> SearchResult:
    """Minimize ``evaluate`` over the space by per-parameter line scans.

    Each sweep visits every parameter in declaration order and scans its
    full candidate list with the other parameters held fixed; the best
    strictly-improving value (beyond :data:`TIE_TOL` relative) is kept.
    Stops when a sweep makes no move or after ``max_sweeps``.  Evaluations
    are cached by configuration, so revisited points cost nothing and the
    tried table holds each configuration exactly once.
    """
    if max_sweeps < 1:
        raise ValueError("max_sweeps must be >= 1")
    current = dict(start) if start is not None else space.defaults()
    space.validate(current)

    cache: Dict[tuple, Trial] = {}

    def measure(params: dict) -> Trial:
        key = _key(params)
        trial = cache.get(key)
        if trial is None:
            score, metrics = evaluate(dict(params))
            trial = cache[key] = Trial(dict(params), float(score), metrics)
        return trial

    best = measure(current)
    sweeps = 0
    for _ in range(max_sweeps):
        sweeps += 1
        moved = False
        for param in space:
            for value in param.values:
                if value == best.params[param.name]:
                    continue
                candidate = dict(best.params)
                candidate[param.name] = value
                trial = measure(candidate)
                if trial.score < best.score - TIE_TOL * max(1.0, abs(best.score)):
                    best = trial
                    moved = True
        if not moved:
            break

    trials = list(cache.values())
    return SearchResult(
        best=dict(best.params),
        best_score=best.score,
        best_metrics=dict(best.metrics),
        trials=trials,
        n_evaluations=len(trials),
        n_sweeps=sweeps,
    )
