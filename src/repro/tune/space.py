"""Declared parameter spaces for the offline tuner.

A :class:`ParamSpace` is the contract between a tuning target and the
search driver: each :class:`Param` declares a *finite, ordered* candidate
list plus the stack's current default.  Finite candidate lists (rather
than continuous ranges) keep the search deterministic and the tried table
in a :class:`~repro.tune.profile.TuningProfile` exhaustive — every value
the tuner may ever pick is visible up front, the same property LAMMPS
gets from its discrete ``neigh_modify every/delay`` knobs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["Param", "ParamSpace"]


class Param:
    """One tunable knob: a name, ordered candidate values, and a default."""

    def __init__(self, name: str, values: Sequence, default) -> None:
        if not name:
            raise ValueError("param name must be non-empty")
        values = tuple(values)
        if not values:
            raise ValueError(f"param {name!r} needs at least one candidate value")
        if len(set(values)) != len(values):
            raise ValueError(f"param {name!r} has duplicate candidate values")
        if default not in values:
            raise ValueError(
                f"param {name!r} default {default!r} is not among its candidates"
            )
        self.name = name
        self.values = values
        self.default = default

    def __repr__(self) -> str:
        return f"Param({self.name!r}, {self.values!r}, default={self.default!r})"


class ParamSpace:
    """An ordered collection of :class:`Param` (search sweeps in this order)."""

    def __init__(self, params: Iterable[Param]) -> None:
        params = list(params)
        if not params:
            raise ValueError("a ParamSpace needs at least one Param")
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate param names in space: {names}")
        self._params: Dict[str, Param] = {p.name: p for p in params}

    @property
    def names(self) -> List[str]:
        return list(self._params)

    def param(self, name: str) -> Param:
        return self._params[name]

    def values(self, name: str) -> Tuple:
        return self._params[name].values

    def defaults(self) -> dict:
        """The stack's current configuration as a params dict."""
        return {p.name: p.default for p in self._params.values()}

    def validate(self, params: dict) -> None:
        """Raise ValueError unless ``params`` assigns a candidate to every knob."""
        missing = set(self._params) - set(params)
        if missing:
            raise ValueError(f"params missing keys: {sorted(missing)}")
        for name, value in params.items():
            p = self._params.get(name)
            if p is None:
                raise ValueError(f"unknown param {name!r}")
            if value not in p.values:
                raise ValueError(
                    f"{name}={value!r} is not a declared candidate {p.values!r}"
                )

    def describe(self) -> dict:
        """JSON-able view of the space (persisted with each profile)."""
        return {p.name: list(p.values) for p in self._params.values()}

    def __iter__(self):
        return iter(self._params.values())

    def __len__(self) -> int:
        return len(self._params)
