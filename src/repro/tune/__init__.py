"""repro.tune: measured autotuning for the performance knobs.

The paper's throughput rests on hand-picked constants — 5% engine
padding (§V-C), plan-ladder growth, batching windows, neighbor skins,
process grids.  This package closes the loop the ``repro.obs`` registry
opened: it *measures* those knobs.

Three layers:

* **offline tuner** (:mod:`~repro.tune.targets`): deterministic seeded
  coordinate-descent searches over declared
  :class:`~repro.tune.space.ParamSpace` candidates for four targets —
  ``md``, ``engine``, ``serve``, ``parallel``;
* **profiles** (:mod:`~repro.tune.profile`): the
  :class:`TuningProfile` JSON artifact (byte-deterministic for a given
  seed) plus :func:`apply_profile`, the one entry point that folds tuned
  values into a run/serve config;
* **online controllers** (:mod:`~repro.tune.controllers`): off-by-default
  guardrailed hysteresis controllers that adapt the serve batch window,
  admission cap, and engine padding at runtime.

CLI: ``repro tune --target serve --out profile.json`` then
``repro serve --profile profile.json``.
"""

from .controllers import (
    AdmissionController,
    BatchWindowController,
    ControllerSet,
    HysteresisController,
    RepadController,
)
from .profile import PROFILE_KIND, TuningProfile, apply_profile
from .search import (
    TIE_TOL,
    MeasurementProtocol,
    SearchResult,
    Trial,
    coordinate_descent,
)
from .space import Param, ParamSpace
from .targets import (
    COST,
    ENGINE_SPACE,
    MD_SPACE,
    SERVE_SPACE,
    TARGETS,
    measure_serve,
    run_target,
    tune_engine,
    tune_md,
    tune_parallel,
    tune_serve,
)

__all__ = [
    "Param",
    "ParamSpace",
    "Trial",
    "SearchResult",
    "MeasurementProtocol",
    "coordinate_descent",
    "TIE_TOL",
    "COST",
    "TARGETS",
    "MD_SPACE",
    "SERVE_SPACE",
    "ENGINE_SPACE",
    "tune_md",
    "tune_serve",
    "tune_engine",
    "tune_parallel",
    "run_target",
    "measure_serve",
    "TuningProfile",
    "apply_profile",
    "PROFILE_KIND",
    "HysteresisController",
    "BatchWindowController",
    "AdmissionController",
    "RepadController",
    "ControllerSet",
]
