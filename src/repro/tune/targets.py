"""The four tuning targets: MD step, engine replay, serve, parallel grid.

Determinism contract
--------------------
``repro tune`` must emit byte-identical profiles across two runs with the
same seed, yet wall clocks are noisy.  Every objective here therefore
ranks configurations by **deterministic signals**: counters and histograms
an injected :class:`repro.obs.Registry` recorded (neighbor rebuilds, plan
captures, padded capacities, pair counts, simulated batch latencies)
combined through a fixed cost model (:data:`COST`).  Wall-clock numbers
are still measured — under the warmup/repeat/median protocol — but are
reported under ``wall_*`` metric keys, which
:class:`~repro.tune.profile.TuningProfile` strips before persisting.

The cost model's constants are order-of-magnitude calibrations of this
numpy stack on a dev box; only their *ratios* matter (a capture costs
thousands of replayed pair-rows, a rebuild costs a few force calls'
worth of pair work), the same way the fig. 5 allocator simulation uses
order-of-magnitude CUDA costs.

Serve simulation
----------------
The serve objective drives the *real* :class:`MicroBatcher` (via its
injectable clock) and the *real* :class:`SizeClasses` ladders through a
single-threaded discrete-event simulation of the serving pipeline:
seeded arrival trace → coalescing windows → LRU plan buckets → modeled
batch service times on an n-worker pool.  Batches are assigned greedily
to the earliest-free worker (the real pool picks up only when a worker
frees; the greedy variant models the batcher policy itself, which is
what is being tuned).  Worker-count scaling is modeled as fully serial
(GIL serial fraction 1): per-batch service inflates by ``n_workers``, so
aggregate capacity is worker-count independent and the model favors few
workers (same throughput, lower in-flight latency).  Real CPython
scaling for these numpy kernels is workload-dependent — the wall
measurements :func:`measure_serve` reports (and the gain benchmark
verifies) are the ground truth the modeled choice is checked against.
"""

from __future__ import annotations

import json
import math
import time
from collections import OrderedDict
from typing import List, Optional, Tuple

import numpy as np

from ..obs import LATENCY_BUCKETS, OCCUPANCY_BUCKETS, Registry
from .search import MeasurementProtocol, SearchResult, Trial, coordinate_descent
from .space import Param, ParamSpace

__all__ = [
    "COST",
    "tune_md",
    "tune_serve",
    "tune_engine",
    "tune_parallel",
    "run_target",
    "TARGETS",
    "MD_SPACE",
    "SERVE_SPACE",
    "ENGINE_SPACE",
]

#: Fixed cost-model constants (seconds).  Ratios, not absolutes, drive the
#: search: a plan capture ≈ thousands of replayed pair-rows; a neighbor
#: rebuild ≈ a few force calls of pair work; per-batch dispatch ≈ hundreds
#: of per-pair evaluations.
COST = {
    "pair_eval": 4.0e-7,  # eager force-pass cost per (skinned) neighbor pair
    "pair_pad": 3.5e-7,  # replayed padded pair-row (compiled plan replay)
    "rebuild_base": 5.0e-4,  # fixed neighbor-rebuild cost (binning, wrap)
    "rebuild_pair": 1.5e-7,  # per-pair cost during a rebuild
    "capture_base": 1.2e-3,  # fixed plan-capture cost (tape record, arena)
    "capture_pair": 1.6e-6,  # per pair-row while capturing a single system
    # Per pair-row while capturing a *batch* plan: the serve path hands the
    # engine precomputed, concatenated pair arrays, so per-row tracing
    # amortizes to less than half the single-system slope (measured:
    # ~600-pair capture 1.7 ms, ~4800-pair capture 4.7 ms).
    "batch_capture_pair": 7.0e-7,
    "check_atom": 3.0e-8,  # per-atom displacement check (skipped by cadence)
    "batch_dispatch": 2.5e-4,  # per-batch pickup/concat/split/validate
    "request": 1.0e-4,  # per-request bookkeeping (NL prep, result split)
    "comm_byte": 1.0 / 4.5e10,  # per halo byte (ClusterSpec bandwidth)
}

#: Weight of the simulated p99 latency in the serve score (seconds of
#: makespan one second of tail latency is worth).  Deliberately well
#: below 1: throughput (makespan) leads, the tail only breaks ties —
#: a weight that rivals the makespan would chase tiny low-latency
#: batches and give the throughput back.
SERVE_LATENCY_WEIGHT = 0.5

#: Score assigned to configurations that cannot run at all (e.g. a skin
#: candidate pushing cutoff + skin past the minimum-image bound of a
#: small box).  Finite so profiles stay strict JSON; large enough that
#: no feasible configuration ever loses to an infeasible one.
INFEASIBLE_SCORE = 1e30

#: How many times the configured request stream is cycled through the
#: serve simulation.  1 tunes for the declared workload as-is (cold plan
#: caches included — captures weigh what they actually cost a fresh
#: server); raise it to tune for a long-lived service where captures
#: amortize away and steady-state padding waste dominates instead.
SERVE_SIM_CYCLES = 1

MD_SPACE = ParamSpace(
    [
        Param("skin", (0.1, 0.2, 0.4, 0.7, 1.0), 0.4),
        Param("neighbor_every", (1, 2, 4), 1),
        Param("padding", (0.02, 0.05, 0.1, 0.2), 0.05),
    ]
)

SERVE_SPACE = ParamSpace(
    [
        Param("max_batch", (4, 8, 16, 32), 8),
        Param("batch_wait", (0.0005, 0.001, 0.002, 0.004), 0.002),
        Param("adaptive", (True, False), True),
        Param("n_workers", (1, 2, 4), 2),
        Param("plan_floor", (16, 32, 64), 16),
        Param("plan_growth", (1.2, 1.5, 2.0), 1.5),
    ]
)

ENGINE_SPACE = ParamSpace(
    [Param("padding", (0.0, 0.02, 0.05, 0.1, 0.2, 0.3), 0.05)]
)


def _trial_sort_key(trial: Trial):
    return (trial.score, json.dumps(trial.params, sort_keys=True, default=str))


def _report(
    target: str,
    result: SearchResult,
    space_desc: dict,
    workload: dict,
) -> dict:
    """The per-target best/tried table a profile persists."""
    return {
        "target": target,
        "best": result.best,
        "score": result.best_score,
        "metrics": result.best_metrics,
        "space": space_desc,
        "trials": [
            {"params": t.params, "score": t.score, "metrics": t.metrics}
            for t in sorted(result.trials, key=_trial_sort_key)
        ],
        "n_evaluations": result.n_evaluations,
        "n_sweeps": result.n_sweeps,
        "workload": workload,
    }


# -- MD step target ------------------------------------------------------------


def _default_md_config(seed: int) -> dict:
    # n_grid 3 (81 atoms, L ≈ 9.3 Å) so even the widest skin candidate
    # keeps cutoff + skin under the minimum-image L/2 bound.
    return {
        "system": {"kind": "water", "n_grid": 3, "seed": seed},
        "potential": {
            "kind": "lennard_jones",
            "epsilon": 0.8,
            "sigma": 1.1,
            "cutoff": 3.0,
        },
        "md": {"steps": 30, "dt": 0.5, "temperature": 300.0, "seed": seed},
    }


def tune_md(
    config: Optional[dict] = None,
    seed: int = 0,
    steps: Optional[int] = None,
    warmup: int = 0,
    repeats: int = 1,
    max_sweeps: int = 3,
) -> dict:
    """Tune neighbor ``skin``, rebuild cadence, and engine ``padding``.

    Each trial runs a short seeded compiled-engine MD segment with a fresh
    injected registry; the score is the modeled seconds/step implied by
    the recorded counters (pairs per force call, rebuild rate, capture
    rate, padded capacity).  Trajectories are bitwise-deterministic per
    configuration, so the counters — and the profile — are too.
    """
    from ..cli import build_potential, build_system, build_thermostat
    from ..md import Simulation

    cfg = config if config is not None else _default_md_config(seed)
    md = dict(cfg.get("md", {}))
    n_steps = int(steps if steps is not None else min(int(md.get("steps", 30)), 60))
    temperature = float(md.get("temperature", 300.0))
    md_seed = int(md.get("seed", seed))

    def objective(params: dict) -> Tuple[float, dict]:
        registry = Registry()
        system = build_system(cfg.get("system", {"kind": "water", "n_grid": 3}))
        potential = build_potential(
            cfg.get("potential", {"kind": "lennard_jones"})
        )
        # Potentials without traced_energies (e.g. the reference labeler)
        # cannot be compiled: tune skin/cadence on the eager engine instead.
        # The padding knob is then inert, all its candidates tie, and the
        # descent keeps the default — nothing bogus lands in the profile.
        from ..models.base import Potential as _PotentialBase

        traced = getattr(type(potential), "traced_energies", None)
        compilable = (
            traced is not None and traced is not _PotentialBase.traced_energies
        )
        sim = Simulation(
            system,
            potential,
            dt=float(md.get("dt", 0.5)),
            thermostat=build_thermostat(md),
            skin=params["skin"],
            neighbor_every=params["neighbor_every"],
            padding=params["padding"] if compilable else None,
            engine="compiled" if compilable else "eager",
            registry=registry,
        )
        system.seed_velocities(temperature, np.random.default_rng(md_seed))
        t0 = time.perf_counter()
        try:
            sim.run(n_steps)
        except ValueError as exc:
            # e.g. cutoff + skin beyond the minimum-image bound of this box
            return INFEASIBLE_SCORE, {"infeasible": str(exc)}
        wall = time.perf_counter() - t0

        snap = registry.snapshot()
        counters = snap["counters"]
        force_calls = max(snap["histograms"]["md.force_seconds"]["count"], 1)
        pairs_per_call = counters.get("md.pairs", 0) / force_calls
        rebuild_rate = counters.get("md.neighbor_rebuilds", 0) / force_calls
        capture_rate = counters.get("engine.captures", 0) / force_calls
        cap_pairs = snap["gauges"].get("engine.capacity_pairs", 0.0)
        pad_rows = max(cap_pairs - pairs_per_call, 0.0)
        check_rate = 1.0 / params["neighbor_every"]

        cost = (
            pairs_per_call * COST["pair_eval"]
            + pad_rows * COST["pair_pad"]
            + rebuild_rate
            * (COST["rebuild_base"] + pairs_per_call * COST["rebuild_pair"])
            + capture_rate
            * (COST["capture_base"] + cap_pairs * COST["capture_pair"])
            + check_rate * system.n_atoms * COST["check_atom"]
        )
        metrics = {
            "modeled_s_per_step": cost,
            "pairs_per_call": pairs_per_call,
            "rebuild_rate": rebuild_rate,
            "capture_rate": capture_rate,
            "capacity_pairs": cap_pairs,
            "wall_steps_per_s": n_steps / wall if wall > 0 else 0.0,
        }
        return cost, metrics

    protocol = MeasurementProtocol(objective, warmup=warmup, repeats=repeats)
    result = coordinate_descent(MD_SPACE, protocol, max_sweeps=max_sweeps)
    workload = {
        "system": cfg.get("system"),
        "potential": cfg.get("potential"),
        "steps": n_steps,
        "seed": md_seed,
    }
    return _report("md", result, MD_SPACE.describe(), workload)


# -- engine replay target ------------------------------------------------------


def tune_engine(
    config: Optional[dict] = None,
    seed: int = 0,
    steps: Optional[int] = None,
    warmup: int = 0,
    repeats: int = 1,
    max_sweeps: int = 2,
) -> dict:
    """Map the padding-vs-recapture frontier on a measured pair trace.

    One short seeded MD run produces the per-step neighbor-pair trace
    (the same input the fig. 5 allocator simulation uses); each padding
    candidate then replays that trace through a
    :class:`~repro.perf.allocator.PaddingPolicy`, counting recaptures and
    padded dead rows.  The tried table *is* the frontier — every padding
    with its recapture rate and waste — and the best point minimizes the
    modeled per-step cost.
    """
    from ..cli import build_potential, build_system, build_thermostat
    from ..md import Simulation
    from ..perf.allocator import PaddingPolicy

    cfg = config if config is not None else _default_md_config(seed)
    md = dict(cfg.get("md", {}))
    n_steps = int(steps if steps is not None else min(int(md.get("steps", 60)), 120))
    md_seed = int(md.get("seed", seed))

    system = build_system(cfg.get("system", {"kind": "water", "n_grid": 2}))
    potential = build_potential(cfg.get("potential", {"kind": "lennard_jones"}))
    sim = Simulation(
        system,
        potential,
        dt=float(md.get("dt", 0.5)),
        thermostat=build_thermostat(md),
        engine="eager",
    )
    system.seed_velocities(
        float(md.get("temperature", 300.0)), np.random.default_rng(md_seed)
    )
    t0 = time.perf_counter()
    md_result = sim.run(n_steps, record_every=1)
    trace_wall = time.perf_counter() - t0
    trace = [int(p) for p in md_result.pair_counts]
    if not trace:
        raise ValueError("engine tuning needs a non-empty pair-count trace")

    def objective(params: dict) -> Tuple[float, dict]:
        policy = PaddingPolicy(fraction=params["padding"])
        n_captures = 0
        total_cap = 0
        total_pairs = 0
        total = 0.0
        for pairs in trace:
            if pairs > policy._capacity:
                n_captures += 1
                cap = policy.padded_size(pairs)
                total += COST["capture_base"] + cap * COST["capture_pair"]
            else:
                cap = policy._capacity
            total += cap * COST["pair_pad"]
            total_cap += cap
            total_pairs += pairs
        n = len(trace)
        waste = total_cap / max(total_pairs, 1) - 1.0
        metrics = {
            "modeled_s_per_step": total / n,
            "recapture_rate": max(0, n_captures - 1) / n,
            "n_captures": n_captures,
            "padded_waste": waste,
            "trace_steps": n,
            "wall_trace_steps_per_s": n_steps / trace_wall if trace_wall else 0.0,
        }
        return total / n, metrics

    protocol = MeasurementProtocol(objective, warmup=warmup, repeats=repeats)
    result = coordinate_descent(ENGINE_SPACE, protocol, max_sweeps=max_sweeps)
    workload = {
        "system": cfg.get("system"),
        "potential": cfg.get("potential"),
        "steps": n_steps,
        "seed": md_seed,
    }
    return _report("engine", result, ENGINE_SPACE.describe(), workload)


# -- serve target --------------------------------------------------------------


class _FakeClock:
    """Deterministic monotonic clock driven by the serve simulation."""

    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class _SizedSystem:
    """A stand-in structure carrying only the atom count."""

    __slots__ = ("n_atoms",)

    def __init__(self, n_atoms: int) -> None:
        self.n_atoms = int(n_atoms)


def _workload_sizes(config: dict, seed: int) -> Tuple[List[Tuple[int, int]], dict]:
    """Real (n_atoms, n_pairs) sizes for the configured request stream."""
    from ..cli import build_potential, build_system
    from ..md.neighborlist import neighbor_list

    workload = dict(config.get("workload", {}))
    specs = workload.get("systems") or [{"kind": "molecule", "n_heavy": 4}]
    n_requests = int(workload.get("n_requests", 32))
    wl_seed = int(workload.get("seed", seed))
    potential = build_potential(
        config.get("potential", {"kind": "lennard_jones"})
    )
    sizes: List[Tuple[int, int]] = []
    for k in range(n_requests):
        spec = dict(specs[k % len(specs)])
        spec.setdefault("seed", wl_seed + k)
        system = build_system(spec)
        nl = neighbor_list(system, potential.cutoff)
        sizes.append((system.n_atoms, nl.n_edges))
    described = {
        "systems": specs,
        "n_requests": n_requests,
        "seed": wl_seed,
        "potential": config.get("potential"),
    }
    return sizes, described


def _simulate_serve(
    params: dict,
    sizes: List[Tuple[int, int]],
    gaps: List[float],
    registry: Registry,
    max_plans: int = 8,
) -> dict:
    """One deterministic pass of the pipeline; records into ``registry``."""
    from ..serve.batching import ForceRequest, MicroBatcher
    from ..serve.plancache import SizeClasses

    clock = _FakeClock()
    batcher = MicroBatcher(
        max_batch=params["max_batch"],
        max_wait=params["batch_wait"],
        adaptive=params["adaptive"],
        clock=clock.now,
    )
    atom_ladder = SizeClasses(params["plan_floor"], params["plan_growth"])
    pair_ladder = SizeClasses(4 * params["plan_floor"], params["plan_growth"])
    buckets: "OrderedDict[Tuple[int, int], bool]" = OrderedDict()
    n_workers = int(params["n_workers"])
    free_at = [0.0] * n_workers

    lat_hist = registry.histogram("tune.serve.latency_s", LATENCY_BUCKETS)
    occ_hist = registry.histogram("tune.serve.batch_occupancy", OCCUPANCY_BUCKETS)
    c_captures = registry.counter("tune.serve.plan_captures")
    c_replays = registry.counter("tune.serve.plan_replays")
    c_batches = registry.counter("tune.serve.batches")
    c_evictions = registry.counter("tune.serve.plan_evictions")

    pad_rows_total = 0
    real_rows_total = 0

    def handle(batch) -> None:
        nonlocal pad_rows_total, real_rows_total
        n_atoms = sum(r.n_atoms for r in batch)
        n_pairs = sum(r.meta["n_pairs"] for r in batch)
        key = (
            atom_ladder.round_up(n_atoms + 1),
            pair_ladder.round_up(max(n_pairs, 1)),
        )
        if key in buckets:
            buckets.move_to_end(key)
            fresh = False
        else:
            buckets[key] = True
            fresh = True
            while len(buckets) > max_plans:
                buckets.popitem(last=False)
                c_evictions.inc()
        cap_pairs = key[1]
        service = (
            COST["batch_dispatch"]
            + len(batch) * COST["request"]
            + cap_pairs * COST["pair_pad"]
        )
        if fresh:
            # Tracing cost scales with the rows actually recorded, not the
            # padded capacity — a coarse ladder makes captures *rarer*
            # without making each one proportionally dearer.
            service += COST["capture_base"] + n_pairs * COST["batch_capture_pair"]
            c_captures.inc()
        else:
            c_replays.inc()
        # GIL-neutral worker model: the serial fraction is 1, so service
        # inflates by the worker count and aggregate capacity is constant.
        service *= n_workers
        worker = min(range(n_workers), key=lambda i: free_at[i])
        start = max(clock.now(), free_at[worker])
        finish = start + service
        free_at[worker] = finish
        for req in batch:
            lat_hist.observe(finish - req.t_enqueue)
        c_batches.inc()
        occ_hist.observe(len(batch))
        pad_rows_total += cap_pairs - n_pairs
        real_rows_total += n_pairs

    def drain() -> None:
        while True:
            batch = batcher.get_batch(timeout=0.0)
            if batch is None:
                return
            handle(batch)

    for gap, (n_atoms, n_pairs) in zip(gaps, sizes):
        clock.advance(gap)
        batcher.put(
            ForceRequest(
                system=_SizedSystem(n_atoms),
                model="default",
                future=None,
                meta={"n_pairs": n_pairs},
            )
        )
        drain()
    guard = 0
    while batcher.pending() and guard < 100000:
        clock.advance(max(params["batch_wait"], 1e-4))
        drain()
        guard += 1

    makespan = max(max(free_at), clock.now()) if free_at else clock.now()
    n_requests = len(sizes)
    batches = c_batches.value
    return {
        "makespan": makespan,
        "p99": lat_hist.percentile(0.99),
        "p50": lat_hist.percentile(0.50),
        "n_requests": n_requests,
        "n_batches": batches,
        "mean_occupancy": n_requests / batches if batches else 0.0,
        "captures": c_captures.value,
        "replays": c_replays.value,
        "evictions": c_evictions.value,
        "padded_waste": (
            pad_rows_total / real_rows_total if real_rows_total else 0.0
        ),
    }


def tune_serve(
    config: Optional[dict] = None,
    seed: int = 0,
    warmup: int = 0,
    repeats: int = 1,
    max_sweeps: int = 3,
    mean_gap: float = 2.0e-5,
    cycles: Optional[int] = None,
) -> dict:
    """Tune the serving pipeline on a simulated version of the workload.

    The request sizes come from the *real* configured workload systems
    (actual neighbor-list pair counts); arrivals follow a seeded
    exponential trace around ``mean_gap``.  The default is the burst
    cadence of ``evaluate_many`` — tens of microseconds per enqueue, far
    inside any coalescing window, so batches fill to ``max_batch`` the
    way a real burst does; raise it to tune for a trickle of independent
    clients instead.  The stream cycles ``cycles`` times (default
    :data:`SERVE_SIM_CYCLES` — the declared workload as-is, cold caches
    included).  The score is the simulated makespan plus a weighted p99
    latency read back from the injected registry's histogram.
    """
    if config is None:
        from ..cli import EXAMPLE_SERVE_CONFIG

        config = EXAMPLE_SERVE_CONFIG
    sizes, workload = _workload_sizes(config, seed)
    n_sim = len(sizes) * max(1, int(cycles if cycles is not None else SERVE_SIM_CYCLES))
    sim_sizes = [sizes[k % len(sizes)] for k in range(n_sim)]
    rng = np.random.default_rng(seed)
    gaps = [float(g) for g in rng.exponential(mean_gap, size=n_sim)]

    def objective(params: dict) -> Tuple[float, dict]:
        registry = Registry()
        sim = _simulate_serve(params, sim_sizes, gaps, registry)
        score = sim["makespan"] + SERVE_LATENCY_WEIGHT * sim["p99"]
        total = sim["captures"] + sim["replays"]
        metrics = {
            "modeled_requests_per_s": (
                sim["n_requests"] / sim["makespan"] if sim["makespan"] else 0.0
            ),
            "modeled_p50_ms": sim["p50"] * 1e3,
            "modeled_p99_ms": sim["p99"] * 1e3,
            "mean_occupancy": sim["mean_occupancy"],
            "replay_rate": sim["replays"] / total if total else 0.0,
            "captures": sim["captures"],
            "evictions": sim["evictions"],
            "padded_waste": sim["padded_waste"],
        }
        return score, metrics

    protocol = MeasurementProtocol(objective, warmup=warmup, repeats=repeats)
    result = coordinate_descent(SERVE_SPACE, protocol, max_sweeps=max_sweeps)
    workload["simulated_requests"] = n_sim
    workload["mean_gap_s"] = mean_gap
    return _report("serve", result, SERVE_SPACE.describe(), workload)


def measure_serve(
    config: dict, params: dict, repeats: int = 1, warmup: int = 1
) -> float:
    """Wall-clock requests/s of a real :class:`ForceServer` under ``params``.

    The measured counterpart of :func:`tune_serve` — used by the CLI to
    report the tuned configuration's actual throughput and by the gain
    benchmark.  Never feeds the persisted profile (wall clocks are noisy).
    """
    import statistics

    from ..cli import build_potential, build_system
    from ..serve import Client, ForceServer

    workload = dict(config.get("workload", {}))
    specs = workload.get("systems") or [{"kind": "molecule", "n_heavy": 4}]
    n_requests = int(workload.get("n_requests", 32))
    wl_seed = int(workload.get("seed", 0))
    systems = []
    for k in range(n_requests):
        spec = dict(specs[k % len(specs)])
        spec.setdefault("seed", wl_seed + k)
        systems.append(build_system(spec))
    potential = build_potential(config.get("potential", {"kind": "lennard_jones"}))
    serve_cfg = dict(config.get("serve", {}))
    server = ForceServer(
        potential,
        n_workers=int(params.get("n_workers", serve_cfg.get("n_workers", 2))),
        max_queue=int(serve_cfg.get("max_queue", 64)),
        max_batch=int(params.get("max_batch", serve_cfg.get("max_batch", 8))),
        batch_wait=float(params.get("batch_wait", serve_cfg.get("batch_wait", 2e-3))),
        adaptive=bool(params.get("adaptive", serve_cfg.get("adaptive", True))),
        plan_cache_opts={
            "atom_floor": int(params.get("plan_floor", 16)),
            "pair_floor": 4 * int(params.get("plan_floor", 16)),
            "growth": float(params.get("plan_growth", 1.5)),
        },
        engine=serve_cfg.get("engine", "compiled"),
    )
    rates = []
    with server:
        client = Client(server)
        for _ in range(warmup):
            client.evaluate_many(systems)
        for _ in range(max(repeats, 1)):
            t0 = time.perf_counter()
            client.evaluate_many(systems)
            rates.append(n_requests / (time.perf_counter() - t0))
    return float(statistics.median(rates))


# -- parallel decomposition target ---------------------------------------------


def tune_parallel(
    config: Optional[dict] = None,
    seed: int = 0,
    n_steps: int = 3,
    top_k: int = 3,
    warmup: int = 0,
    repeats: int = 1,
) -> dict:
    """Pick the process-grid factorization for a rank count.

    All factor triplets of ``n_ranks`` are ranked by a
    :class:`~repro.parallel.perfmodel.PerfModel` surrogate (compute floor
    + grid-shaped halo surface), then the ``top_k`` model candidates are
    verified by measurement: a real
    :class:`~repro.parallel.ParallelForceEvaluator` runs a few force
    evaluations per candidate and the deterministic comm-byte and
    load-imbalance counters decide the winner.  Unverified candidates
    keep their model scores in the tried table (``verified: false``).
    """
    from ..cli import build_potential, build_system
    from ..parallel.driver import ParallelForceEvaluator
    from ..parallel.perfmodel import ClusterSpec, PerfModel
    from ..parallel.topology import ProcessGrid, _factor_triplets

    cfg = config if config is not None else {}
    system_spec = cfg.get("system", {"kind": "water", "n_grid": 3, "seed": seed})
    potential_spec = cfg.get(
        "potential",
        {"kind": "lennard_jones", "epsilon": 0.8, "sigma": 1.1, "cutoff": 3.0},
    )
    n_ranks = int(cfg.get("parallel", {}).get("n_ranks", 8))
    probe = build_system(system_spec)
    if probe.cell is None:
        raise ValueError("parallel tuning needs a periodic system")
    potential = build_potential(potential_spec)
    volume = float(np.prod(probe.cell.lengths))
    density = probe.n_atoms / volume
    spec = ClusterSpec()
    model = PerfModel(spec=spec, density=density, cutoff=potential.cutoff)
    breakdown = model.step_breakdown(
        probe.n_atoms, max(1, math.ceil(n_ranks / spec.gpus_per_node))
    )

    def model_score(dims: Tuple[int, int, int]) -> float:
        brick = probe.cell.lengths / np.asarray(dims, dtype=np.float64)
        shell = float(
            np.prod(brick + 2.0 * potential.cutoff) - np.prod(brick)
        )
        halo_bytes = shell * density * 24.0 * 2.0
        halo = halo_bytes / (spec.total_bandwidth_Bps / n_ranks)
        return breakdown.compute + halo + breakdown.latency + breakdown.sync

    candidates = sorted(_factor_triplets(n_ranks))
    ranked = sorted(candidates, key=lambda d: (model_score(d), d))

    def measure(dims: Tuple[int, int, int]) -> Tuple[float, dict]:
        registry = Registry()
        system = build_system(system_spec)
        evaluator = ParallelForceEvaluator(
            potential,
            ProcessGrid(dims, system.cell),
            skin=0.3,
            engine="eager",
            registry=registry,
        )
        t0 = time.perf_counter()
        work = None
        for _ in range(max(n_steps, 1)):
            bytes_before = evaluator.cluster.stats.total_bytes()
            _, _, work = evaluator.compute(system)
            halo_bytes = evaluator.cluster.stats.total_bytes() - bytes_before
        wall = (time.perf_counter() - t0) / max(n_steps, 1)
        edges = np.asarray(work.n_edges, dtype=np.float64)
        max_edges = float(edges.max())
        mean_edges = float(edges.mean()) if edges.size else 0.0
        imbalance = max_edges / mean_edges if mean_edges else 1.0
        score = (
            max_edges * COST["pair_eval"]
            + halo_bytes * COST["comm_byte"]
            + spec.messages_per_step * spec.latency_s
        )
        metrics = {
            "measured_halo_bytes": float(halo_bytes),
            "load_imbalance": imbalance,
            "max_rank_edges": max_edges,
            "modeled_s_per_step": score,
            "wall_s_per_step": wall,
        }
        return score, metrics

    protocol = MeasurementProtocol(measure, warmup=warmup, repeats=repeats)
    trials: List[Trial] = []
    best: Optional[Trial] = None
    for rank, dims in enumerate(ranked):
        params = {"grid": list(dims)}
        if rank < max(top_k, 1):
            score, metrics = protocol(params_to_dims(params))
            metrics = dict(metrics)
            metrics["verified"] = True
            metrics["model_s_per_step"] = model_score(dims)
            trial = Trial(params, float(score), metrics)
            if best is None or trial.score < best.score:
                best = trial
        else:
            trial = Trial(
                params,
                float(model_score(dims)),
                {"verified": False, "model_s_per_step": model_score(dims)},
            )
        trials.append(trial)

    result = SearchResult(
        best=dict(best.params),
        best_score=best.score,
        best_metrics=dict(best.metrics),
        trials=trials,
        n_evaluations=min(max(top_k, 1), len(ranked)),
        n_sweeps=1,
    )
    workload = {
        "system": system_spec,
        "potential": potential_spec,
        "n_ranks": n_ranks,
        "n_steps": n_steps,
        "seed": seed,
    }
    space_desc = {"grid": [list(d) for d in candidates]}
    return _report("parallel", result, space_desc, workload)


def params_to_dims(params: dict) -> Tuple[int, int, int]:
    """The grid triplet from a parallel params dict."""
    return tuple(int(d) for d in params["grid"])


#: target name -> tuner callable (the CLI dispatch table).
TARGETS = {
    "md": tune_md,
    "serve": tune_serve,
    "engine": tune_engine,
    "parallel": tune_parallel,
}


def run_target(target: str, config: Optional[dict] = None, **kwargs) -> dict:
    """Dispatch one tuning target by name."""
    fn = TARGETS.get(target)
    if fn is None:
        raise ValueError(
            f"unknown tuning target {target!r} (expected one of {sorted(TARGETS)})"
        )
    return fn(config, **kwargs)
